//! Plain-data diagnosis reports produced by [`crate::analysis`], plus
//! their human-table and JSON renderings. Every struct is serializable
//! so `hrmc analyze --json` can hand the whole diagnosis to scripts.

use hrmc_core::HistogramSummary;

use crate::parse::ParseStats;

/// Totals of the data plane.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct TransferReport {
    /// First transmissions put on the wire.
    pub data_packets: u64,
    /// Retransmissions put on the wire.
    pub retransmissions: u64,
    /// Distinct sequence numbers first-transmitted.
    pub unique_seqs: u64,
    /// Payload bytes across first transmissions.
    pub data_bytes: u64,
    /// Keepalives the sender fired.
    pub keepalives_sent: u64,
    /// Checksum failures across all endpoints.
    pub checksum_failures: u64,
    /// Receivers that completed the JOIN handshake.
    pub joins_completed: u64,
}

/// Feedback-implosion accounting (FEBER-style): how many NAKs the group
/// actually sent per loss it observed, and how many local suppression
/// withheld.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct SuppressionReport {
    /// Distinct (member, sequence) loss observations — every sequence a
    /// member ever NAKed or recovered.
    pub losses_observed: u64,
    /// NAK packets sent across all members.
    pub naks_sent: u64,
    /// Sequence numbers requested across those NAK packets.
    pub nak_seqs: u64,
    /// Times a NAK timer fired and held its fire (suppression events).
    pub suppression_events: u64,
    /// Sequence numbers withheld across those events.
    pub naks_suppressed: u64,
    /// `naks_suppressed / (naks_suppressed + nak_seqs)` — the fraction
    /// of would-be NAK requests that suppression absorbed.
    pub suppression_ratio: f64,
    /// `naks_sent / losses_observed` — NAK packets per observed loss.
    pub naks_per_loss: f64,
}

/// One contiguous span of a sender rate-control phase.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct PhaseSpan {
    /// Phase name (`slow_start`, `congestion_avoidance`, `stopped`).
    pub phase: String,
    /// Span start (µs).
    pub start_us: u64,
    /// Span end (µs) — the next transition, or the end of the trace.
    pub end_us: u64,
    /// Transmission rate when the span opened (bytes/s); 0 for the
    /// initial span (no transition carried a rate yet).
    pub rate_bps_at_entry: u64,
    /// Rate halvings (NAK / warning rate requests) within the span —
    /// the cause trail of the next downward transition.
    pub halvings: u64,
}

/// Sender flow-control timeline.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct FlowReport {
    /// Phase transitions observed.
    pub transitions: u64,
    /// Rate halvings (NAK or warning rate requests).
    pub rate_halvings: u64,
    /// Urgent stops (critical rate requests).
    pub urgent_stops: u64,
    /// Time spent in slow start (µs).
    pub slow_start_us: u64,
    /// Time spent in congestion avoidance (µs).
    pub congestion_avoidance_us: u64,
    /// Time spent stopped (µs).
    pub stopped_us: u64,
    /// The full span timeline, in time order.
    pub spans: Vec<PhaseSpan>,
    /// Last advertised rate (bytes/s).
    pub final_rate_bps: u64,
}

/// PROBE-gated buffer-release accounting (the Hybrid mode's reliability
/// hole closer): how often release had complete receiver information,
/// and what stalls cost.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ReleaseReport {
    /// Release decisions taken.
    pub attempts: u64,
    /// Decisions taken with complete receiver information.
    pub complete_info: u64,
    /// Decisions that released the buffer.
    pub released: u64,
    /// Decisions that held the buffer (incomplete information).
    pub stalled_attempts: u64,
    /// Distinct sequences whose release stalled at least once.
    pub stalled_seqs: u64,
    /// Stalled sequences for which the sender issued at least one PROBE
    /// — the stalls the PROBE machinery was attributed to resolving.
    pub probe_attributed_seqs: u64,
    /// PROBE packets sent.
    pub probes_sent: u64,
    /// First stall → eventual release, per stalled-then-released
    /// sequence (µs).
    pub stall_latency: HistogramSummary,
}

impl Default for ReleaseReport {
    fn default() -> ReleaseReport {
        ReleaseReport {
            attempts: 0,
            complete_info: 0,
            released: 0,
            stalled_attempts: 0,
            stalled_seqs: 0,
            probe_attributed_seqs: 0,
            probes_sent: 0,
            stall_latency: hrmc_core::Histogram::new().summary(),
        }
    }
}

/// RTT-estimate convergence.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct RttReport {
    /// Karn-admissible samples absorbed.
    pub samples: u64,
    /// Samples measured against a PROBE/UPDATE nonce round trip.
    pub probe_samples: u64,
    /// Smoothed estimate after the first sample (µs).
    pub first_srtt_us: u64,
    /// Smoothed estimate after the last sample (µs).
    pub final_srtt_us: u64,
    /// Earliest time after which the smoothed estimate stayed within
    /// ±10% of its final value (µs); `None` with no samples.
    pub converged_at_us: Option<u64>,
    /// Samples absorbed before that point.
    pub samples_to_converge: u64,
}

/// Receive-window region occupancy for one member.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct RegionOccupancy {
    /// Time in the safe region (µs).
    pub safe_us: u64,
    /// Time in the warning region (µs).
    pub warning_us: u64,
    /// Time in the critical region (µs).
    pub critical_us: u64,
    /// Entries into the warning region.
    pub warning_entries: u64,
    /// Entries into the critical region.
    pub critical_entries: u64,
}

/// Per-member loss, recovery, and feedback attribution.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct MemberReport {
    /// Display key of the emitting source (`host:1`, `recv0`, …).
    pub source: String,
    /// Receiver index under the sim convention, when derivable.
    pub member: Option<u32>,
    /// JOIN completion time (µs), if observed.
    pub joined_at_us: Option<u64>,
    /// JOIN handshake RTT seed (µs), if observed.
    pub join_rtt_us: Option<u64>,
    /// Segments delivered in order to the application.
    pub delivered_segments: u64,
    /// Distinct sequences this member observed losing (NAKed or
    /// recovered).
    pub losses: u64,
    /// Distinct sequences recovered (gap filled).
    pub recovered_seqs: u64,
    /// Distinct sequences lost and never recovered.
    pub unrecovered: u64,
    /// NAK packets sent.
    pub naks_sent: u64,
    /// Sequences requested across those NAKs.
    pub nak_seqs: u64,
    /// Suppression events (timer held fire).
    pub suppression_events: u64,
    /// Sequences withheld by suppression.
    pub naks_suppressed: u64,
    /// UPDATEs sent to the sender.
    pub updates_sent: u64,
    /// Gap-noted → gap-filled latency distribution (µs).
    pub recovery_latency: HistogramSummary,
    /// Receive-window region occupancy.
    pub regions: RegionOccupancy,
    /// `true` when the sender ejected this member.
    pub ejected: bool,
    /// When the ejection happened (µs), if it did.
    pub ejected_at_us: Option<u64>,
    /// `true` when the member demonstrably outlived its ejection — it
    /// kept emitting events after the sender cut it loose. Jitter-only
    /// episodes must keep this at zero on every member.
    pub falsely_ejected: bool,
    /// `true` when the member declared terminal session failure.
    pub session_failed: bool,
}

/// Cross-check of the online health monitor (schema v2 `health_alert`
/// lines) against this post-hoc audit. Only meaningful when the trace
/// carries at least one alert line — an alert-free trace cannot
/// distinguish "monitor disarmed" from "monitor silent".
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct AlertAuditReport {
    /// Alert transitions raised online.
    pub raised: u64,
    /// Alert transitions cleared online.
    pub cleared: u64,
    /// Raised `false_ejection` alerts among them.
    pub false_ejection_alerts: u64,
    /// The audit found false ejections the armed monitor never flagged
    /// (`ALERT-MISS`).
    pub alert_miss: bool,
    /// The monitor flagged a false ejection the audit does not
    /// corroborate (`ALERT-SPURIOUS`).
    pub alert_spurious: bool,
}

/// End-state audit of every sequence ever sent.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct LifecycleReport {
    /// Distinct sequences first-transmitted.
    pub seqs_sent: u64,
    /// Sequences whose buffer the sender released.
    pub released: u64,
    /// Sequences delivered by every live (non-ejected, non-failed)
    /// member.
    pub delivered_by_all_live: u64,
    /// Sequences neither released nor delivered by all live members —
    /// unaccounted-for losses the protocol cannot explain.
    pub incomplete: u64,
    /// Up to the first 16 unaccounted sequences, for digging.
    pub incomplete_seqs: Vec<u64>,
    /// `true` when every sent sequence ended released or is attributable
    /// to an ejected/failed member.
    pub complete: bool,
}

/// The full diagnosis of one trace.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Analysis {
    /// Ingestion accounting (schema, skipped lines).
    pub parse: ParseStats,
    /// Events analyzed.
    pub events: u64,
    /// First event timestamp (µs).
    pub start_us: u64,
    /// Last event timestamp (µs).
    pub end_us: u64,
    /// Data-plane totals.
    pub transfer: TransferReport,
    /// NAK-suppression efficiency.
    pub suppression: SuppressionReport,
    /// Sender flow-control timeline.
    pub flow: FlowReport,
    /// PROBE-gated release accounting.
    pub release: ReleaseReport,
    /// RTT convergence.
    pub rtt: RttReport,
    /// Per-member attribution, ordered by source key.
    pub members: Vec<MemberReport>,
    /// Members ejected while demonstrably still alive (degradation
    /// audit: latency is not death).
    pub false_ejections: u64,
    /// Online-alert cross-check against this audit.
    pub alerts: AlertAuditReport,
    /// Sequence end-state audit.
    pub lifecycle: LifecycleReport,
}

fn ms(us: u64) -> f64 {
    us as f64 / 1e3
}

fn secs(us: u64) -> f64 {
    us as f64 / 1e6
}

impl Analysis {
    /// Serialize the whole diagnosis as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("analysis serializes")
    }

    /// Render the human-facing diagnosis table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::new();
        let _ = writeln!(
            o,
            "trace: {} events over {:.3} s (schema {}, {} skipped line(s))",
            self.events,
            secs(self.end_us.saturating_sub(self.start_us)),
            self.parse
                .schema
                .map(|s| s.to_string())
                .unwrap_or_else(|| "none".into()),
            self.parse.skipped,
        );

        let t = &self.transfer;
        let _ = writeln!(o, "\ntransfer");
        let _ = writeln!(
            o,
            "  data packets     {:>8}   ({} unique seqs, {} bytes)",
            t.data_packets, t.unique_seqs, t.data_bytes
        );
        let _ = writeln!(
            o,
            "  retransmissions  {:>8}   keepalives {}  checksum failures {}  joins {}",
            t.retransmissions, t.keepalives_sent, t.checksum_failures, t.joins_completed
        );

        let s = &self.suppression;
        let _ = writeln!(o, "\nnak suppression");
        let _ = writeln!(
            o,
            "  losses observed  {:>8}   (distinct member x seq)",
            s.losses_observed
        );
        let _ = writeln!(
            o,
            "  naks sent        {:>8}   ({} seqs requested, {:.2} naks/loss)",
            s.naks_sent, s.nak_seqs, s.naks_per_loss
        );
        let _ = writeln!(
            o,
            "  naks suppressed  {:>8}   ({} events, suppression ratio {:.2})",
            s.naks_suppressed, s.suppression_events, s.suppression_ratio
        );

        let f = &self.flow;
        let _ = writeln!(o, "\nflow control");
        let _ = writeln!(
            o,
            "  slow start {:.3} s | congestion avoidance {:.3} s | stopped {:.3} s",
            secs(f.slow_start_us),
            secs(f.congestion_avoidance_us),
            secs(f.stopped_us)
        );
        let _ = writeln!(
            o,
            "  {} transitions, {} rate halvings, {} urgent stops, final rate {} B/s",
            f.transitions, f.rate_halvings, f.urgent_stops, f.final_rate_bps
        );
        for sp in &f.spans {
            let _ = writeln!(
                o,
                "    {:>10.3} s  {:<21} {:>7.3} s  entry {:>9} B/s  {} halving(s)",
                secs(sp.start_us),
                sp.phase,
                secs(sp.end_us.saturating_sub(sp.start_us)),
                sp.rate_bps_at_entry,
                sp.halvings
            );
        }

        let r = &self.release;
        let _ = writeln!(o, "\nbuffer release & probes");
        let _ = writeln!(
            o,
            "  attempts {} (complete info {}, released {})",
            r.attempts, r.complete_info, r.released
        );
        let _ = writeln!(
            o,
            "  stalls: {} attempt(s) over {} seq(s), {} probe-attributed, {} probe(s) sent",
            r.stalled_attempts, r.stalled_seqs, r.probe_attributed_seqs, r.probes_sent
        );
        if r.stall_latency.count > 0 {
            let _ = writeln!(
                o,
                "  stall latency (ms): p50 {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}",
                ms(r.stall_latency.p50),
                ms(r.stall_latency.p90),
                ms(r.stall_latency.p99),
                ms(r.stall_latency.max)
            );
        }

        let rt = &self.rtt;
        let _ = writeln!(o, "\nrtt");
        if rt.samples == 0 {
            let _ = writeln!(o, "  no samples");
        } else {
            let _ = writeln!(
                o,
                "  {} samples ({} probe), srtt {:.1} -> {:.1} ms{}",
                rt.samples,
                rt.probe_samples,
                ms(rt.first_srtt_us),
                ms(rt.final_srtt_us),
                match rt.converged_at_us {
                    Some(t) => format!(
                        ", converged (+-10%) at {:.3} s after {} sample(s)",
                        secs(t),
                        rt.samples_to_converge
                    ),
                    None => String::new(),
                }
            );
        }

        let _ = writeln!(o, "\nmembers");
        let _ = writeln!(
            o,
            "  {:<10} {:>9} {:>7} {:>9} {:>8} {:>6} {:>10} {:>9} {:>9} {:>7} {:>6}",
            "source",
            "delivered",
            "losses",
            "recovered",
            "unrecov",
            "naks",
            "suppressed",
            "p50(ms)",
            "p99(ms)",
            "warn/cr",
            "state"
        );
        for m in &self.members {
            let state = if m.falsely_ejected {
                "FALSE-EJ"
            } else if m.ejected {
                "ejected"
            } else if m.session_failed {
                "failed"
            } else {
                "ok"
            };
            let _ = writeln!(
                o,
                "  {:<10} {:>9} {:>7} {:>9} {:>8} {:>6} {:>10} {:>9.1} {:>9.1} {:>7} {:>6}",
                m.source,
                m.delivered_segments,
                m.losses,
                m.recovered_seqs,
                m.unrecovered,
                m.naks_sent,
                m.naks_suppressed,
                ms(m.recovery_latency.p50),
                ms(m.recovery_latency.p99),
                format!(
                    "{}/{}",
                    m.regions.warning_entries, m.regions.critical_entries
                ),
                state
            );
        }
        if self.false_ejections > 0 {
            let _ = writeln!(
                o,
                "  !! {} member(s) ejected while demonstrably alive",
                self.false_ejections
            );
        }

        if self.parse.alerts > 0 {
            let al = &self.alerts;
            let _ = writeln!(o, "\nhealth alerts (online monitor)");
            let _ = writeln!(
                o,
                "  {} alert line(s): {} raised, {} cleared ({} false-ejection)",
                self.parse.alerts, al.raised, al.cleared, al.false_ejection_alerts
            );
            if al.alert_miss {
                let _ = writeln!(
                    o,
                    "  !! ALERT-MISS: audit found {} false ejection(s) the armed monitor never flagged",
                    self.false_ejections
                );
            }
            if al.alert_spurious {
                let _ = writeln!(
                    o,
                    "  !! ALERT-SPURIOUS: monitor raised {} false-ejection alert(s) the audit does not corroborate",
                    al.false_ejection_alerts
                );
            }
            if !al.alert_miss && !al.alert_spurious {
                let _ = writeln!(o, "  online alerts agree with the post-hoc audit");
            }
        }

        let l = &self.lifecycle;
        let _ = writeln!(o, "\nlifecycle");
        let _ =
            writeln!(
            o,
            "  {} seq(s) sent: {} released, {} delivered by all live members, {} unaccounted {}",
            l.seqs_sent,
            l.released,
            l.delivered_by_all_live,
            l.incomplete,
            if l.complete { "[complete]" } else { "[INCOMPLETE]" }
        );
        if !l.incomplete_seqs.is_empty() {
            let _ = writeln!(o, "  unaccounted seqs: {:?}", l.incomplete_seqs);
        }
        o
    }
}
