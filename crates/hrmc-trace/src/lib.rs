//! # hrmc-trace — causal packet-lifecycle analysis
//!
//! Offline diagnosis of H-RMC JSONL event traces. Feed it any stream
//! this workspace emits — a simulation event log, a live endpoint's
//! [`JsonlObserver`](hrmc_core::JsonlObserver) stream, or a
//! [`FlightRecorder`](hrmc_core::FlightRecorder) dump — and it
//! reconstructs each sequence number's causal lifecycle
//! (sent → lost/arrived → NAK with suppression attribution →
//! retransmit → delivered → released) and emits the diagnoses a
//! post-mortem needs:
//!
//! - per-member loss and recovery-latency attribution,
//! - NAK-suppression efficiency (how close feedback stayed to one NAK
//!   per loss),
//! - the sender's flow-control timeline (phase spans with the rate
//!   halvings that caused each downgrade),
//! - receive-window region occupancy per member,
//! - PROBE-stall attribution on buffer release,
//! - RTT-estimate convergence,
//! - and an end-state audit: every sequence released, or its absence
//!   attributable to an ejected/failed member.
//!
//! The crate is deliberately dependency-light (hrmc-core + the in-tree
//! serde shims) so `hrmc analyze` stays available everywhere the CLI
//! builds.
//!
//! ```no_run
//! let analysis = hrmc_trace::analyze_file(std::path::Path::new("trace.jsonl")).unwrap();
//! println!("{}", analysis.render_table());
//! ```

pub mod analysis;
pub mod parse;
pub mod report;

pub use analysis::{analyze_file, analyze_str};
pub use parse::{
    parse_file, parse_str, parse_telemetry_file, parse_telemetry_sample, parse_telemetry_str,
    ParseStats, Source, TraceError, TraceEvent,
};
pub use report::{
    Analysis, FlowReport, LifecycleReport, MemberReport, PhaseSpan, RegionOccupancy, ReleaseReport,
    RttReport, SuppressionReport, TransferReport,
};
