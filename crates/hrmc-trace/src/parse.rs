//! JSONL trace ingestion: turn an event log back into typed
//! [`Event`]s.
//!
//! Accepts every stream this workspace emits — `Simulation::set_event_log`
//! (`"host"`-tagged lines), [`hrmc_core::JsonlObserver`] (`"src"`-tagged
//! lines), and [`hrmc_core::FlightRecorder::dump`] windows — plus
//! pre-schema traces with no header line. Unknown event names and
//! malformed lines are counted and skipped, never fatal: a trace
//! analyzer that dies on the one line it doesn't understand is useless
//! in a post-mortem.

use std::collections::BTreeMap;

use hrmc_core::health::{AlertRule, Severity};
use hrmc_core::obs::NakTrigger;
use hrmc_core::rate::RatePhase;
use hrmc_core::rxwindow::Region;
use hrmc_core::{Event, HistSample, PeerId, TelemetrySample, SCHEMA_VERSION};
use serde_json::Value;

/// Who emitted a trace line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Source {
    /// A simulation host (`"host":N`); host 0 is the sender, host `i`
    /// is receiver `i - 1`.
    Host(u32),
    /// A labelled endpoint (`"src":"sender"`, `"src":"recv0"`, …).
    Label(String),
    /// A line with neither tag (single-engine streams).
    Anonymous,
}

impl Source {
    /// Stable display key used to group per-member statistics.
    pub fn key(&self) -> String {
        match self {
            Source::Host(h) => format!("host:{h}"),
            Source::Label(l) => l.clone(),
            Source::Anonymous => "-".to_string(),
        }
    }

    /// The member (receiver index) this source corresponds to under the
    /// simulation convention (receiver `i` is host `i + 1`); labelled
    /// and anonymous sources have no derivable member id.
    pub fn member(&self) -> Option<u32> {
        match self {
            Source::Host(h) if *h > 0 => Some(h - 1),
            _ => None,
        }
    }
}

/// One parsed trace line: a protocol event with its timestamp and
/// emitter.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Engine clock at emission (µs).
    pub t_us: u64,
    /// Who emitted it.
    pub source: Source,
    /// The event.
    pub event: Event,
}

/// What ingestion saw besides the events themselves.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct ParseStats {
    /// Total lines read (including headers and blanks).
    pub lines: u64,
    /// Schema version from the header line, if one was present.
    pub schema: Option<u64>,
    /// Header lines seen (a concatenation of several dumps has several).
    pub headers: u64,
    /// Lines skipped: blank, malformed, or an unknown event name.
    pub skipped: u64,
    /// Telemetry sample lines seen (the `"telemetry":1` discriminator).
    /// [`parse_str`] counts and passes over them — they are a parallel
    /// channel, not protocol events, and not parse failures;
    /// [`parse_telemetry_str`] decodes them.
    pub telemetry: u64,
    /// Health-alert lines seen (`"event":"health_alert"`, schema v2) —
    /// the online monitor's transitions, counted separately so an
    /// analysis can tell whether the monitor was armed at all.
    pub alerts: u64,
}

/// Errors that abort ingestion entirely (per-line problems only bump
/// [`ParseStats::skipped`]).
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read.
    Io(std::io::Error),
    /// A header declared a schema newer than this analyzer understands.
    UnsupportedSchema(u64),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "cannot read trace: {e}"),
            TraceError::UnsupportedSchema(v) => write!(
                f,
                "trace schema {v} is newer than supported schema {SCHEMA_VERSION}"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

fn get_u64(obj: &Value, key: &str) -> Option<u64> {
    obj.get(key)?.as_u64()
}

fn get_u32(obj: &Value, key: &str) -> Option<u32> {
    get_u64(obj, key).and_then(|v| u32::try_from(v).ok())
}

fn get_bool(obj: &Value, key: &str) -> Option<bool> {
    match obj.get(key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn get_str<'a>(obj: &'a Value, key: &str) -> Option<&'a str> {
    obj.get(key)?.as_str()
}

fn parse_phase(name: &str) -> Option<RatePhase> {
    match name {
        "slow_start" => Some(RatePhase::SlowStart),
        "congestion_avoidance" => Some(RatePhase::CongestionAvoidance),
        // The JSONL rendering does not carry the resume deadline; it is
        // irrelevant to every analysis, which keys on the phase name.
        "stopped" => Some(RatePhase::Stopped { until: 0 }),
        _ => None,
    }
}

fn parse_region(name: &str) -> Option<Region> {
    match name {
        "safe" => Some(Region::Safe),
        "warning" => Some(Region::Warning),
        "critical" => Some(Region::Critical),
        _ => None,
    }
}

fn parse_trigger(name: &str) -> Option<NakTrigger> {
    match name {
        "gap" => Some(NakTrigger::Gap),
        "timer" => Some(NakTrigger::Timer),
        "probe" => Some(NakTrigger::Probe),
        "keepalive" => Some(NakTrigger::Keepalive),
        _ => None,
    }
}

/// Reconstruct an [`Event`] from a parsed JSON object — the inverse of
/// [`hrmc_core::obs::event_json_with`]. Returns `None` for unknown
/// event names or missing fields (the caller counts the line skipped).
pub fn parse_event(obj: &Value) -> Option<Event> {
    let name = get_str(obj, "event")?;
    Some(match name {
        "rate_phase_changed" => Event::RatePhaseChanged {
            from: parse_phase(get_str(obj, "from")?)?,
            to: parse_phase(get_str(obj, "to")?)?,
            rate_bps: get_u64(obj, "rate_bps")?,
        },
        "rate_halved" => Event::RateHalved {
            rate_bps: get_u64(obj, "rate_bps")?,
        },
        "urgent_stopped" => Event::UrgentStopped {
            until: get_u64(obj, "until_us")?,
        },
        "rtt_sample" => Event::RttSample {
            sample_us: get_u64(obj, "sample_us")?,
            srtt_us: get_u64(obj, "srtt_us")?,
            probe: get_bool(obj, "probe")?,
        },
        "probe_sent" => Event::ProbeSent {
            seq: get_u32(obj, "seq")?,
            multicast: get_bool(obj, "multicast")?,
        },
        "keepalive_sent" => Event::KeepaliveSent {
            backoff_us: get_u64(obj, "backoff_us")?,
        },
        "release_attempt" => Event::ReleaseAttempt {
            seq: get_u32(obj, "seq")?,
            complete: get_bool(obj, "complete")?,
            released: get_bool(obj, "released")?,
        },
        "data_sent" => Event::DataSent {
            seq: get_u32(obj, "seq")?,
            bytes: get_u32(obj, "bytes")?,
            retransmission: get_bool(obj, "retransmission")?,
        },
        "peer_joined" => Event::PeerJoined {
            peer: PeerId(get_u32(obj, "member")?),
        },
        "member_ejected" => Event::MemberEjected {
            peer: PeerId(get_u32(obj, "member")?),
        },
        "checksum_failed" => Event::ChecksumFailed,
        "region_changed" => Event::RegionChanged {
            from: parse_region(get_str(obj, "from")?)?,
            to: parse_region(get_str(obj, "to")?)?,
        },
        "nak_sent" => Event::NakSent {
            first: get_u64(obj, "first")?,
            count: get_u32(obj, "count")?,
            trigger: parse_trigger(get_str(obj, "trigger")?)?,
        },
        "nak_suppressed" => Event::NakSuppressed {
            pending: get_u32(obj, "pending")?,
        },
        "update_sent" => Event::UpdateSent {
            nonce: get_u32(obj, "nonce")?,
        },
        "recovered" => Event::Recovered {
            first: get_u64(obj, "first")?,
            count: get_u32(obj, "count")?,
            elapsed_us: get_u64(obj, "elapsed_us")?,
        },
        "delivered" => Event::Delivered {
            first: get_u64(obj, "first")?,
            count: get_u32(obj, "count")?,
        },
        "joined" => Event::Joined {
            rtt_us: get_u64(obj, "rtt_us")?,
        },
        "session_failed" => Event::SessionFailed,
        "health_alert" => Event::HealthAlert {
            rule: AlertRule::from_name(get_str(obj, "rule")?)?,
            severity: Severity::from_name(get_str(obj, "severity")?)?,
            raised: get_bool(obj, "raised")?,
            value_m: get_u64(obj, "value_m")?,
            limit_m: get_u64(obj, "limit_m")?,
        },
        _ => return None,
    })
}

/// Parse a whole JSONL trace. Header lines update [`ParseStats`];
/// event lines become [`TraceEvent`]s; anything else is counted and
/// skipped. The only fatal conditions are I/O failure (in the file
/// front-ends) and a header declaring a schema newer than
/// [`SCHEMA_VERSION`].
pub fn parse_str(input: &str) -> Result<(Vec<TraceEvent>, ParseStats), TraceError> {
    let mut events = Vec::new();
    let mut stats = ParseStats::default();
    for line in input.lines() {
        stats.lines += 1;
        let line = line.trim();
        if line.is_empty() {
            stats.skipped += 1;
            continue;
        }
        let obj = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(_) => {
                stats.skipped += 1;
                continue;
            }
        };
        if let Some(schema) = get_u64(&obj, "schema") {
            if schema > u64::from(SCHEMA_VERSION) {
                return Err(TraceError::UnsupportedSchema(schema));
            }
            stats.headers += 1;
            stats.schema = Some(schema);
            continue;
        }
        if get_u64(&obj, "telemetry").is_some() {
            stats.telemetry += 1;
            continue;
        }
        let (Some(t_us), Some(event)) = (get_u64(&obj, "t_us"), parse_event(&obj)) else {
            stats.skipped += 1;
            continue;
        };
        if matches!(event, Event::HealthAlert { .. }) {
            stats.alerts += 1;
        }
        let source = if let Some(h) = get_u32(&obj, "host") {
            Source::Host(h)
        } else if let Some(l) = get_str(&obj, "src") {
            Source::Label(l.to_string())
        } else {
            Source::Anonymous
        };
        events.push(TraceEvent {
            t_us,
            source,
            event,
        });
    }
    // Concatenated dumps and multi-endpoint files interleave; analysis
    // assumes global time order.
    events.sort_by_key(|e| e.t_us);
    Ok((events, stats))
}

/// [`parse_str`] over a file.
pub fn parse_file(path: &std::path::Path) -> Result<(Vec<TraceEvent>, ParseStats), TraceError> {
    let body = std::fs::read_to_string(path)?;
    parse_str(&body)
}

/// A JSON object whose values are all unsigned integers, as a map.
fn get_u64_map(obj: &Value, key: &str) -> Option<BTreeMap<String, u64>> {
    let Value::Object(m) = obj.get(key)? else {
        return None;
    };
    let mut out = BTreeMap::new();
    for (k, v) in m.iter() {
        out.insert(k.clone(), v.as_u64()?);
    }
    Some(out)
}

/// Reconstruct a [`TelemetrySample`] from a parsed JSON object — the
/// inverse of [`TelemetrySample::to_json_line`]. Returns `None` when
/// the `"telemetry"` discriminator or any section is missing or
/// malformed.
pub fn parse_telemetry_sample(obj: &Value) -> Option<TelemetrySample> {
    get_u64(obj, "telemetry")?;
    let Value::Object(hist_obj) = obj.get("hists")? else {
        return None;
    };
    let mut hists = BTreeMap::new();
    for (k, v) in hist_obj.iter() {
        hists.insert(
            k.clone(),
            HistSample {
                count: get_u64(v, "count")?,
                delta: get_u64(v, "delta")?,
                p50: get_u64(v, "p50")?,
                p90: get_u64(v, "p90")?,
                p99: get_u64(v, "p99")?,
                max: get_u64(v, "max")?,
            },
        );
    }
    Some(TelemetrySample {
        seq: get_u64(obj, "seq")?,
        t_us: get_u64(obj, "t_us")?,
        interval_us: get_u64(obj, "interval_us")?,
        counters: get_u64_map(obj, "counters")?,
        totals: get_u64_map(obj, "totals")?,
        gauges: get_u64_map(obj, "gauges")?,
        hists,
    })
}

/// Extract the telemetry time series from a JSONL stream — the
/// counterpart of [`parse_str`] for the sampler's `"telemetry":1`
/// lines. Designed for mixed streams: protocol events and headers are
/// passed over silently (they are not failures of *this* channel);
/// blank or malformed lines — including telemetry lines with missing
/// sections — are counted skipped. Samples are returned in sample-`seq`
/// order.
pub fn parse_telemetry_str(input: &str) -> Result<(Vec<TelemetrySample>, ParseStats), TraceError> {
    let mut samples = Vec::new();
    let mut stats = ParseStats::default();
    for line in input.lines() {
        stats.lines += 1;
        let line = line.trim();
        if line.is_empty() {
            stats.skipped += 1;
            continue;
        }
        let obj = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(_) => {
                stats.skipped += 1;
                continue;
            }
        };
        if let Some(schema) = get_u64(&obj, "schema") {
            if schema > u64::from(SCHEMA_VERSION) {
                return Err(TraceError::UnsupportedSchema(schema));
            }
            stats.headers += 1;
            stats.schema = Some(schema);
            continue;
        }
        if get_u64(&obj, "telemetry").is_none() {
            continue;
        }
        match parse_telemetry_sample(&obj) {
            Some(s) => {
                stats.telemetry += 1;
                samples.push(s);
            }
            None => stats.skipped += 1,
        }
    }
    samples.sort_by_key(|s| s.seq);
    Ok((samples, stats))
}

/// [`parse_telemetry_str`] over a file.
pub fn parse_telemetry_file(
    path: &std::path::Path,
) -> Result<(Vec<TelemetrySample>, ParseStats), TraceError> {
    let body = std::fs::read_to_string(path)?;
    parse_telemetry_str(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_consumed_not_treated_as_event() {
        let input = "{\"schema\":1,\"role\":\"sim\"}\n\
                     {\"t_us\":5,\"host\":0,\"event\":\"checksum_failed\"}\n";
        let (events, stats) = parse_str(input).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(stats.schema, Some(1));
        assert_eq!(stats.headers, 1);
        assert_eq!(stats.skipped, 0);
        assert_eq!(events[0].source, Source::Host(0));
        assert_eq!(events[0].event, Event::ChecksumFailed);
    }

    #[test]
    fn headerless_pre_schema_traces_still_parse() {
        let input = "{\"t_us\":1,\"src\":\"sender\",\"event\":\"rate_halved\",\"rate_bps\":9}\n";
        let (events, stats) = parse_str(input).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(stats.schema, None);
        assert_eq!(events[0].source, Source::Label("sender".into()));
    }

    #[test]
    fn unknown_events_and_garbage_are_skipped_not_fatal() {
        let input = "{\"t_us\":1,\"event\":\"warp_drive_engaged\",\"factor\":9}\n\
                     not json at all\n\
                     \n\
                     {\"t_us\":2,\"event\":\"delivered\",\"first\":0,\"count\":1}\n";
        let (events, stats) = parse_str(input).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(stats.skipped, 3);
    }

    #[test]
    fn newer_schema_is_refused() {
        let input = "{\"schema\":99,\"role\":\"sim\"}\n";
        match parse_str(input) {
            Err(TraceError::UnsupportedSchema(99)) => {}
            other => panic!("expected UnsupportedSchema, got {other:?}"),
        }
    }

    #[test]
    fn events_are_sorted_by_time() {
        let input = "{\"t_us\":9,\"host\":1,\"event\":\"checksum_failed\"}\n\
                     {\"t_us\":3,\"host\":2,\"event\":\"checksum_failed\"}\n";
        let (events, _) = parse_str(input).unwrap();
        assert_eq!(events[0].t_us, 3);
        assert_eq!(events[1].t_us, 9);
    }

    #[test]
    fn source_member_mapping_follows_sim_convention() {
        assert_eq!(Source::Host(0).member(), None, "host 0 is the sender");
        assert_eq!(Source::Host(3).member(), Some(2));
        assert_eq!(Source::Label("recv0".into()).member(), None);
    }

    /// A sampler-produced JSONL stream must round-trip losslessly:
    /// every field of every sample survives render → parse.
    #[test]
    fn telemetry_samples_round_trip_through_jsonl() {
        use hrmc_core::{MetricsRegistry, Sampler};
        let mut reg = MetricsRegistry::new();
        let mut sampler = Sampler::new(16);
        reg.add("naks_sent", 3);
        reg.set_gauge("window_bytes", 4096);
        reg.observe("loop_us", 120);
        sampler.sample(1_000_000, &reg);
        reg.add("naks_sent", 4);
        reg.observe("loop_us", 90);
        sampler.sample(1_500_000, &reg);

        let jsonl: String = sampler.samples().map(|s| s.to_json_line() + "\n").collect();
        let (parsed, stats) = parse_telemetry_str(&jsonl).unwrap();
        assert_eq!(stats.telemetry, 2);
        assert_eq!(stats.skipped, 0);
        let originals: Vec<_> = sampler.samples().cloned().collect();
        assert_eq!(parsed, originals, "lossless round-trip");
        assert_eq!(parsed[1].counter_delta("naks_sent"), 4);
        assert_eq!(parsed[1].total("naks_sent"), 7);
        assert_eq!(parsed[1].gauge("window_bytes"), Some(4096));
        assert_eq!(parsed[1].hists["loop_us"].count, 2);
    }

    /// Mixed streams: `parse_str` counts telemetry lines without
    /// skipping them, and `parse_telemetry_str` ignores event lines.
    #[test]
    fn mixed_stream_separates_events_from_telemetry() {
        use hrmc_core::{MetricsRegistry, Sampler};
        let mut reg = MetricsRegistry::new();
        reg.add("data_packets_sent", 1);
        let mut sampler = Sampler::new(4);
        sampler.sample(500, &reg);
        let mixed = format!(
            "{{\"schema\":1,\"role\":\"sim\"}}\n\
             {{\"t_us\":5,\"host\":0,\"event\":\"checksum_failed\"}}\n\
             {}\n",
            sampler.latest().unwrap().to_json_line()
        );
        let (events, stats) = parse_str(&mixed).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(stats.telemetry, 1);
        assert_eq!(stats.skipped, 0, "telemetry lines are not failures");
        let (samples, tstats) = parse_telemetry_str(&mixed).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(tstats.telemetry, 1);
        assert_eq!(tstats.headers, 1);
        assert_eq!(tstats.skipped, 0, "event lines are not failures here");
        assert_eq!(samples[0].total("data_packets_sent"), 1);
    }

    /// Alert lines (schema v2) round-trip losslessly through a mixed
    /// stream and are counted by [`ParseStats::alerts`].
    #[test]
    fn alert_lines_round_trip_in_mixed_streams() {
        use hrmc_core::obs::event_json;
        let alert = Event::HealthAlert {
            rule: AlertRule::BacklogGrowth,
            severity: Severity::Warning,
            raised: true,
            value_m: 180_500,
            limit_m: 150_000,
        };
        let cleared = Event::HealthAlert {
            rule: AlertRule::BacklogGrowth,
            severity: Severity::Warning,
            raised: false,
            value_m: 12_000,
            limit_m: 150_000,
        };
        let mixed = format!(
            "{{\"schema\":2,\"role\":\"sim\"}}\n\
             {{\"t_us\":5,\"host\":0,\"event\":\"data_sent\",\"seq\":0,\"bytes\":10,\
             \"retransmission\":false}}\n\
             {}\n\
             {}\n",
            event_json(7, &alert),
            event_json(900_007, &cleared),
        );
        let (events, stats) = parse_str(&mixed).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(stats.alerts, 2);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.schema, Some(2));
        assert_eq!(events[1].event, alert, "lossless round-trip");
        assert_eq!(events[2].event, cleared);
        assert_eq!(events[1].source, Source::Anonymous);
        // Re-render: byte-identical to the original line.
        assert_eq!(event_json(7, &events[1].event), event_json(7, &alert));
    }

    #[test]
    fn malformed_telemetry_lines_are_counted_skipped() {
        let input = "{\"telemetry\":1,\"seq\":0}\n\
                     not json\n";
        let (samples, stats) = parse_telemetry_str(input).unwrap();
        assert!(samples.is_empty());
        assert_eq!(stats.skipped, 2);
        assert_eq!(stats.telemetry, 0);
    }
}
