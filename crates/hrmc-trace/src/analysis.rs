//! Causal lifecycle reconstruction: fold a time-ordered event stream
//! into the diagnosis reports of [`crate::report`].
//!
//! The analyzer replays each sequence number's lifecycle
//! (sent → lost/arrived → NAK → retransmit → delivered → released) and
//! each member's feedback behaviour, then audits the end state: every
//! sequence must finish released, or its absence must be attributable
//! to an ejected/failed member. Anything else is an unaccounted loss —
//! exactly the thing a post-mortem needs surfaced.

use std::collections::{BTreeMap, BTreeSet};

use hrmc_core::obs::phase_name;
use hrmc_core::rxwindow::Region;
use hrmc_core::{Event, Histogram};

use crate::parse::{parse_file, parse_str, ParseStats, Source, TraceError, TraceEvent};
use crate::report::{
    AlertAuditReport, Analysis, FlowReport, LifecycleReport, MemberReport, PhaseSpan,
    RegionOccupancy, ReleaseReport, RttReport, SuppressionReport, TransferReport,
};

/// Sender-side lifecycle state of one sequence number.
#[derive(Default)]
struct SeqState {
    sent: bool,
    released: bool,
    released_at: Option<u64>,
    stall_first: Option<u64>,
    probed: bool,
}

/// Receiver-side state of one member source.
struct MemberState {
    source: Source,
    joined_at: Option<u64>,
    join_rtt: Option<u64>,
    delivered_segments: u64,
    delivered: BTreeSet<u64>,
    lost: BTreeSet<u64>,
    recovered: BTreeSet<u64>,
    naks_sent: u64,
    nak_seqs: u64,
    suppression_events: u64,
    naks_suppressed: u64,
    updates_sent: u64,
    recovery: Histogram,
    region: Region,
    region_since: u64,
    occupancy: RegionOccupancy,
    ejected: bool,
    /// When the sender ejected this member (µs).
    ejected_at: Option<u64>,
    /// Timestamp of the member's most recent event — evidence of life
    /// for the false-ejection audit.
    last_activity: u64,
    session_failed: bool,
}

impl MemberState {
    fn new(source: Source, now: u64) -> MemberState {
        MemberState {
            source,
            joined_at: None,
            join_rtt: None,
            delivered_segments: 0,
            delivered: BTreeSet::new(),
            lost: BTreeSet::new(),
            recovered: BTreeSet::new(),
            naks_sent: 0,
            nak_seqs: 0,
            suppression_events: 0,
            naks_suppressed: 0,
            updates_sent: 0,
            recovery: Histogram::new(),
            region: Region::Safe,
            region_since: now,
            occupancy: RegionOccupancy::default(),
            ejected: false,
            ejected_at: None,
            last_activity: now,
            session_failed: false,
        }
    }

    fn credit_region(&mut self, until: u64) {
        let span = until.saturating_sub(self.region_since);
        match self.region {
            Region::Safe => self.occupancy.safe_us += span,
            Region::Warning => self.occupancy.warning_us += span,
            Region::Critical => self.occupancy.critical_us += span,
        }
        self.region_since = until;
    }
}

/// Does this source's member id (or `recvN` label) match the ejected
/// peer id?
fn source_is_peer(source: &Source, peer: u32) -> bool {
    match source {
        Source::Host(_) => source.member() == Some(peer),
        Source::Label(l) => *l == format!("recv{peer}"),
        Source::Anonymous => false,
    }
}

impl Analysis {
    /// Fold a time-ordered event stream into a full diagnosis.
    pub fn from_events(events: &[TraceEvent], parse: ParseStats) -> Analysis {
        let start_us = events.first().map_or(0, |e| e.t_us);
        let end_us = events.last().map_or(0, |e| e.t_us);

        let mut transfer = TransferReport::default();
        let mut release = ReleaseReport::default();
        let mut seqs: BTreeMap<u64, SeqState> = BTreeMap::new();
        let mut members: BTreeMap<Source, MemberState> = BTreeMap::new();

        // Flow-control raw material.
        let mut first_sender_t: Option<u64> = None;
        let mut transitions: Vec<(u64, String, String, u64)> = Vec::new();
        let mut halvings: Vec<u64> = Vec::new();
        let mut urgent_stops = 0u64;
        let mut final_rate = 0u64;

        // RTT raw material.
        let mut rtt_samples: Vec<(u64, u64)> = Vec::new();
        let mut probe_samples = 0u64;

        let mut ejected_peers: Vec<(u64, u32)> = Vec::new();
        let mut stall_latency = Histogram::new();
        let mut alerts = AlertAuditReport::default();

        for te in events {
            let now = te.t_us;
            let mut sender_event = true;
            match &te.event {
                Event::RatePhaseChanged { from, to, rate_bps } => {
                    transitions.push((
                        now,
                        phase_name(*from).to_string(),
                        phase_name(*to).to_string(),
                        *rate_bps,
                    ));
                    final_rate = *rate_bps;
                }
                Event::RateHalved { rate_bps } => {
                    halvings.push(now);
                    final_rate = *rate_bps;
                }
                Event::UrgentStopped { .. } => urgent_stops += 1,
                Event::RttSample { srtt_us, probe, .. } => {
                    rtt_samples.push((now, *srtt_us));
                    if *probe {
                        probe_samples += 1;
                    }
                }
                Event::ProbeSent { seq, .. } => {
                    release.probes_sent += 1;
                    seqs.entry(u64::from(*seq)).or_default().probed = true;
                }
                Event::KeepaliveSent { .. } => transfer.keepalives_sent += 1,
                Event::ReleaseAttempt {
                    seq,
                    complete,
                    released,
                } => {
                    release.attempts += 1;
                    if *complete {
                        release.complete_info += 1;
                    }
                    let st = seqs.entry(u64::from(*seq)).or_default();
                    if *released {
                        release.released += 1;
                        st.released = true;
                        st.released_at.get_or_insert(now);
                    } else {
                        release.stalled_attempts += 1;
                        st.stall_first.get_or_insert(now);
                    }
                }
                Event::DataSent {
                    seq,
                    bytes,
                    retransmission,
                } => {
                    let st = seqs.entry(u64::from(*seq)).or_default();
                    if *retransmission {
                        transfer.retransmissions += 1;
                    } else {
                        transfer.data_packets += 1;
                        transfer.data_bytes += u64::from(*bytes);
                        st.sent = true;
                    }
                }
                Event::PeerJoined { .. } => {}
                Event::MemberEjected { peer } => ejected_peers.push((now, peer.0)),
                // Online monitor transitions: side-channel evidence, not
                // protocol activity — they never open the sender span and
                // never count as member life signs.
                Event::HealthAlert { rule, raised, .. } => {
                    sender_event = false;
                    if *raised {
                        alerts.raised += 1;
                        if *rule == hrmc_core::health::AlertRule::FalseEjection {
                            alerts.false_ejection_alerts += 1;
                        }
                    } else {
                        alerts.cleared += 1;
                    }
                }
                Event::ChecksumFailed => {
                    transfer.checksum_failures += 1;
                    sender_event = false;
                }
                // ---- receiver side ----
                receiver_event => {
                    sender_event = false;
                    let m = members
                        .entry(te.source.clone())
                        .or_insert_with(|| MemberState::new(te.source.clone(), now));
                    m.last_activity = now;
                    match receiver_event {
                        Event::RegionChanged { to, .. } => {
                            m.credit_region(now);
                            m.region = *to;
                            match to {
                                Region::Warning => m.occupancy.warning_entries += 1,
                                Region::Critical => m.occupancy.critical_entries += 1,
                                Region::Safe => {}
                            }
                        }
                        Event::NakSent { first, count, .. } => {
                            m.naks_sent += 1;
                            m.nak_seqs += u64::from(*count);
                            m.lost.extend(*first..first + u64::from(*count));
                        }
                        Event::NakSuppressed { pending } => {
                            m.suppression_events += 1;
                            m.naks_suppressed += u64::from(*pending);
                        }
                        Event::UpdateSent { .. } => m.updates_sent += 1,
                        Event::Recovered {
                            first,
                            count,
                            elapsed_us,
                        } => {
                            let range = *first..first + u64::from(*count);
                            m.lost.extend(range.clone());
                            m.recovered.extend(range);
                            m.recovery.record(*elapsed_us);
                        }
                        Event::Delivered { first, count } => {
                            m.delivered_segments += u64::from(*count);
                            m.delivered.extend(*first..first + u64::from(*count));
                        }
                        Event::Joined { rtt_us } => {
                            m.joined_at.get_or_insert(now);
                            m.join_rtt.get_or_insert(*rtt_us);
                            transfer.joins_completed += 1;
                        }
                        Event::SessionFailed => m.session_failed = true,
                        _ => unreachable!("sender events handled above"),
                    }
                }
            }
            if sender_event {
                first_sender_t.get_or_insert(now);
            }
        }

        // Sequence end states.
        transfer.unique_seqs = seqs.values().filter(|s| s.sent).count() as u64;
        for st in seqs.values() {
            if let Some(stalled) = st.stall_first {
                release.stalled_seqs += 1;
                if st.probed {
                    release.probe_attributed_seqs += 1;
                }
                if let Some(rel) = st.released_at {
                    stall_latency.record(rel.saturating_sub(stalled));
                }
            }
        }
        release.stall_latency = stall_latency.summary();

        // Flow-control timeline: open the initial span at the first
        // sender event, advance it at every transition, close at trace
        // end, then attribute each halving to its containing span.
        let mut flow = FlowReport {
            transitions: transitions.len() as u64,
            rate_halvings: halvings.len() as u64,
            urgent_stops,
            final_rate_bps: final_rate,
            ..FlowReport::default()
        };
        if let Some(t0) = first_sender_t {
            let mut spans: Vec<PhaseSpan> = Vec::new();
            let initial_phase = transitions
                .first()
                .map_or_else(|| "slow_start".to_string(), |t| t.1.clone());
            spans.push(PhaseSpan {
                phase: initial_phase,
                start_us: t0,
                end_us,
                rate_bps_at_entry: 0,
                halvings: 0,
            });
            for (t, _, to, rate) in &transitions {
                if let Some(prev) = spans.last_mut() {
                    prev.end_us = *t;
                }
                spans.push(PhaseSpan {
                    phase: to.clone(),
                    start_us: *t,
                    end_us,
                    rate_bps_at_entry: *rate,
                    halvings: 0,
                });
            }
            for &h in &halvings {
                if let Some(sp) = spans
                    .iter_mut()
                    .rev()
                    .find(|sp| sp.start_us <= h && h <= sp.end_us)
                {
                    sp.halvings += 1;
                }
            }
            for sp in &spans {
                let d = sp.end_us.saturating_sub(sp.start_us);
                match sp.phase.as_str() {
                    "slow_start" => flow.slow_start_us += d,
                    "congestion_avoidance" => flow.congestion_avoidance_us += d,
                    _ => flow.stopped_us += d,
                }
            }
            flow.spans = spans;
        }

        // RTT convergence: earliest sample after which the smoothed
        // estimate never leaves ±10% of its final value.
        let mut rtt = RttReport {
            samples: rtt_samples.len() as u64,
            probe_samples,
            ..RttReport::default()
        };
        if let Some(&(_, first)) = rtt_samples.first() {
            let (_, fin) = *rtt_samples.last().expect("nonempty");
            rtt.first_srtt_us = first;
            rtt.final_srtt_us = fin;
            let tol = fin / 10;
            let mut idx = rtt_samples.len() - 1;
            while idx > 0 && rtt_samples[idx - 1].1.abs_diff(fin) <= tol {
                idx -= 1;
            }
            rtt.converged_at_us = Some(rtt_samples[idx].0);
            rtt.samples_to_converge = idx as u64 + 1;
        }

        // Member reports.
        for (at, peer) in &ejected_peers {
            for m in members.values_mut() {
                if source_is_peer(&m.source, *peer) {
                    m.ejected = true;
                    m.ejected_at.get_or_insert(*at);
                }
            }
        }
        let mut suppression = SuppressionReport::default();
        let mut member_reports = Vec::with_capacity(members.len());
        let mut false_ejections = 0u64;
        for m in members.values_mut() {
            m.credit_region(end_us);
            suppression.losses_observed += m.lost.len() as u64;
            suppression.naks_sent += m.naks_sent;
            suppression.nak_seqs += m.nak_seqs;
            suppression.suppression_events += m.suppression_events;
            suppression.naks_suppressed += m.naks_suppressed;
            // A member that kept emitting events after its ejection
            // timestamp was alive when the sender cut it loose — the
            // false ejection the jitter invariants guard against.
            let falsely_ejected = m.ejected_at.is_some_and(|at| m.last_activity > at);
            if falsely_ejected {
                false_ejections += 1;
            }
            member_reports.push(MemberReport {
                source: m.source.key(),
                member: m.source.member(),
                joined_at_us: m.joined_at,
                join_rtt_us: m.join_rtt,
                delivered_segments: m.delivered_segments,
                losses: m.lost.len() as u64,
                recovered_seqs: m.recovered.len() as u64,
                unrecovered: m.lost.difference(&m.recovered).count() as u64,
                naks_sent: m.naks_sent,
                nak_seqs: m.nak_seqs,
                suppression_events: m.suppression_events,
                naks_suppressed: m.naks_suppressed,
                updates_sent: m.updates_sent,
                recovery_latency: m.recovery.summary(),
                regions: m.occupancy.clone(),
                ejected: m.ejected,
                ejected_at_us: m.ejected_at,
                falsely_ejected,
                session_failed: m.session_failed,
            });
        }
        let requested = suppression.naks_suppressed + suppression.nak_seqs;
        if requested > 0 {
            suppression.suppression_ratio = suppression.naks_suppressed as f64 / requested as f64;
        }
        if suppression.losses_observed > 0 {
            suppression.naks_per_loss =
                suppression.naks_sent as f64 / suppression.losses_observed as f64;
        }

        // Lifecycle audit: every sent sequence must end released, or be
        // delivered by every live member — otherwise it is unaccounted.
        let live: Vec<&BTreeSet<u64>> = members
            .values()
            .filter(|m| !m.ejected && !m.session_failed)
            .map(|m| &m.delivered)
            .collect();
        let mut lifecycle = LifecycleReport {
            seqs_sent: transfer.unique_seqs,
            ..LifecycleReport::default()
        };
        for (&seq, st) in seqs.iter().filter(|(_, st)| st.sent) {
            if st.released {
                lifecycle.released += 1;
            }
            let everywhere = !live.is_empty() && live.iter().all(|d| d.contains(&seq));
            if everywhere {
                lifecycle.delivered_by_all_live += 1;
            }
            if !st.released && !everywhere {
                lifecycle.incomplete += 1;
                if lifecycle.incomplete_seqs.len() < 16 {
                    lifecycle.incomplete_seqs.push(seq);
                }
            }
        }
        lifecycle.complete = lifecycle.incomplete == 0;

        // Cross-check the online monitor against this audit. An alert
        // line proves the monitor was armed; only then is silence about
        // a real false ejection a miss.
        let monitor_armed = parse.alerts > 0;
        alerts.alert_miss =
            monitor_armed && false_ejections > 0 && alerts.false_ejection_alerts == 0;
        alerts.alert_spurious = alerts.false_ejection_alerts > 0 && false_ejections == 0;

        Analysis {
            parse,
            events: events.len() as u64,
            start_us,
            end_us,
            transfer,
            suppression,
            flow,
            release,
            rtt,
            members: member_reports,
            false_ejections,
            alerts,
            lifecycle,
        }
    }
}

/// Parse and analyze an in-memory JSONL trace.
pub fn analyze_str(input: &str) -> Result<Analysis, TraceError> {
    let (events, stats) = parse_str(input)?;
    Ok(Analysis::from_events(&events, stats))
}

/// Parse and analyze a JSONL trace file.
pub fn analyze_file(path: &std::path::Path) -> Result<Analysis, TraceError> {
    let (events, stats) = parse_file(path)?;
    Ok(Analysis::from_events(&events, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny hand-written trace: sender sends seq 0–2, member host:1
    /// loses seq 1, NAKs it, recovers, delivers all; member host:2
    /// suppresses and delivers all; both release.
    fn synthetic() -> &'static str {
        concat!(
            "{\"schema\":1,\"role\":\"sim\"}\n",
            "{\"t_us\":100,\"host\":0,\"event\":\"data_sent\",\"seq\":0,\"bytes\":1000,\"retransmission\":false}\n",
            "{\"t_us\":200,\"host\":0,\"event\":\"data_sent\",\"seq\":1,\"bytes\":1000,\"retransmission\":false}\n",
            "{\"t_us\":300,\"host\":0,\"event\":\"data_sent\",\"seq\":2,\"bytes\":1000,\"retransmission\":false}\n",
            "{\"t_us\":400,\"host\":1,\"event\":\"delivered\",\"first\":0,\"count\":1}\n",
            "{\"t_us\":450,\"host\":2,\"event\":\"delivered\",\"first\":0,\"count\":3}\n",
            "{\"t_us\":500,\"host\":1,\"event\":\"nak_sent\",\"first\":1,\"count\":1,\"trigger\":\"gap\"}\n",
            "{\"t_us\":520,\"host\":2,\"event\":\"nak_suppressed\",\"pending\":1}\n",
            "{\"t_us\":600,\"host\":0,\"event\":\"data_sent\",\"seq\":1,\"bytes\":1000,\"retransmission\":true}\n",
            "{\"t_us\":700,\"host\":1,\"event\":\"recovered\",\"first\":1,\"count\":1,\"elapsed_us\":200}\n",
            "{\"t_us\":710,\"host\":1,\"event\":\"delivered\",\"first\":1,\"count\":2}\n",
            "{\"t_us\":800,\"host\":0,\"event\":\"release_attempt\",\"seq\":0,\"complete\":false,\"released\":false}\n",
            "{\"t_us\":810,\"host\":0,\"event\":\"probe_sent\",\"seq\":0,\"multicast\":true}\n",
            "{\"t_us\":900,\"host\":0,\"event\":\"release_attempt\",\"seq\":0,\"complete\":true,\"released\":true}\n",
            "{\"t_us\":910,\"host\":0,\"event\":\"release_attempt\",\"seq\":1,\"complete\":true,\"released\":true}\n",
            "{\"t_us\":920,\"host\":0,\"event\":\"release_attempt\",\"seq\":2,\"complete\":true,\"released\":true}\n",
        )
    }

    #[test]
    fn synthetic_trace_full_diagnosis() {
        let a = analyze_str(synthetic()).unwrap();
        assert_eq!(a.events, 15);
        assert_eq!(a.transfer.data_packets, 3);
        assert_eq!(a.transfer.retransmissions, 1);
        assert_eq!(a.transfer.unique_seqs, 3);
        assert_eq!(a.transfer.data_bytes, 3000);

        assert_eq!(a.suppression.losses_observed, 1);
        assert_eq!(a.suppression.naks_sent, 1);
        assert_eq!(a.suppression.naks_suppressed, 1);
        assert!((a.suppression.suppression_ratio - 0.5).abs() < 1e-9);

        assert_eq!(a.release.attempts, 4);
        assert_eq!(a.release.released, 3);
        assert_eq!(a.release.stalled_attempts, 1);
        assert_eq!(a.release.stalled_seqs, 1);
        assert_eq!(a.release.probe_attributed_seqs, 1);
        assert_eq!(a.release.stall_latency.count, 1);

        assert_eq!(a.members.len(), 2);
        let m1 = &a.members[0];
        assert_eq!(m1.source, "host:1");
        assert_eq!(m1.member, Some(0));
        assert_eq!(m1.losses, 1);
        assert_eq!(m1.recovered_seqs, 1);
        assert_eq!(m1.unrecovered, 0);
        assert_eq!(m1.delivered_segments, 3);
        assert_eq!(m1.recovery_latency.count, 1);
        let m2 = &a.members[1];
        assert_eq!(m2.source, "host:2");
        assert_eq!(m2.naks_suppressed, 1);

        assert_eq!(a.lifecycle.seqs_sent, 3);
        assert_eq!(a.lifecycle.released, 3);
        assert_eq!(a.lifecycle.delivered_by_all_live, 3);
        assert!(a.lifecycle.complete);
    }

    #[test]
    fn unaccounted_sequence_flags_incomplete() {
        // seq 0 sent, never released, never delivered anywhere.
        let trace = "{\"t_us\":1,\"host\":0,\"event\":\"data_sent\",\"seq\":0,\"bytes\":10,\"retransmission\":false}\n";
        let a = analyze_str(trace).unwrap();
        assert!(!a.lifecycle.complete);
        assert_eq!(a.lifecycle.incomplete, 1);
        assert_eq!(a.lifecycle.incomplete_seqs, vec![0]);
    }

    #[test]
    fn ejected_member_does_not_gate_lifecycle() {
        let trace = concat!(
            "{\"t_us\":1,\"host\":0,\"event\":\"data_sent\",\"seq\":0,\"bytes\":10,\"retransmission\":false}\n",
            "{\"t_us\":2,\"host\":1,\"event\":\"delivered\",\"first\":0,\"count\":1}\n",
            "{\"t_us\":3,\"host\":2,\"event\":\"nak_sent\",\"first\":0,\"count\":1,\"trigger\":\"timer\"}\n",
            "{\"t_us\":4,\"host\":0,\"event\":\"member_ejected\",\"member\":1}\n",
        );
        let a = analyze_str(trace).unwrap();
        // host:2 (member 1) is ejected: its undelivered seq 0 does not
        // count against completeness; host:1 delivered it.
        assert!(a.members.iter().any(|m| m.source == "host:2" && m.ejected));
        assert_eq!(a.lifecycle.delivered_by_all_live, 1);
        assert!(a.lifecycle.complete);
        // The corpse stayed silent after its ejection: not a false one.
        assert_eq!(a.false_ejections, 0);
        assert!(a.members.iter().all(|m| !m.falsely_ejected));
    }

    #[test]
    fn post_ejection_activity_is_a_false_ejection() {
        let trace = concat!(
            "{\"t_us\":1,\"host\":0,\"event\":\"data_sent\",\"seq\":0,\"bytes\":10,\"retransmission\":false}\n",
            "{\"t_us\":2,\"host\":1,\"event\":\"delivered\",\"first\":0,\"count\":1}\n",
            "{\"t_us\":3,\"host\":0,\"event\":\"member_ejected\",\"member\":0}\n",
            // Member 0 (host:1) keeps delivering after its ejection —
            // it was alive all along, merely slow.
            "{\"t_us\":9,\"host\":1,\"event\":\"delivered\",\"first\":1,\"count\":1}\n",
        );
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.false_ejections, 1);
        let m = a.members.iter().find(|m| m.source == "host:1").unwrap();
        assert!(m.ejected && m.falsely_ejected);
        assert_eq!(m.ejected_at_us, Some(3));
        // The rendered report calls it out.
        let text = a.render_table();
        assert!(
            text.contains("FALSE-EJ"),
            "report must flag false ejections"
        );
        assert!(text.contains("ejected while demonstrably alive"));
    }

    #[test]
    fn online_false_ejection_alert_agreeing_with_audit_is_clean() {
        let trace = concat!(
            "{\"schema\":2,\"role\":\"sim\"}\n",
            "{\"t_us\":1,\"host\":0,\"event\":\"data_sent\",\"seq\":0,\"bytes\":10,\"retransmission\":false}\n",
            "{\"t_us\":3,\"host\":0,\"event\":\"member_ejected\",\"member\":0}\n",
            "{\"t_us\":9,\"host\":1,\"event\":\"delivered\",\"first\":0,\"count\":1}\n",
            "{\"t_us\":10,\"event\":\"health_alert\",\"rule\":\"false_ejection\",\"severity\":\"critical\",\"raised\":true,\"value_m\":0,\"limit_m\":0}\n",
        );
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.false_ejections, 1);
        assert_eq!(a.alerts.raised, 1);
        assert_eq!(a.alerts.false_ejection_alerts, 1);
        assert!(!a.alerts.alert_miss);
        assert!(!a.alerts.alert_spurious);
        let text = a.render_table();
        assert!(text.contains("online alerts agree"));
    }

    #[test]
    fn armed_monitor_missing_a_false_ejection_is_alert_miss() {
        // The monitor was demonstrably armed (a nak_storm alert fired)
        // yet never flagged the false ejection the audit reconstructs.
        let trace = concat!(
            "{\"schema\":2,\"role\":\"sim\"}\n",
            "{\"t_us\":1,\"host\":0,\"event\":\"data_sent\",\"seq\":0,\"bytes\":10,\"retransmission\":false}\n",
            "{\"t_us\":2,\"event\":\"health_alert\",\"rule\":\"nak_storm\",\"severity\":\"warning\",\"raised\":true,\"value_m\":2000,\"limit_m\":1000}\n",
            "{\"t_us\":3,\"host\":0,\"event\":\"member_ejected\",\"member\":0}\n",
            "{\"t_us\":9,\"host\":1,\"event\":\"delivered\",\"first\":0,\"count\":1}\n",
        );
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.false_ejections, 1);
        assert!(a.alerts.alert_miss);
        assert!(!a.alerts.alert_spurious);
        assert!(a.render_table().contains("ALERT-MISS"));
    }

    #[test]
    fn uncorroborated_false_ejection_alert_is_alert_spurious() {
        // Member 0 went silent after its ejection — the audit sees a
        // clean ejection, so the online false-ejection alert is noise.
        let trace = concat!(
            "{\"schema\":2,\"role\":\"sim\"}\n",
            "{\"t_us\":1,\"host\":0,\"event\":\"data_sent\",\"seq\":0,\"bytes\":10,\"retransmission\":false}\n",
            "{\"t_us\":2,\"host\":1,\"event\":\"delivered\",\"first\":0,\"count\":1}\n",
            "{\"t_us\":3,\"host\":0,\"event\":\"member_ejected\",\"member\":0}\n",
            "{\"t_us\":4,\"event\":\"health_alert\",\"rule\":\"false_ejection\",\"severity\":\"critical\",\"raised\":true,\"value_m\":0,\"limit_m\":0}\n",
        );
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.false_ejections, 0);
        assert!(!a.alerts.alert_miss);
        assert!(a.alerts.alert_spurious);
        assert!(a.render_table().contains("ALERT-SPURIOUS"));
    }

    #[test]
    fn alert_free_trace_reports_no_monitor_verdict() {
        let a = analyze_str(synthetic()).unwrap();
        assert_eq!(a.alerts, Default::default());
        assert!(!a.render_table().contains("health alerts"));
    }

    #[test]
    fn flow_spans_and_rtt_convergence() {
        let trace = concat!(
            "{\"t_us\":0,\"host\":0,\"event\":\"rtt_sample\",\"sample_us\":1000,\"srtt_us\":1000,\"probe\":false}\n",
            "{\"t_us\":10,\"host\":0,\"event\":\"rate_halved\",\"rate_bps\":500}\n",
            "{\"t_us\":20,\"host\":0,\"event\":\"rate_phase_changed\",\"from\":\"slow_start\",\"to\":\"congestion_avoidance\",\"rate_bps\":500}\n",
            "{\"t_us\":30,\"host\":0,\"event\":\"rtt_sample\",\"sample_us\":5000,\"srtt_us\":4000,\"probe\":true}\n",
            "{\"t_us\":40,\"host\":0,\"event\":\"rtt_sample\",\"sample_us\":4000,\"srtt_us\":4100,\"probe\":false}\n",
            "{\"t_us\":50,\"host\":0,\"event\":\"rate_halved\",\"rate_bps\":250}\n",
        );
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.flow.spans.len(), 2);
        assert_eq!(a.flow.spans[0].phase, "slow_start");
        assert_eq!(a.flow.spans[0].halvings, 1);
        assert_eq!(a.flow.spans[1].phase, "congestion_avoidance");
        assert_eq!(a.flow.spans[1].halvings, 1);
        assert_eq!(a.flow.slow_start_us, 20);
        assert_eq!(a.flow.congestion_avoidance_us, 30);
        assert_eq!(a.flow.final_rate_bps, 250);

        assert_eq!(a.rtt.samples, 3);
        assert_eq!(a.rtt.probe_samples, 1);
        assert_eq!(a.rtt.first_srtt_us, 1000);
        assert_eq!(a.rtt.final_srtt_us, 4100);
        // srtt 4000 is within 10% of 4100, srtt 1000 is not.
        assert_eq!(a.rtt.converged_at_us, Some(30));
        assert_eq!(a.rtt.samples_to_converge, 2);
    }

    #[test]
    fn region_occupancy_accumulates() {
        let trace = concat!(
            "{\"t_us\":0,\"host\":1,\"event\":\"delivered\",\"first\":0,\"count\":1}\n",
            "{\"t_us\":100,\"host\":1,\"event\":\"region_changed\",\"from\":\"safe\",\"to\":\"warning\"}\n",
            "{\"t_us\":150,\"host\":1,\"event\":\"region_changed\",\"from\":\"warning\",\"to\":\"critical\"}\n",
            "{\"t_us\":160,\"host\":1,\"event\":\"region_changed\",\"from\":\"critical\",\"to\":\"safe\"}\n",
            "{\"t_us\":200,\"host\":1,\"event\":\"delivered\",\"first\":1,\"count\":1}\n",
        );
        let a = analyze_str(trace).unwrap();
        let m = &a.members[0];
        assert_eq!(m.regions.safe_us, 100 + 40);
        assert_eq!(m.regions.warning_us, 50);
        assert_eq!(m.regions.critical_us, 10);
        assert_eq!(m.regions.warning_entries, 1);
        assert_eq!(m.regions.critical_entries, 1);
    }

    #[test]
    fn renderings_do_not_panic_and_json_is_valid() {
        let a = analyze_str(synthetic()).unwrap();
        let table = a.render_table();
        assert!(table.contains("nak suppression"));
        assert!(table.contains("lifecycle"));
        let json = a.to_json();
        let v = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("events").and_then(|e| e.as_u64()), Some(15));
    }
}
