//! Analyzer regression net over the workspace's two pinned deterministic
//! fixtures. The JSONL logs of these runs are FNV-pinned elsewhere
//! (`hrmc-sim/tests/determinism.rs`, `hrmc-experiments/tests/fault_replay.rs`),
//! so the analyzer's reading of them must be exact and eternal: any
//! drift below is an analyzer bug, not run-to-run noise. A third test
//! pins the tentpole invariant that a full-capacity flight-recorder dump
//! analyzes identically to the streaming JSONL path.

use std::sync::{Arc, Mutex};

use hrmc_core::ProtocolConfig;
use hrmc_sim::{SimParams, Simulation, TopologyBuilder};
use hrmc_trace::analyze_str;

struct Tee(Arc<Mutex<Vec<u8>>>);
impl std::io::Write for Tee {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(b);
        Ok(b.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The determinism fixture's scenario (see
/// `hrmc-sim/tests/determinism.rs`): 3 receivers, 10 Mbps LAN, 1% loss,
/// 500 KB, seed 1.
fn representative_params() -> SimParams {
    let mut protocol = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    protocol.max_rate = 2 * 10_000_000 / 8;
    let topology = TopologyBuilder::new().lan(3, 10_000_000, 0.01);
    let mut p = SimParams::new(protocol, topology, 500_000);
    p.horizon_us = 600 * 1_000_000;
    p
}

/// The fault fixture's scenario (see
/// `hrmc-experiments/tests/fault_replay.rs`): receiver 2 crashes at
/// 250 ms, receiver 0 partitioned for [150 ms, 900 ms), silence-based
/// ejection, seed 2.
fn faulted_scenario() -> hrmc_app::Scenario {
    hrmc_app::Scenario::lan(3, 10_000_000, 256 * 1024, 400_000)
        .with_loss(0.01)
        .with_receiver_crash(2, 250_000)
        .with_partition(vec![0], 150_000, 900_000)
        .with_failure_domains(0, 3_000_000, 0)
        .with_seed(2)
}

fn run_log(params: SimParams) -> String {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new(params);
    sim.set_event_log(Box::new(Tee(log.clone())));
    let report = sim.run();
    assert!(report.completed);
    let bytes = log.lock().unwrap().clone();
    String::from_utf8(bytes).expect("JSONL is UTF-8")
}

#[test]
fn determinism_fixture_analysis_is_exact() {
    let a = analyze_str(&run_log(representative_params())).unwrap();

    assert_eq!(a.parse.schema, Some(2));
    assert_eq!(a.parse.headers, 1);
    assert_eq!(a.parse.skipped, 0);
    assert_eq!(a.events, 1_941);
    assert_eq!((a.start_us, a.end_us), (10_000, 4_180_000));

    // Transfer: 500 KB in 359 first transmissions, 15 retransmits.
    assert_eq!(a.transfer.data_packets, 359);
    assert_eq!(a.transfer.unique_seqs, 359);
    assert_eq!(a.transfer.data_bytes, 500_000);
    assert_eq!(a.transfer.retransmissions, 15);
    assert_eq!(a.transfer.keepalives_sent, 7);
    assert_eq!(a.transfer.joins_completed, 3);

    // Suppression: 21 distinct member×seq losses drew 33 NAK packets
    // (45 seqs requested) while suppression withheld 78 — ratio 78/123.
    assert_eq!(a.suppression.losses_observed, 21);
    assert_eq!(a.suppression.naks_sent, 33);
    assert_eq!(a.suppression.nak_seqs, 45);
    assert_eq!(a.suppression.suppression_events, 72);
    assert_eq!(a.suppression.naks_suppressed, 78);
    assert!((a.suppression.suppression_ratio - 78.0 / 123.0).abs() < 1e-9);

    // Flow control: one slow-start → congestion-avoidance transition,
    // 3 halvings, all inside the CA span.
    assert_eq!(a.flow.transitions, 1);
    assert_eq!(a.flow.rate_halvings, 3);
    assert_eq!(a.flow.urgent_stops, 0);
    assert_eq!(a.flow.spans.len(), 2);
    assert_eq!(a.flow.spans[0].phase, "slow_start");
    assert_eq!(a.flow.spans[1].phase, "congestion_avoidance");
    assert_eq!(a.flow.spans[1].halvings, 3);
    assert_eq!(a.flow.slow_start_us, 20_000);
    assert_eq!(a.flow.congestion_avoidance_us, 4_150_000);
    assert_eq!(a.flow.final_rate_bps, 607_412);

    // Release: one PROBE-stalled sequence, resolved after 2.04 s.
    assert_eq!(a.release.attempts, 363);
    assert_eq!(a.release.complete_info, 359);
    assert_eq!(a.release.released, 359);
    assert_eq!(a.release.stalled_attempts, 4);
    assert_eq!(a.release.stalled_seqs, 1);
    assert_eq!(a.release.probe_attributed_seqs, 1);
    assert_eq!(a.release.probes_sent, 12);
    assert_eq!(a.release.stall_latency.count, 1);
    assert_eq!(a.release.stall_latency.max, 2_040_000);

    // RTT: converges to the fixture's pinned final_rtt_us = 172_300.
    assert_eq!(a.rtt.samples, 20);
    assert_eq!(a.rtt.probe_samples, 12);
    assert_eq!(a.rtt.final_srtt_us, 172_300);
    assert_eq!(a.rtt.converged_at_us, Some(2_153_188));

    // Per-member: each of the 3 receivers lost and recovered exactly 7
    // sequences; none unrecovered; nobody ejected.
    assert_eq!(a.members.len(), 3);
    for (i, m) in a.members.iter().enumerate() {
        assert_eq!(m.source, format!("host:{}", i + 1));
        assert_eq!(m.member, Some(i as u32));
        assert_eq!(m.delivered_segments, 359);
        assert_eq!(m.losses, 7);
        assert_eq!(m.recovered_seqs, 7);
        assert_eq!(m.unrecovered, 0);
        assert_eq!(m.recovery_latency.count, 7);
        assert_eq!(m.recovery_latency.p50, 15_158);
        assert!(!m.ejected && !m.session_failed);
    }
    let naks: Vec<u64> = a.members.iter().map(|m| m.naks_sent).collect();
    assert_eq!(naks, vec![11, 11, 11]);
    let supp: Vec<u64> = a.members.iter().map(|m| m.naks_suppressed).collect();
    assert_eq!(supp, vec![26, 26, 26]);

    // Lifecycle: every sequence released AND delivered everywhere.
    assert_eq!(a.lifecycle.seqs_sent, 359);
    assert_eq!(a.lifecycle.released, 359);
    assert_eq!(a.lifecycle.delivered_by_all_live, 359);
    assert_eq!(a.lifecycle.incomplete, 0);
    assert!(a.lifecycle.complete);
}

#[test]
fn fault_fixture_analysis_is_exact() {
    let a = analyze_str(&run_log(faulted_scenario().params())).unwrap();

    assert_eq!(a.events, 2_136);
    assert_eq!((a.start_us, a.end_us), (10_000, 12_070_000));
    assert_eq!(a.transfer.data_packets, 288);
    assert_eq!(a.transfer.retransmissions, 330);
    assert_eq!(a.transfer.data_bytes, 400_000);

    // The partition makes feedback bursty: suppression absorbs only 27%
    // of would-be requests, but NAK packets still stay below one per
    // observed loss (145 / 168).
    assert_eq!(a.suppression.losses_observed, 168);
    assert_eq!(a.suppression.naks_sent, 145);
    assert_eq!(a.suppression.nak_seqs, 3_364);
    assert_eq!(a.suppression.naks_suppressed, 1_239);

    // PROBE stalls: 3 sequences, the worst held 5.53 s (the partition).
    assert_eq!(a.release.stalled_seqs, 3);
    assert_eq!(a.release.probe_attributed_seqs, 3);
    assert_eq!(a.release.probes_sent, 30);
    assert_eq!(a.release.stall_latency.max, 5_530_000);

    // Member attribution: host:1 (member 0) rode out the partition and
    // recovered all 163 losses; host:3 (member 2) crashed at 250 ms and
    // was ejected after delivering only 158 segments.
    assert_eq!(a.members.len(), 3);
    let m0 = &a.members[0];
    assert_eq!((m0.source.as_str(), m0.member), ("host:1", Some(0)));
    assert_eq!(m0.losses, 163);
    assert_eq!(m0.recovered_seqs, 163);
    assert_eq!(m0.unrecovered, 0);
    assert!(!m0.ejected);
    let m1 = &a.members[1];
    assert_eq!(m1.losses, 4);
    assert!(!m1.ejected);
    let m2 = &a.members[2];
    assert_eq!((m2.source.as_str(), m2.member), ("host:3", Some(2)));
    assert_eq!(m2.delivered_segments, 158);
    assert!(m2.ejected, "the crashed receiver must be marked ejected");

    // Lifecycle completeness: every sequence still accounted for — the
    // corpse's missing deliveries are attributed to its ejection, not
    // counted as protocol loss.
    assert_eq!(a.lifecycle.seqs_sent, 288);
    assert_eq!(a.lifecycle.released, 288);
    assert_eq!(a.lifecycle.delivered_by_all_live, 288);
    assert!(a.lifecycle.complete);
}

/// Tentpole invariant: a flight recorder with enough capacity to hold
/// the whole run must dump a window whose analysis is identical to the
/// streaming JSONL path — same events, same diagnosis, byte-for-byte
/// compatible lines.
#[test]
fn flight_recorder_dump_analyzes_identically_to_streaming_log() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new(representative_params());
    sim.set_event_log(Box::new(Tee(log.clone())));
    let rec = sim.set_flight_recorder(4096);
    let report = sim.run();
    assert!(report.completed);

    let streamed = String::from_utf8(log.lock().unwrap().clone()).unwrap();
    let dumped = rec.dump();
    assert_eq!(rec.with_recorder(|r| r.dropped_events()), 0);

    let a = analyze_str(&streamed).unwrap();
    let mut b = analyze_str(&dumped).unwrap();
    assert_eq!(a.events, b.events, "recorder missed events");
    // The two ingestion paths differ only in header shape; the whole
    // diagnosis must match field for field.
    b.parse = a.parse.clone();
    assert_eq!(a, b, "flight-recorder dump diverged from streaming log");
}
