//! End-to-end H-RMC transfers over real UDP multicast on the loopback
//! interface — the closest this reproduction gets to the paper's live
//! Ethernet testbed. Skipped gracefully if the environment forbids
//! multicast (some CI sandboxes do).

use std::net::{Ipv4Addr, SocketAddrV4};
use std::time::Duration;

use hrmc_core::ProtocolConfig;
use hrmc_net::{McastSocket, Session};

/// A receiver session for `group` with the loopback test config.
fn receiver(group: SocketAddrV4) -> hrmc_net::ReceiverHandle {
    Session::receiver(group)
        .interface(LO)
        .config(config())
        .bind()
        .expect("join receiver")
}

/// A sender session for `group` with the loopback test config.
fn sender(group: SocketAddrV4) -> hrmc_net::SenderHandle {
    Session::sender(group)
        .interface(LO)
        .config(config())
        .bind()
        .expect("bind sender")
}

const LO: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);

fn multicast_available(port: u16) -> bool {
    let g = SocketAddrV4::new(Ipv4Addr::new(239, 255, 88, 11), port);
    let Ok(rx) = McastSocket::receiver(g, LO) else {
        return false;
    };
    let Ok(tx) = McastSocket::sender(g, LO) else {
        return false;
    };
    let _ = rx.set_read_timeout(Duration::from_millis(500));
    if tx.send_multicast(b"probe").is_err() {
        return false;
    }
    let mut buf = [0u8; 16];
    rx.recv_from(&mut buf).is_ok()
}

fn config() -> ProtocolConfig {
    let mut c = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    // Cap the rate well below what loopback can do so the kernel's UDP
    // receive buffers are not the bottleneck under test.
    c.max_rate = 20 * 1024 * 1024;
    // Loopback RTTs are tens of microseconds; seed accordingly so MINBUF
    // residency does not slow the test pointlessly.
    c.initial_rtt = 2_000;
    c.anonymous_release_hold = 500_000;
    c
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

#[test]
fn transfer_to_two_receivers_over_loopback() {
    if !multicast_available(46100) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 88, 12), 46101);
    let r1 = receiver(group);
    let r2 = receiver(group);
    let sender = sender(group);

    let data = pattern(300_000);
    sender.send(&data).expect("send");

    let readers: Vec<_> = [r1, r2]
        .into_iter()
        .map(|r| {
            let expect = data.clone();
            std::thread::spawn(move || {
                let mut got = Vec::with_capacity(expect.len());
                let mut buf = [0u8; 16 * 1024];
                loop {
                    match r.recv(&mut buf, Duration::from_secs(30)) {
                        Ok(0) => break,
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) => panic!("recv failed: {e}"),
                    }
                }
                assert_eq!(got.len(), expect.len(), "byte count");
                assert_eq!(got, expect, "stream corrupted");
                r.stats()
            })
        })
        .collect();

    let stats = sender
        .close_and_wait(Duration::from_secs(60))
        .expect("transfer must complete reliably");
    assert_eq!(stats.nak_errs_sent, 0);
    assert_eq!(stats.unsafe_releases, 0);
    assert!(stats.joins >= 2, "both receivers must have joined");
    for t in readers {
        let rstats = t.join().expect("reader panicked");
        assert!(rstats.bytes_delivered >= 300_000);
    }
}

#[test]
fn single_receiver_small_message() {
    if !multicast_available(46110) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 88, 13), 46111);
    let r = receiver(group);
    let sender = sender(group);
    sender.send(b"hello, reliable multicast").expect("send");
    let mut buf = [0u8; 128];
    let n = r.recv(&mut buf, Duration::from_secs(10)).expect("recv");
    assert_eq!(&buf[..n], b"hello, reliable multicast");
    sender
        .close_and_wait(Duration::from_secs(30))
        .expect("close");
    // After FIN, recv drains to 0.
    let n = r.recv(&mut buf, Duration::from_secs(10)).expect("recv end");
    assert_eq!(n, 0);
    assert!(r.is_complete());
}

#[test]
fn garbage_datagrams_are_ignored() {
    if !multicast_available(46130) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 88, 15), 46131);
    let r = receiver(group);
    let sender = sender(group);
    // An attacker (or a confused app) sprays junk at the group: short
    // frames, corrupted packets, random bytes.
    let noise = McastSocket::sender(group, LO).expect("noise socket");
    for i in 0..50u8 {
        let junk: Vec<u8> = (0..(i as usize * 7 % 100)).map(|b| b as u8 ^ i).collect();
        let _ = noise.send_multicast(&junk);
    }
    // The real transfer still works, byte-for-byte.
    let data = pattern(50_000);
    sender.send(&data).expect("send");
    sender.close();
    let mut got = Vec::new();
    let mut buf = [0u8; 8192];
    loop {
        match r.recv(&mut buf, Duration::from_secs(20)) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(e) => panic!("recv under noise failed: {e}"),
        }
    }
    assert_eq!(got, data, "noise corrupted the stream");
    sender
        .close_and_wait(Duration::from_secs(30))
        .expect("close");
}

#[test]
fn flipped_bit_is_caught_and_audited() {
    if !multicast_available(46140) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 88, 16), 46141);
    let r = receiver(group);
    let sender = sender(group);
    // A well-formed DATA packet with exactly one bit flipped in transit:
    // the checksum must catch it, and the receiver must audit it.
    let pkt = hrmc_wire::Packet::data(7000, group.port(), 0, bytes::Bytes::from(pattern(1_000)));
    let mut wire = pkt.encode();
    wire[100] ^= 0x08;
    let noise = McastSocket::sender(group, LO).expect("noise socket");
    noise.send_multicast(&wire).expect("send corrupted");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while r.stats().checksum_failures == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        r.stats().checksum_failures,
        1,
        "corrupted datagram was not audited"
    );
    // The corruption did not poison anything: a clean transfer still
    // runs byte-for-byte on the same group.
    let data = pattern(20_000);
    sender.send(&data).expect("send");
    sender.close();
    let mut got = Vec::new();
    let mut buf = [0u8; 8192];
    loop {
        match r.recv(&mut buf, Duration::from_secs(20)) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(e) => panic!("recv after corruption failed: {e}"),
        }
    }
    assert_eq!(got, data);
    sender
        .close_and_wait(Duration::from_secs(30))
        .expect("close");
}

#[test]
fn sender_observes_membership() {
    if !multicast_available(46120) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 88, 14), 46121);
    let r = receiver(group);
    let sender = sender(group);
    assert_eq!(sender.member_count(), 0);
    // Membership is data-triggered: the JOIN answers the first packet.
    sender.send(&pattern(5_000)).expect("send");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while sender.member_count() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(sender.member_count(), 1, "JOIN never arrived");
    let mut buf = [0u8; 8192];
    let mut total = 0;
    while total < 5_000 {
        total += r.recv(&mut buf, Duration::from_secs(10)).expect("recv");
    }
    sender
        .close_and_wait(Duration::from_secs(30))
        .expect("close");
}

#[test]
fn flight_recorder_captures_a_live_transfer() {
    if !multicast_available(46150) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 88, 17), 46151);
    // Bounded recorders on both live endpoints, attached at build time
    // so not even the first JOIN escapes the window: production-cheap,
    // no unbounded trace file, window dumped after the fact.
    let r = Session::receiver(group)
        .interface(LO)
        .config(config())
        .flight_recorder(512)
        .bind()
        .expect("join receiver");
    let sender = Session::sender(group)
        .interface(LO)
        .config(config())
        .flight_recorder(512)
        .bind()
        .expect("bind sender");
    let tx_rec = sender.flight_recorder().expect("tx recorder").clone();
    let rx_rec = r.flight_recorder().expect("rx recorder").clone();

    let data = pattern(100_000);
    sender.send(&data).expect("send");
    sender.close();
    let mut got = Vec::new();
    let mut buf = [0u8; 8192];
    loop {
        match r.recv(&mut buf, Duration::from_secs(20)) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(e) => panic!("recv failed: {e}"),
        }
    }
    assert_eq!(got, data, "stream corrupted");
    sender
        .close_and_wait(Duration::from_secs(30))
        .expect("close");

    // Both windows concatenate into one analyzable trace: the analyzer
    // must see the sender's sends and the receiver's deliveries.
    let trace = format!("{}{}", tx_rec.dump(), rx_rec.dump());
    let analysis = hrmc_trace::analyze_str(&trace).expect("analyze flight dump");
    assert_eq!(analysis.parse.skipped, 0, "recorder emitted unknown lines");
    assert!(
        analysis.transfer.data_packets > 0,
        "sender window lost all data_sent events"
    );
    let member = analysis
        .members
        .iter()
        .find(|m| m.source == "recv")
        .expect("receiver member report");
    assert!(
        member.delivered_segments > 0,
        "receiver window lost all delivered events"
    );
    assert!(
        analysis.release.released > 0,
        "no release decisions captured"
    );
    tx_rec.with_recorder(|rec| {
        assert!(rec.len() <= 512, "ring exceeded its capacity");
        let mut reg = hrmc_core::MetricsRegistry::new();
        rec.publish_metrics(&mut reg);
        assert_eq!(reg.gauge("flight_recorder_capacity"), Some(512));
    });
}

/// The pre-builder entry points must keep working for one deprecation
/// cycle: same endpoints, same wire behavior, driven by the same global
/// reactor.
#[test]
#[allow(deprecated)]
fn deprecated_bind_and_join_still_transfer() {
    if !multicast_available(46160) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 88, 18), 46161);
    let r = hrmc_net::HrmcReceiver::join(group, LO, config()).expect("join");
    let tx = hrmc_net::HrmcSender::bind(group, LO, config()).expect("bind");
    tx.send(b"compat shim").expect("send");
    let mut buf = [0u8; 64];
    let n = r.recv(&mut buf, Duration::from_secs(10)).expect("recv");
    assert_eq!(&buf[..n], b"compat shim");
    tx.close_and_wait(Duration::from_secs(30)).expect("close");
}

/// The sender session's membership-pressure gauges must surface through
/// the reactor's metrics fan-in (the path the telemetry sampler, the
/// `/metrics` exposition, and `hrmc top` all read).
#[test]
fn membership_gauges_flow_through_reactor_metrics() {
    if !multicast_available(46170) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 88, 19), 46171);
    // A private reactor so the gauge assertions see only this session.
    let reactor = hrmc_net::Reactor::new().expect("reactor");
    let rx = Session::receiver(group)
        .interface(LO)
        .config(config())
        .reactor(reactor.clone())
        .bind()
        .expect("join receiver");
    let tx = Session::sender(group)
        .interface(LO)
        .config(config())
        .reactor(reactor.clone())
        .bind()
        .expect("bind sender");
    let payload = pattern(40_000);
    let reader = std::thread::spawn(move || {
        let mut got = 0usize;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match rx.recv(&mut buf, Duration::from_secs(30)) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) => panic!("recv failed: {e}"),
            }
        }
        got
    });
    tx.send(&payload).expect("send");
    // Gather while the session is still live. The JOIN handshake races
    // this thread, so poll until the member appears (bounded).
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let reg = loop {
        let mut reg = hrmc_core::MetricsRegistry::new();
        reactor.publish_metrics(&mut reg);
        if reg.gauge("membership_size") == Some(1)
            && reg.gauge("membership_gate_checks").is_some_and(|c| c > 0)
        {
            break reg;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "receiver never appeared in the membership gauges: {:?}",
            reg.gauge("membership_size")
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        reg.gauge("membership_shards").is_some_and(|s| s >= 1),
        "at least one live shard"
    );
    assert!(reg.gauge("probes_last_tick").is_some());
    tx.close_and_wait(Duration::from_secs(30)).expect("close");
    assert_eq!(reader.join().expect("reader"), payload.len());
}
