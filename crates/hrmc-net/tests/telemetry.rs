//! Acceptance test for the continuous-telemetry pipeline: a loopback
//! transfer instrumented with [`hrmc_net::Telemetry`] must serve a
//! Prometheus text exposition that includes the reactor's loop-latency
//! and timer-slippage metrics, plus a `/json` dump carrying the latest
//! sample and per-session health. Skipped gracefully if the
//! environment forbids multicast (some CI sandboxes do).

use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::time::Duration;

use hrmc_core::ProtocolConfig;
use hrmc_net::telemetry::scrape;
use hrmc_net::{McastSocket, Reactor, Session, Telemetry};

const LO: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);

fn multicast_available(port: u16) -> bool {
    let g = SocketAddrV4::new(Ipv4Addr::new(239, 255, 90, 11), port);
    let Ok(rx) = McastSocket::receiver(g, LO) else {
        return false;
    };
    let Ok(tx) = McastSocket::sender(g, LO) else {
        return false;
    };
    let _ = rx.set_read_timeout(Duration::from_millis(500));
    if tx.send_multicast(b"probe").is_err() {
        return false;
    }
    let mut buf = [0u8; 16];
    rx.recv_from(&mut buf).is_ok()
}

fn config() -> ProtocolConfig {
    let mut c = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    c.max_rate = 20 * 1024 * 1024;
    c.initial_rtt = 2_000;
    c.anonymous_release_hold = 500_000;
    c
}

#[test]
fn loopback_transfer_serves_prometheus_and_json() {
    if !multicast_available(46400) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 90, 12), 46401);
    // Private reactor: this test's gauges must not race other tests
    // sharing the global reactor.
    let reactor = Reactor::new().expect("reactor");
    let telemetry = Telemetry::builder()
        .listen(SocketAddr::V4(SocketAddrV4::new(LO, 0)))
        .sample_interval(Duration::from_millis(50))
        .reactor(reactor.clone())
        .start()
        .expect("telemetry");
    let endpoint = telemetry.local_addr().expect("listener bound");

    let rx = Session::receiver(group)
        .interface(LO)
        .config(config())
        .reactor(reactor.clone())
        .telemetry(&telemetry)
        .bind()
        .expect("join receiver");
    let tx = Session::sender(group)
        .interface(LO)
        .config(config())
        .reactor(reactor.clone())
        .telemetry(&telemetry)
        .bind()
        .expect("bind sender");

    let data: Vec<u8> = (0..200_000).map(|i| (i * 31 % 251) as u8).collect();
    tx.send(&data).expect("send");
    let mut got = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    while got.len() < data.len() {
        let n = rx.recv(&mut buf, Duration::from_secs(20)).expect("recv");
        if n == 0 {
            break;
        }
        got.extend_from_slice(&buf[..n]);
    }
    assert_eq!(got, data, "transfer intact");
    tx.close_and_wait(Duration::from_secs(20)).expect("close");
    telemetry.sample_now();

    // The acceptance criterion: the exposition includes reactor
    // loop-latency and timer-slippage metrics (with real samples — the
    // reactor ran a transfer) alongside protocol counters.
    let metrics = scrape(endpoint, "/metrics", Duration::from_secs(5)).expect("scrape /metrics");
    assert!(!metrics.is_empty(), "non-empty exposition");
    assert!(
        metrics.contains("# TYPE hrmc_reactor_loop_us summary"),
        "loop-latency metric missing:\n{metrics}"
    );
    assert!(
        metrics.contains("# TYPE hrmc_reactor_timer_slippage_us summary"),
        "timer-slippage metric missing:\n{metrics}"
    );
    let loop_count: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("hrmc_reactor_loop_us_count "))
        .expect("loop count line")
        .parse()
        .expect("numeric");
    assert!(loop_count > 0, "loop latency has samples");
    let slip_count: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("hrmc_reactor_timer_slippage_us_count "))
        .expect("slippage count line")
        .parse()
        .expect("numeric");
    assert!(slip_count > 0, "timer slippage has samples");
    assert!(
        metrics.contains("hrmc_data_packets_sent_total"),
        "protocol counters flow through the shared registry:\n{metrics}"
    );

    // The /json dump: latest sample plus both sessions' health.
    let json = scrape(endpoint, "/json", Duration::from_secs(5)).expect("scrape /json");
    assert!(json.contains("\"sample\":{\"telemetry\":1,"), "{json}");
    assert!(json.contains("\"role\":\"sender\""), "{json}");
    assert!(json.contains("\"role\":\"receiver\""), "{json}");

    // The in-memory time series grew during the transfer, and the
    // sampled counters are monotonic.
    let samples = telemetry.samples();
    assert!(samples.len() >= 2, "got {} samples", samples.len());
    for w in samples.windows(2) {
        assert!(w[1].total("data_packets_sent") >= w[0].total("data_packets_sent"));
    }
    drop(rx);
}
