//! Multi-shard reactor pool under real load: 32 loopback sessions
//! spread across a 2-shard pool, with the telemetry endpoint reporting
//! the pool as one logical reactor whose counters are exactly the sum
//! of the per-shard snapshots.

#![cfg(feature = "telemetry")]

use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::time::Duration;

use hrmc_core::ProtocolConfig;
use hrmc_net::telemetry::scrape;
use hrmc_net::{McastSocket, ReactorPool, Session, Telemetry};

const LO: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);

fn multicast_available(port: u16) -> bool {
    let g = SocketAddrV4::new(Ipv4Addr::new(239, 255, 90, 11), port);
    let Ok(rx) = McastSocket::receiver(g, LO) else {
        return false;
    };
    let Ok(tx) = McastSocket::sender(g, LO) else {
        return false;
    };
    let _ = rx.set_read_timeout(Duration::from_millis(500));
    if tx.send_multicast(b"probe").is_err() {
        return false;
    }
    let mut buf = [0u8; 16];
    rx.recv_from(&mut buf).is_ok()
}

fn config() -> ProtocolConfig {
    let mut c = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    c.max_rate = 20 * 1024 * 1024;
    c.initial_rtt = 2_000;
    c.anonymous_release_hold = 500_000;
    c
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// 16 groups × (sender + receiver) = 32 sessions on a 2-shard pool:
/// every transfer completes byte-for-byte, sessions actually land on
/// both shards, and after quiesce the per-shard stats sum to the
/// aggregate the telemetry endpoint serves.
#[test]
fn thirty_two_sessions_across_two_shards() {
    if !multicast_available(46300) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let pool = ReactorPool::new(2).expect("pool");
    let telemetry = Telemetry::builder()
        .listen(SocketAddr::V4(SocketAddrV4::new(LO, 0)))
        .sample_interval(Duration::from_millis(100))
        .reactor_pool(&pool)
        .start()
        .expect("telemetry");

    let groups: Vec<SocketAddrV4> = (0..16u8)
        .map(|i| SocketAddrV4::new(Ipv4Addr::new(239, 255, 90, 20 + i), 46310 + u16::from(i)))
        .collect();
    // The hash must actually use both shards for this group set (it
    // does — pinned here so a future hash change that collapses the
    // spread fails loudly instead of silently serializing the pool).
    let mut shard_hit = [false; 2];
    for g in &groups {
        shard_hit[pool.shard_index(*g)] = true;
    }
    assert!(shard_hit.iter().all(|&h| h), "groups cover both shards");

    let workers: Vec<_> = groups
        .iter()
        .enumerate()
        .map(|(i, &group)| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let rx = Session::receiver(group)
                    .interface(LO)
                    .config(config())
                    .reactor_pool(&pool)
                    .bind()
                    .expect("join receiver");
                let tx = Session::sender(group)
                    .interface(LO)
                    .config(config())
                    .reactor_pool(&pool)
                    .bind()
                    .expect("bind sender");
                let data = pattern(20_000 + i * 500);
                tx.send(&data).expect("send");
                tx.close();
                let mut got = Vec::new();
                let mut buf = [0u8; 8192];
                loop {
                    match rx.recv(&mut buf, Duration::from_secs(30)) {
                        Ok(0) => break,
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) => panic!("group {group} recv failed: {e}"),
                    }
                }
                assert_eq!(got, data, "group {group} stream corrupted");
                tx.close_and_wait(Duration::from_secs(60)).expect("close");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }

    // Quiesced: every session deregistered, no more packet traffic.
    assert_eq!(pool.session_count(), 0, "sessions leaked");
    let per_shard = pool.stats();
    assert_eq!(per_shard.len(), 2);
    assert!(
        per_shard.iter().all(|s| s.sessions_hwm > 0),
        "both shards must have hosted sessions: {per_shard:?}"
    );
    let agg = pool.aggregate();
    for (name, agg_v, sum) in [
        (
            "packets_rx",
            agg.packets_rx,
            per_shard.iter().map(|s| s.packets_rx).sum::<u64>(),
        ),
        (
            "packets_tx",
            agg.packets_tx,
            per_shard.iter().map(|s| s.packets_tx).sum::<u64>(),
        ),
        (
            "sessions_hwm",
            agg.sessions_hwm,
            per_shard.iter().map(|s| s.sessions_hwm).sum::<u64>(),
        ),
    ] {
        assert_eq!(agg_v, sum, "{name}: aggregate != per-shard sum");
    }
    assert!(
        agg.packets_rx > 0 && agg.packets_tx > 0,
        "no traffic: {agg:?}"
    );

    // The endpoint serves the same aggregate: raw packet gauges on
    // /metrics equal the per-shard sum, and /json reports the pool
    // shape.
    let addr = telemetry.local_addr().expect("bound");
    let timeout = Duration::from_secs(5);
    let metrics = scrape(addr, "/metrics", timeout).expect("scrape /metrics");
    for (name, sum) in [
        ("hrmc_reactor_packets_rx", agg.packets_rx),
        ("hrmc_reactor_packets_tx", agg.packets_tx),
        ("hrmc_reactor_shards", 2),
        ("hrmc_datapath_backend", 0),
    ] {
        assert!(
            metrics.lines().any(|l| l == format!("{name} {sum}")),
            "{name} {sum} missing from exposition:\n{metrics}"
        );
    }
    let json = scrape(addr, "/json", timeout).expect("scrape /json");
    assert!(json.contains("\"backend\":\"epoll\""), "{json}");
    assert!(json.contains("\"shards\":2"), "{json}");
}
