//! Differential tests for the io_uring datapath: the `uring` backend
//! must be a drop-in for epoll — identical delivered payload streams,
//! equivalent protocol audits — while doing its work through
//! `io_uring_enter` instead of the wait/recvmmsg/sendmmsg train.
//!
//! Each test probes the running kernel first and skips with a notice
//! when io_uring is unavailable (the runtime fallback means the reactor
//! still works there — it just isn't the backend under test).

#![cfg(feature = "uring")]

use std::net::{Ipv4Addr, SocketAddrV4};
use std::time::Duration;

use hrmc_core::ProtocolConfig;
use hrmc_net::{DatapathKind, McastSocket, Reactor, ReactorConfig, Session};

const LO: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);

fn multicast_available(port: u16) -> bool {
    let g = SocketAddrV4::new(Ipv4Addr::new(239, 255, 89, 11), port);
    let Ok(rx) = McastSocket::receiver(g, LO) else {
        return false;
    };
    let Ok(tx) = McastSocket::sender(g, LO) else {
        return false;
    };
    let _ = rx.set_read_timeout(Duration::from_millis(500));
    if tx.send_multicast(b"probe").is_err() {
        return false;
    }
    let mut buf = [0u8; 16];
    rx.recv_from(&mut buf).is_ok()
}

fn config() -> ProtocolConfig {
    let mut c = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    c.max_rate = 20 * 1024 * 1024;
    c.initial_rtt = 2_000;
    c.anonymous_release_hold = 500_000;
    c
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// A reactor asked to run io_uring; `None` (skip) when the kernel made
/// it fall back to epoll.
fn uring_reactor() -> Option<Reactor> {
    let r = Reactor::with_config(ReactorConfig {
        datapath: DatapathKind::Uring,
        ..ReactorConfig::default()
    })
    .expect("reactor");
    if r.stats().backend == "uring" {
        Some(r)
    } else {
        eprintln!("skipping: kernel lacks io_uring, reactor fell back to epoll");
        None
    }
}

/// One full transfer on `reactor`: flight-recorded sender + receiver,
/// returns (delivered bytes, concatenated trace, reactor stats).
fn run_transfer(
    reactor: &Reactor,
    group: SocketAddrV4,
    data: &[u8],
) -> (Vec<u8>, String, hrmc_net::ReactorStats) {
    let rx = Session::receiver(group)
        .interface(LO)
        .config(config())
        .reactor(reactor.clone())
        .flight_recorder(2048)
        .bind()
        .expect("join receiver");
    let tx = Session::sender(group)
        .interface(LO)
        .config(config())
        .reactor(reactor.clone())
        .flight_recorder(2048)
        .bind()
        .expect("bind sender");
    let tx_rec = tx.flight_recorder().expect("tx recorder").clone();
    let rx_rec = rx.flight_recorder().expect("rx recorder").clone();

    tx.send(data).expect("send");
    tx.close();
    let mut got = Vec::with_capacity(data.len());
    let mut buf = [0u8; 16 * 1024];
    loop {
        match rx.recv(&mut buf, Duration::from_secs(30)) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(e) => panic!("recv failed: {e}"),
        }
    }
    tx.close_and_wait(Duration::from_secs(60)).expect("close");
    let trace = format!("{}{}", tx_rec.dump(), rx_rec.dump());
    (got, trace, reactor.stats())
}

/// The audit figures the two backends must agree on.
struct Audit {
    data_packets: u64,
    delivered_segments: u64,
    released: bool,
    parse_skipped: u64,
}

fn audit(trace: &str) -> Audit {
    let analysis = hrmc_trace::analyze_str(trace).expect("analyze");
    let member = analysis
        .members
        .iter()
        .find(|m| m.source == "recv")
        .expect("receiver member report");
    Audit {
        data_packets: analysis.transfer.data_packets,
        delivered_segments: member.delivered_segments,
        released: analysis.release.released > 0,
        parse_skipped: analysis.parse.skipped,
    }
}

/// The core differential: the same payload over a loopback pair on each
/// backend delivers identical byte streams and equivalent `hrmc
/// analyze` audits.
#[test]
fn uring_and_epoll_deliver_identical_streams() {
    if !multicast_available(46200) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let Some(uring) = uring_reactor() else {
        return;
    };
    let epoll = Reactor::new().expect("epoll reactor");
    assert_eq!(epoll.stats().backend, "epoll");

    let data = pattern(200_000);
    let g_epoll = SocketAddrV4::new(Ipv4Addr::new(239, 255, 89, 12), 46201);
    let g_uring = SocketAddrV4::new(Ipv4Addr::new(239, 255, 89, 13), 46202);
    let (got_e, trace_e, stats_e) = run_transfer(&epoll, g_epoll, &data);
    let (got_u, trace_u, stats_u) = run_transfer(&uring, g_uring, &data);

    assert_eq!(got_e, data, "epoll stream corrupted");
    assert_eq!(got_u, data, "uring stream corrupted");

    // Equivalent audits: both backends moved the same logical transfer.
    let (a_e, a_u) = (audit(&trace_e), audit(&trace_u));
    assert_eq!(a_e.parse_skipped, 0);
    assert_eq!(a_u.parse_skipped, 0);
    assert!(a_e.data_packets > 0 && a_u.data_packets > 0);
    assert_eq!(
        a_e.delivered_segments, a_u.delivered_segments,
        "backends delivered different segment counts"
    );
    assert!(a_e.released && a_u.released, "release audit missing");

    // And each did it through its own syscall path.
    assert!(stats_e.recvmmsg_calls > 0 && stats_e.sendmmsg_calls > 0);
    assert_eq!(stats_e.uring_enters, 0);
    assert!(stats_u.uring_enters > 0, "uring backend never entered");
    assert_eq!(stats_u.recvmmsg_calls, 0);
    assert_eq!(stats_u.sendmmsg_calls, 0);
    assert!(
        stats_u.packets_rx > 0 && stats_u.packets_tx > 0,
        "no traffic flowed on the uring reactor"
    );
}

/// Several concurrent sessions on one uring reactor: the deferred
/// registration path, slot pool, and cancel-on-deregister all under
/// load.
#[test]
fn uring_reactor_survives_concurrent_sessions() {
    if !multicast_available(46210) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let Some(reactor) = uring_reactor() else {
        return;
    };
    let mut workers = Vec::new();
    for i in 0..6u8 {
        let reactor = reactor.clone();
        workers.push(std::thread::spawn(move || {
            let group =
                SocketAddrV4::new(Ipv4Addr::new(239, 255, 89, 20 + i), 46220 + u16::from(i));
            let rx = Session::receiver(group)
                .interface(LO)
                .config(config())
                .reactor(reactor.clone())
                .bind()
                .expect("join receiver");
            let tx = Session::sender(group)
                .interface(LO)
                .config(config())
                .reactor(reactor)
                .bind()
                .expect("bind sender");
            let data = pattern(30_000 + usize::from(i) * 1_000);
            tx.send(&data).expect("send");
            tx.close();
            let mut got = Vec::new();
            let mut buf = [0u8; 8192];
            loop {
                match rx.recv(&mut buf, Duration::from_secs(30)) {
                    Ok(0) => break,
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                    Err(e) => panic!("session {i} recv failed: {e}"),
                }
            }
            assert_eq!(got, data, "session {i} stream corrupted");
            tx.close_and_wait(Duration::from_secs(60)).expect("close");
        }));
    }
    for w in workers {
        w.join().expect("worker panicked");
    }
    assert_eq!(reactor.session_count(), 0, "sessions leaked");
    let stats = reactor.stats();
    assert_eq!(stats.backend, "uring");
    assert!(stats.uring_enters > 0);
    assert_eq!(stats.tx_drops, 0, "uring backend dropped packets");
}
