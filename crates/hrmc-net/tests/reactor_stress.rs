//! Many-session stress: 16 concurrent sender→receiver transfers on ONE
//! shared reactor. Proves the tentpole claims of the reactor redesign:
//!
//! * thread count is O(1) per reactor, not O(sessions) — creating 32
//!   sessions adds zero threads beyond the reactor's own;
//! * all transfers complete byte-identically under contention;
//! * the batched syscall path actually batches: under 16-way load the
//!   reactor must observe `recvmmsg` batches larger than one datagram.

use std::net::{Ipv4Addr, SocketAddrV4};
use std::time::Duration;

use hrmc_core::ProtocolConfig;
use hrmc_net::{McastSocket, Reactor, Session};

const LO: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);
const PAIRS: usize = 16;
const PAYLOAD: usize = 120_000;

fn multicast_available(port: u16) -> bool {
    let g = SocketAddrV4::new(Ipv4Addr::new(239, 255, 89, 11), port);
    let Ok(rx) = McastSocket::receiver(g, LO) else {
        return false;
    };
    let Ok(tx) = McastSocket::sender(g, LO) else {
        return false;
    };
    let _ = rx.set_read_timeout(Duration::from_millis(500));
    if tx.send_multicast(b"probe").is_err() {
        return false;
    }
    let mut buf = [0u8; 16];
    rx.recv_from(&mut buf).is_ok()
}

fn config() -> ProtocolConfig {
    let mut c = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    c.max_rate = 8 * 1024 * 1024;
    c.initial_rtt = 2_000;
    c.anonymous_release_hold = 500_000;
    c
}

fn pattern(seed: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 31 + seed * 97) % 251) as u8)
        .collect()
}

/// Threads currently alive in this process (Linux: task directories).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
}

#[test]
fn sixteen_sessions_share_one_reactor_thread() {
    if !multicast_available(48100) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    // A private reactor so the stats assertions see only this test's
    // traffic (other tests in the process share the global reactor).
    let reactor = Reactor::new().expect("reactor");
    let threads_before = thread_count();

    // 16 disjoint groups, each with its own sender and receiver — 32
    // sessions on the one reactor.
    let groups: Vec<SocketAddrV4> = (0..PAIRS as u16)
        .map(|i| SocketAddrV4::new(Ipv4Addr::new(239, 255, 89, 20 + i as u8), 48110 + i))
        .collect();
    let receivers: Vec<_> = groups
        .iter()
        .map(|&g| {
            Session::receiver(g)
                .interface(LO)
                .config(config())
                .reactor(reactor.clone())
                .bind()
                .expect("join receiver")
        })
        .collect();
    let senders: Vec<_> = groups
        .iter()
        .map(|&g| {
            Session::sender(g)
                .interface(LO)
                .config(config())
                .reactor(reactor.clone())
                .bind()
                .expect("bind sender")
        })
        .collect();

    // Thread count is O(1) per reactor: 32 sessions added no threads.
    assert_eq!(
        thread_count(),
        threads_before,
        "sessions must not spawn threads of their own"
    );
    assert_eq!(reactor.session_count(), 2 * PAIRS);
    assert!(reactor.stats().sessions_hwm >= (2 * PAIRS) as u64);

    // Drive all 16 transfers concurrently. Application threads are
    // allowed — it is the *driver* side that must stay single-threaded.
    let readers: Vec<_> = receivers
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let expect = pattern(i, PAYLOAD);
            std::thread::spawn(move || {
                let mut got = Vec::with_capacity(expect.len());
                let mut buf = [0u8; 16 * 1024];
                loop {
                    match r.recv(&mut buf, Duration::from_secs(60)) {
                        Ok(0) => break,
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) => panic!("pair {i}: recv failed: {e}"),
                    }
                }
                assert_eq!(got, expect, "pair {i}: stream corrupted");
            })
        })
        .collect();
    let writers: Vec<_> = senders
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let data = pattern(i, PAYLOAD);
            std::thread::spawn(move || {
                s.send(&data)
                    .unwrap_or_else(|e| panic!("pair {i}: send failed: {e}"));
                s.close_and_wait(Duration::from_secs(120))
                    .unwrap_or_else(|e| panic!("pair {i}: close failed: {e}"));
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer panicked");
    }
    for r in readers {
        r.join().expect("reader panicked");
    }

    let st = reactor.stats();
    // Every datagram of 16 concurrent transfers flowed through the one
    // event loop.
    assert!(
        st.packets_rx as usize >= PAIRS * (PAYLOAD / 1400),
        "implausibly few packets through the reactor: {st:?}"
    );
    // The batching payoff: under 16-way load, bursts queue behind the
    // single thread and recvmmsg must regularly drain more than one
    // datagram per syscall.
    assert!(
        st.rx_batch_max > 1,
        "recvmmsg never batched (max batch {}): {st:?}",
        st.rx_batch_max
    );
    assert!(
        st.rx_batch_mean > 1.0,
        "mean RX batch {} not > 1 under load: {st:?}",
        st.rx_batch_mean
    );
    // Fewer syscalls than packets — strictly better than one-per-packet.
    assert!(
        st.syscalls_per_packet() < 1.0,
        "batched I/O did not beat the unbatched floor: {st:?}"
    );

    // Handles are all dropped: the reactor empties but keeps running.
    assert_eq!(reactor.session_count(), 0);
    assert!(st.sessions_hwm >= (2 * PAIRS) as u64);
}

/// Sessions on a dropped reactor fail fast with `ReactorClosed` rather
/// than wedging their application threads.
#[test]
fn dropping_the_reactor_fails_live_sessions() {
    if !multicast_available(48200) {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }
    let reactor = Reactor::new().expect("reactor");
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 89, 90), 48201);
    let r = Session::receiver(group)
        .interface(LO)
        .config(config())
        .reactor(reactor.clone())
        .bind()
        .expect("join");
    drop(reactor); // last handle: the reactor thread shuts down
    let mut buf = [0u8; 64];
    match r.recv(&mut buf, Duration::from_secs(5)) {
        Err(hrmc_net::NetError::ReactorClosed) => {}
        other => panic!("expected ReactorClosed, got {other:?}"),
    }
    assert!(r.has_failed());
}
