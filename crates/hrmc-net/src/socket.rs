//! Multicast UDP socket setup and batched datagram I/O.
//!
//! `std::net::UdpSocket` cannot set `SO_REUSEADDR`/`SO_REUSEPORT` before
//! binding, which several receivers sharing one group port on one machine
//! require — exactly the configuration of every multi-receiver test in
//! the paper. The two `setsockopt` calls are issued through `libc` on the
//! raw fd before `bind`; everything else stays `std` — except the
//! reactor's hot path, which drains and flushes whole bursts per syscall
//! via [`RxBatch`] (`recvmmsg`) and [`McastSocket::send_batch`]
//! (`sendmmsg`), the user-space analog of the kernel driver servicing a
//! softirq queue in one pass.

use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};

/// A UDP socket configured for multicast experiments on one machine.
#[derive(Debug)]
pub struct McastSocket {
    inner: UdpSocket,
    group: SocketAddrV4,
}

#[cfg(unix)]
fn bind_reuse(addr: SocketAddrV4) -> io::Result<UdpSocket> {
    unsafe {
        let fd = libc::socket(libc::AF_INET, libc::SOCK_DGRAM, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let one: libc::c_int = 1;
        for opt in [libc::SO_REUSEADDR, libc::SO_REUSEPORT] {
            if libc::setsockopt(
                fd,
                libc::SOL_SOCKET,
                opt,
                &one as *const _ as *const libc::c_void,
                std::mem::size_of::<libc::c_int>() as libc::socklen_t,
            ) < 0
            {
                let e = io::Error::last_os_error();
                libc::close(fd);
                return Err(e);
            }
        }
        let sin = libc::sockaddr_in {
            sin_family: libc::AF_INET as libc::sa_family_t,
            sin_port: addr.port().to_be(),
            sin_addr: libc::in_addr {
                s_addr: u32::from_ne_bytes(addr.ip().octets()),
            },
            sin_zero: [0; 8],
        };
        if libc::bind(
            fd,
            &sin as *const _ as *const libc::sockaddr,
            std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
        ) < 0
        {
            let e = io::Error::last_os_error();
            libc::close(fd);
            return Err(e);
        }
        Ok(UdpSocket::from_raw_fd(fd))
    }
}

impl McastSocket {
    /// A receiver socket: binds the group port with address/port reuse,
    /// joins `group` on `interface`, and enables multicast loopback so
    /// several processes on one host form a working group.
    pub fn receiver(group: SocketAddrV4, interface: Ipv4Addr) -> io::Result<McastSocket> {
        let sock = bind_reuse(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, group.port()))?;
        sock.join_multicast_v4(group.ip(), &interface)?;
        sock.set_multicast_loop_v4(true)?;
        Ok(McastSocket { inner: sock, group })
    }

    /// A sender socket: binds an ephemeral port, scopes multicast to
    /// `interface`, enables loopback, TTL 1 (the paper's LAN scope).
    pub fn sender(group: SocketAddrV4, interface: Ipv4Addr) -> io::Result<McastSocket> {
        let sock = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0))?;
        sock.set_multicast_loop_v4(true)?;
        sock.set_multicast_ttl_v4(1)?;
        set_multicast_if(&sock, interface)?;
        Ok(McastSocket { inner: sock, group })
    }

    /// The group this socket addresses.
    pub fn group(&self) -> SocketAddrV4 {
        self.group
    }

    /// Local bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Send `buf` to the multicast group, retrying transient kernel
    /// errors with a short backoff (see [`send_retrying`]).
    pub fn send_multicast(&self, buf: &[u8]) -> io::Result<usize> {
        send_retrying(|| self.inner.send_to(buf, SocketAddr::V4(self.group)))
    }

    /// Send `buf` to a specific peer (unicast), retrying transient
    /// kernel errors with a short backoff (see [`send_retrying`]).
    pub fn send_unicast(&self, buf: &[u8], to: SocketAddr) -> io::Result<usize> {
        send_retrying(|| self.inner.send_to(buf, to))
    }

    /// Receive one datagram (honors the configured read timeout).
    pub fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.inner.recv_from(buf)
    }

    /// Set the blocking-read timeout (drivers use a short timeout so
    /// shutdown flags are observed).
    pub fn set_read_timeout(&self, dur: std::time::Duration) -> io::Result<()> {
        self.inner.set_read_timeout(Some(dur))
    }

    /// Clone the underlying socket handle (same fd, shared by threads).
    pub fn try_clone(&self) -> io::Result<McastSocket> {
        Ok(McastSocket {
            inner: self.inner.try_clone()?,
            group: self.group,
        })
    }

    /// Switch blocking mode. The reactor runs every registered socket
    /// nonblocking (epoll says when to read; `recvmmsg` must never park
    /// the shared thread).
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.inner.set_nonblocking(nonblocking)
    }

    /// The raw fd, for epoll registration.
    #[cfg(unix)]
    pub fn raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }

    /// Send up to [`TX_SLOTS`] datagrams in one `sendmmsg` syscall, each
    /// to its own destination. Returns how many messages the kernel
    /// accepted (≥ 1 on success); an error means message `0` of the slice
    /// failed and nothing was sent.
    #[cfg(unix)]
    pub fn send_batch(&self, bufs: &[Vec<u8>], dsts: &[SocketAddr]) -> io::Result<usize> {
        debug_assert_eq!(bufs.len(), dsts.len());
        let n = bufs.len().min(dsts.len()).min(TX_SLOTS);
        if n == 0 {
            return Ok(0);
        }
        let mut names = [EMPTY_SOCKADDR_IN; TX_SLOTS];
        let mut iovs = [EMPTY_IOVEC; TX_SLOTS];
        let mut hdrs = [EMPTY_MMSGHDR; TX_SLOTS];
        for i in 0..n {
            names[i] = sockaddr_in_of(dsts[i])?;
            iovs[i].iov_base = bufs[i].as_ptr() as *mut libc::c_void;
            iovs[i].iov_len = bufs[i].len();
            hdrs[i].msg_hdr.msg_name = &mut names[i] as *mut libc::sockaddr_in as *mut libc::c_void;
            hdrs[i].msg_hdr.msg_namelen =
                std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t;
            hdrs[i].msg_hdr.msg_iov = &mut iovs[i];
            hdrs[i].msg_hdr.msg_iovlen = 1;
        }
        let sent = unsafe {
            libc::sendmmsg(
                self.inner.as_raw_fd(),
                hdrs.as_mut_ptr(),
                n as libc::c_uint,
                0,
            )
        };
        if sent < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(sent as usize)
        }
    }
}

/// Slots per `recvmmsg` call: the most datagrams one syscall can drain.
pub const RX_SLOTS: usize = 8;
/// Slots per `sendmmsg` call: the most datagrams one syscall can flush.
pub const TX_SLOTS: usize = 16;
/// Per-slot receive buffer: the UDP maximum, so no datagram is ever
/// truncated regardless of the session's configured segment size.
const RX_BUF: usize = 64 * 1024;

const EMPTY_SOCKADDR_IN: libc::sockaddr_in = libc::sockaddr_in {
    sin_family: 0,
    sin_port: 0,
    sin_addr: libc::in_addr { s_addr: 0 },
    sin_zero: [0; 8],
};
const EMPTY_IOVEC: libc::iovec = libc::iovec {
    iov_base: std::ptr::null_mut(),
    iov_len: 0,
};
const EMPTY_MMSGHDR: libc::mmsghdr = libc::mmsghdr {
    msg_hdr: libc::msghdr {
        msg_name: std::ptr::null_mut(),
        msg_namelen: 0,
        msg_iov: std::ptr::null_mut(),
        msg_iovlen: 0,
        msg_control: std::ptr::null_mut(),
        msg_controllen: 0,
        msg_flags: 0,
    },
    msg_len: 0,
};

pub(crate) fn sockaddr_in_of(addr: SocketAddr) -> io::Result<libc::sockaddr_in> {
    match addr {
        SocketAddr::V4(a) => Ok(libc::sockaddr_in {
            sin_family: libc::AF_INET as libc::sa_family_t,
            sin_port: a.port().to_be(),
            sin_addr: libc::in_addr {
                s_addr: u32::from_ne_bytes(a.ip().octets()),
            },
            sin_zero: [0; 8],
        }),
        SocketAddr::V6(_) => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "AF_INET socket cannot address an IPv6 destination",
        )),
    }
}

/// Reusable `recvmmsg` buffer pool: [`RX_SLOTS`] full-size datagram
/// buffers plus the per-message source-address storage, allocated once
/// per reactor and refilled by every [`RxBatch::recv`] call.
pub struct RxBatch {
    bufs: Vec<Vec<u8>>,
    names: [libc::sockaddr_in; RX_SLOTS],
    lens: [usize; RX_SLOTS],
    count: usize,
}

impl RxBatch {
    /// Allocate the pool (RX_SLOTS × 64 KiB, reused for the reactor's
    /// lifetime).
    pub fn new() -> RxBatch {
        RxBatch {
            bufs: (0..RX_SLOTS).map(|_| vec![0u8; RX_BUF]).collect(),
            names: [EMPTY_SOCKADDR_IN; RX_SLOTS],
            lens: [0; RX_SLOTS],
            count: 0,
        }
    }

    /// One `recvmmsg` call on `sock`: fill the pool with every queued
    /// datagram (up to [`RX_SLOTS`]) and return how many arrived. On a
    /// nonblocking socket an empty queue surfaces as `WouldBlock`.
    #[cfg(unix)]
    pub fn recv(&mut self, sock: &McastSocket) -> io::Result<usize> {
        self.count = 0;
        let mut iovs = [EMPTY_IOVEC; RX_SLOTS];
        let mut hdrs = [EMPTY_MMSGHDR; RX_SLOTS];
        for i in 0..RX_SLOTS {
            iovs[i].iov_base = self.bufs[i].as_mut_ptr() as *mut libc::c_void;
            iovs[i].iov_len = RX_BUF;
            hdrs[i].msg_hdr.msg_name =
                &mut self.names[i] as *mut libc::sockaddr_in as *mut libc::c_void;
            hdrs[i].msg_hdr.msg_namelen =
                std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t;
            hdrs[i].msg_hdr.msg_iov = &mut iovs[i];
            hdrs[i].msg_hdr.msg_iovlen = 1;
        }
        let n = unsafe {
            libc::recvmmsg(
                sock.inner.as_raw_fd(),
                hdrs.as_mut_ptr(),
                RX_SLOTS as libc::c_uint,
                0,
                std::ptr::null_mut(),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        let n = n as usize;
        for (len, hdr) in self.lens.iter_mut().zip(hdrs.iter()).take(n) {
            *len = hdr.msg_len as usize;
        }
        self.count = n;
        Ok(n)
    }

    /// Reset the batch to empty. Datapath backends that fill the pool
    /// from completion queues (rather than one `recvmmsg`) start here.
    #[cfg(feature = "uring")]
    pub(crate) fn clear(&mut self) {
        self.count = 0;
    }

    /// Append one received datagram (payload + raw source address) to
    /// the batch — the completion-queue analog of a `recvmmsg` slot.
    /// Returns `false` when the pool is full ([`RX_SLOTS`] datagrams).
    #[cfg(feature = "uring")]
    pub(crate) fn push(&mut self, payload: &[u8], name: libc::sockaddr_in) -> bool {
        if self.count == RX_SLOTS {
            return false;
        }
        let i = self.count;
        self.bufs[i][..payload.len()].copy_from_slice(payload);
        self.names[i] = name;
        self.lens[i] = payload.len();
        self.count += 1;
        true
    }

    /// Number of datagrams the last [`RxBatch::recv`] filled.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when the last receive drained nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Datagram `i` of the last batch: payload bytes and source address.
    pub fn datagram(&self, i: usize) -> (&[u8], SocketAddr) {
        assert!(i < self.count, "datagram index out of batch");
        let name = self.names[i];
        let addr = SocketAddr::V4(SocketAddrV4::new(
            // `s_addr` holds the four octets in network order; reading the
            // native bytes back recovers them (inverse of the bind path).
            Ipv4Addr::from(name.sin_addr.s_addr.to_ne_bytes()),
            u16::from_be(name.sin_port),
        ));
        (&self.bufs[i][..self.lens[i]], addr)
    }
}

impl Default for RxBatch {
    fn default() -> Self {
        RxBatch::new()
    }
}

/// Attempts beyond the first before a transient send error is surfaced.
const SEND_RETRIES: u32 = 4;

/// Linux `ENOBUFS` (the pinned `libc` predates the re-export): the
/// kernel's socket buffers are momentarily full.
const ENOBUFS: i32 = 105;

/// `true` for errors a loaded kernel returns transiently on UDP sends:
/// `EAGAIN`/`EWOULDBLOCK`, `EINTR`, and `ENOBUFS` (socket buffers
/// momentarily full — the classic burst symptom on loopback).
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
    ) || e.raw_os_error() == Some(ENOBUFS)
}

/// Run `send`, retrying transient errors up to [`SEND_RETRIES`] times
/// with a doubling backoff starting at 200 µs. A datagram the kernel
/// refuses under momentary pressure would otherwise be silently lost
/// and cost a full NAK round trip to recover; a sub-millisecond retry
/// is far cheaper. Persistent errors surface to the caller unchanged.
fn send_retrying<F: FnMut() -> io::Result<usize>>(mut send: F) -> io::Result<usize> {
    let mut backoff = std::time::Duration::from_micros(200);
    let mut attempt = 0;
    loop {
        match send() {
            Err(ref e) if is_transient(e) && attempt < SEND_RETRIES => {
                attempt += 1;
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            other => return other,
        }
    }
}

#[cfg(unix)]
fn set_multicast_if(sock: &UdpSocket, interface: Ipv4Addr) -> io::Result<()> {
    let addr = libc::in_addr {
        s_addr: u32::from_ne_bytes(interface.octets()),
    };
    let rc = unsafe {
        libc::setsockopt(
            sock.as_raw_fd(),
            libc::IPPROTO_IP,
            libc::IP_MULTICAST_IF,
            &addr as *const _ as *const libc::c_void,
            std::mem::size_of::<libc::in_addr>() as libc::socklen_t,
        )
    };
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const LO: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);

    fn group(port: u16) -> SocketAddrV4 {
        SocketAddrV4::new(Ipv4Addr::new(239, 255, 77, 7), port)
    }

    #[test]
    fn transient_send_errors_are_retried_then_succeed() {
        let mut attempts = 0;
        let r = send_retrying(|| {
            attempts += 1;
            if attempts <= 2 {
                Err(io::Error::from(io::ErrorKind::WouldBlock))
            } else {
                Ok(42)
            }
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn persistent_and_fatal_send_errors_surface() {
        // A persistent transient error gives up after the retry budget.
        let mut attempts = 0;
        let r = send_retrying(|| {
            attempts += 1;
            Err::<usize, _>(io::Error::from_raw_os_error(ENOBUFS))
        });
        assert!(r.is_err());
        assert_eq!(attempts, 1 + SEND_RETRIES);
        // A non-transient error is never retried.
        let mut attempts = 0;
        let r = send_retrying(|| {
            attempts += 1;
            Err::<usize, _>(io::Error::from(io::ErrorKind::PermissionDenied))
        });
        assert_eq!(r.unwrap_err().kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(attempts, 1);
    }

    #[test]
    fn multicast_reaches_two_receivers_on_one_port() {
        let g = group(46001);
        let rx1 = McastSocket::receiver(g, LO).expect("rx1");
        let rx2 = McastSocket::receiver(g, LO).expect("rx2");
        let tx = McastSocket::sender(g, LO).expect("tx");
        rx1.set_read_timeout(Duration::from_secs(2)).unwrap();
        rx2.set_read_timeout(Duration::from_secs(2)).unwrap();
        tx.send_multicast(b"both-of-you").unwrap();
        let mut buf = [0u8; 64];
        let (n1, _) = rx1.recv_from(&mut buf).expect("rx1 recv");
        assert_eq!(&buf[..n1], b"both-of-you");
        let (n2, _) = rx2.recv_from(&mut buf).expect("rx2 recv");
        assert_eq!(&buf[..n2], b"both-of-you");
    }

    #[test]
    fn batched_send_and_receive_roundtrip() {
        let g = group(46003);
        let rx = McastSocket::receiver(g, LO).expect("rx");
        let tx = McastSocket::sender(g, LO).expect("tx");
        // Three datagrams in one sendmmsg, drained by one recvmmsg.
        let bufs: Vec<Vec<u8>> = vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()];
        let dsts: Vec<SocketAddr> = vec![SocketAddr::V4(g); 3];
        let sent = tx.send_batch(&bufs, &dsts).expect("send_batch");
        assert_eq!(sent, 3);
        std::thread::sleep(Duration::from_millis(50));
        rx.set_nonblocking(true).unwrap();
        let mut batch = RxBatch::new();
        let n = batch.recv(&rx).expect("recvmmsg");
        assert_eq!(n, 3, "one syscall drains the whole burst");
        let (payload, from) = batch.datagram(0);
        assert_eq!(payload, b"alpha");
        assert_eq!(from.port(), tx.local_addr().unwrap().port());
        let (payload, _) = batch.datagram(2);
        assert_eq!(payload, b"gamma");
        // Drained: the nonblocking socket now reports WouldBlock.
        let e = batch.recv(&rx).expect_err("queue must be empty");
        assert_eq!(e.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn send_batch_rejects_ipv6_destination() {
        let g = group(46004);
        let tx = McastSocket::sender(g, LO).expect("tx");
        let v6: SocketAddr = "[::1]:9".parse().unwrap();
        let e = tx
            .send_batch(&[b"x".to_vec()], &[v6])
            .expect_err("IPv6 dest on AF_INET socket");
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn unicast_reply_path() {
        let g = group(46002);
        let rx = McastSocket::receiver(g, LO).expect("rx");
        let tx = McastSocket::sender(g, LO).expect("tx");
        rx.set_read_timeout(Duration::from_secs(2)).unwrap();
        tx.set_read_timeout(Duration::from_secs(2)).unwrap();
        tx.send_multicast(b"ping").unwrap();
        let mut buf = [0u8; 64];
        let (_, sender_addr) = rx.recv_from(&mut buf).expect("rx recv");
        rx.send_unicast(b"pong", sender_addr).unwrap();
        let (n, _) = tx.recv_from(&mut buf).expect("tx recv reply");
        assert_eq!(&buf[..n], b"pong");
    }
}
