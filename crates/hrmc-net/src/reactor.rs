//! The shared multi-session reactor: one poll-driven event loop that
//! owns every session's sockets, drains RX in `recvmmsg` batches,
//! flushes engine output in `sendmmsg` batches, and services every
//! engine's `next_wakeup` deadline from a single min-heap timer — the
//! user-space analog of the paper's kernel placement (§4, Fig. 4),
//! where all H-RMC sockets share one softirq delivery path and one
//! timer wheel instead of spawning threads per endpoint.
//!
//! Thread count is O(1) per reactor, not O(sessions): a process serving
//! thousands of H-RMC sessions runs one reactor thread (plus whatever
//! application threads call `send`/`recv`). Sessions register at bind
//! time and deregister when their handle drops; `SenderHandle` /
//! `ReceiverHandle` are thin fronts over reactor-owned state.
//!
//! ## Event loop
//!
//! ```text
//!            ┌────────────── epoll_wait (≤ next deadline) ─────────────┐
//!            │                                                         │
//!   eventfd kick ──► re-fold dirty sessions' deadlines (min-heap)      │
//!   socket ready ──► recvmmsg burst ─► engine.handle_packet ─► flush   │
//!   deadline due ──► engine.on_tick ──────────────────────────► flush  │
//!            │                                                         │
//!            └── flush = poll_output ─► sendmmsg batches ─► events ────┘
//! ```
//!
//! Deadlines follow the same fold-min discipline the per-endpoint timer
//! threads used: an active engine's "one jiffy from now" wish recedes on
//! every re-read, so the heap keeps the earliest deadline promised so
//! far per session (stale entries are skipped lazily on pop) and a fresh
//! deadline is taken only after servicing a tick.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hrmc_core::{Histogram, MetricsRegistry};
use parking_lot::Mutex;

use crate::datapath::{make_datapath, Datapath, DatapathKind};
use crate::socket::{McastSocket, RxBatch, TX_SLOTS};
use crate::NetError;

/// Sockets per session the token scheme supports (receiver = 2).
const MAX_ROLES: u64 = 2;
/// Readiness token of the kick eventfd (any backend).
pub(crate) const KICK_TOKEN: u64 = u64::MAX;
/// Attempts beyond the first before a transient `sendmmsg` error drops
/// the remaining batch (mirrors the single-send retry budget).
const TX_RETRIES: u32 = 4;

/// Tunables for a reactor instance.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Longest uninterrupted readiness wait when no deadline is armed
    /// (and the cap applied to armed deadlines, so a session registered
    /// while the loop sleeps is noticed within this bound even if its
    /// kick is somehow lost). Smaller values trade idle CPU for
    /// responsiveness.
    pub idle_deadline_cap: Duration,
    /// Which syscall backend drives the sockets. [`DatapathKind::Uring`]
    /// falls back to epoll when the build or kernel lacks io_uring
    /// support — [`ReactorStats::backend`] reports what actually runs.
    pub datapath: DatapathKind,
    /// Reactor threads a [`crate::ReactorPool`] built from this config
    /// runs (sessions are hash-assigned per shard). A plain [`Reactor`]
    /// ignores this and always runs one thread.
    pub shards: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            idle_deadline_cap: Duration::from_millis(100),
            datapath: DatapathKind::Epoll,
            shards: 1,
        }
    }
}

/// Why the reactor stopped driving a session.
pub(crate) enum Fatal {
    /// A socket returned an unrecoverable error (e.g. `EBADF`); the
    /// error is surfaced so the session can report `SessionFailed`.
    Io(io::Error),
    /// The reactor itself shut down while the session was registered.
    ReactorClosed,
}

/// A session the reactor can drive. Implemented by the sender's and
/// receiver's shared state; all methods are called from the reactor
/// thread (the session's engine mutex provides interior mutability).
pub(crate) trait ReactorSession: Send + Sync {
    /// The sockets to watch, in role order (index = role).
    fn sockets(&self) -> Vec<&McastSocket>;
    /// Drain `role`'s socket into the engine and flush output. A returned
    /// error is fatal: the reactor stops watching this session and calls
    /// [`ReactorSession::on_fatal`].
    fn on_readable(&self, role: usize, io: &mut IoBatch) -> io::Result<()>;
    /// Service the session's earliest timer deadline.
    fn on_tick(&self, io: &mut IoBatch);
    /// The engine's next deadline on the shared monotonic timeline.
    fn next_deadline(&self) -> Option<Instant>;
    /// Terminal notification: the reactor no longer drives this session.
    fn on_fatal(&self, reason: Fatal);
    /// Per-session traffic totals for telemetry (`id` filled in by the
    /// reactor, which owns the numbering).
    fn health(&self) -> SessionHealth;
    /// Publish engine-level gauges (e.g. the sender's membership
    /// pressure) into a metrics registry. Default: none. With several
    /// publishing sessions on one reactor the last writer wins per
    /// gauge, matching the common one-sender-per-process deployment.
    fn publish_metrics(&self, _reg: &mut MetricsRegistry) {}
}

/// Per-session traffic totals, the raw material for per-session rate
/// telemetry (a sampler diffs successive snapshots).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionHealth {
    /// Reactor-assigned session id.
    pub id: u64,
    /// Endpoint role: `"sender"` or `"receiver"`.
    pub role: &'static str,
    /// Datagrams received by this session.
    pub packets_rx: u64,
    /// Datagrams staged for transmission by this session.
    pub packets_tx: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Payload bytes staged for transmission.
    pub bytes_tx: u64,
    /// Sender rate-halving episodes — the congestion-response count a
    /// degrading network shows first (0 for receivers).
    pub rate_halvings: u64,
    /// Sender urgent stops (0 for receivers).
    pub urgent_stops: u64,
    /// Members this sender ejected (0 for receivers).
    pub members_ejected: u64,
    /// Structurally invalid packets the engine rejected.
    pub malformed_packets: u64,
    /// Datagrams discarded for checksum failure.
    pub checksum_failures: u64,
    /// Receive-window overflow drops (0 for senders).
    pub overflow_drops: u64,
    /// `true` when the session declared terminal failure.
    pub session_failed: bool,
}

/// Atomic traffic counters each session embeds; the reactor thread
/// bumps them on the hot path (relaxed ordering — telemetry reads need
/// no synchronisation with the data they count).
#[derive(Debug, Default)]
pub(crate) struct SessionCounters {
    packets_rx: AtomicU64,
    packets_tx: AtomicU64,
    bytes_rx: AtomicU64,
    bytes_tx: AtomicU64,
}

impl SessionCounters {
    pub(crate) fn note_rx(&self, packets: u64, bytes: u64) {
        self.packets_rx.fetch_add(packets, Ordering::Relaxed);
        self.bytes_rx.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn note_tx(&self, bytes: u64) {
        self.packets_tx.fetch_add(1, Ordering::Relaxed);
        self.bytes_tx.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn health(&self, role: &'static str) -> SessionHealth {
        SessionHealth {
            id: 0,
            role,
            packets_rx: self.packets_rx.load(Ordering::Relaxed),
            packets_tx: self.packets_tx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            ..SessionHealth::default()
        }
    }
}

// ---------------------------------------------------------------------
// Batched I/O scratch state (one per reactor thread)
// ---------------------------------------------------------------------

/// Reusable I/O scratch owned by the reactor thread: the RX buffer
/// pool, the TX staging area, and the [`Datapath`] backend everything
/// crosses the kernel through — shared by every session so buffers are
/// allocated once per reactor, not per session.
pub(crate) struct IoBatch {
    /// RX buffer pool; sessions read decoded datagrams from here.
    pub(crate) rx: RxBatch,
    /// The syscall backend (epoll+mmsg or io_uring rings).
    pub(crate) dp: Box<dyn Datapath>,
    /// Encoded-packet staging for the next TX submit.
    tx_bufs: Vec<Vec<u8>>,
    tx_dsts: Vec<SocketAddr>,
    tx_len: usize,
    stats: Arc<StatsCells>,
}

impl IoBatch {
    fn new(stats: Arc<StatsCells>, dp: Box<dyn Datapath>) -> IoBatch {
        IoBatch {
            rx: RxBatch::new(),
            dp,
            tx_bufs: Vec::new(),
            tx_dsts: Vec::new(),
            tx_len: 0,
            stats,
        }
    }

    /// One backend drain into the pool; records batch-size stats. (The
    /// backend counts its own syscalls; this layer counts packets.)
    pub(crate) fn recv(&mut self, sock: &McastSocket) -> io::Result<usize> {
        let n = self.dp.recv_batch(sock, &mut self.rx)?;
        let s = &self.stats;
        s.packets_rx.fetch_add(n as u64, Ordering::Relaxed);
        s.rx_batches.lock().record(n as u64);
        Ok(n)
    }

    /// Stage one outgoing packet: returns the cleared scratch buffer to
    /// encode into; commit with [`IoBatch::commit`].
    pub(crate) fn stage(&mut self) -> &mut Vec<u8> {
        if self.tx_len == self.tx_bufs.len() {
            self.tx_bufs.push(Vec::new());
            self.tx_dsts
                .push(SocketAddr::V4(std::net::SocketAddrV4::new(
                    std::net::Ipv4Addr::UNSPECIFIED,
                    0,
                )));
        }
        let buf = &mut self.tx_bufs[self.tx_len];
        buf.clear();
        buf
    }

    /// Commit the staged packet to `dst`; flushes `sock` when the batch
    /// is full. All packets staged between flushes go out `sock`.
    pub(crate) fn commit(&mut self, dst: SocketAddr, sock: &McastSocket) {
        self.tx_dsts[self.tx_len] = dst;
        self.tx_len += 1;
        if self.tx_len >= TX_SLOTS {
            self.flush_tx(sock);
        }
    }

    /// Flush every staged packet out `sock` in backend batches,
    /// retrying transient kernel pressure (`EAGAIN`/`EINTR`/`ENOBUFS`)
    /// with the same short doubling backoff the single-send path used. A
    /// persistently failing datagram is dropped (the protocol's NAK path
    /// recovers it) without sacrificing the rest of the batch. Each
    /// attempt — success or transient failure — is a real kernel
    /// crossing, counted by the backend itself.
    pub(crate) fn flush_tx(&mut self, sock: &McastSocket) {
        let mut off = 0;
        let mut attempt = 0;
        let mut backoff = Duration::from_micros(200);
        while off < self.tx_len {
            match self.dp.send_batch(
                sock,
                &self.tx_bufs[off..self.tx_len],
                &self.tx_dsts[off..self.tx_len],
            ) {
                Ok(n) => {
                    let s = &self.stats;
                    s.packets_tx.fetch_add(n as u64, Ordering::Relaxed);
                    s.tx_batches.lock().record(n as u64);
                    off += n.max(1);
                    attempt = 0;
                    backoff = Duration::from_micros(200);
                }
                Err(ref e) if is_transient(e) && attempt < TX_RETRIES => {
                    self.stats.tx_retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
                Err(_) => {
                    // Drop the message at the head and keep going: one
                    // unreachable unicast peer must not starve the rest.
                    self.stats.tx_drops.fetch_add(1, Ordering::Relaxed);
                    off += 1;
                    attempt = 0;
                    backoff = Duration::from_micros(200);
                }
            }
        }
        self.tx_len = 0;
    }
}

/// `true` for errors a loaded kernel returns transiently on UDP sends.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
    ) || e.raw_os_error() == Some(ENOBUFS)
}

/// `true` for receive-side errors that clear themselves: an empty queue,
/// a signal, or an asynchronous ICMP error queued against the socket
/// (port/host/net unreachable after a feedback send to a dead peer).
/// Everything else — `EBADF` above all — is fatal and must NOT be
/// retried: the old per-endpoint RX loops spun at 100% CPU on exactly
/// that case.
pub(crate) fn rx_error_disposition(e: &io::Error) -> RxError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => RxError::Drained,
        io::ErrorKind::Interrupted
        | io::ErrorKind::ConnectionRefused
        | io::ErrorKind::ConnectionReset => RxError::Retry,
        _ if matches!(e.raw_os_error(), Some(EHOSTUNREACH) | Some(ENETUNREACH)) => RxError::Retry,
        _ => RxError::Fatal,
    }
}

/// Classification of a receive error (see [`rx_error_disposition`]).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum RxError {
    /// Nothing queued: stop draining this socket for now.
    Drained,
    /// Transient (signal / ICMP error consumed): try the next batch.
    Retry,
    /// Unrecoverable: fail the session.
    Fatal,
}

const ENOBUFS: i32 = 105;
const ENETUNREACH: i32 = 101;
const EHOSTUNREACH: i32 = 113;

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

/// The reactor's shared counter cells. Backends hold an `Arc` and bump
/// the syscall counters (`recvmmsg_calls`/`sendmmsg_calls` for epoll,
/// `uring_enters` for io_uring, `tx_retries`/`tx_drops` for deferred
/// completion failures); the reactor side owns the rest.
#[derive(Default)]
pub(crate) struct StatsCells {
    pub(crate) sessions_hwm: AtomicU64,
    pub(crate) epoll_wakeups: AtomicU64,
    pub(crate) timer_fires: AtomicU64,
    pub(crate) kicks: AtomicU64,
    pub(crate) recvmmsg_calls: AtomicU64,
    pub(crate) sendmmsg_calls: AtomicU64,
    pub(crate) uring_enters: AtomicU64,
    pub(crate) packets_rx: AtomicU64,
    pub(crate) packets_tx: AtomicU64,
    pub(crate) tx_retries: AtomicU64,
    pub(crate) tx_drops: AtomicU64,
    /// Raw timer-heap length (includes lazily-deleted stale entries).
    pub(crate) timer_heap_len: AtomicU64,
    /// Sessions with a live armed deadline (the authoritative map).
    pub(crate) timers_armed: AtomicU64,
    pub(crate) rx_batches: Mutex<Histogram>,
    pub(crate) tx_batches: Mutex<Histogram>,
    /// Busy time per loop iteration (µs): deadline service + dispatch,
    /// excluding the readiness-wait sleep itself.
    pub(crate) loop_us: Mutex<Histogram>,
    /// Timer slippage (µs): how late each deadline fired (fired-at minus
    /// deadline) — the loop's scheduling health under load.
    pub(crate) timer_slippage_us: Mutex<Histogram>,
}

/// Point-in-time snapshot of a reactor's gauges: how many sessions it
/// carries, how hard the event loop is working, and — the batching
/// payoff — how many packets each `recvmmsg`/`sendmmsg` syscall moved.
#[derive(Debug, Clone, Default)]
pub struct ReactorStats {
    /// The syscall backend actually driving this reactor: `"epoll"` or
    /// `"uring"` (after any runtime fallback).
    pub backend: &'static str,
    /// Sessions currently registered.
    pub sessions: usize,
    /// Most sessions ever registered at once.
    pub sessions_hwm: u64,
    /// Readiness-wait returns (the loop's wakeup count; named for the
    /// epoll backend, counted identically under io_uring).
    pub epoll_wakeups: u64,
    /// Engine deadlines serviced from the timer heap.
    pub timer_fires: u64,
    /// Deadline re-folds requested by application threads.
    pub kicks: u64,
    /// `recvmmsg` syscalls issued (epoll backend).
    pub recvmmsg_calls: u64,
    /// `sendmmsg` syscalls issued (epoll backend; every attempt counts,
    /// including transiently failing ones that were retried).
    pub sendmmsg_calls: u64,
    /// `io_uring_enter` syscalls issued (uring backend) — the ring
    /// replaces the wait+drain+flush syscall train with one enter.
    pub uring_enters: u64,
    /// Datagrams received.
    pub packets_rx: u64,
    /// Datagrams sent.
    pub packets_tx: u64,
    /// Transient `sendmmsg` errors retried with backoff.
    pub tx_retries: u64,
    /// Datagrams dropped after the retry budget (NAK path recovers).
    pub tx_drops: u64,
    /// Raw timer-heap length (includes lazily-deleted stale entries).
    pub timer_heap_len: u64,
    /// Sessions with a live armed deadline.
    pub timers_armed: u64,
    /// Mean datagrams per `recvmmsg` call.
    pub rx_batch_mean: f64,
    /// Largest single `recvmmsg` batch.
    pub rx_batch_max: u64,
    /// Mean datagrams per `sendmmsg` call.
    pub tx_batch_mean: f64,
    /// Largest single `sendmmsg` batch.
    pub tx_batch_max: u64,
    /// 99th-percentile busy time per loop iteration (µs).
    pub loop_p99_us: u64,
    /// 99th-percentile timer slippage (µs): fired-at minus deadline.
    pub timer_slippage_p99_us: u64,
    /// The configured idle-deadline cap, milliseconds.
    pub idle_cap_ms: u64,
}

impl ReactorStats {
    /// Batched-I/O syscalls per packet moved: 1.0 is the unbatched
    /// floor (one syscall per datagram); batching pushes it below.
    /// 0.0 before any packet has moved — a reactor that has only
    /// polled must not report a syscall *rate*, and the old
    /// divide-by-`max(1)` form quietly reported the raw syscall count
    /// in that state.
    pub fn syscalls_per_packet(&self) -> f64 {
        let syscalls = self.recvmmsg_calls + self.sendmmsg_calls + self.uring_enters;
        let packets = self.packets_rx + self.packets_tx;
        if packets == 0 {
            return 0.0;
        }
        syscalls as f64 / packets as f64
    }
}

// ---------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------

/// A socket-set change an application thread asks the reactor thread to
/// apply. The datapath object lives on the reactor thread only (io_uring
/// submission queues are single-producer), so registration and
/// deregistration are queued here and drained at the top of each loop
/// iteration — the kick eventfd bounds the latency.
enum DpCmd {
    /// Watch the sockets of session `id` (already in the sessions map).
    Register { id: u64 },
    /// Stop watching `fd`. The owning session's Arc rides along so a
    /// backend with in-flight kernel operations can keep the fd alive
    /// until they drain.
    Deregister {
        fd: i32,
        keepalive: Arc<dyn ReactorSession>,
    },
}

struct Core {
    wakefd: i32,
    /// Backend actually running (after any io_uring→epoll fallback);
    /// resolved before the reactor thread spawns.
    backend: &'static str,
    config: ReactorConfig,
    sessions: Mutex<HashMap<u64, Arc<dyn ReactorSession>>>,
    dirty: Mutex<Vec<u64>>,
    dp_cmds: Mutex<Vec<DpCmd>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    stats: Arc<StatsCells>,
}

// SAFETY-free: fds are plain ints; all syscalls on them are thread-safe.

impl Core {
    fn session(&self, id: u64) -> Option<Arc<dyn ReactorSession>> {
        self.sessions.lock().get(&id).cloned()
    }

    fn deregister(&self, id: u64, session: &dyn ReactorSession) {
        let removed = self.sessions.lock().remove(&id);
        if let Some(owner) = removed {
            let mut cmds = self.dp_cmds.lock();
            for sock in session.sockets() {
                cmds.push(DpCmd::Deregister {
                    fd: sock.raw_fd(),
                    keepalive: Arc::clone(&owner),
                });
            }
            drop(cmds);
            self.wake();
        }
    }

    fn kick(&self, id: u64) {
        self.dirty.lock().push(id);
        self.wake();
    }

    /// Ring the eventfd so the reactor's readiness wait returns.
    fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            libc::write(self.wakefd, &one as *const u64 as *const libc::c_void, 8);
        }
    }
}

impl Drop for Core {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.wakefd);
        }
    }
}

/// Joins the reactor thread when the last user-held [`Reactor`] handle
/// drops. Sessions hold only the [`Core`], so the thread's lifetime is
/// tied to the handles, not to straggling sessions.
struct ThreadGuard {
    core: Arc<Core>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        self.core.wake();
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

/// Handle to a shared reactor. Cheap to clone; the reactor thread runs
/// until the last handle drops ([`Reactor::global`]'s never does).
#[derive(Clone)]
pub struct Reactor {
    core: Arc<Core>,
    _guard: Arc<ThreadGuard>,
}

impl Reactor {
    /// Spawn a dedicated reactor (its own epoll instance and thread).
    /// Most applications want [`Reactor::global`] instead and should
    /// only build private reactors to shard very large session counts
    /// across cores.
    pub fn new() -> io::Result<Reactor> {
        Reactor::with_config(ReactorConfig::default())
    }

    /// Spawn a dedicated reactor with explicit tunables. The datapath
    /// backend is probed here, before the thread starts: an io_uring
    /// request on a kernel (or build) without support falls back to
    /// epoll, and [`Reactor::stats`] reports the backend that actually
    /// runs.
    pub fn with_config(config: ReactorConfig) -> io::Result<Reactor> {
        let wakefd = unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) };
        if wakefd < 0 {
            return Err(io::Error::last_os_error());
        }
        let stats = Arc::new(StatsCells::default());
        let dp = match make_datapath(config.datapath, wakefd, Arc::clone(&stats)) {
            Ok(dp) => dp,
            Err(e) => {
                unsafe { libc::close(wakefd) };
                return Err(e);
            }
        };
        let core = Arc::new(Core {
            wakefd,
            backend: dp.backend(),
            config,
            sessions: Mutex::new(HashMap::new()),
            dirty: Mutex::new(Vec::new()),
            dp_cmds: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            stats,
        });
        let thread = {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("hrmc-reactor".into())
                .spawn(move || run(&core, dp))?
        };
        Ok(Reactor {
            _guard: Arc::new(ThreadGuard {
                core: Arc::clone(&core),
                thread: Mutex::new(Some(thread)),
            }),
            core,
        })
    }

    /// The process-wide shared reactor, created on first use. Every
    /// session built without an explicit [`crate::Session`] `.reactor(..)`
    /// lands here — one thread no matter how many sessions the process
    /// runs.
    ///
    /// # Panics
    /// Panics if the kernel refuses the epoll/eventfd setup on first
    /// use (a process-fatal condition).
    pub fn global() -> Reactor {
        static GLOBAL: OnceLock<Reactor> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Reactor::new().expect("cannot create the global hrmc reactor"))
            .clone()
    }

    /// Sessions currently registered.
    pub fn session_count(&self) -> usize {
        self.core.sessions.lock().len()
    }

    /// Snapshot of the reactor's counters and batch-size distributions.
    pub fn stats(&self) -> ReactorStats {
        let s = &self.core.stats;
        let rx = s.rx_batches.lock();
        let tx = s.tx_batches.lock();
        let loop_us = s.loop_us.lock();
        let slip = s.timer_slippage_us.lock();
        ReactorStats {
            backend: self.core.backend,
            sessions: self.session_count(),
            sessions_hwm: s.sessions_hwm.load(Ordering::Relaxed),
            epoll_wakeups: s.epoll_wakeups.load(Ordering::Relaxed),
            timer_fires: s.timer_fires.load(Ordering::Relaxed),
            kicks: s.kicks.load(Ordering::Relaxed),
            recvmmsg_calls: s.recvmmsg_calls.load(Ordering::Relaxed),
            sendmmsg_calls: s.sendmmsg_calls.load(Ordering::Relaxed),
            uring_enters: s.uring_enters.load(Ordering::Relaxed),
            packets_rx: s.packets_rx.load(Ordering::Relaxed),
            packets_tx: s.packets_tx.load(Ordering::Relaxed),
            tx_retries: s.tx_retries.load(Ordering::Relaxed),
            tx_drops: s.tx_drops.load(Ordering::Relaxed),
            timer_heap_len: s.timer_heap_len.load(Ordering::Relaxed),
            timers_armed: s.timers_armed.load(Ordering::Relaxed),
            rx_batch_mean: rx.mean(),
            rx_batch_max: rx.max().unwrap_or(0),
            tx_batch_mean: tx.mean(),
            tx_batch_max: tx.max().unwrap_or(0),
            loop_p99_us: loop_us.p99(),
            timer_slippage_p99_us: slip.p99(),
            idle_cap_ms: self.core.config.idle_deadline_cap.as_millis() as u64,
        }
    }

    /// The tunables this reactor was built with.
    pub fn config(&self) -> &ReactorConfig {
        &self.core.config
    }

    /// Per-session traffic totals, ordered by session id — the basis
    /// for per-session rate displays (`hrmc top`) and the `/json`
    /// telemetry dump.
    pub fn session_health(&self) -> Vec<SessionHealth> {
        let mut out: Vec<SessionHealth> = self
            .core
            .sessions
            .lock()
            .iter()
            .map(|(&id, s)| {
                let mut h = s.health();
                h.id = id;
                h
            })
            .collect();
        out.sort_by_key(|h| h.id);
        out
    }

    /// Publish the reactor's gauges and histograms into a metrics
    /// registry under `reactor_*` names. Idempotent (gauges are set,
    /// histograms replaced), so a telemetry sampler can call it on
    /// every sampling interval without double-counting.
    pub fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        // A single reactor is one shard; `ReactorPool::publish_metrics`
        // uses the same helpers with its aggregate and width.
        publish_reactor_gauges(reg, &self.stats(), 1);
        reg.set_histogram("reactor_rx_batch", &self.core.stats.rx_batches.lock());
        reg.set_histogram("reactor_tx_batch", &self.core.stats.tx_batches.lock());
        reg.set_histogram("reactor_loop_us", &self.core.stats.loop_us.lock());
        reg.set_histogram(
            "reactor_timer_slippage_us",
            &self.core.stats.timer_slippage_us.lock(),
        );
        publish_session_gauges(reg, &self.sessions_snapshot());
    }

    /// Clone out the live session list. Sessions are cloned out of the
    /// lock first: a session's own engine lock is taken inside
    /// `publish_metrics`, and holding the registry lock across it would
    /// order those locks against the reactor thread's.
    pub(crate) fn sessions_snapshot(&self) -> Vec<Arc<dyn ReactorSession>> {
        self.core.sessions.lock().values().cloned().collect()
    }

    /// The shared counter cells (for [`crate::ReactorPool`]'s
    /// cross-shard histogram merges).
    pub(crate) fn stats_cells(&self) -> Arc<StatsCells> {
        Arc::clone(&self.core.stats)
    }

    /// Register a session: its sockets are queued for the reactor
    /// thread's datapath (nonblocking first, for the epoll backend —
    /// io_uring keeps them blocking, since a nonblocking fd makes
    /// `RECVMSG` complete `-EAGAIN` instead of arming an internal poll)
    /// and its first deadline is folded into the timer heap. Returns
    /// the session id and the [`ReactorRef`] the handle drives kicks
    /// and deregistration through — deliberately *not* a full
    /// [`Reactor`], so live sessions do not keep the reactor thread
    /// alive past the last user-held handle. A socket the datapath
    /// cannot watch surfaces asynchronously via
    /// [`ReactorSession::on_fatal`].
    pub(crate) fn register(
        &self,
        session: Arc<dyn ReactorSession>,
    ) -> Result<(u64, ReactorRef), NetError> {
        if self.core.shutdown.load(Ordering::SeqCst) {
            return Err(NetError::ReactorClosed);
        }
        let id = self.core.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let sockets = session.sockets();
            assert!(
                sockets.len() as u64 <= MAX_ROLES,
                "too many session sockets"
            );
            if self.core.backend == "epoll" {
                for sock in &sockets {
                    sock.set_nonblocking(true).map_err(NetError::Io)?;
                }
            }
        }
        {
            let mut map = self.core.sessions.lock();
            map.insert(id, session);
            let n = map.len() as u64;
            self.core.stats.sessions_hwm.fetch_max(n, Ordering::Relaxed);
        }
        self.core.dp_cmds.lock().push(DpCmd::Register { id });
        self.core.kick(id);
        Ok((
            id,
            ReactorRef {
                core: Arc::clone(&self.core),
            },
        ))
    }
}

/// A session handle's grip on its reactor: shares the [`Core`] (so
/// kicks and deregistration work) but NOT the thread guard — dropping
/// the last user-held [`Reactor`] shuts the loop down even while
/// sessions are live, and those sessions fail over to
/// [`crate::NetError::ReactorClosed`].
#[derive(Clone)]
pub(crate) struct ReactorRef {
    core: Arc<Core>,
}

impl ReactorRef {
    /// Ask the reactor to re-read `id`'s deadline: a submit, close, or
    /// application event may have armed an earlier timer. The eventfd's
    /// counter semantics make the kick impossible to lose — the old
    /// per-endpoint drivers needed a lock dance for the same guarantee.
    pub(crate) fn kick(&self, id: u64) {
        self.core.kick(id);
    }

    /// Remove a session: its sockets leave the epoll set, the reactor
    /// drops its timer state lazily.
    pub(crate) fn deregister(&self, id: u64, session: &dyn ReactorSession) {
        self.core.deregister(id, session);
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("sessions", &self.session_count())
            .finish()
    }
}

/// Set the `reactor_*` gauges from a stats snapshot (a single reactor's
/// or a pool aggregate). Backend identity is a numeric gauge — the
/// exposition formats carry no strings: 0 = epoll, 1 = uring.
pub(crate) fn publish_reactor_gauges(reg: &mut MetricsRegistry, st: &ReactorStats, shards: u64) {
    reg.set_gauge("datapath_backend", u64::from(st.backend == "uring"));
    reg.set_gauge("reactor_shards", shards);
    reg.set_gauge("reactor_sessions", st.sessions as u64);
    reg.set_gauge("reactor_sessions_hwm", st.sessions_hwm);
    reg.set_gauge("reactor_epoll_wakeups", st.epoll_wakeups);
    reg.set_gauge("reactor_timer_fires", st.timer_fires);
    reg.set_gauge("reactor_kicks", st.kicks);
    reg.set_gauge("reactor_recvmmsg_calls", st.recvmmsg_calls);
    reg.set_gauge("reactor_sendmmsg_calls", st.sendmmsg_calls);
    reg.set_gauge("reactor_uring_enters", st.uring_enters);
    reg.set_gauge("reactor_packets_rx", st.packets_rx);
    reg.set_gauge("reactor_packets_tx", st.packets_tx);
    reg.set_gauge("reactor_tx_retries", st.tx_retries);
    reg.set_gauge("reactor_tx_drops", st.tx_drops);
    reg.set_gauge("reactor_timer_heap_len", st.timer_heap_len);
    reg.set_gauge("reactor_timers_armed", st.timers_armed);
    reg.set_gauge("reactor_idle_cap_ms", st.idle_cap_ms);
}

/// Sum engine-level degradation counters over `sessions` and let each
/// session publish its own gauges. With several publishing sessions the
/// last writer wins per gauge, matching the common one-sender-per-
/// process deployment.
pub(crate) fn publish_session_gauges(
    reg: &mut MetricsRegistry,
    sessions: &[Arc<dyn ReactorSession>],
) {
    let mut agg = SessionHealth::default();
    let mut failed = 0u64;
    for s in sessions {
        let h = s.health();
        agg.rate_halvings += h.rate_halvings;
        agg.urgent_stops += h.urgent_stops;
        agg.members_ejected += h.members_ejected;
        agg.malformed_packets += h.malformed_packets;
        agg.checksum_failures += h.checksum_failures;
        agg.overflow_drops += h.overflow_drops;
        failed += u64::from(h.session_failed);
    }
    // Degradation counters summed over live sessions: the live-wire
    // equivalents of the hostile matrix's SimReport columns.
    reg.set_gauge("sessions_rate_halvings", agg.rate_halvings);
    reg.set_gauge("sessions_urgent_stops", agg.urgent_stops);
    reg.set_gauge("sessions_members_ejected", agg.members_ejected);
    reg.set_gauge("sessions_malformed_packets", agg.malformed_packets);
    reg.set_gauge("sessions_checksum_failures", agg.checksum_failures);
    reg.set_gauge("sessions_overflow_drops", agg.overflow_drops);
    reg.set_gauge("sessions_failed", failed);
    for s in sessions {
        s.publish_metrics(reg);
    }
}

// ---------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------

/// Fold a freshly read deadline into the per-session minimum (heap +
/// `deadlines` map form a lazy-deletion min-heap: the map holds the
/// authoritative earliest promise, the heap may hold stale extras).
fn fold_deadline(
    session: &Arc<dyn ReactorSession>,
    id: u64,
    deadlines: &mut HashMap<u64, Instant>,
    heap: &mut BinaryHeap<Reverse<(Instant, u64)>>,
) {
    if let Some(d) = session.next_deadline() {
        let earlier = deadlines.get(&id).is_none_or(|&cur| d < cur);
        if earlier {
            deadlines.insert(id, d);
            heap.push(Reverse((d, id)));
        }
    }
}

/// Apply queued socket-set changes on the reactor thread (the only
/// thread allowed to touch the datapath). A registration the backend
/// refuses fails the session asynchronously, mirroring what a fatal
/// socket error during dispatch does.
fn drain_dp_cmds(core: &Arc<Core>, io: &mut IoBatch, deadlines: &mut HashMap<u64, Instant>) {
    let cmds = std::mem::take(&mut *core.dp_cmds.lock());
    for cmd in cmds {
        match cmd {
            DpCmd::Register { id } => {
                let Some(session) = core.session(id) else {
                    continue; // deregistered before the loop saw it
                };
                let mut err = None;
                {
                    let sockets = session.sockets();
                    for (role, sock) in sockets.iter().enumerate() {
                        if let Err(e) = io.dp.register(sock.raw_fd(), id * MAX_ROLES + role as u64)
                        {
                            for prior in &sockets[..role] {
                                io.dp.deregister(prior.raw_fd(), Arc::clone(&session));
                            }
                            err = Some(e);
                            break;
                        }
                    }
                }
                if let Some(e) = err {
                    core.sessions.lock().remove(&id);
                    deadlines.remove(&id);
                    session.on_fatal(Fatal::Io(e));
                }
            }
            DpCmd::Deregister { fd, keepalive } => io.dp.deregister(fd, keepalive),
        }
    }
}

fn run(core: &Arc<Core>, dp: Box<dyn Datapath>) {
    let mut io = IoBatch::new(Arc::clone(&core.stats), dp);
    let mut deadlines: HashMap<u64, Instant> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut ready: Vec<u64> = Vec::with_capacity(64);

    let idle_cap = core.config.idle_deadline_cap;

    while !core.shutdown.load(Ordering::SeqCst) {
        // 0. Apply queued registrations/deregistrations.
        drain_dp_cmds(core, &mut io, &mut deadlines);

        // 1. Service every due deadline.
        let now = Instant::now();
        while let Some(&Reverse((t, id))) = heap.peek() {
            if t > now {
                break;
            }
            heap.pop();
            if deadlines.get(&id) != Some(&t) {
                continue; // stale entry superseded by an earlier fold
            }
            deadlines.remove(&id);
            let Some(session) = core.session(id) else {
                continue;
            };
            core.stats.timer_fires.fetch_add(1, Ordering::Relaxed);
            // Slippage: how far past its deadline this timer fired —
            // the loop's scheduling health under load.
            core.stats
                .timer_slippage_us
                .lock()
                .record(now.saturating_duration_since(t).as_micros() as u64);
            session.on_tick(&mut io);
            // A fresh deadline is taken only after servicing a tick.
            fold_deadline(&session, id, &mut deadlines, &mut heap);
        }
        core.stats
            .timer_heap_len
            .store(heap.len() as u64, Ordering::Relaxed);
        core.stats
            .timers_armed
            .store(deadlines.len() as u64, Ordering::Relaxed);
        let busy_before_wait = now.elapsed();

        // 2. Sleep until the earliest remaining deadline (rounded up to
        //    the next millisecond — a jiffy is 10 ms) or an event.
        let timeout_ms = match heap.peek() {
            Some(&Reverse((t, _))) => t
                .saturating_duration_since(now)
                .min(idle_cap)
                .as_micros()
                .div_ceil(1000) as i32,
            None => idle_cap.as_millis() as i32,
        };
        if let Err(e) = io.dp.wait(timeout_ms, &mut ready) {
            if e.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            break; // EBADF after close: shutting down
        }
        core.stats.epoll_wakeups.fetch_add(1, Ordering::Relaxed);
        let dispatch_start = Instant::now();

        // 3. Dispatch readiness.
        for &token in &ready {
            if token == KICK_TOKEN {
                let mut drained: u64 = 0;
                unsafe {
                    libc::read(
                        core.wakefd,
                        &mut drained as *mut u64 as *mut libc::c_void,
                        8,
                    );
                }
                let ids = std::mem::take(&mut *core.dirty.lock());
                core.stats
                    .kicks
                    .fetch_add(ids.len() as u64, Ordering::Relaxed);
                for id in ids {
                    match core.session(id) {
                        Some(session) => fold_deadline(&session, id, &mut deadlines, &mut heap),
                        None => {
                            deadlines.remove(&id);
                        }
                    }
                }
                continue;
            }
            let id = token / MAX_ROLES;
            let role = (token % MAX_ROLES) as usize;
            let Some(session) = core.session(id) else {
                continue;
            };
            match session.on_readable(role, &mut io) {
                Ok(()) => fold_deadline(&session, id, &mut deadlines, &mut heap),
                Err(e) => {
                    // Fatal socket error: stop watching (level-triggered
                    // epoll would otherwise re-report it forever — the
                    // busy-spin the old per-endpoint RX threads had) and
                    // surface the failure to the application.
                    core.sessions.lock().remove(&id);
                    for sock in session.sockets() {
                        io.dp.deregister(sock.raw_fd(), Arc::clone(&session));
                    }
                    deadlines.remove(&id);
                    session.on_fatal(Fatal::Io(e));
                }
            }
        }

        // Loop latency = busy time this iteration (deadline service +
        // dispatch), excluding the epoll sleep itself.
        let busy = busy_before_wait + dispatch_start.elapsed();
        core.stats.loop_us.lock().record(busy.as_micros() as u64);
    }

    // Shutdown: every still-registered session learns its driver died.
    let sessions = std::mem::take(&mut *core.sessions.lock());
    for (_, session) in sessions {
        session.on_fatal(Fatal::ReactorClosed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactor_spins_up_and_down() {
        let r = Reactor::new().expect("reactor");
        assert_eq!(r.session_count(), 0);
        let st = r.stats();
        assert_eq!(st.sessions_hwm, 0);
        assert_eq!(st.packets_rx, 0);
        drop(r); // must join the thread without hanging
    }

    #[test]
    fn clones_share_the_core() {
        let r = Reactor::new().expect("reactor");
        let r2 = r.clone();
        drop(r);
        // The thread is still alive for r2: stats remain readable.
        let _ = r2.stats();
    }

    #[test]
    fn global_reactor_is_a_singleton() {
        let a = Reactor::global();
        let b = Reactor::global();
        assert!(Arc::ptr_eq(&a.core, &b.core));
    }

    #[test]
    fn rx_error_classification() {
        use io::ErrorKind as K;
        let d = |e: io::Error| rx_error_disposition(&e);
        assert_eq!(d(io::Error::from(K::WouldBlock)), RxError::Drained);
        assert_eq!(d(io::Error::from(K::TimedOut)), RxError::Drained);
        assert_eq!(d(io::Error::from(K::Interrupted)), RxError::Retry);
        assert_eq!(d(io::Error::from(K::ConnectionRefused)), RxError::Retry);
        assert_eq!(
            d(io::Error::from_raw_os_error(EHOSTUNREACH)),
            RxError::Retry
        );
        // The busy-spin bug: EBADF must be fatal, never retried.
        assert_eq!(d(io::Error::from_raw_os_error(9)), RxError::Fatal);
        assert_eq!(d(io::Error::from(K::PermissionDenied)), RxError::Fatal);
    }

    #[test]
    fn stats_syscalls_per_packet() {
        let st = ReactorStats {
            recvmmsg_calls: 10,
            sendmmsg_calls: 10,
            packets_rx: 50,
            packets_tx: 30,
            ..ReactorStats::default()
        };
        assert!((st.syscalls_per_packet() - 0.25).abs() < 1e-9);
        assert!(ReactorStats::default().syscalls_per_packet() < 1e-9);
    }

    /// A scripted datapath: counts `send_batch` invocations and plays
    /// back a canned verdict per call — the trait seam that lets the
    /// retry loop be tested without provoking real kernel pressure.
    struct ScriptedDatapath {
        calls: Arc<AtomicU64>,
        verdicts: Mutex<std::collections::VecDeque<Result<usize, io::ErrorKind>>>,
    }

    impl Datapath for ScriptedDatapath {
        fn backend(&self) -> &'static str {
            "scripted"
        }
        fn register(&mut self, _fd: i32, _token: u64) -> io::Result<()> {
            Ok(())
        }
        fn deregister(&mut self, _fd: i32, _keepalive: Arc<dyn ReactorSession>) {}
        fn wait(&mut self, _timeout_ms: i32, ready: &mut Vec<u64>) -> io::Result<()> {
            ready.clear();
            Ok(())
        }
        fn recv_batch(&mut self, _sock: &McastSocket, _rx: &mut RxBatch) -> io::Result<usize> {
            Err(io::Error::from(io::ErrorKind::WouldBlock))
        }
        fn send_batch(
            &mut self,
            _sock: &McastSocket,
            bufs: &[Vec<u8>],
            _dsts: &[SocketAddr],
        ) -> io::Result<usize> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            match self.verdicts.lock().pop_front() {
                Some(Ok(n)) => Ok(n.min(bufs.len())),
                Some(Err(kind)) => Err(io::Error::from(kind)),
                None => Ok(bufs.len()),
            }
        }
    }

    fn loopback_sender() -> McastSocket {
        let group = std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(239, 255, 87, 1), 47001);
        McastSocket::sender(group, std::net::Ipv4Addr::LOCALHOST).expect("socket")
    }

    /// Transient send failures re-invoke the backend — one `send_batch`
    /// call per attempt, so a backend that counts per invocation (epoll
    /// does) reports every real kernel crossing, not just the winners.
    #[test]
    fn flush_tx_reinvokes_backend_once_per_attempt() {
        let calls = Arc::new(AtomicU64::new(0));
        let mut verdicts = std::collections::VecDeque::new();
        verdicts.push_back(Err(io::ErrorKind::WouldBlock));
        verdicts.push_back(Err(io::ErrorKind::Interrupted));
        verdicts.push_back(Ok(3));
        let stats = Arc::new(StatsCells::default());
        let mut io = IoBatch::new(
            Arc::clone(&stats),
            Box::new(ScriptedDatapath {
                calls: Arc::clone(&calls),
                verdicts: Mutex::new(verdicts),
            }),
        );
        let sock = loopback_sender();
        let dst = SocketAddr::V4(std::net::SocketAddrV4::new(
            std::net::Ipv4Addr::LOCALHOST,
            47002,
        ));
        for _ in 0..3 {
            io.stage().extend_from_slice(b"payload");
            io.commit(dst, &sock);
        }
        io.flush_tx(&sock);
        assert_eq!(calls.load(Ordering::Relaxed), 3, "one call per attempt");
        assert_eq!(stats.tx_retries.load(Ordering::Relaxed), 2);
        assert_eq!(stats.packets_tx.load(Ordering::Relaxed), 3);
        assert_eq!(stats.tx_drops.load(Ordering::Relaxed), 0);
    }

    /// A persistently failing head datagram is dropped, the rest of the
    /// batch still goes out, and every attempt was a counted call.
    #[test]
    fn flush_tx_drops_poisoned_head_after_retry_budget() {
        let calls = Arc::new(AtomicU64::new(0));
        let mut verdicts = std::collections::VecDeque::new();
        for _ in 0..TX_RETRIES {
            verdicts.push_back(Err(io::ErrorKind::WouldBlock));
        }
        // Budget spent: the next failure (transient or not) drops the head.
        verdicts.push_back(Err(io::ErrorKind::WouldBlock));
        verdicts.push_back(Ok(1)); // the surviving tail
        let stats = Arc::new(StatsCells::default());
        let mut io = IoBatch::new(
            Arc::clone(&stats),
            Box::new(ScriptedDatapath {
                calls: Arc::clone(&calls),
                verdicts: Mutex::new(verdicts),
            }),
        );
        let sock = loopback_sender();
        let dst = SocketAddr::V4(std::net::SocketAddrV4::new(
            std::net::Ipv4Addr::LOCALHOST,
            47003,
        ));
        for _ in 0..2 {
            io.stage().extend_from_slice(b"payload");
            io.commit(dst, &sock);
        }
        io.flush_tx(&sock);
        assert_eq!(calls.load(Ordering::Relaxed), TX_RETRIES as u64 + 2);
        assert_eq!(stats.tx_retries.load(Ordering::Relaxed), TX_RETRIES as u64);
        assert_eq!(stats.tx_drops.load(Ordering::Relaxed), 1);
        assert_eq!(stats.packets_tx.load(Ordering::Relaxed), 1);
    }

    /// The epoll backend counts the syscall *before* the verdict: a
    /// failing `sendmmsg` (here: destination port 0, `EINVAL`) is still
    /// a kernel crossing and must show up in `sendmmsg_calls` — the
    /// under-count that skewed `syscalls_per_packet` on lossy paths.
    #[test]
    fn epoll_backend_counts_failed_send_attempts() {
        let wakefd = unsafe { libc::eventfd(0, libc::EFD_NONBLOCK | libc::EFD_CLOEXEC) };
        assert!(wakefd >= 0);
        let stats = Arc::new(StatsCells::default());
        let mut dp = crate::datapath::EpollDatapath::new(wakefd, Arc::clone(&stats)).expect("dp");
        let sock = loopback_sender();
        let good = SocketAddr::V4(std::net::SocketAddrV4::new(
            std::net::Ipv4Addr::LOCALHOST,
            47004,
        ));
        let bad = SocketAddr::V4(std::net::SocketAddrV4::new(
            std::net::Ipv4Addr::LOCALHOST,
            0,
        ));
        dp.send_batch(&sock, &[b"ok".to_vec()], &[good])
            .expect("send");
        assert_eq!(stats.sendmmsg_calls.load(Ordering::Relaxed), 1);
        let err = dp.send_batch(&sock, &[b"x".to_vec()], &[bad]);
        assert!(err.is_err(), "port 0 must fail");
        assert_eq!(
            stats.sendmmsg_calls.load(Ordering::Relaxed),
            2,
            "failed attempt is still a syscall"
        );
        drop(dp);
        unsafe { libc::close(wakefd) };
    }

    #[test]
    fn syscalls_per_packet_is_zero_before_any_packet_moves() {
        // An idle reactor polls (recvmmsg returning WouldBlock still
        // counts a syscall in principle) without moving packets; the
        // ratio must read 0.0, not the raw syscall count.
        let st = ReactorStats {
            recvmmsg_calls: 1_000,
            sendmmsg_calls: 7,
            packets_rx: 0,
            packets_tx: 0,
            ..ReactorStats::default()
        };
        assert_eq!(st.syscalls_per_packet(), 0.0);
    }

    #[test]
    fn idle_cap_is_configurable_and_exported() {
        let r = Reactor::with_config(ReactorConfig {
            idle_deadline_cap: Duration::from_millis(25),
            ..ReactorConfig::default()
        })
        .expect("reactor");
        assert_eq!(r.config().idle_deadline_cap, Duration::from_millis(25));
        assert_eq!(r.stats().idle_cap_ms, 25);
        let mut reg = MetricsRegistry::new();
        r.publish_metrics(&mut reg);
        assert_eq!(reg.gauge("reactor_idle_cap_ms"), Some(25));
        assert_eq!(reg.gauge("reactor_timer_heap_len"), Some(0));
        // Default config keeps the historical 100 ms cap.
        assert_eq!(
            ReactorConfig::default().idle_deadline_cap,
            Duration::from_millis(100)
        );
        drop(r);
    }

    #[test]
    fn publish_metrics_is_idempotent() {
        let r = Reactor::new().expect("reactor");
        // Let the loop run a few iterations so loop_us has samples.
        std::thread::sleep(Duration::from_millis(5));
        r.core.wake();
        std::thread::sleep(Duration::from_millis(5));
        let mut reg = MetricsRegistry::new();
        r.publish_metrics(&mut reg);
        let first = reg.histogram("reactor_loop_us").map(|h| h.count());
        r.publish_metrics(&mut reg);
        let second = reg.histogram("reactor_loop_us").map(|h| h.count());
        // Re-publishing replaces rather than doubling: counts can only
        // grow by what the live loop recorded in between.
        if let (Some(a), Some(b)) = (first, second) {
            assert!(b >= a, "count shrank: {a} -> {b}");
            assert!(b < 2 * a.max(1) + 16, "double-counted: {a} -> {b}");
        }
    }
}
