//! Continuous telemetry for live sessions: a background sampler over
//! the shared metrics registry plus a dependency-free exposition
//! endpoint.
//!
//! [`Telemetry`] owns three things:
//!
//! 1. a shared [`MetricsRegistry`] fed by per-session
//!    [`MetricsObserver`]s (attach with
//!    [`crate::SenderBuilder::telemetry`] /
//!    [`crate::ReceiverBuilder::telemetry`]) and by the reactor's
//!    health gauges ([`Reactor::publish_metrics`], re-published on
//!    every sampling interval);
//! 2. a sampling thread that turns the registry into a bounded time
//!    series of [`TelemetrySample`]s (see [`hrmc_core::telemetry`]),
//!    optionally streaming each sample as a JSONL line;
//! 3. an optional TCP listener serving the Prometheus text exposition
//!    format on `/metrics`, the latest sample plus per-session health
//!    on `/json`, and the online health monitor's alert history on
//!    `/alerts` — a tiny blocking HTTP/1.0 responder, no dependencies,
//!    pointable at any scraper or at `hrmc top`.
//!
//! Everything stops and joins when the [`Telemetry`] handle drops.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hrmc_core::{
    HealthConfig, MetricsObserver, MetricsRegistry, MultiObserver, ProtocolObserver, Sampler,
    SharedMonitor, TelemetrySample,
};
use parking_lot::Mutex;

use crate::pool::ReactorPool;
use crate::reactor::Reactor;

/// Configures and starts a [`Telemetry`] pipeline.
pub struct TelemetryBuilder {
    sample_interval: Duration,
    ring: usize,
    listen: Option<SocketAddr>,
    sink: Option<Box<dyn Write + Send>>,
    pool: Option<ReactorPool>,
    health: Option<HealthConfig>,
}

impl TelemetryBuilder {
    /// Wall-clock distance between samples (default 500 ms).
    pub fn sample_interval(mut self, interval: Duration) -> Self {
        self.sample_interval = interval.max(Duration::from_millis(10));
        self
    }

    /// How many samples the in-memory ring retains (default 720 — six
    /// minutes at the default interval).
    pub fn ring(mut self, capacity: usize) -> Self {
        self.ring = capacity;
        self
    }

    /// Serve `/metrics` (Prometheus text) and `/json` on this address.
    /// Bind port 0 to let the kernel pick; read the result from
    /// [`Telemetry::local_addr`].
    pub fn listen(mut self, addr: SocketAddr) -> Self {
        self.listen = Some(addr);
        self
    }

    /// Stream every sample as one JSONL line to `w`.
    pub fn sink(mut self, w: Box<dyn Write + Send>) -> Self {
        self.sink = Some(w);
        self
    }

    /// Stream every sample as JSONL to a file (created/truncated).
    pub fn jsonl_path(mut self, path: &Path) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        self.sink = Some(Box::new(std::io::BufWriter::new(f)));
        Ok(self)
    }

    /// Which reactor's health to publish (default: [`Reactor::global`]).
    pub fn reactor(mut self, reactor: Reactor) -> Self {
        self.pool = Some(reactor.into());
        self
    }

    /// Publish a whole [`ReactorPool`]'s health instead: counters
    /// summed and histograms merged across shards, per-session health
    /// ids tagged with their shard, and the pool width reported as
    /// `hrmc_reactor_shards` / the `"shards"` key of `/json`.
    pub fn reactor_pool(mut self, pool: &ReactorPool) -> Self {
        self.pool = Some(pool.clone());
        self
    }

    /// Arm the online [`hrmc_core::HealthMonitor`] with this rule set.
    /// Session observers obtained from [`Telemetry::observer`] then fan
    /// into the monitor as well, each sample is fed to it, and alert
    /// transitions surface as `hrmc_alerts_*` metrics, on the `/alerts`
    /// route, and inside `/json`.
    pub fn health(mut self, cfg: HealthConfig) -> Self {
        self.health = Some(cfg);
        self
    }

    /// Start the sampling thread (and the listener, if configured).
    pub fn start(self) -> std::io::Result<Telemetry> {
        let mut sampler = Sampler::new(self.ring);
        if let Some(sink) = self.sink {
            sampler.set_sink(sink);
        }
        let shared = Arc::new(Shared {
            obs: MetricsObserver::new(),
            sampler: Mutex::new(sampler),
            pool: self.pool.unwrap_or_else(|| Reactor::global().into()),
            monitor: self
                .health
                .filter(HealthConfig::armed)
                .map(SharedMonitor::new),
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
        });
        let mut threads = Vec::new();
        let mut local_addr = None;
        if let Some(addr) = self.listen {
            let listener = TcpListener::bind(addr)?;
            local_addr = Some(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let shared2 = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("hrmc-telemetry-http".into())
                    .spawn(move || serve(&shared2, &listener))?,
            );
        }
        let interval = self.sample_interval;
        let shared2 = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("hrmc-telemetry-sampler".into())
                .spawn(move || {
                    while !sleep_interruptibly(&shared2.shutdown, interval) {
                        shared2.collect();
                    }
                })?,
        );
        Ok(Telemetry {
            shared,
            threads,
            local_addr,
        })
    }
}

/// Sleep for `total` in short slices, returning `true` as soon as the
/// shutdown flag is observed (so Drop never waits a full interval).
fn sleep_interruptibly(shutdown: &AtomicBool, total: Duration) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return true;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return false;
        }
        std::thread::sleep(left.min(Duration::from_millis(20)));
    }
}

struct Shared {
    /// Source of the shared registry; clones of this observer are what
    /// sessions install.
    obs: MetricsObserver,
    sampler: Mutex<Sampler>,
    /// The reactor(s) whose health this pipeline publishes — a single
    /// reactor is just a pool of one.
    pool: ReactorPool,
    /// The armed online health monitor, when the builder asked for one.
    monitor: Option<SharedMonitor>,
    epoch: Instant,
    shutdown: AtomicBool,
}

impl Shared {
    /// One full snapshot: protocol metrics + reactor health, in a form
    /// every renderer shares. Alert and sampling-loss gauges are set on
    /// the local snapshot (never on the live registry), so the picture
    /// is consistent without nesting locks.
    fn gather(&self) -> MetricsRegistry {
        let mut reg = self.obs.snapshot();
        self.pool.publish_metrics(&mut reg);
        if let Some(mon) = &self.monitor {
            reg.set_gauge("alerts_active", mon.active());
        }
        let dropped = self.sampler.lock().overwritten();
        reg.set_gauge("telemetry_samples_dropped", dropped);
        reg
    }

    /// Take one sample now, feeding it (and any alert transitions it
    /// triggers) through the monitor.
    fn collect(&self) {
        let reg = self.gather();
        let now_us = self.epoch.elapsed().as_micros() as u64;
        self.sampler.lock().sample(now_us, &reg);
        if let Some(mon) = &self.monitor {
            if let Some(sample) = self.sampler.lock().latest().cloned() {
                mon.observe_sample(&sample);
            }
            // Alert transitions flow through a registry observer so the
            // `hrmc_alerts_raised_total` / `_cleared_total` counters and
            // any JSONL sink see the same `health_alert` events the sim
            // path writes.
            let alerts = mon.take_alerts();
            if !alerts.is_empty() {
                let mut obs = self.obs.clone();
                for a in &alerts {
                    obs.on_event(a.t_us, &a.to_event());
                }
            }
        }
    }

    /// The `/alerts` body: the monitor's retained alert history as a
    /// JSON array, `[]` when no monitor is armed.
    fn alerts_json(&self) -> String {
        match &self.monitor {
            Some(mon) => mon.render_json(),
            None => "[]".to_string(),
        }
    }

    /// The `/json` body: latest sample, per-session health, derived
    /// reactor ratios. Hand-rolled JSON — names are identifiers,
    /// numbers are numbers.
    fn json_body(&self) -> String {
        use std::fmt::Write as _;
        let sample = self
            .sampler
            .lock()
            .latest()
            .map(|s| s.to_json_line())
            .unwrap_or_else(|| "null".to_string());
        let st = self.pool.aggregate();
        let mut out = String::with_capacity(512 + sample.len());
        let _ = write!(out, "{{\"sample\":{sample},\"sessions\":[");
        for (i, h) in self.pool.session_health().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"role\":\"{}\",\"packets_rx\":{},\"packets_tx\":{},\
                 \"bytes_rx\":{},\"bytes_tx\":{}}}",
                h.id, h.role, h.packets_rx, h.packets_tx, h.bytes_rx, h.bytes_tx
            );
        }
        let _ = write!(out, "],\"alerts\":{}", self.alerts_json());
        let _ = write!(
            out,
            ",\"reactor\":{{\"backend\":\"{}\",\"shards\":{},\"sessions\":{},\
             \"syscalls_per_packet\":{:.4},\
             \"loop_p99_us\":{},\"timer_slippage_p99_us\":{},\"idle_cap_ms\":{}}}}}",
            st.backend,
            self.pool.shards(),
            st.sessions,
            st.syscalls_per_packet(),
            st.loop_p99_us,
            st.timer_slippage_p99_us,
            st.idle_cap_ms
        );
        out
    }
}

/// A running telemetry pipeline. Dropping it stops the sampler and the
/// listener and joins both threads.
pub struct Telemetry {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
}

impl Telemetry {
    /// Start configuring a pipeline.
    pub fn builder() -> TelemetryBuilder {
        TelemetryBuilder {
            sample_interval: Duration::from_millis(500),
            ring: 720,
            listen: None,
            sink: None,
            pool: None,
            health: None,
        }
    }

    /// A protocol observer feeding this pipeline's registry; attach one
    /// per session ([`crate::SenderBuilder::telemetry`] does this).
    /// With a health monitor armed, the observer fans into it too, so
    /// session events drive the online invariant rules.
    pub fn observer(&self) -> Box<dyn ProtocolObserver> {
        match &self.shared.monitor {
            Some(mon) => Box::new(
                MultiObserver::new()
                    .with(Box::new(self.shared.obs.clone()))
                    .with(Box::new(mon.clone())),
            ),
            None => Box::new(self.shared.obs.clone()),
        }
    }

    /// The alert history as a JSON array — what an `/alerts` scrape
    /// returns. `[]` when no monitor is armed or nothing fired.
    pub fn alerts_json(&self) -> String {
        self.shared.alerts_json()
    }

    /// The listener's bound address, if one was configured.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Take a sample immediately, outside the periodic schedule (end of
    /// run, tests).
    pub fn sample_now(&self) {
        self.shared.collect();
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<TelemetrySample> {
        self.shared.sampler.lock().latest().cloned()
    }

    /// The retained time series, oldest first.
    pub fn samples(&self) -> Vec<TelemetrySample> {
        self.shared.sampler.lock().samples().cloned().collect()
    }

    /// The Prometheus text exposition a `/metrics` scrape would return.
    pub fn render_prometheus(&self) -> String {
        self.shared.gather().render_prometheus()
    }

    /// The JSON document a `/json` scrape would return.
    pub fn render_json(&self) -> String {
        self.shared.json_body()
    }

    /// Flush the JSONL sink, if any.
    pub fn flush(&self) {
        self.shared.sampler.lock().flush();
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.shared.sampler.lock().flush();
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("local_addr", &self.local_addr)
            .field("samples", &self.shared.sampler.lock().len())
            .finish()
    }
}

// ---------------------------------------------------------------------
// The exposition endpoint
// ---------------------------------------------------------------------

/// Accept loop: nonblocking accepts polled on a short tick so shutdown
/// is observed promptly; each connection is served inline (scrapes are
/// rare and tiny — no per-connection threads).
fn serve(shared: &Shared, listener: &TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(shared, stream);
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Serve one request: read the request line, route on the path, write
/// one response, close.
fn handle(shared: &Shared, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nonblocking(false)?;
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    // Read until the end of the request head (or the buffer bound —
    // scrapers send tiny requests; anything bigger is not one).
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 4096 {
            break;
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let path = std::str::from_utf8(request_line)
        .ok()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, ctype, body) = match path {
        "/" | "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            shared.gather().render_prometheus(),
        ),
        "/json" => ("200 OK", "application/json", shared.json_body()),
        "/alerts" => ("200 OK", "application/json", shared.alerts_json()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Fetch `path` from a telemetry endpoint and return the response body.
/// The client half of the exposition protocol, shared by `hrmc top` and
/// the smoke tests — a plain HTTP/1.0 GET over one connection.
pub fn scrape(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: hrmc\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.0 200") => Ok(body.to_string()),
        Some((head, _)) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "scrape {path}: {}",
                head.lines().next().unwrap_or("bad response")
            ),
        )),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "scrape: truncated response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, SocketAddrV4};

    fn loopback_any() -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))
    }

    #[test]
    fn endpoint_serves_metrics_json_and_404() {
        let reactor = Reactor::new().expect("reactor");
        let t = Telemetry::builder()
            .listen(loopback_any())
            .sample_interval(Duration::from_millis(50))
            .reactor(reactor)
            .start()
            .expect("telemetry");
        // Seed the registry through a session-style observer.
        let mut obs = t.observer();
        obs.on_event(
            0,
            &hrmc_core::Event::RateHalved {
                rate_bps: 1_000_000,
            },
        );
        t.sample_now();
        let addr = t.local_addr().expect("bound");
        let timeout = Duration::from_secs(5);
        let metrics = scrape(addr, "/metrics", timeout).expect("scrape /metrics");
        assert!(metrics.contains("hrmc_rate_halvings_total 1"), "{metrics}");
        assert!(metrics.contains("hrmc_reactor_loop_us"), "{metrics}");
        assert!(
            metrics.contains("hrmc_reactor_timer_slippage_us"),
            "{metrics}"
        );
        assert!(
            metrics.contains("hrmc_reactor_idle_cap_ms 100"),
            "{metrics}"
        );
        let json = scrape(addr, "/json", timeout).expect("scrape /json");
        assert!(json.contains("\"sample\":{\"telemetry\":1,"), "{json}");
        assert!(json.contains("\"alerts\":[]"), "{json}");
        assert!(json.contains("\"reactor\":{"), "{json}");
        let alerts = scrape(addr, "/alerts", timeout).expect("scrape /alerts");
        assert_eq!(alerts, "[]", "healthy endpoint must report no alerts");
        let err = scrape(addr, "/nope", timeout).expect_err("404");
        assert!(err.to_string().contains("404"), "{err}");
    }

    #[test]
    fn armed_monitor_surfaces_alerts_on_every_route() {
        let reactor = Reactor::new().expect("reactor");
        let t = Telemetry::builder()
            .listen(loopback_any())
            .sample_interval(Duration::from_secs(3600)) // manual sampling only
            .reactor(reactor)
            .health(hrmc_core::HealthConfig::default())
            .start()
            .expect("telemetry");
        let addr = t.local_addr().expect("bound");
        let timeout = Duration::from_secs(5);
        // Quiet monitor: all routes present, nothing raised.
        assert_eq!(scrape(addr, "/alerts", timeout).expect("alerts"), "[]");
        let metrics = scrape(addr, "/metrics", timeout).expect("metrics");
        assert!(metrics.contains("hrmc_alerts_active 0"), "{metrics}");
        assert!(
            metrics.contains("hrmc_telemetry_samples_dropped 0"),
            "{metrics}"
        );
        // Drive a NAK storm through a session-style observer; the fanned
        // observer must feed the monitor, and the next collect() must
        // publish the raised alert everywhere. Two gap-NAKs per 100 ms
        // with zero deliveries trips the storm rule (and only it) well
        // past its sustain window.
        let mut obs = t.observer();
        for i in 0u64..=10 {
            for j in 0..2 {
                obs.on_event(
                    i * 100_000,
                    &hrmc_core::Event::NakSent {
                        first: i * 2 + j,
                        count: 1,
                        trigger: hrmc_core::NakTrigger::Gap,
                    },
                );
            }
        }
        t.sample_now();
        let alerts = scrape(addr, "/alerts", timeout).expect("alerts");
        assert!(alerts.contains("\"rule\":\"nak_storm\""), "{alerts}");
        assert!(alerts.contains("\"raised\":true"), "{alerts}");
        assert_eq!(alerts, t.alerts_json());
        let metrics = scrape(addr, "/metrics", timeout).expect("metrics");
        assert!(metrics.contains("hrmc_alerts_active 1"), "{metrics}");
        assert!(metrics.contains("hrmc_alerts_raised_total 1"), "{metrics}");
        let json = scrape(addr, "/json", timeout).expect("json");
        assert!(json.contains("\"alerts\":[{\"t_us\":"), "{json}");
    }

    #[test]
    fn sampler_thread_accumulates_a_time_series() {
        let reactor = Reactor::new().expect("reactor");
        let t = Telemetry::builder()
            .sample_interval(Duration::from_millis(20))
            .ring(8)
            .reactor(reactor)
            .start()
            .expect("telemetry");
        let deadline = Instant::now() + Duration::from_secs(5);
        while t.samples().len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let samples = t.samples();
        assert!(
            samples.len() >= 3,
            "sampler thread produced {} samples",
            samples.len()
        );
        assert!(samples.windows(2).all(|w| w[1].t_us > w[0].t_us));
        assert!(samples.len() <= 8, "ring bound respected");
        drop(t); // must join both threads promptly
    }
}
