//! The sending endpoint: a [`SenderEngine`] driven by real sockets and
//! real time.

use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hrmc_core::{Dest, PeerId, ProtocolConfig, SenderEngine, SenderEvent, SenderStats};
use hrmc_wire::Packet;
use parking_lot::{Condvar, Mutex};

use crate::clock::DriverClock;
use crate::socket::McastSocket;
use crate::NetError;

/// Maps receiver socket addresses to the engine's [`PeerId`]s. The
/// paper's sender keys membership by the receiver's unicast IP address;
/// the engine is transport-agnostic, so the driver owns this mapping.
#[derive(Debug, Default)]
struct PeerTable {
    by_addr: HashMap<SocketAddr, PeerId>,
    by_id: Vec<SocketAddr>,
}

impl PeerTable {
    fn get_or_insert(&mut self, addr: SocketAddr) -> PeerId {
        if let Some(&id) = self.by_addr.get(&addr) {
            return id;
        }
        let id = PeerId(self.by_id.len() as u32);
        self.by_addr.insert(addr, id);
        self.by_id.push(addr);
        id
    }

    fn addr(&self, id: PeerId) -> Option<SocketAddr> {
        self.by_id.get(id.0 as usize).copied()
    }
}

struct Inner {
    engine: Mutex<SenderEngine>,
    peers: Mutex<PeerTable>,
    socket: McastSocket,
    clock: DriverClock,
    shutdown: AtomicBool,
    finished: AtomicBool,
    lost: AtomicBool,
    wakeup: Condvar,
    wakeup_lock: Mutex<()>,
}

impl Inner {
    /// Wake the timer thread so it re-reads the engine's `next_wakeup`
    /// (a submit, packet arrival, or close may have armed an earlier
    /// deadline). Takes the wakeup lock before notifying so the timer
    /// thread cannot lose the kick between reading the deadline and
    /// starting its wait. Never call while holding the engine lock.
    fn kick_timer(&self) {
        let _guard = self.wakeup_lock.lock();
        self.wakeup.notify_all();
    }

    /// Drain engine output to the socket and surface events. Callers hold
    /// no locks on entry.
    fn flush(&self) {
        let mut engine = self.engine.lock();
        // One scratch buffer for the whole drain: `encode_into` reuses
        // its allocation across packets (zero-copy hot path).
        let mut bytes = Vec::new();
        while let Some(out) = engine.poll_output() {
            out.packet.encode_into(&mut bytes);
            match out.dest {
                Dest::Multicast => {
                    let _ = self.socket.send_multicast(&bytes);
                }
                Dest::Unicast(p) => {
                    if let Some(addr) = self.peers.lock().addr(p) {
                        let _ = self.socket.send_unicast(&bytes, addr);
                    }
                }
                Dest::Sender => unreachable!("sender engine never targets Sender"),
            }
        }
        while let Some(ev) = engine.poll_event() {
            match ev {
                SenderEvent::SendSpaceAvailable => {
                    self.wakeup.notify_all();
                }
                SenderEvent::TransferComplete => {
                    self.finished.store(true, Ordering::SeqCst);
                    self.wakeup.notify_all();
                }
                SenderEvent::RetransmissionError { .. } => {
                    self.lost.store(true, Ordering::SeqCst);
                }
                SenderEvent::MemberEjected(_) => {
                    // Ejection can unblock buffer release: wake a sender
                    // blocked in `send` or `close_and_wait`.
                    self.wakeup.notify_all();
                }
                SenderEvent::MemberJoined(_) | SenderEvent::MemberLeft(_) => {}
            }
        }
    }
}

/// Owner handle for a live sending endpoint; dropping it shuts the
/// background threads down.
pub struct SenderHandle {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

/// Constructor namespace (mirrors the paper's socket-call sequence).
pub struct HrmcSender;

impl HrmcSender {
    /// Bind a sender to `group` via `interface` ("binds to a local port,
    /// connects to a known multicast address and port number").
    pub fn bind(
        group: SocketAddrV4,
        interface: Ipv4Addr,
        config: ProtocolConfig,
    ) -> Result<SenderHandle, NetError> {
        let socket = McastSocket::sender(group, interface)?;
        socket.set_read_timeout(Duration::from_millis(5))?;
        let local_port = match socket.local_addr()? {
            SocketAddr::V4(a) => a.port(),
            SocketAddr::V6(a) => a.port(),
        };
        let clock = DriverClock::new();
        let engine = SenderEngine::new(config, local_port, group.port(), 0, clock.now());
        let inner = Arc::new(Inner {
            engine: Mutex::new(engine),
            peers: Mutex::new(PeerTable::default()),
            socket,
            clock,
            shutdown: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            lost: AtomicBool::new(false),
            wakeup: Condvar::new(),
            wakeup_lock: Mutex::new(()),
        });

        let rx = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("hrmc-snd-rx".into())
                .spawn(move || rx_loop(&inner))
                .map_err(NetError::Io)?
        };
        let timer = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("hrmc-snd-timer".into())
                .spawn(move || timer_loop(&inner))
                .map_err(NetError::Io)?
        };
        Ok(SenderHandle {
            inner,
            threads: vec![rx, timer],
        })
    }
}

fn rx_loop(inner: &Inner) {
    let mut buf = vec![0u8; 64 * 1024];
    while !inner.shutdown.load(Ordering::SeqCst) {
        let Ok((n, from)) = inner.socket.recv_from(&mut buf) else {
            continue;
        };
        let pkt = match Packet::decode(&buf[..n]) {
            Ok(pkt) => pkt,
            Err(e) => {
                // Audit corruption: a failed checksum is counted and
                // reported, not just silently dropped.
                if matches!(e, hrmc_wire::WireError::BadChecksum) {
                    inner.engine.lock().note_checksum_failure(inner.clock.now());
                }
                continue;
            }
        };
        let peer = inner.peers.lock().get_or_insert(from);
        inner
            .engine
            .lock()
            .handle_packet(&pkt, peer, inner.clock.now());
        inner.flush();
        // A NAK or UPDATE can arm an earlier deadline (retransmission,
        // keepalive reset): let the timer thread re-plan its sleep.
        inner.kick_timer();
    }
}

/// Deadline-driven timer: instead of unconditionally ticking every
/// jiffy, sleep until the engine's own `next_wakeup` deadline. Submits,
/// packet arrivals, and shutdown kick the condvar to cut the sleep
/// short; a fully idle engine sleeps in long bounded chunks.
///
/// `next_wakeup` answers relative to `now` — an active engine's "tick
/// me a jiffy from now" wish recedes every time it is re-read, so the
/// loop remembers the earliest deadline promised so far and fires when
/// the clock crosses it; re-reads fold in via `min` and can only pull
/// the target earlier. A fresh deadline is taken only after servicing
/// a tick.
fn timer_loop(inner: &Inner) {
    const MAX_IDLE: Duration = Duration::from_millis(100);
    let mut deadline: Option<u64> = None;
    while !inner.shutdown.load(Ordering::SeqCst) {
        let now = inner.clock.now();
        if deadline.is_some_and(|t| t <= now) {
            inner.engine.lock().on_tick(now);
            inner.flush();
            let now = inner.clock.now();
            deadline = inner.engine.lock().next_wakeup(now);
            continue;
        }
        // The wakeup guard is held from before the deadline fold until
        // the wait starts, so a concurrent kick cannot slip in between.
        // Lock order is wakeup_lock -> engine lock; this is why
        // `kick_timer` must never run with the engine lock held.
        let mut guard = inner.wakeup_lock.lock();
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let now = inner.clock.now();
        let fresh = inner.engine.lock().next_wakeup(now);
        deadline = match (deadline, fresh) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let sleep = deadline.map_or(MAX_IDLE, |t| {
            Duration::from_micros(t.saturating_sub(now)).min(MAX_IDLE)
        });
        if !sleep.is_zero() {
            inner.wakeup.wait_for(&mut guard, sleep);
        }
    }
}

impl SenderHandle {
    /// Queue the whole of `data` on the stream, blocking while the send
    /// buffer is full (the paper's blocking `send` system call).
    pub fn send(&self, data: &[u8]) -> Result<(), NetError> {
        let mut offset = 0;
        while offset < data.len() {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                return Err(NetError::Closed);
            }
            let n = {
                let mut engine = self.inner.engine.lock();
                engine.submit(&data[offset..], self.inner.clock.now())
            };
            offset += n;
            if n > 0 {
                // New data re-arms the engine: wake the timer thread out
                // of its idle sleep so transmission starts this jiffy.
                self.inner.kick_timer();
            }
            if n == 0 {
                // Wait for SendSpaceAvailable (with a safety timeout so a
                // vanished group cannot wedge the application forever).
                let mut guard = self.inner.wakeup_lock.lock();
                self.inner
                    .wakeup
                    .wait_for(&mut guard, Duration::from_millis(50));
            }
        }
        Ok(())
    }

    /// Close the stream without blocking: the FIN segment is queued
    /// behind the data. Use [`SenderHandle::close_and_wait`] to block
    /// until every byte is confirmed released.
    pub fn close(&self) {
        self.inner.engine.lock().close(self.inner.clock.now());
        self.inner.kick_timer();
    }

    /// Close the stream and wait until every byte is confirmed released
    /// (Hybrid: every receiver confirmed it). Returns the final stats.
    pub fn close_and_wait(&self, timeout: Duration) -> Result<SenderStats, NetError> {
        self.close();
        let deadline = std::time::Instant::now() + timeout;
        while !self.inner.finished.load(Ordering::SeqCst) {
            if std::time::Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
            let mut guard = self.inner.wakeup_lock.lock();
            self.inner
                .wakeup
                .wait_for(&mut guard, Duration::from_millis(20));
        }
        if self.inner.lost.load(Ordering::SeqCst) {
            return Err(NetError::DataLost);
        }
        Ok(self.stats())
    }

    /// Snapshot of the engine's counters.
    pub fn stats(&self) -> SenderStats {
        self.inner.engine.lock().stats.clone()
    }

    /// Install a [`hrmc_core::ProtocolObserver`] on the engine (wall-clock
    /// microsecond timestamps relative to bind time). The observer runs
    /// under the engine lock; keep it cheap.
    pub fn set_observer(&self, observer: Box<dyn hrmc_core::ProtocolObserver>) {
        self.inner.engine.lock().set_observer(observer);
    }

    /// Attach a bounded flight recorder and return the shared handle.
    /// The recorder keeps the last `capacity` events in a fixed ring —
    /// cheap enough for production paths — and its surviving window can
    /// be dumped as JSONL at any time (`handle.dump()`), ready for
    /// `hrmc analyze`. Replaces any previously installed observer.
    pub fn attach_flight_recorder(&self, capacity: usize) -> hrmc_core::SharedRecorder {
        let rec = hrmc_core::SharedRecorder::new(capacity).with_label("sender");
        self.set_observer(Box::new(rec.clone()));
        rec
    }

    /// Number of receivers currently in the group.
    pub fn member_count(&self) -> usize {
        self.inner.engine.lock().member_count()
    }

    /// Current RTT estimate (most distant receiver), microseconds.
    pub fn rtt(&self) -> u64 {
        self.inner.engine.lock().rtt()
    }
}

impl Drop for SenderHandle {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.wakeup.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
