//! The sending endpoint: a [`SenderEngine`] driven by the shared
//! reactor. [`SenderHandle`] is a thin front over reactor-owned state —
//! the endpoint spawns no threads of its own; the reactor's single
//! event loop drains its socket, services its deadlines, and flushes
//! its output in `sendmmsg` batches.

use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hrmc_core::{Dest, PeerId, ProtocolConfig, SenderEngine, SenderEvent, SenderStats};
use hrmc_wire::Packet;
use parking_lot::{Condvar, Mutex};

use crate::clock::DriverClock;
use crate::reactor::{
    Fatal, IoBatch, Reactor, ReactorRef, ReactorSession, RxError, SessionCounters, SessionHealth,
};
use crate::socket::{McastSocket, RX_SLOTS};
use crate::NetError;

/// `recvmmsg` batches drained per readiness event before yielding the
/// reactor thread to other sessions.
const RX_ROUNDS: usize = 4;

/// Maps receiver socket addresses to the engine's [`PeerId`]s. The
/// paper's sender keys membership by the receiver's unicast IP address;
/// the engine is transport-agnostic, so the driver owns this mapping.
#[derive(Debug, Default)]
struct PeerTable {
    by_addr: HashMap<SocketAddr, PeerId>,
    by_id: Vec<SocketAddr>,
}

impl PeerTable {
    fn get_or_insert(&mut self, addr: SocketAddr) -> PeerId {
        if let Some(&id) = self.by_addr.get(&addr) {
            return id;
        }
        let id = PeerId(self.by_id.len() as u32);
        self.by_addr.insert(addr, id);
        self.by_id.push(addr);
        id
    }

    fn addr(&self, id: PeerId) -> Option<SocketAddr> {
        self.by_id.get(id.0 as usize).copied()
    }
}

struct Inner {
    engine: Mutex<SenderEngine>,
    peers: Mutex<PeerTable>,
    socket: McastSocket,
    clock: DriverClock,
    finished: AtomicBool,
    lost: AtomicBool,
    /// Set when the reactor stops driving this session (fatal socket
    /// error or reactor shutdown): the endpoint is dead.
    failed: AtomicBool,
    /// Refines `failed`: the reactor itself shut down.
    reactor_gone: AtomicBool,
    /// The socket error that killed the session, kept for diagnostics.
    fatal: Mutex<Option<io::Error>>,
    wakeup: Condvar,
    wakeup_lock: Mutex<()>,
    /// Per-session traffic totals for telemetry.
    counters: SessionCounters,
}

impl Inner {
    /// The error a blocked application call should surface once the
    /// reactor has stopped driving this session.
    fn failure(&self) -> NetError {
        if self.reactor_gone.load(Ordering::SeqCst) {
            NetError::ReactorClosed
        } else {
            NetError::SessionFailed
        }
    }

    /// Drain engine output into the reactor's `sendmmsg` staging and
    /// surface events. Lock order is engine → peers (matching every
    /// other taker).
    fn flush(&self, io: &mut IoBatch) {
        let mut engine = self.engine.lock();
        while let Some(out) = engine.poll_output() {
            let dest = match out.dest {
                Dest::Multicast => SocketAddr::V4(self.socket.group()),
                Dest::Unicast(p) => match self.peers.lock().addr(p) {
                    Some(addr) => addr,
                    None => continue,
                },
                Dest::Sender => unreachable!("sender engine never targets Sender"),
            };
            let buf = io.stage();
            out.packet.encode_into(buf);
            let len = buf.len() as u64;
            io.commit(dest, &self.socket);
            self.counters.note_tx(len);
        }
        io.flush_tx(&self.socket);
        while let Some(ev) = engine.poll_event() {
            match ev {
                SenderEvent::SendSpaceAvailable => {
                    self.wakeup.notify_all();
                }
                SenderEvent::TransferComplete => {
                    self.finished.store(true, Ordering::SeqCst);
                    self.wakeup.notify_all();
                }
                SenderEvent::RetransmissionError { .. } => {
                    self.lost.store(true, Ordering::SeqCst);
                }
                SenderEvent::MemberEjected(_) => {
                    // Ejection can unblock buffer release: wake a sender
                    // blocked in `send` or `close_and_wait`.
                    self.wakeup.notify_all();
                }
                SenderEvent::MemberJoined(_) | SenderEvent::MemberLeft(_) => {}
            }
        }
    }
}

impl ReactorSession for Inner {
    fn sockets(&self) -> Vec<&McastSocket> {
        vec![&self.socket]
    }

    fn on_readable(&self, _role: usize, io: &mut IoBatch) -> io::Result<()> {
        for _ in 0..RX_ROUNDS {
            let n = match io.recv(&self.socket) {
                Ok(n) => n,
                Err(e) => match crate::reactor::rx_error_disposition(&e) {
                    RxError::Drained => break,
                    RxError::Retry => continue,
                    // EBADF and friends: surfacing the error deregisters
                    // the session — never spin on a dead socket.
                    RxError::Fatal => return Err(e),
                },
            };
            let now = self.clock.now();
            {
                let mut engine = self.engine.lock();
                let mut rx_bytes = 0u64;
                for i in 0..n {
                    let (bytes, from) = io.rx.datagram(i);
                    rx_bytes += bytes.len() as u64;
                    match Packet::decode(bytes) {
                        Ok(pkt) => {
                            let peer = self.peers.lock().get_or_insert(from);
                            engine.handle_packet(&pkt, peer, now);
                        }
                        // Audit corruption: a failed checksum is counted
                        // and reported, not just silently dropped.
                        Err(hrmc_wire::WireError::BadChecksum) => {
                            engine.note_checksum_failure(now);
                        }
                        Err(_) => {}
                    }
                }
                self.counters.note_rx(n as u64, rx_bytes);
            }
            self.flush(io);
            if n < RX_SLOTS {
                break;
            }
        }
        Ok(())
    }

    fn on_tick(&self, io: &mut IoBatch) {
        let now = self.clock.now();
        self.engine.lock().on_tick(now);
        self.flush(io);
    }

    fn next_deadline(&self) -> Option<Instant> {
        let now = self.clock.now();
        self.engine
            .lock()
            .next_wakeup(now)
            .map(|us| self.clock.at(us))
    }

    fn on_fatal(&self, reason: Fatal) {
        match reason {
            Fatal::ReactorClosed => self.reactor_gone.store(true, Ordering::SeqCst),
            Fatal::Io(e) => *self.fatal.lock() = Some(e),
        }
        self.failed.store(true, Ordering::SeqCst);
        self.wakeup.notify_all();
    }

    fn health(&self) -> SessionHealth {
        let mut h = self.counters.health("sender");
        let engine = self.engine.lock();
        h.rate_halvings = engine.rate_halvings();
        h.urgent_stops = engine.urgent_stops();
        h.members_ejected = engine.stats.members_ejected;
        h.malformed_packets = engine.stats.malformed_packets;
        h.checksum_failures = engine.stats.checksum_failures;
        h
    }

    fn publish_metrics(&self, reg: &mut hrmc_core::metrics::MetricsRegistry) {
        self.engine.lock().publish_metrics(reg);
    }
}

/// Owner handle for a live sending endpoint; dropping it deregisters
/// the session from its reactor.
pub struct SenderHandle {
    inner: Arc<Inner>,
    reactor: ReactorRef,
    id: u64,
    flight: Option<hrmc_core::SharedRecorder>,
}

/// Bind a sender and register it with `reactor`. The observer is
/// installed on the engine *before* the session becomes reachable from
/// the reactor thread, so no early packet or tick can slip by
/// unobserved (the race the removed post-bind `set_observer` shim
/// could not avoid).
pub(crate) fn bind_with(
    group: SocketAddrV4,
    interface: Ipv4Addr,
    config: ProtocolConfig,
    observer: Option<Box<dyn hrmc_core::ProtocolObserver>>,
    flight: Option<hrmc_core::SharedRecorder>,
    reactor: Reactor,
) -> Result<SenderHandle, NetError> {
    let socket = McastSocket::sender(group, interface)?;
    let local_port = match socket.local_addr()? {
        SocketAddr::V4(a) => a.port(),
        SocketAddr::V6(a) => a.port(),
    };
    let clock = DriverClock::new();
    let mut engine = SenderEngine::new(config, local_port, group.port(), 0, clock.now());
    if let Some(obs) = observer {
        engine.set_observer(obs);
    }
    let inner = Arc::new(Inner {
        engine: Mutex::new(engine),
        peers: Mutex::new(PeerTable::default()),
        socket,
        clock,
        finished: AtomicBool::new(false),
        lost: AtomicBool::new(false),
        failed: AtomicBool::new(false),
        reactor_gone: AtomicBool::new(false),
        fatal: Mutex::new(None),
        wakeup: Condvar::new(),
        wakeup_lock: Mutex::new(()),
        counters: SessionCounters::default(),
    });
    let (id, reactor) = reactor.register(Arc::clone(&inner) as Arc<dyn ReactorSession>)?;
    Ok(SenderHandle {
        inner,
        reactor,
        id,
        flight,
    })
}

/// Constructor namespace retained for source compatibility — new code
/// should use the [`crate::Session`] builder.
pub struct HrmcSender;

impl HrmcSender {
    /// Bind a sender to `group` via `interface` on the global reactor.
    #[deprecated(note = "use `Session::sender(group).interface(..).config(..).bind()`")]
    pub fn bind(
        group: SocketAddrV4,
        interface: Ipv4Addr,
        config: ProtocolConfig,
    ) -> Result<SenderHandle, NetError> {
        crate::Session::sender(group)
            .interface(interface)
            .config(config)
            .bind()
    }
}

impl SenderHandle {
    /// Queue the whole of `data` on the stream, blocking while the send
    /// buffer is full (the paper's blocking `send` system call).
    pub fn send(&self, data: &[u8]) -> Result<(), NetError> {
        let mut offset = 0;
        while offset < data.len() {
            if self.inner.failed.load(Ordering::SeqCst) {
                return Err(self.inner.failure());
            }
            let n = {
                let mut engine = self.inner.engine.lock();
                engine.submit(&data[offset..], self.inner.clock.now())
            };
            offset += n;
            if n > 0 {
                // New data re-arms the engine: kick the reactor so it
                // re-reads the deadline and starts transmitting this
                // jiffy instead of finishing an idle sleep.
                self.reactor.kick(self.id);
            }
            if n == 0 {
                // Wait for SendSpaceAvailable (with a safety timeout so a
                // vanished group cannot wedge the application forever).
                let mut guard = self.inner.wakeup_lock.lock();
                self.inner
                    .wakeup
                    .wait_for(&mut guard, Duration::from_millis(50));
            }
        }
        Ok(())
    }

    /// Close the stream without blocking: the FIN segment is queued
    /// behind the data. Use [`SenderHandle::close_and_wait`] to block
    /// until every byte is confirmed released.
    pub fn close(&self) {
        self.inner.engine.lock().close(self.inner.clock.now());
        self.reactor.kick(self.id);
    }

    /// Close the stream and wait until every byte is confirmed released
    /// (Hybrid: every receiver confirmed it). Returns the final stats.
    pub fn close_and_wait(&self, timeout: Duration) -> Result<SenderStats, NetError> {
        self.close();
        let deadline = Instant::now() + timeout;
        while !self.inner.finished.load(Ordering::SeqCst) {
            if self.inner.failed.load(Ordering::SeqCst) {
                return Err(self.inner.failure());
            }
            if Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
            let mut guard = self.inner.wakeup_lock.lock();
            self.inner
                .wakeup
                .wait_for(&mut guard, Duration::from_millis(20));
        }
        if self.inner.lost.load(Ordering::SeqCst) {
            return Err(NetError::DataLost);
        }
        Ok(self.stats())
    }

    /// Snapshot of the engine's counters.
    pub fn stats(&self) -> SenderStats {
        self.inner.engine.lock().stats.clone()
    }

    /// The flight recorder attached at build time
    /// ([`crate::SenderBuilder::flight_recorder`]), if any.
    pub fn flight_recorder(&self) -> Option<&hrmc_core::SharedRecorder> {
        self.flight.as_ref()
    }

    /// The socket error that terminally failed the session, if that is
    /// why it died (a `SessionFailed` return with a non-`None` value
    /// here means the socket broke, not the protocol).
    pub fn fatal_error(&self) -> Option<io::ErrorKind> {
        self.inner.fatal.lock().as_ref().map(io::Error::kind)
    }

    /// Number of receivers currently in the group.
    pub fn member_count(&self) -> usize {
        self.inner.engine.lock().member_count()
    }

    /// Current RTT estimate (most distant receiver), microseconds.
    pub fn rtt(&self) -> u64 {
        self.inner.engine.lock().rtt()
    }
}

impl Drop for SenderHandle {
    fn drop(&mut self) {
        self.reactor.deregister(self.id, &*self.inner);
        self.inner.wakeup.notify_all();
    }
}
