//! # hrmc-net
//!
//! Real-socket driver for the H-RMC engines: the user-space analog of the
//! kernel driver's placement in the Linux network stack (paper §4,
//! Figure 4). Where the paper's AF_HRMC socket rides directly on IP, this
//! crate rides the sans-io engines of `hrmc-core` on UDP multicast —
//! preserving the protocol exactly while staying deployable without a
//! kernel module.
//!
//! The socket API mirrors the paper's application model (§4.1):
//!
//! * the sending application "binds to a local port, connects to a known
//!   multicast address and port number, and uses the send system call to
//!   transmit data" — [`SenderHandle::send`], then [`SenderHandle::close`];
//! * the receiving application "uses setsockopt to join the multicast
//!   group, and the recv system call to receive data" —
//!   [`ReceiverHandle::recv`].
//!
//! Each endpoint runs two background threads: an RX thread feeding
//! packets to the engine and a timer thread delivering jiffy ticks, with
//! engine output flushed to the socket after every entry point — the
//! user-space equivalents of softirq packet delivery and the kernel timer
//! wheel.

pub mod clock;
pub mod receiver;
pub mod sender;
pub mod socket;

pub use clock::DriverClock;
pub use receiver::{HrmcReceiver, ReceiverHandle};
pub use sender::{HrmcSender, SenderHandle};
pub use socket::McastSocket;

/// Errors surfaced by the socket drivers.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The transfer did not complete within the caller's deadline.
    Timeout,
    /// The sender reported an unrecoverable retransmission error (RMC
    /// mode, or the join race).
    DataLost,
    /// The receiver declared a terminal session failure: the sender is
    /// presumed dead (keepalive silence past the configured deadline) or
    /// the JOIN retry budget ran out.
    SessionFailed,
    /// The endpoint was already closed.
    Closed,
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Timeout => f.write_str("operation timed out"),
            NetError::DataLost => f.write_str("data irrecoverably lost"),
            NetError::SessionFailed => f.write_str("session failed: sender presumed dead"),
            NetError::Closed => f.write_str("endpoint closed"),
        }
    }
}

impl std::error::Error for NetError {}
