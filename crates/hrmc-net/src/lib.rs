//! # hrmc-net
//!
//! Real-socket driver for the H-RMC engines: the user-space analog of the
//! kernel driver's placement in the Linux network stack (paper §4,
//! Figure 4). Where the paper's AF_HRMC socket rides directly on IP, this
//! crate rides the sans-io engines of `hrmc-core` on UDP multicast —
//! preserving the protocol exactly while staying deployable without a
//! kernel module.
//!
//! The socket API mirrors the paper's application model (§4.1) through
//! the unified [`Session`] builder:
//!
//! * the sending application "binds to a local port, connects to a known
//!   multicast address and port number, and uses the send system call to
//!   transmit data" — `Session::sender(group).bind()`, then
//!   [`SenderHandle::send`] and [`SenderHandle::close`];
//! * the receiving application "uses setsockopt to join the multicast
//!   group, and the recv system call to receive data" —
//!   `Session::receiver(group).bind()`, then [`ReceiverHandle::recv`].
//!
//! Every session is driven by a shared [`Reactor`]: one poll-driven
//! event loop that owns all session sockets, drains RX in `recvmmsg`
//! batches, flushes engine output in `sendmmsg` batches, and services
//! every engine's `next_wakeup` deadline from a single timer heap — the
//! user-space equivalent of the kernel servicing all H-RMC sockets from
//! one softirq path and one timer wheel. Thread count is O(1) per
//! reactor, not O(sessions); by default all sessions in a process share
//! [`Reactor::global`].

pub mod clock;
pub mod datapath;
pub mod pool;
pub mod reactor;
pub mod receiver;
pub mod sender;
pub mod session;
pub mod socket;
#[cfg(feature = "telemetry")]
pub mod telemetry;

pub use clock::DriverClock;
pub use datapath::DatapathKind;
pub use pool::ReactorPool;
pub use reactor::{Reactor, ReactorConfig, ReactorStats, SessionHealth};
pub use receiver::{HrmcReceiver, ReceiverHandle};
pub use sender::{HrmcSender, SenderHandle};
pub use session::{ReceiverBuilder, SenderBuilder, Session};
pub use socket::McastSocket;
#[cfg(feature = "telemetry")]
pub use telemetry::Telemetry;

/// Errors surfaced by the socket drivers.
///
/// Marked `#[non_exhaustive]`: future driver layers may add variants,
/// so downstream `match`es need a catch-all arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The transfer did not complete within the caller's deadline.
    Timeout,
    /// The sender reported an unrecoverable retransmission error (RMC
    /// mode, or the join race).
    DataLost,
    /// The receiver declared a terminal session failure: the sender is
    /// presumed dead (keepalive silence past the configured deadline),
    /// the JOIN retry budget ran out, or the session's socket died under
    /// the reactor.
    SessionFailed,
    /// The endpoint was already closed.
    Closed,
    /// The reactor driving this session has shut down; the session can
    /// make no further progress.
    ReactorClosed,
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Timeout => f.write_str("operation timed out"),
            NetError::DataLost => f.write_str("data irrecoverably lost"),
            NetError::SessionFailed => f.write_str("session failed: sender presumed dead"),
            NetError::Closed => f.write_str("endpoint closed"),
            NetError::ReactorClosed => f.write_str("reactor shut down"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn io_error_exposes_its_source() {
        let e = NetError::from(std::io::Error::from(std::io::ErrorKind::PermissionDenied));
        let src = e.source().expect("Io carries a source");
        assert_eq!(
            src.downcast_ref::<std::io::Error>().unwrap().kind(),
            std::io::ErrorKind::PermissionDenied
        );
        assert!(NetError::Timeout.source().is_none());
        assert!(NetError::ReactorClosed.source().is_none());
    }
}
