//! The unified session builder: one construction path for both
//! endpoint roles, replacing the `HrmcSender::bind` / `HrmcReceiver::join`
//! pair and the racy post-bind `set_observer` / `attach_flight_recorder`
//! calls. Everything a session needs — interface, protocol config,
//! observers, flight recorder, reactor — is declared *before* `bind()`,
//! so the engine is fully instrumented before the reactor can deliver
//! its first packet or tick.
//!
//! ```no_run
//! use hrmc_net::Session;
//! use std::net::SocketAddrV4;
//!
//! let group: SocketAddrV4 = "239.255.1.1:45000".parse().unwrap();
//! let tx = Session::sender(group).bind().unwrap();
//! let rx = Session::receiver(group).flight_recorder(4096).bind().unwrap();
//! tx.send(b"hello, group").unwrap();
//! # let _ = rx;
//! ```

use std::net::{Ipv4Addr, SocketAddrV4};

use hrmc_core::{MultiObserver, ProtocolConfig, ProtocolObserver, SharedRecorder};

use crate::datapath::DatapathKind;
use crate::pool::ReactorPool;
use crate::reactor::Reactor;
use crate::receiver::{self, ReceiverHandle};
use crate::sender::{self, SenderHandle};
use crate::NetError;

/// Entry point for building H-RMC endpoints.
pub struct Session;

impl Session {
    /// Start building a sending endpoint for `group`.
    pub fn sender(group: SocketAddrV4) -> SenderBuilder {
        SenderBuilder {
            common: Common::new(group),
        }
    }

    /// Start building a receiving endpoint for `group`.
    pub fn receiver(group: SocketAddrV4) -> ReceiverBuilder {
        ReceiverBuilder {
            common: Common::new(group),
        }
    }
}

/// Builder state shared by both roles.
struct Common {
    group: SocketAddrV4,
    interface: Ipv4Addr,
    config: ProtocolConfig,
    observers: Vec<Box<dyn ProtocolObserver>>,
    flight_capacity: Option<usize>,
    reactor: Option<Reactor>,
    pool: Option<ReactorPool>,
    reactor_threads: Option<usize>,
    datapath: Option<DatapathKind>,
}

impl Common {
    fn new(group: SocketAddrV4) -> Common {
        Common {
            group,
            interface: Ipv4Addr::UNSPECIFIED,
            config: ProtocolConfig::hrmc(),
            observers: Vec::new(),
            flight_capacity: None,
            reactor: None,
            pool: None,
            reactor_threads: None,
            datapath: None,
        }
    }

    /// Resolve the reactor, the flight recorder, and the composed
    /// observer stack (user observers first, recorder last).
    ///
    /// Reactor resolution, most specific first: an explicit
    /// [`Reactor`], the group's shard of an explicit [`ReactorPool`],
    /// the shared pool for the requested `(reactor_threads, datapath)`
    /// shape, the process-wide [`Reactor::global`].
    fn finish(self, flight_label: &str) -> Result<Resolved, NetError> {
        let group = self.group;
        let reactor = match (self.reactor, self.pool) {
            (Some(r), _) => r,
            (None, Some(pool)) => pool.shard_for(group).clone(),
            (None, None) if self.reactor_threads.is_some() || self.datapath.is_some() => {
                let pool = ReactorPool::shared(
                    self.reactor_threads.unwrap_or(1),
                    self.datapath.unwrap_or_default(),
                )?;
                pool.shard_for(group).clone()
            }
            (None, None) => Reactor::global(),
        };
        let flight = self
            .flight_capacity
            .map(|cap| SharedRecorder::new(cap).with_label(flight_label));
        let mut stack: Vec<Box<dyn ProtocolObserver>> = self.observers;
        if let Some(rec) = &flight {
            stack.push(Box::new(rec.clone()));
        }
        let observer: Option<Box<dyn ProtocolObserver>> = match stack.len() {
            0 => None,
            1 => stack.pop(),
            _ => {
                let mut multi = MultiObserver::new();
                for obs in stack {
                    multi.push(obs);
                }
                Some(Box::new(multi))
            }
        };
        Ok(Resolved {
            group,
            interface: self.interface,
            config: self.config,
            observer,
            flight,
            reactor,
        })
    }
}

struct Resolved {
    group: SocketAddrV4,
    interface: Ipv4Addr,
    config: ProtocolConfig,
    observer: Option<Box<dyn ProtocolObserver>>,
    flight: Option<SharedRecorder>,
    reactor: Reactor,
}

macro_rules! builder_options {
    ($Builder:ident, $Handle:ident) => {
        impl $Builder {
            /// Local interface to use (default: `0.0.0.0`, the kernel's
            /// choice — loopback setups pass `127.0.0.1`).
            pub fn interface(mut self, interface: Ipv4Addr) -> Self {
                self.common.interface = interface;
                self
            }

            /// Protocol configuration (default: [`ProtocolConfig::hrmc`]).
            pub fn config(mut self, config: ProtocolConfig) -> Self {
                self.common.config = config;
                self
            }

            /// Add a protocol observer. May be called repeatedly; all
            /// observers (plus the flight recorder, if any) see every
            /// event from the session's very first packet — installed
            /// before the reactor learns the session exists.
            pub fn observer(mut self, observer: Box<dyn ProtocolObserver>) -> Self {
                self.common.observers.push(observer);
                self
            }

            /// Attach a bounded flight recorder keeping the last
            /// `capacity` protocol events; retrieve it from the handle
            /// via its `flight_recorder()` accessor.
            pub fn flight_recorder(mut self, capacity: usize) -> Self {
                self.common.flight_capacity = Some(capacity);
                self
            }

            /// Drive the session from a specific reactor instead of the
            /// process-wide [`Reactor::global`] — useful to shard very
            /// large session counts across threads, or to isolate tests.
            /// Takes precedence over [`Self::reactor_pool`],
            /// [`Self::reactor_threads`], and [`Self::datapath`].
            pub fn reactor(mut self, reactor: Reactor) -> Self {
                self.common.reactor = Some(reactor);
                self
            }

            /// Drive the session from this pool: the session lands on
            /// the shard its multicast group hashes to
            /// ([`crate::ReactorPool::shard_for`]).
            pub fn reactor_pool(mut self, pool: &crate::ReactorPool) -> Self {
                self.common.pool = Some(pool.clone());
                self
            }

            /// Drive the session from the process-wide shared pool of
            /// `n` reactor threads ([`crate::ReactorPool::shared`]) —
            /// sessions for distinct groups spread across cores while
            /// every endpoint of one group shares a shard.
            pub fn reactor_threads(mut self, n: usize) -> Self {
                self.common.reactor_threads = Some(n);
                self
            }

            /// Which syscall backend drives the session's sockets
            /// (default [`crate::DatapathKind::Epoll`]).
            /// [`crate::DatapathKind::Uring`] probes the kernel at
            /// reactor startup and falls back to epoll when io_uring is
            /// unavailable.
            pub fn datapath(mut self, kind: crate::DatapathKind) -> Self {
                self.common.datapath = Some(kind);
                self
            }

            /// Feed this session's protocol events into a running
            /// [`crate::Telemetry`] pipeline (shorthand for
            /// `.observer(telemetry.observer())`).
            #[cfg(feature = "telemetry")]
            pub fn telemetry(mut self, telemetry: &crate::Telemetry) -> Self {
                self.common.observers.push(telemetry.observer());
                self
            }
        }
    };
}

/// Builds a sending endpoint ([`Session::sender`]).
pub struct SenderBuilder {
    common: Common,
}

builder_options!(SenderBuilder, SenderHandle);

impl SenderBuilder {
    /// Bind the sender ("binds to a local port, connects to a known
    /// multicast address and port number") and register it with the
    /// reactor.
    pub fn bind(self) -> Result<SenderHandle, NetError> {
        let r = self.common.finish("sender")?;
        sender::bind_with(
            r.group,
            r.interface,
            r.config,
            r.observer,
            r.flight,
            r.reactor,
        )
    }
}

/// Builds a receiving endpoint ([`Session::receiver`]).
pub struct ReceiverBuilder {
    common: Common,
}

builder_options!(ReceiverBuilder, ReceiverHandle);

impl ReceiverBuilder {
    /// Join the multicast group ("the receiving application uses
    /// setsockopt to join the multicast group") and register the session
    /// with the reactor.
    pub fn bind(self) -> Result<ReceiverHandle, NetError> {
        let r = self.common.finish("recv")?;
        receiver::join_with(
            r.group,
            r.interface,
            r.config,
            r.observer,
            r.flight,
            r.reactor,
        )
    }
}
