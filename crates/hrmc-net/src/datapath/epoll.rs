//! The classic backend: `epoll_wait` readiness on nonblocking sockets,
//! `recvmmsg` to drain and `sendmmsg` to flush — exactly the syscall
//! pattern the reactor used before the [`super::Datapath`] seam was
//! extracted, preserved behaviorally so existing `ReactorStats`
//! baselines hold.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::Datapath;
use crate::reactor::{ReactorSession, StatsCells, KICK_TOKEN};
use crate::socket::{McastSocket, RxBatch};

/// Events drained per `epoll_wait` (the historical reactor batch size).
const EVENTS: usize = 64;

pub(crate) struct EpollDatapath {
    epfd: i32,
    events: [libc::epoll_event; EVENTS],
    stats: Arc<StatsCells>,
}

impl EpollDatapath {
    /// Create the epoll set and register the kick eventfd under
    /// [`KICK_TOKEN`].
    pub(crate) fn new(wakefd: i32, stats: Arc<StatsCells>) -> io::Result<EpollDatapath> {
        let epfd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let mut dp = EpollDatapath {
            epfd,
            events: [libc::epoll_event { events: 0, u64: 0 }; EVENTS],
            stats,
        };
        dp.register(wakefd, KICK_TOKEN)?;
        Ok(dp)
    }

    fn epoll_ctl(&self, op: i32, fd: i32, token: u64) -> io::Result<()> {
        let mut ev = libc::epoll_event {
            events: libc::EPOLLIN,
            u64: token,
        };
        let rc = unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }
}

impl Drop for EpollDatapath {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.epfd);
        }
    }
}

impl Datapath for EpollDatapath {
    fn backend(&self) -> &'static str {
        "epoll"
    }

    fn register(&mut self, fd: i32, token: u64) -> io::Result<()> {
        self.epoll_ctl(libc::EPOLL_CTL_ADD, fd, token)
    }

    fn deregister(&mut self, fd: i32, _keepalive: Arc<dyn ReactorSession>) {
        // Nothing in flight: epoll holds no references past this call
        // (and a concurrently closed fd auto-left the set — ignore).
        let _ = self.epoll_ctl(libc::EPOLL_CTL_DEL, fd, 0);
    }

    fn wait(&mut self, timeout_ms: i32, ready: &mut Vec<u64>) -> io::Result<()> {
        ready.clear();
        let n = unsafe {
            libc::epoll_wait(
                self.epfd,
                self.events.as_mut_ptr(),
                EVENTS as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        for ev in &self.events[..n as usize] {
            ready.push(ev.u64);
        }
        Ok(())
    }

    fn recv_batch(&mut self, sock: &McastSocket, rx: &mut RxBatch) -> io::Result<usize> {
        // `recvmmsg` on an empty nonblocking socket is WouldBlock and
        // is deliberately not counted: the historical counter recorded
        // only calls that moved data, and the bench baseline pins the
        // resulting ratio.
        let n = rx.recv(sock)?;
        self.stats.recvmmsg_calls.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    fn send_batch(
        &mut self,
        sock: &McastSocket,
        bufs: &[Vec<u8>],
        dsts: &[SocketAddr],
    ) -> io::Result<usize> {
        // Counted before the verdict: a transiently failing `sendmmsg`
        // still crossed the kernel boundary, and the retry loop above
        // will cross it again — each attempt is a real syscall, so each
        // attempt counts (the old success-only counter under-reported
        // the ratio exactly on the lossy runs where it mattered).
        self.stats.sendmmsg_calls.fetch_add(1, Ordering::Relaxed);
        sock.send_batch(bufs, dsts)
    }
}
