//! The pluggable syscall boundary under the reactor.
//!
//! The reactor owns protocol dispatch and timer logic; everything that
//! actually crosses into the kernel — readiness waits, batched receive
//! drains, batched transmit submits, socket registration, the wakeup
//! kick — goes through one [`Datapath`] object. Two backends exist:
//!
//! * [`EpollDatapath`] — the original path: `epoll_wait` readiness plus
//!   `recvmmsg`/`sendmmsg` batches on nonblocking sockets. Always
//!   available; the default.
//! * `UringDatapath` (behind the `uring` feature) — io_uring submission
//!   and completion rings: multishot-style pre-posted `RECVMSG`
//!   batches, linked `SENDMSG` submits from a preallocated slot pool,
//!   `OP_TIMEOUT` deadline waits, and one `io_uring_enter` per loop
//!   iteration in place of the epoll backend's wait+drain+flush
//!   syscall train.
//!
//! The seam is what makes a future AF_XDP or simulated-loss backend a
//! one-file change: implement the six methods, add a [`DatapathKind`]
//! arm, done.
//!
//! All methods are called from the reactor thread only — registration
//! and deregistration requests from application threads are queued by
//! the reactor core and drained at the top of each loop iteration, so
//! backends need no internal locking (io_uring's submission queue is
//! single-producer by design).

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use crate::reactor::{ReactorSession, StatsCells};
use crate::socket::{McastSocket, RxBatch};

mod epoll;
#[cfg(feature = "uring")]
mod uring;

pub(crate) use epoll::EpollDatapath;
#[cfg(feature = "uring")]
pub(crate) use uring::UringDatapath;

/// Which syscall backend a reactor should drive its sockets with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DatapathKind {
    /// `epoll_wait` readiness + `recvmmsg`/`sendmmsg` batches (always
    /// available).
    #[default]
    Epoll,
    /// io_uring submission/completion rings. Requires the `uring`
    /// cargo feature *and* kernel support; either missing falls back
    /// to [`DatapathKind::Epoll`] at reactor construction (check
    /// [`crate::ReactorStats::backend`] for what actually runs).
    Uring,
}

impl std::str::FromStr for DatapathKind {
    type Err = String;

    fn from_str(s: &str) -> Result<DatapathKind, String> {
        match s {
            "epoll" => Ok(DatapathKind::Epoll),
            "uring" | "io_uring" | "io-uring" => Ok(DatapathKind::Uring),
            other => Err(format!("unknown datapath '{other}' (epoll|uring)")),
        }
    }
}

impl std::fmt::Display for DatapathKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DatapathKind::Epoll => "epoll",
            DatapathKind::Uring => "uring",
        })
    }
}

/// The syscall boundary the reactor drives its sessions through.
///
/// One instance per reactor thread. Implementations own whatever kernel
/// handles they need (an epoll fd, an io_uring fd plus its ring
/// mappings) and count their own syscalls into the shared
/// [`StatsCells`]; the reactor-side [`crate::reactor::IoBatch`] counts
/// packets and batch-size distributions, so
/// `ReactorStats::syscalls_per_packet` stays honest per backend.
pub(crate) trait Datapath: Send {
    /// Stable backend name for telemetry: `"epoll"` or `"uring"`.
    fn backend(&self) -> &'static str;

    /// Start watching `fd`; readiness surfaces as `token` from
    /// [`Datapath::wait`].
    fn register(&mut self, fd: i32, token: u64) -> io::Result<()>;

    /// Stop watching `fd`. `keepalive` is the session that owns the fd:
    /// a backend with in-flight kernel operations against it (io_uring
    /// holds a file reference per pending SQE) parks the Arc until
    /// those operations drain, so the fd is not closed out from under
    /// the kernel; the epoll backend drops it immediately.
    fn deregister(&mut self, fd: i32, keepalive: Arc<dyn ReactorSession>);

    /// Block until at least one watched fd is ready, the kick fires, or
    /// `timeout_ms` elapses. Ready tokens (including
    /// [`crate::reactor::KICK_TOKEN`]) are appended to `ready`, which
    /// the implementation clears first. A token may appear at most once
    /// per call.
    fn wait(&mut self, timeout_ms: i32, ready: &mut Vec<u64>) -> io::Result<()>;

    /// Drain one batch of received datagrams from `sock` into `rx`.
    /// Returns the count, or `WouldBlock` when nothing is queued (the
    /// session loop's "drained" signal, whatever the backend).
    fn recv_batch(&mut self, sock: &McastSocket, rx: &mut RxBatch) -> io::Result<usize>;

    /// Submit `bufs[i] → dsts[i]` datagrams out `sock`. Returns how
    /// many were accepted (submitted to the kernel or queued on a ring);
    /// transient refusals surface as `WouldBlock`/`ENOBUFS` for the
    /// caller's retry loop.
    fn send_batch(
        &mut self,
        sock: &McastSocket,
        bufs: &[Vec<u8>],
        dsts: &[SocketAddr],
    ) -> io::Result<usize>;
}

/// Build the configured backend, falling back to epoll when the kernel
/// or the build lacks io_uring support. `wakefd` is the reactor's kick
/// eventfd; the backend surfaces it as `KICK_TOKEN`.
pub(crate) fn make_datapath(
    kind: DatapathKind,
    wakefd: i32,
    stats: Arc<StatsCells>,
) -> io::Result<Box<dyn Datapath>> {
    match kind {
        DatapathKind::Epoll => Ok(Box::new(EpollDatapath::new(wakefd, stats)?)),
        DatapathKind::Uring => {
            #[cfg(feature = "uring")]
            {
                // Probe: a kernel without io_uring (ENOSYS), a seccomp
                // sandbox (EPERM), or a disabled sysctl all surface at
                // io_uring_setup — any refusal falls back to epoll so a
                // `uring`-built binary runs everywhere.
                if let Ok(dp) = UringDatapath::new(wakefd, Arc::clone(&stats)) {
                    return Ok(Box::new(dp));
                }
            }
            Ok(Box::new(EpollDatapath::new(wakefd, stats)?))
        }
    }
}
