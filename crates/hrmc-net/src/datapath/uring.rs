//! io_uring backend: submission/completion rings in place of the
//! epoll backend's wait+drain+flush syscall train.
//!
//! Shape of the ring traffic:
//!
//! * **RX** — multishot-style receive batches: [`RX_INFLIGHT`]
//!   `RECVMSG` requests stay posted per socket, each owning a
//!   preallocated 64 KiB slot from the registered buffer pool, so a
//!   burst of datagrams completes as a burst of CQEs with no syscall
//!   per packet. Consumed slots are re-posted at the next wait.
//! * **TX** — linked submits: each `flush_tx` batch becomes a chain of
//!   `SENDMSG` SQEs joined with `IOSQE_IO_LINK` (in-order submission);
//!   a link severed by a transient error is re-queued unlinked once.
//! * **Timers** — the reactor's deadline wait becomes an `OP_TIMEOUT`
//!   SQE; a later-than-needed pending timeout is left to fire as a
//!   harmless early wake, so rapid loop iterations do not stack
//!   timeouts.
//! * **Kick** — a oneshot `POLL_ADD` on the reactor's eventfd,
//!   re-armed per wait.
//!
//! One `io_uring_enter(…, GETEVENTS)` per loop iteration submits all
//! queued SQEs and reaps all CQEs — that single syscall is the whole
//! kernel crossing, counted in `ReactorStats::uring_enters`.
//!
//! Two fd-lifetime rules this file encodes (learned the hard way by
//! every io_uring consumer):
//!
//! 1. A nonblocking socket makes `RECVMSG` complete `-EAGAIN` instead
//!    of arming the internal poll — sockets stay *blocking* under this
//!    backend (the reactor skips `set_nonblocking` for it).
//! 2. A pending SQE holds a file reference, so `close(2)` does not
//!    cancel it. Deregistration parks the owning session's Arc (which
//!    keeps the fd open) in a graveyard, posts `ASYNC_CANCEL` for the
//!    slots still posted, and releases the Arc only when the last CQE
//!    for that fd arrives.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::Datapath;
use crate::reactor::{ReactorSession, StatsCells, KICK_TOKEN};
use crate::socket::{sockaddr_in_of, McastSocket, RxBatch};

/// Submission ring size: a full TX flush (16) per session across a
/// dispatch burst plus RX reposts fit comfortably; overflow spills to
/// the userspace deferred queue and drains next pump.
const SQ_ENTRIES: u32 = 256;
/// Completion ring size (via `IORING_SETUP_CQSIZE`): large enough that
/// a burst across every registered socket cannot overflow it.
const CQ_ENTRIES: u32 = 4096;
/// `RECVMSG` requests kept posted per socket — the multishot-style
/// batch depth, matching the epoll path's `RX_SLOTS` recvmmsg width.
const RX_INFLIGHT: usize = 8;
/// Per-slot receive buffer: the UDP maximum, so no datagram truncates.
const RX_SLOT_BUF: usize = 64 * 1024;
/// TX slot pool cap: deep enough for several sessions' flushes in one
/// dispatch burst; exhaustion surfaces as `WouldBlock` to the caller's
/// backoff loop.
const TX_POOL: usize = 256;

const TAG_SHIFT: u32 = 56;
const TAG_MASK: u64 = 0xff << TAG_SHIFT;
const TAG_RX: u64 = 1 << TAG_SHIFT;
const TAG_TX: u64 = 2 << TAG_SHIFT;
const TAG_KICK: u64 = 3 << TAG_SHIFT;
const TAG_TIMEOUT: u64 = 4 << TAG_SHIFT;
const TAG_CANCEL: u64 = 5 << TAG_SHIFT;

const POLLIN: u32 = 0x1;
const EAGAIN: i32 = 11;
const EINTR: i32 = 4;
const EBUSY: i32 = 16;
const ENOBUFS: i32 = 105;
const ECANCELED: i32 = 125;

/// One pre-posted receive request's backing store. Boxed so every
/// pointer the kernel holds (`buf`, `name`, `iov`, `msg`) stays stable
/// while the slot vector grows.
struct RxSlot {
    buf: Vec<u8>,
    name: libc::sockaddr_in,
    iov: libc::iovec,
    msg: libc::msghdr,
    /// Socket this slot is posted against or holds data from; -1 free.
    fd: i32,
    /// Payload length filled in from the completion.
    len: usize,
}

impl RxSlot {
    fn new() -> Box<RxSlot> {
        Box::new(RxSlot {
            buf: vec![0u8; RX_SLOT_BUF],
            name: unsafe { std::mem::zeroed() },
            iov: libc::iovec {
                iov_base: std::ptr::null_mut(),
                iov_len: 0,
            },
            msg: unsafe { std::mem::zeroed() },
            fd: -1,
            len: 0,
        })
    }
}

/// One in-flight transmit's backing store (same stability argument).
struct TxSlot {
    buf: Vec<u8>,
    name: libc::sockaddr_in,
    iov: libc::iovec,
    msg: libc::msghdr,
    fd: i32,
    /// Already re-queued after a severed link (`-ECANCELED`).
    relinked: bool,
    /// Already re-queued after a transient error.
    retried: bool,
    /// Kernel-visible (queued or submitted, completion pending).
    live: bool,
}

impl TxSlot {
    fn new() -> Box<TxSlot> {
        Box::new(TxSlot {
            buf: Vec::new(),
            name: unsafe { std::mem::zeroed() },
            iov: libc::iovec {
                iov_base: std::ptr::null_mut(),
                iov_len: 0,
            },
            msg: unsafe { std::mem::zeroed() },
            fd: -1,
            relinked: false,
            retried: false,
            live: false,
        })
    }
}

/// A completed receive waiting for the session to drain it.
enum RxDone {
    /// Slot index holding payload + source address.
    Data(usize),
    /// Receive error (positive errno), surfaced once then cleared.
    Err(i32),
}

/// Per-watched-fd state.
struct FdState {
    token: u64,
    /// Completions not yet consumed by `recv_batch`, oldest first.
    ready: VecDeque<RxDone>,
    /// RECVMSG (and cancel-pending) requests the kernel still holds.
    inflight: usize,
    /// Deregistered: stop reposting, drop completions, release
    /// `keepalive` once `inflight` hits zero.
    dying: bool,
    /// The owning session, parked so the fd outlives pending SQEs.
    keepalive: Option<Arc<dyn ReactorSession>>,
}

fn sqe(opcode: u8, fd: i32, addr: u64, len: u32, user_data: u64) -> libc::io_uring_sqe {
    libc::io_uring_sqe {
        opcode,
        fd,
        addr,
        len,
        user_data,
        ..libc::io_uring_sqe::default()
    }
}

pub(crate) struct UringDatapath {
    fd: i32,
    wakefd: i32,
    stats: Arc<StatsCells>,

    // Ring mappings. `cq_ring` aliases `sq_ring` on
    // IORING_FEAT_SINGLE_MMAP kernels (cq_ring_len == 0 then).
    sq_ring: *mut u8,
    sq_ring_len: usize,
    cq_ring: *mut u8,
    cq_ring_len: usize,
    sqes: *mut libc::io_uring_sqe,
    sqes_len: usize,

    // Ring geometry: raw offsets resolved to pointers.
    sq_head: *const AtomicU32,
    sq_tail: *const AtomicU32,
    sq_mask: u32,
    sq_entries: u32,
    sq_array: *mut u32,
    cq_head: *const AtomicU32,
    cq_tail: *const AtomicU32,
    cq_mask: u32,
    cqes: *const libc::io_uring_cqe,

    /// SQEs accepted but not yet copied into the ring (ring-full spill
    /// and everything queued between enters).
    pending: VecDeque<libc::io_uring_sqe>,
    fds: HashMap<i32, FdState>,
    // The boxes are load-bearing, not clippy::vec_box noise: submitted
    // SQEs carry raw pointers into a slot's msghdr/iovec/buffer, and
    // the kernel dereferences them asynchronously. Boxing pins each
    // slot's address across Vec growth.
    #[allow(clippy::vec_box)]
    rx_slots: Vec<Box<RxSlot>>,
    rx_free: Vec<usize>,
    /// Consumed slots awaiting repost at the next wait.
    rx_repost: Vec<usize>,
    #[allow(clippy::vec_box)]
    tx_slots: Vec<Box<TxSlot>>,
    tx_free: Vec<usize>,
    kick_armed: bool,
    kick_fired: bool,
    timeout_gen: u64,
    /// Generation and absolute deadline of the earliest armed
    /// `OP_TIMEOUT` still pending.
    pending_timeout: Option<(u64, Instant)>,
    /// Timespec storage per armed timeout generation (the kernel reads
    /// it at submission; freed when the CQE arrives).
    timeout_specs: HashMap<u64, Box<libc::__kernel_timespec>>,
}

// SAFETY: the raw pointers target ring mmaps owned by this struct; all
// access happens from the one reactor thread that owns the box.
unsafe impl Send for UringDatapath {}

impl UringDatapath {
    pub(crate) fn new(wakefd: i32, stats: Arc<StatsCells>) -> io::Result<UringDatapath> {
        let mut params = libc::io_uring_params {
            flags: libc::IORING_SETUP_CQSIZE,
            cq_entries: CQ_ENTRIES,
            ..libc::io_uring_params::default()
        };
        let fd = unsafe {
            libc::syscall(
                libc::SYS_io_uring_setup,
                SQ_ENTRIES,
                &mut params as *mut libc::io_uring_params,
            )
        } as i32;
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let close_on_err = |e: io::Error| {
            unsafe { libc::close(fd) };
            Err(e)
        };

        let sq_sz =
            params.sq_off.array as usize + params.sq_entries as usize * std::mem::size_of::<u32>();
        let cq_sz = params.cq_off.cqes as usize
            + params.cq_entries as usize * std::mem::size_of::<libc::io_uring_cqe>();
        let single = params.features & libc::IORING_FEAT_SINGLE_MMAP != 0;
        let sq_ring_len = if single { sq_sz.max(cq_sz) } else { sq_sz };
        let map = |len: usize, off: i64| -> io::Result<*mut u8> {
            let p = unsafe {
                libc::mmap(
                    std::ptr::null_mut(),
                    len,
                    libc::PROT_READ | libc::PROT_WRITE,
                    libc::MAP_SHARED | libc::MAP_POPULATE,
                    fd,
                    off,
                )
            };
            if p == libc::MAP_FAILED {
                Err(io::Error::last_os_error())
            } else {
                Ok(p as *mut u8)
            }
        };
        let sq_ring = match map(sq_ring_len, libc::IORING_OFF_SQ_RING) {
            Ok(p) => p,
            Err(e) => return close_on_err(e),
        };
        let (cq_ring, cq_ring_len) = if single {
            (sq_ring, 0)
        } else {
            match map(cq_sz, libc::IORING_OFF_CQ_RING) {
                Ok(p) => (p, cq_sz),
                Err(e) => {
                    unsafe { libc::munmap(sq_ring as *mut libc::c_void, sq_ring_len) };
                    return close_on_err(e);
                }
            }
        };
        let sqes_len = params.sq_entries as usize * std::mem::size_of::<libc::io_uring_sqe>();
        let sqes = match map(sqes_len, libc::IORING_OFF_SQES) {
            Ok(p) => p as *mut libc::io_uring_sqe,
            Err(e) => {
                unsafe {
                    if cq_ring_len > 0 {
                        libc::munmap(cq_ring as *mut libc::c_void, cq_ring_len);
                    }
                    libc::munmap(sq_ring as *mut libc::c_void, sq_ring_len);
                }
                return close_on_err(e);
            }
        };

        unsafe {
            let at = |base: *mut u8, off: u32| base.add(off as usize);
            Ok(UringDatapath {
                fd,
                wakefd,
                stats,
                sq_ring,
                sq_ring_len,
                cq_ring,
                cq_ring_len,
                sqes,
                sqes_len,
                sq_head: at(sq_ring, params.sq_off.head) as *const AtomicU32,
                sq_tail: at(sq_ring, params.sq_off.tail) as *const AtomicU32,
                sq_mask: *(at(sq_ring, params.sq_off.ring_mask) as *const u32),
                sq_entries: params.sq_entries,
                sq_array: at(sq_ring, params.sq_off.array) as *mut u32,
                cq_head: at(cq_ring, params.cq_off.head) as *const AtomicU32,
                cq_tail: at(cq_ring, params.cq_off.tail) as *const AtomicU32,
                cq_mask: *(at(cq_ring, params.cq_off.ring_mask) as *const u32),
                cqes: at(cq_ring, params.cq_off.cqes) as *const libc::io_uring_cqe,
                pending: VecDeque::new(),
                fds: HashMap::new(),
                rx_slots: Vec::new(),
                rx_free: Vec::new(),
                rx_repost: Vec::new(),
                tx_slots: Vec::new(),
                tx_free: Vec::new(),
                kick_armed: false,
                kick_fired: false,
                timeout_gen: 0,
                pending_timeout: None,
                timeout_specs: HashMap::new(),
            })
        }
    }

    /// Copy deferred SQEs into the ring (as many as fit) and return the
    /// count the next `io_uring_enter` should submit.
    fn pump(&mut self) -> u32 {
        unsafe {
            let head = (*self.sq_head).load(Ordering::Acquire);
            let mut tail = (*self.sq_tail).load(Ordering::Relaxed);
            while tail.wrapping_sub(head) < self.sq_entries {
                let Some(s) = self.pending.pop_front() else {
                    break;
                };
                let idx = tail & self.sq_mask;
                *self.sqes.add(idx as usize) = s;
                *self.sq_array.add(idx as usize) = idx;
                tail = tail.wrapping_add(1);
            }
            (*self.sq_tail).store(tail, Ordering::Release);
            tail.wrapping_sub((*self.sq_head).load(Ordering::Acquire))
        }
    }

    /// One `io_uring_enter` — the backend's only syscall, counted.
    fn enter(&self, to_submit: u32, min_complete: u32, flags: u32) -> io::Result<i64> {
        self.stats.uring_enters.fetch_add(1, Ordering::Relaxed);
        let rc = unsafe {
            libc::syscall(
                libc::SYS_io_uring_enter,
                self.fd,
                to_submit,
                min_complete,
                flags,
                std::ptr::null_mut::<libc::c_void>(),
                0usize,
            )
        };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc)
        }
    }

    /// Drain every available CQE into userspace state.
    fn reap(&mut self) {
        unsafe {
            let tail = (*self.cq_tail).load(Ordering::Acquire);
            let mut head = (*self.cq_head).load(Ordering::Relaxed);
            while head != tail {
                let cqe = *self.cqes.add((head & self.cq_mask) as usize);
                head = head.wrapping_add(1);
                self.on_cqe(cqe);
            }
            (*self.cq_head).store(head, Ordering::Release);
        }
    }

    fn on_cqe(&mut self, cqe: libc::io_uring_cqe) {
        let payload = cqe.user_data & !TAG_MASK;
        match cqe.user_data & TAG_MASK {
            TAG_RX => self.on_rx_cqe(payload as usize, cqe.res),
            TAG_TX => self.on_tx_cqe(payload as usize, cqe.res),
            TAG_KICK => {
                self.kick_armed = false;
                self.kick_fired = true;
            }
            TAG_TIMEOUT => {
                self.timeout_specs.remove(&payload);
                if let Some((gen, _)) = self.pending_timeout {
                    if gen == payload {
                        self.pending_timeout = None;
                    }
                }
            }
            TAG_CANCEL => {} // best-effort; the canceled op's own CQE settles state
            _ => {}
        }
    }

    fn on_rx_cqe(&mut self, slot_idx: usize, res: i32) {
        let fd = self.rx_slots[slot_idx].fd;
        let Some(state) = self.fds.get_mut(&fd) else {
            // fd already finalized (should not happen — finalize waits
            // for inflight to reach zero); recycle the slot defensively.
            self.rx_slots[slot_idx].fd = -1;
            self.rx_free.push(slot_idx);
            return;
        };
        state.inflight -= 1;
        if state.dying {
            self.rx_slots[slot_idx].fd = -1;
            self.rx_free.push(slot_idx);
            Self::finalize_if_drained(&mut self.fds, fd);
            return;
        }
        if res >= 0 {
            self.rx_slots[slot_idx].len = res as usize;
            state.ready.push_back(RxDone::Data(slot_idx));
        } else {
            let errno = -res;
            self.rx_slots[slot_idx].fd = -1;
            if errno == ECANCELED {
                self.rx_free.push(slot_idx);
            } else {
                // Surface the error in arrival order; the slot itself
                // reposts so the socket keeps draining if the session
                // treats the error as transient.
                state.ready.push_back(RxDone::Err(errno));
                self.rx_repost.push(slot_idx);
                // Reposting needs the fd back on the slot.
                self.rx_slots[slot_idx].fd = fd;
            }
        }
    }

    fn on_tx_cqe(&mut self, slot_idx: usize, res: i32) {
        let errno = if res < 0 { -res } else { 0 };
        let requeue = {
            let slot = &mut self.tx_slots[slot_idx];
            slot.live = false;
            if res >= 0 {
                None
            } else if errno == ECANCELED && !slot.relinked {
                // Collateral of a severed IO_LINK chain, not a real
                // failure: resubmit unlinked.
                slot.relinked = true;
                Some(false)
            } else if matches!(errno, EAGAIN | EINTR | ENOBUFS) && !slot.retried {
                slot.retried = true;
                Some(true)
            } else {
                self.stats.tx_drops.fetch_add(1, Ordering::Relaxed);
                slot.fd = -1;
                self.tx_free.push(slot_idx);
                return;
            }
        };
        match requeue {
            None => {
                let slot = &mut self.tx_slots[slot_idx];
                slot.fd = -1;
                self.tx_free.push(slot_idx);
            }
            Some(count_retry) => {
                if count_retry {
                    self.stats.tx_retries.fetch_add(1, Ordering::Relaxed);
                }
                self.queue_tx(slot_idx, false);
            }
        }
    }

    /// Queue the RECVMSG for a slot already assigned to an fd.
    fn queue_rx(&mut self, slot_idx: usize) {
        let slot = &mut self.rx_slots[slot_idx];
        let fd = slot.fd;
        slot.iov.iov_base = slot.buf.as_mut_ptr() as *mut libc::c_void;
        slot.iov.iov_len = RX_SLOT_BUF;
        slot.msg = unsafe { std::mem::zeroed() };
        slot.msg.msg_name = &mut slot.name as *mut libc::sockaddr_in as *mut libc::c_void;
        slot.msg.msg_namelen = std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t;
        slot.msg.msg_iov = &mut slot.iov;
        slot.msg.msg_iovlen = 1;
        let addr = &slot.msg as *const libc::msghdr as u64;
        self.pending.push_back(sqe(
            libc::IORING_OP_RECVMSG,
            fd,
            addr,
            1,
            TAG_RX | slot_idx as u64,
        ));
        if let Some(state) = self.fds.get_mut(&fd) {
            state.inflight += 1;
        }
    }

    /// Queue the SENDMSG for a filled TX slot.
    fn queue_tx(&mut self, slot_idx: usize, link: bool) {
        let slot = &mut self.tx_slots[slot_idx];
        slot.iov.iov_base = slot.buf.as_mut_ptr() as *mut libc::c_void;
        slot.iov.iov_len = slot.buf.len();
        slot.msg = unsafe { std::mem::zeroed() };
        slot.msg.msg_name = &mut slot.name as *mut libc::sockaddr_in as *mut libc::c_void;
        slot.msg.msg_namelen = std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t;
        slot.msg.msg_iov = &mut slot.iov;
        slot.msg.msg_iovlen = 1;
        slot.live = true;
        let mut s = sqe(
            libc::IORING_OP_SENDMSG,
            slot.fd,
            &slot.msg as *const libc::msghdr as u64,
            1,
            TAG_TX | slot_idx as u64,
        );
        if link {
            s.flags |= libc::IOSQE_IO_LINK;
        }
        self.pending.push_back(s);
    }

    fn finalize_if_drained(fds: &mut HashMap<i32, FdState>, fd: i32) {
        if let Some(state) = fds.get(&fd) {
            if state.dying && state.inflight == 0 {
                fds.remove(&fd); // dropping keepalive releases the fd
            }
        }
    }

    /// Arm an `OP_TIMEOUT` for `timeout_ms` from now, unless one at
    /// least as early is already pending (an earlier one firing first
    /// is a harmless spurious wake).
    fn arm_timeout(&mut self, timeout_ms: i32) {
        let timeout_ms = timeout_ms.max(0) as u64;
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        if let Some((_, d)) = self.pending_timeout {
            if d <= deadline + Duration::from_millis(1) {
                return;
            }
        }
        self.timeout_gen += 1;
        let gen = self.timeout_gen;
        let ts = Box::new(libc::__kernel_timespec {
            tv_sec: (timeout_ms / 1000) as i64,
            tv_nsec: ((timeout_ms % 1000) * 1_000_000) as i64,
        });
        let addr = &*ts as *const libc::__kernel_timespec as u64;
        self.timeout_specs.insert(gen, ts);
        self.pending
            .push_back(sqe(libc::IORING_OP_TIMEOUT, -1, addr, 1, TAG_TIMEOUT | gen));
        self.pending_timeout = Some((gen, deadline));
    }

    /// Re-post every consumed RX slot whose socket is still live.
    fn repost_rx(&mut self) {
        let slots = std::mem::take(&mut self.rx_repost);
        for slot_idx in slots {
            let fd = self.rx_slots[slot_idx].fd;
            let alive = self.fds.get(&fd).is_some_and(|s| !s.dying);
            if alive {
                self.queue_rx(slot_idx);
            } else {
                self.rx_slots[slot_idx].fd = -1;
                self.rx_free.push(slot_idx);
            }
        }
    }

    /// Append the tokens of every fd with undrained completions, plus
    /// the kick if it fired.
    fn collect_ready(&mut self, ready: &mut Vec<u64>) {
        for state in self.fds.values() {
            if !state.dying && !state.ready.is_empty() {
                ready.push(state.token);
            }
        }
        if self.kick_fired {
            self.kick_fired = false;
            ready.push(KICK_TOKEN);
        }
    }

    fn outstanding(&self) -> usize {
        let rx: usize = self.fds.values().map(|s| s.inflight).sum();
        let tx = self.tx_slots.iter().filter(|s| s.live).count();
        rx + tx
    }
}

impl Datapath for UringDatapath {
    fn backend(&self) -> &'static str {
        "uring"
    }

    fn register(&mut self, fd: i32, token: u64) -> io::Result<()> {
        if fd == self.wakefd {
            // The kick eventfd is driven by oneshot POLL_ADD armed per
            // wait, not a persistent registration.
            return Ok(());
        }
        self.fds.insert(
            fd,
            FdState {
                token,
                ready: VecDeque::new(),
                inflight: 0,
                dying: false,
                keepalive: None,
            },
        );
        for _ in 0..RX_INFLIGHT {
            let slot_idx = self.rx_free.pop().unwrap_or_else(|| {
                self.rx_slots.push(RxSlot::new());
                self.rx_slots.len() - 1
            });
            self.rx_slots[slot_idx].fd = fd;
            self.queue_rx(slot_idx);
        }
        Ok(())
    }

    fn deregister(&mut self, fd: i32, keepalive: Arc<dyn ReactorSession>) {
        let Some(state) = self.fds.get_mut(&fd) else {
            return;
        };
        state.dying = true;
        // Unconsumed completions are discarded; their slots free up now.
        let ready = std::mem::take(&mut state.ready);
        for done in ready {
            if let RxDone::Data(slot_idx) = done {
                self.rx_slots[slot_idx].fd = -1;
                self.rx_free.push(slot_idx);
            }
        }
        let state = self.fds.get_mut(&fd).expect("still present");
        if state.inflight == 0 {
            self.fds.remove(&fd);
            drop(keepalive);
            return;
        }
        // Pending SQEs hold a file reference past close(2): park the
        // session Arc until their CQEs arrive, and hasten them along
        // with ASYNC_CANCEL.
        state.keepalive = Some(keepalive);
        for slot_idx in 0..self.rx_slots.len() {
            if self.rx_slots[slot_idx].fd == fd {
                self.pending.push_back(sqe(
                    libc::IORING_OP_ASYNC_CANCEL,
                    -1,
                    TAG_RX | slot_idx as u64,
                    0,
                    TAG_CANCEL,
                ));
            }
        }
    }

    fn wait(&mut self, timeout_ms: i32, ready: &mut Vec<u64>) -> io::Result<()> {
        ready.clear();
        self.repost_rx();
        if !self.kick_armed {
            self.kick_armed = true;
            self.pending
                .push_back(sqe(libc::IORING_OP_POLL_ADD, self.wakefd, 0, 0, TAG_KICK));
            let s = self.pending.back_mut().expect("just pushed");
            s.op_flags = POLLIN;
        }
        // Completions may already be queued (reaped during the send
        // path, or arrived since): report them without blocking, after
        // submitting whatever is pending.
        self.reap();
        self.collect_ready(ready);
        if !ready.is_empty() {
            let to_submit = self.pump();
            if to_submit > 0 {
                match self.enter(to_submit, 0, 0) {
                    Ok(_) => {}
                    Err(ref e) if e.raw_os_error() == Some(EBUSY) => self.reap(),
                    Err(ref e) if e.raw_os_error() == Some(EINTR) => {}
                    Err(e) => return Err(e),
                }
            }
            return Ok(());
        }
        self.arm_timeout(timeout_ms);
        let to_submit = self.pump();
        match self.enter(to_submit, 1, libc::IORING_ENTER_GETEVENTS) {
            Ok(_) => {}
            Err(ref e) if e.raw_os_error() == Some(EINTR) => {
                return Err(io::Error::from(io::ErrorKind::Interrupted));
            }
            Err(ref e) if e.raw_os_error() == Some(EBUSY) => {}
            Err(e) => return Err(e),
        }
        self.reap();
        self.collect_ready(ready);
        Ok(())
    }

    fn recv_batch(&mut self, sock: &McastSocket, rx: &mut RxBatch) -> io::Result<usize> {
        let fd = sock.raw_fd();
        let Some(state) = self.fds.get_mut(&fd) else {
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        };
        match state.ready.front() {
            None => return Err(io::Error::from(io::ErrorKind::WouldBlock)),
            Some(RxDone::Err(_)) => {
                let Some(RxDone::Err(errno)) = state.ready.pop_front() else {
                    unreachable!()
                };
                return Err(io::Error::from_raw_os_error(errno));
            }
            Some(RxDone::Data(_)) => {}
        }
        rx.clear();
        let mut consumed = Vec::new();
        while let Some(&RxDone::Data(slot_idx)) = state.ready.front() {
            state.ready.pop_front();
            consumed.push(slot_idx);
            if consumed.len() == crate::socket::RX_SLOTS {
                break;
            }
        }
        let n = consumed.len();
        for slot_idx in consumed {
            let slot = &self.rx_slots[slot_idx];
            rx.push(&slot.buf[..slot.len], slot.name);
            self.rx_repost.push(slot_idx);
        }
        Ok(n)
    }

    fn send_batch(
        &mut self,
        sock: &McastSocket,
        bufs: &[Vec<u8>],
        dsts: &[SocketAddr],
    ) -> io::Result<usize> {
        let fd = sock.raw_fd();
        let mut queued = Vec::new();
        for (buf, dst) in bufs.iter().zip(dsts) {
            let name = match sockaddr_in_of(*dst) {
                Ok(n) => n,
                Err(e) => {
                    if queued.is_empty() {
                        return Err(e);
                    }
                    break;
                }
            };
            let slot_idx = match self.tx_free.pop() {
                Some(i) => i,
                None if self.tx_slots.len() < TX_POOL => {
                    self.tx_slots.push(TxSlot::new());
                    self.tx_slots.len() - 1
                }
                None => {
                    // Pool exhausted: completions may be sitting in the
                    // CQ — reap, then give the caller's backoff loop a
                    // turn if still dry.
                    self.reap();
                    match self.tx_free.pop() {
                        Some(i) => i,
                        None if !queued.is_empty() => break,
                        None => return Err(io::Error::from(io::ErrorKind::WouldBlock)),
                    }
                }
            };
            let slot = &mut self.tx_slots[slot_idx];
            slot.buf.clear();
            slot.buf.extend_from_slice(buf);
            slot.name = name;
            slot.fd = fd;
            slot.relinked = false;
            slot.retried = false;
            queued.push(slot_idx);
        }
        let n = queued.len();
        for (i, slot_idx) in queued.into_iter().enumerate() {
            // Chain the batch in submission order; the last entry
            // terminates the link so unrelated later SQEs stay
            // independent.
            self.queue_tx(slot_idx, i + 1 < n);
        }
        Ok(n)
    }
}

impl Drop for UringDatapath {
    fn drop(&mut self) {
        // Cancel every still-posted RX and drain all in-flight work so
        // the kernel's last references into the slot pool die before
        // the pool does.
        let fds: Vec<i32> = self.fds.keys().copied().collect();
        for fd in fds {
            let state = self.fds.get_mut(&fd).expect("listed");
            state.dying = true;
            let ready = std::mem::take(&mut state.ready);
            for done in ready {
                if let RxDone::Data(slot_idx) = done {
                    self.rx_slots[slot_idx].fd = -1;
                    self.rx_free.push(slot_idx);
                }
            }
            Self::finalize_if_drained(&mut self.fds, fd);
        }
        for slot_idx in 0..self.rx_slots.len() {
            if self.rx_slots[slot_idx].fd >= 0 {
                self.pending.push_back(sqe(
                    libc::IORING_OP_ASYNC_CANCEL,
                    -1,
                    TAG_RX | slot_idx as u64,
                    0,
                    TAG_CANCEL,
                ));
            }
        }
        let deadline = Instant::now() + Duration::from_secs(1);
        while self.outstanding() > 0 && Instant::now() < deadline {
            self.arm_timeout(100);
            let to_submit = self.pump();
            let _ = self.enter(to_submit, 1, libc::IORING_ENTER_GETEVENTS);
            self.reap();
        }
        if self.outstanding() > 0 {
            // The kernel may still write into slot memory after a
            // deferred ring teardown: leak the pools rather than free
            // memory the kernel holds pointers into.
            std::mem::forget(std::mem::take(&mut self.rx_slots));
            std::mem::forget(std::mem::take(&mut self.tx_slots));
            std::mem::forget(std::mem::take(&mut self.timeout_specs));
        }
        unsafe {
            libc::munmap(self.sqes as *mut libc::c_void, self.sqes_len);
            if self.cq_ring_len > 0 {
                libc::munmap(self.cq_ring as *mut libc::c_void, self.cq_ring_len);
            }
            libc::munmap(self.sq_ring as *mut libc::c_void, self.sq_ring_len);
            libc::close(self.fd);
        }
    }
}
