//! Multi-shard reactor pool: N independent [`Reactor`] threads with
//! sessions hash-assigned per shard by multicast group.
//!
//! A single reactor thread caps throughput at one core regardless of
//! session fan-out. The pool keeps the per-reactor model intact — each
//! shard is a full reactor with its own datapath, timer heap, and
//! stats — and adds only the assignment function on top: a session's
//! multicast group FNV-hashes to a shard, so all endpoints of one group
//! in one process share a shard (their loopback traffic stays on one
//! thread) while distinct groups spread across cores.
//!
//! Per-shard [`ReactorStats`] stay visible for debugging;
//! [`ReactorPool::aggregate`] sums the counters and merges the
//! histograms for telemetry, `hrmc top`, and the `datapath` bench row.

use std::collections::HashMap;
use std::io;
use std::net::SocketAddrV4;
use std::sync::{Arc, OnceLock};

use hrmc_core::{Histogram, MetricsRegistry};
use parking_lot::Mutex;

use crate::datapath::DatapathKind;
use crate::reactor::{
    publish_reactor_gauges, publish_session_gauges, Reactor, ReactorConfig, ReactorStats,
    SessionHealth,
};

/// Bits reserved for the session id inside a pool-tagged health id: the
/// shard index lives above them, so per-session ids stay unique across
/// shards in one telemetry dump.
const SHARD_ID_SHIFT: u32 = 32;

/// A fixed-width pool of reactors. Cheap to clone (shards are shared);
/// every shard's thread runs until the last pool handle (and any
/// individual [`Reactor`] clones) drop.
#[derive(Clone)]
pub struct ReactorPool {
    shards: Arc<Vec<Reactor>>,
}

impl ReactorPool {
    /// Spawn `n` reactors (at least one) with default tunables.
    pub fn new(n: usize) -> io::Result<ReactorPool> {
        ReactorPool::with_config(ReactorConfig {
            shards: n,
            ..ReactorConfig::default()
        })
    }

    /// Spawn `config.shards` reactors (at least one), each built with
    /// this config — so the datapath choice (and its probe-fallback)
    /// applies per shard.
    pub fn with_config(config: ReactorConfig) -> io::Result<ReactorPool> {
        let n = config.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(Reactor::with_config(config.clone())?);
        }
        Ok(ReactorPool {
            shards: Arc::new(shards),
        })
    }

    /// The process-wide pool for a `(width, datapath)` pair — what
    /// `Session::…().reactor_threads(n).datapath(kind)` resolves to, so
    /// every session asking for the same shape shares one set of
    /// reactor threads (and its shard assignment) instead of spawning a
    /// private fleet.
    pub fn shared(shards: usize, datapath: DatapathKind) -> io::Result<ReactorPool> {
        static POOLS: OnceLock<Mutex<HashMap<(usize, DatapathKind), ReactorPool>>> =
            OnceLock::new();
        let shards = shards.max(1);
        let mut pools = POOLS.get_or_init(Mutex::default).lock();
        if let Some(pool) = pools.get(&(shards, datapath)) {
            return Ok(pool.clone());
        }
        let pool = ReactorPool::with_config(ReactorConfig {
            shards,
            datapath,
            ..ReactorConfig::default()
        })?;
        pools.insert((shards, datapath), pool.clone());
        Ok(pool)
    }

    /// Number of shards (reactor threads).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i` (panics out of range).
    pub fn shard(&self, i: usize) -> &Reactor {
        &self.shards[i]
    }

    /// The shard a session for `group` is assigned to: FNV-1a over the
    /// group address and port, modulo the pool width. Deterministic, so
    /// every endpoint of one group in one process lands on the same
    /// shard.
    pub fn shard_for(&self, group: SocketAddrV4) -> &Reactor {
        &self.shards[self.shard_index(group)]
    }

    /// The index [`ReactorPool::shard_for`] picks (exposed for tests
    /// and diagnostics).
    pub fn shard_index(&self, group: SocketAddrV4) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in group
            .ip()
            .octets()
            .iter()
            .chain(group.port().to_be_bytes().iter())
        {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // FNV alone leaves correlated inputs (addr and port stepping
        // together, the typical group-allocation pattern) correlated
        // mod small shard counts; a murmur-style finalizer avalanches
        // the low bits.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % self.shards.len() as u64) as usize
    }

    /// Sessions registered across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(Reactor::session_count).sum()
    }

    /// Per-shard stats snapshots, in shard order.
    pub fn stats(&self) -> Vec<ReactorStats> {
        self.shards.iter().map(Reactor::stats).collect()
    }

    /// Pool-wide stats: counters summed over shards (including
    /// `sessions_hwm`, so the aggregate is exactly the sum of the
    /// per-shard snapshots), batch/latency figures recomputed from the
    /// merged histograms.
    pub fn aggregate(&self) -> ReactorStats {
        let (rx, tx, loop_us, slip) = self.merged_histograms();
        let mut agg = ReactorStats::default();
        for st in self.stats() {
            agg.backend = st.backend;
            agg.sessions += st.sessions;
            agg.sessions_hwm += st.sessions_hwm;
            agg.epoll_wakeups += st.epoll_wakeups;
            agg.timer_fires += st.timer_fires;
            agg.kicks += st.kicks;
            agg.recvmmsg_calls += st.recvmmsg_calls;
            agg.sendmmsg_calls += st.sendmmsg_calls;
            agg.uring_enters += st.uring_enters;
            agg.packets_rx += st.packets_rx;
            agg.packets_tx += st.packets_tx;
            agg.tx_retries += st.tx_retries;
            agg.tx_drops += st.tx_drops;
            agg.timer_heap_len += st.timer_heap_len;
            agg.timers_armed += st.timers_armed;
            agg.idle_cap_ms = st.idle_cap_ms;
        }
        agg.rx_batch_mean = rx.mean();
        agg.rx_batch_max = rx.max().unwrap_or(0);
        agg.tx_batch_mean = tx.mean();
        agg.tx_batch_max = tx.max().unwrap_or(0);
        agg.loop_p99_us = loop_us.p99();
        agg.timer_slippage_p99_us = slip.p99();
        agg
    }

    /// Per-session traffic totals across every shard, each id tagged
    /// with its shard (`shard << 32 | id`) so ids stay unique pool-wide.
    pub fn session_health(&self) -> Vec<SessionHealth> {
        let mut out = Vec::new();
        for (shard, r) in self.shards.iter().enumerate() {
            for mut h in r.session_health() {
                h.id |= (shard as u64) << SHARD_ID_SHIFT;
                out.push(h);
            }
        }
        out
    }

    /// Publish pool-wide gauges and merged histograms under the same
    /// `reactor_*` names a single reactor uses — the telemetry endpoint
    /// and `hrmc top` see one logical reactor plus the
    /// `reactor_shards` width.
    pub fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        publish_reactor_gauges(reg, &self.aggregate(), self.shards.len() as u64);
        let (rx, tx, loop_us, slip) = self.merged_histograms();
        reg.set_histogram("reactor_rx_batch", &rx);
        reg.set_histogram("reactor_tx_batch", &tx);
        reg.set_histogram("reactor_loop_us", &loop_us);
        reg.set_histogram("reactor_timer_slippage_us", &slip);
        let mut sessions = Vec::new();
        for r in self.shards.iter() {
            sessions.extend(r.sessions_snapshot());
        }
        publish_session_gauges(reg, &sessions);
    }

    fn merged_histograms(&self) -> (Histogram, Histogram, Histogram, Histogram) {
        let mut rx = Histogram::new();
        let mut tx = Histogram::new();
        let mut loop_us = Histogram::new();
        let mut slip = Histogram::new();
        for r in self.shards.iter() {
            let cells = r.stats_cells();
            rx.merge(&cells.rx_batches.lock());
            tx.merge(&cells.tx_batches.lock());
            loop_us.merge(&cells.loop_us.lock());
            slip.merge(&cells.timer_slippage_us.lock());
        }
        (rx, tx, loop_us, slip)
    }
}

/// A pool of one pre-existing reactor: the aggregation, health-tagging,
/// and gauge-publishing surface over a reactor that already runs — how
/// the telemetry pipeline treats a single reactor and a sharded pool
/// uniformly.
impl From<Reactor> for ReactorPool {
    fn from(reactor: Reactor) -> ReactorPool {
        ReactorPool {
            shards: Arc::new(vec![reactor]),
        }
    }
}

impl std::fmt::Debug for ReactorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorPool")
            .field("shards", &self.shards.len())
            .field("sessions", &self.session_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn group(a: u8, port: u16) -> SocketAddrV4 {
        SocketAddrV4::new(Ipv4Addr::new(239, 255, 80, a), port)
    }

    #[test]
    fn pool_spawns_and_assigns_deterministically() {
        let pool = ReactorPool::new(4).expect("pool");
        assert_eq!(pool.shards(), 4);
        assert_eq!(pool.session_count(), 0);
        let g = group(1, 45001);
        let a = pool.shard_index(g);
        assert_eq!(a, pool.shard_index(g), "assignment is deterministic");
        // Distinct groups spread: with 64 groups over 4 shards, every
        // shard gets at least one (FNV mixes the low octets well).
        let mut hit = [false; 4];
        for i in 0..64u8 {
            hit[pool.shard_index(group(i, 45000 + u16::from(i)))] = true;
        }
        assert!(hit.iter().all(|&h| h), "all shards reachable: {hit:?}");
    }

    #[test]
    fn zero_width_pool_is_clamped_to_one() {
        let pool = ReactorPool::new(0).expect("pool");
        assert_eq!(pool.shards(), 1);
    }

    #[test]
    fn aggregate_sums_shard_counters() {
        let pool = ReactorPool::new(2).expect("pool");
        // Idle reactors still wake on their idle cap; aggregate wakeups
        // must equal the sum of the per-shard snapshots (both counters
        // only grow, so take the per-shard sum *after* the aggregate —
        // sum >= aggregate proves no double-count, aggregate >= earlier
        // per-shard readings proves no loss).
        let before: u64 = pool.stats().iter().map(|s| s.epoll_wakeups).sum();
        let agg = pool.aggregate().epoll_wakeups;
        let after: u64 = pool.stats().iter().map(|s| s.epoll_wakeups).sum();
        assert!(agg >= before, "aggregate lost counts: {before} -> {agg}");
        assert!(after >= agg, "aggregate double-counted: {agg} -> {after}");
    }

    #[test]
    fn pool_publishes_shard_width_and_backend() {
        let pool = ReactorPool::new(3).expect("pool");
        let mut reg = MetricsRegistry::new();
        pool.publish_metrics(&mut reg);
        assert_eq!(reg.gauge("reactor_shards"), Some(3));
        let backend = reg.gauge("datapath_backend");
        assert!(backend == Some(0) || backend == Some(1));
        assert_eq!(reg.gauge("reactor_sessions"), Some(0));
    }
}
