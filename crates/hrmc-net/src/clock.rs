//! Monotonic microsecond clock shared by a driver's threads. The engines
//! are sans-io and take `now` explicitly; this clock is the single time
//! source so packets and ticks observe a consistent timeline.

use std::time::Instant;

/// Microseconds since the driver started.
#[derive(Debug, Clone, Copy)]
pub struct DriverClock {
    epoch: Instant,
}

impl DriverClock {
    /// A clock starting now.
    pub fn new() -> DriverClock {
        DriverClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the clock was created.
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl Default for DriverClock {
    fn default() -> Self {
        DriverClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = DriverClock::new();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now();
        assert!(b >= a + 1_000, "a={a} b={b}");
    }

    #[test]
    fn copies_share_the_epoch() {
        let c = DriverClock::new();
        let d = c;
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(d.now() >= 1_000);
        assert!(c.now().abs_diff(d.now()) < 1_000);
    }
}
