//! Monotonic microsecond clock shared by a driver's sessions. The
//! engines are sans-io and take `now` explicitly; each session's clock is
//! its single time source so packets and ticks observe a consistent
//! timeline.
//!
//! Sessions keep their own epoch (observer timestamps are relative to
//! bind/join time, exactly as before the shared reactor), but the
//! reactor's timer heap orders deadlines from *different* sessions —
//! [`DriverClock::at`] maps a session-local microsecond deadline back
//! onto the common [`Instant`] timeline so they compare.

use std::time::{Duration, Instant};

/// Microseconds since the driver started.
#[derive(Debug, Clone, Copy)]
pub struct DriverClock {
    epoch: Instant,
}

impl DriverClock {
    /// A clock starting now.
    pub fn new() -> DriverClock {
        DriverClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the clock was created.
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The [`Instant`] at which this clock reads `us` microseconds —
    /// converts an engine deadline (session-local time) to the shared
    /// monotonic timeline the reactor's timer heap is keyed by.
    pub fn at(&self, us: u64) -> Instant {
        self.epoch + Duration::from_micros(us)
    }
}

impl Default for DriverClock {
    fn default() -> Self {
        DriverClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = DriverClock::new();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now();
        assert!(b >= a + 1_000, "a={a} b={b}");
    }

    #[test]
    fn copies_share_the_epoch() {
        let c = DriverClock::new();
        let d = c;
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(d.now() >= 1_000);
        assert!(c.now().abs_diff(d.now()) < 1_000);
    }

    #[test]
    fn at_inverts_now() {
        let c = DriverClock::new();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t = c.now();
        let inst = c.at(t);
        // `at(now())` lands within a moment of the real current instant.
        let err = Instant::now()
            .checked_duration_since(inst)
            .unwrap_or_else(|| inst.duration_since(Instant::now()));
        assert!(err < Duration::from_millis(5), "err={err:?}");
        // Ordering across two clocks with different epochs is preserved.
        let later = DriverClock::new();
        assert!(later.at(0) > c.at(0));
    }
}
