//! The receiving endpoint: a [`ReceiverEngine`] driven by real sockets
//! and real time.

use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hrmc_core::{ProtocolConfig, ReceiverEngine, ReceiverEvent, ReceiverStats};
use hrmc_wire::Packet;
use parking_lot::{Condvar, Mutex};

use crate::clock::DriverClock;
use crate::socket::McastSocket;
use crate::NetError;

struct Inner {
    engine: Mutex<ReceiverEngine>,
    /// The sender's unicast address, learned from the first packet; all
    /// feedback goes there.
    sender_addr: Mutex<Option<SocketAddr>>,
    /// Group-port multicast socket (receive only). Several receivers on
    /// one host share this port via SO_REUSEPORT.
    socket: McastSocket,
    /// Ephemeral unicast socket: feedback leaves from here, so the
    /// sender's unicast PROBE / JOIN_RESPONSE / NAK_ERR replies come back
    /// here — to *this* receiver, not whichever SO_REUSEPORT sibling the
    /// kernel would hash a group-port unicast to.
    ucast: McastSocket,
    clock: DriverClock,
    shutdown: AtomicBool,
    complete: AtomicBool,
    lost: AtomicBool,
    /// Set on [`ReceiverEvent::SessionFailed`]: the sender is presumed
    /// dead or the JOIN budget ran out; the session is over.
    failed: AtomicBool,
    wakeup: Condvar,
    wakeup_lock: Mutex<()>,
}

impl Inner {
    /// Wake the timer thread so it re-reads the engine's `next_wakeup`
    /// (a packet arrival may have armed an earlier deadline — a fresh
    /// gap's NAK suppression clock, a JOIN retry). Takes the wakeup lock
    /// before notifying so the timer thread cannot lose the kick between
    /// reading the deadline and starting its wait. Never call while
    /// holding the engine lock.
    fn kick_timer(&self) {
        let _guard = self.wakeup_lock.lock();
        self.wakeup.notify_all();
    }

    fn flush(&self) {
        let target = *self.sender_addr.lock();
        let mut engine = self.engine.lock();
        // One scratch buffer for the whole drain: `encode_into` reuses
        // its allocation across packets (zero-copy hot path).
        let mut bytes = Vec::new();
        while let Some(out) = engine.poll_output() {
            out.packet.encode_into(&mut bytes);
            match out.dest {
                // Local-recovery NAKs and repairs go to the whole group.
                hrmc_core::Dest::Multicast => {
                    let _ = self.ucast.send_multicast(&bytes);
                }
                _ => {
                    if let Some(addr) = target {
                        let _ = self.ucast.send_unicast(&bytes, addr);
                    }
                }
            }
        }
        while let Some(ev) = engine.poll_event() {
            match ev {
                ReceiverEvent::DataReady => {
                    self.wakeup.notify_all();
                }
                ReceiverEvent::StreamComplete => {
                    self.complete.store(true, Ordering::SeqCst);
                    self.wakeup.notify_all();
                }
                ReceiverEvent::DataLost { .. } => {
                    self.lost.store(true, Ordering::SeqCst);
                    self.wakeup.notify_all();
                }
                ReceiverEvent::SessionFailed => {
                    self.failed.store(true, Ordering::SeqCst);
                    self.wakeup.notify_all();
                }
                ReceiverEvent::Joined | ReceiverEvent::Left => {}
            }
        }
    }
}

/// Owner handle for a live receiving endpoint; dropping it sends LEAVE
/// and shuts the background threads down.
pub struct ReceiverHandle {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

/// Constructor namespace (mirrors the paper's socket-call sequence).
pub struct HrmcReceiver;

impl HrmcReceiver {
    /// Join `group` on `interface` ("the receiving application uses
    /// setsockopt to join the multicast group").
    pub fn join(
        group: SocketAddrV4,
        interface: Ipv4Addr,
        config: ProtocolConfig,
    ) -> Result<ReceiverHandle, NetError> {
        let socket = McastSocket::receiver(group, interface)?;
        socket.set_read_timeout(Duration::from_millis(5))?;
        let ucast = McastSocket::sender(group, interface)?;
        ucast.set_read_timeout(Duration::from_millis(5))?;
        let local_port = match ucast.local_addr()? {
            SocketAddr::V4(a) => a.port(),
            SocketAddr::V6(a) => a.port(),
        };
        let clock = DriverClock::new();
        let engine = ReceiverEngine::new(config, local_port, group.port(), clock.now());
        let inner = Arc::new(Inner {
            engine: Mutex::new(engine),
            sender_addr: Mutex::new(None),
            socket,
            ucast,
            clock,
            shutdown: AtomicBool::new(false),
            complete: AtomicBool::new(false),
            lost: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            wakeup: Condvar::new(),
            wakeup_lock: Mutex::new(()),
        });
        let mut threads = Vec::new();
        for (name, which) in [
            ("hrmc-rcv-mrx", RxSock::Mcast),
            ("hrmc-rcv-urx", RxSock::Ucast),
        ] {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(name.into())
                    .spawn(move || rx_loop(&inner, which))
                    .map_err(NetError::Io)?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("hrmc-rcv-timer".into())
                    .spawn(move || timer_loop(&inner))
                    .map_err(NetError::Io)?,
            );
        }
        Ok(ReceiverHandle { inner, threads })
    }
}

/// Which socket an RX thread drains.
#[derive(Clone, Copy)]
enum RxSock {
    /// The shared group-port socket (DATA, KEEPALIVE, multicast PROBE).
    Mcast,
    /// The private unicast socket (JOIN_RESPONSE, unicast PROBE, NAK_ERR).
    Ucast,
}

fn rx_loop(inner: &Inner, which: RxSock) {
    let mut buf = vec![0u8; 64 * 1024];
    while !inner.shutdown.load(Ordering::SeqCst) {
        let sock = match which {
            RxSock::Mcast => &inner.socket,
            RxSock::Ucast => &inner.ucast,
        };
        let Ok((n, from)) = sock.recv_from(&mut buf) else {
            continue;
        };
        let pkt = match Packet::decode(&buf[..n]) {
            Ok(pkt) => pkt,
            Err(e) => {
                // Audit corruption: a failed checksum is counted and
                // reported, not just silently dropped.
                if matches!(e, hrmc_wire::WireError::BadChecksum) {
                    inner.engine.lock().note_checksum_failure(inner.clock.now());
                }
                continue;
            }
        };
        // Peer NAKs pass through for local recovery; other
        // receiver-originated feedback is ignored. The sender's address
        // is learned from control packets unconditionally, and from
        // DATA/PARITY only while unknown (a local-recovery peer repair
        // is DATA from a *peer* and must not hijack the feedback path).
        use hrmc_wire::PacketType as PT;
        let sender_originated = pkt.header.ptype.is_sender_originated();
        if !sender_originated && pkt.header.ptype != PT::Nak {
            continue;
        }
        if sender_originated {
            let mut addr = inner.sender_addr.lock();
            match pkt.header.ptype {
                PT::Data | PT::Parity => {
                    if addr.is_none() {
                        *addr = Some(from);
                    }
                }
                _ => *addr = Some(from),
            }
        }
        inner.engine.lock().handle_packet(&pkt, inner.clock.now());
        inner.flush();
        // The packet may have armed an earlier deadline (new gap, JOIN
        // sent): let the timer thread re-plan its sleep.
        inner.kick_timer();
    }
}

/// Deadline-driven timer: instead of unconditionally ticking every
/// jiffy, sleep until the engine's own `next_wakeup` deadline — `None`
/// (nothing missing, no update due, no JOIN pending) means the thread
/// sleeps in long bounded chunks until a packet kicks it.
/// `next_wakeup` answers relative to `now` — a busy engine's deadline
/// would recede on every re-read, so the loop remembers the earliest
/// deadline promised so far and fires when the clock crosses it;
/// re-reads fold in via `min` and can only pull the target earlier. A
/// fresh deadline is taken only after servicing a tick.
fn timer_loop(inner: &Inner) {
    const MAX_IDLE: Duration = Duration::from_millis(100);
    let mut deadline: Option<u64> = None;
    while !inner.shutdown.load(Ordering::SeqCst) {
        let now = inner.clock.now();
        if deadline.is_some_and(|t| t <= now) {
            inner.engine.lock().on_tick(now);
            inner.flush();
            let now = inner.clock.now();
            deadline = inner.engine.lock().next_wakeup(now);
            continue;
        }
        // The wakeup guard is held from before the deadline fold until
        // the wait starts, so a concurrent kick cannot slip in between.
        // Lock order is wakeup_lock -> engine lock; this is why
        // `kick_timer` must never run with the engine lock held.
        let mut guard = inner.wakeup_lock.lock();
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let now = inner.clock.now();
        let fresh = inner.engine.lock().next_wakeup(now);
        deadline = match (deadline, fresh) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let sleep = deadline.map_or(MAX_IDLE, |t| {
            Duration::from_micros(t.saturating_sub(now)).min(MAX_IDLE)
        });
        if !sleep.is_zero() {
            inner.wakeup.wait_for(&mut guard, sleep);
        }
    }
}

impl ReceiverHandle {
    /// Read in-order stream bytes, blocking until some are available, the
    /// stream completes (returns `Ok(0)`), or `timeout` elapses.
    pub fn recv(&self, buf: &mut [u8], timeout: Duration) -> Result<usize, NetError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            {
                let mut engine = self.inner.engine.lock();
                let n = engine.read(buf, self.inner.clock.now());
                if n > 0 {
                    return Ok(n);
                }
                if engine.fully_consumed() {
                    return Ok(0);
                }
            }
            if self.inner.failed.load(Ordering::SeqCst) {
                return Err(NetError::SessionFailed);
            }
            if self.inner.lost.load(Ordering::SeqCst) {
                return Err(NetError::DataLost);
            }
            if std::time::Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
            let mut guard = self.inner.wakeup_lock.lock();
            self.inner
                .wakeup
                .wait_for(&mut guard, Duration::from_millis(10));
        }
    }

    /// `true` once the whole stream (through FIN) has been assembled.
    pub fn is_complete(&self) -> bool {
        self.inner.complete.load(Ordering::SeqCst)
    }

    /// `true` once the engine declared a terminal session failure (the
    /// sender presumed dead, or the JOIN retry budget exhausted).
    pub fn has_failed(&self) -> bool {
        self.inner.failed.load(Ordering::SeqCst)
    }

    /// Snapshot of the engine's counters.
    pub fn stats(&self) -> ReceiverStats {
        self.inner.engine.lock().stats.clone()
    }

    /// Install a [`hrmc_core::ProtocolObserver`] on the engine (wall-clock
    /// microsecond timestamps relative to join time). The observer runs
    /// under the engine lock; keep it cheap.
    pub fn set_observer(&self, observer: Box<dyn hrmc_core::ProtocolObserver>) {
        self.inner.engine.lock().set_observer(observer);
    }

    /// Attach a bounded flight recorder and return the shared handle
    /// (see [`SenderHandle::attach_flight_recorder`](crate::SenderHandle::attach_flight_recorder)).
    /// Replaces any
    /// previously installed observer.
    pub fn attach_flight_recorder(&self, capacity: usize) -> hrmc_core::SharedRecorder {
        let rec = hrmc_core::SharedRecorder::new(capacity).with_label("recv");
        self.set_observer(Box::new(rec.clone()));
        rec
    }

    /// Leave the group (the paper's `close`): sends LEAVE to the sender.
    pub fn close(&self) {
        self.inner.engine.lock().close(self.inner.clock.now());
        self.inner.flush();
        self.inner.kick_timer();
    }
}

impl Drop for ReceiverHandle {
    fn drop(&mut self) {
        self.close();
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.wakeup.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
