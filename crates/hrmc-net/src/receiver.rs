//! The receiving endpoint: a [`ReceiverEngine`] driven by the shared
//! reactor. [`ReceiverHandle`] is a thin front over reactor-owned
//! state — the endpoint spawns no threads of its own; the reactor's
//! single event loop drains both its sockets, services its deadlines,
//! and flushes its feedback in `sendmmsg` batches.

use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hrmc_core::{ProtocolConfig, ReceiverEngine, ReceiverEvent, ReceiverStats};
use hrmc_wire::Packet;
use parking_lot::{Condvar, Mutex};

use crate::clock::DriverClock;
use crate::reactor::{
    Fatal, IoBatch, Reactor, ReactorRef, ReactorSession, RxError, SessionCounters, SessionHealth,
};
use crate::socket::{McastSocket, RX_SLOTS};
use crate::NetError;

/// `recvmmsg` batches drained per readiness event before yielding the
/// reactor thread to other sessions.
const RX_ROUNDS: usize = 4;

struct Inner {
    engine: Mutex<ReceiverEngine>,
    /// The sender's unicast address, learned from the first packet; all
    /// feedback goes there.
    sender_addr: Mutex<Option<SocketAddr>>,
    /// Group-port multicast socket (receive only). Several receivers on
    /// one host share this port via SO_REUSEPORT.
    socket: McastSocket,
    /// Ephemeral unicast socket: feedback leaves from here, so the
    /// sender's unicast PROBE / JOIN_RESPONSE / NAK_ERR replies come back
    /// here — to *this* receiver, not whichever SO_REUSEPORT sibling the
    /// kernel would hash a group-port unicast to.
    ucast: McastSocket,
    clock: DriverClock,
    complete: AtomicBool,
    lost: AtomicBool,
    /// Set on [`ReceiverEvent::SessionFailed`] *or* when the reactor
    /// stops driving this session: the sender is presumed dead, the JOIN
    /// budget ran out, a socket died, or the reactor shut down.
    failed: AtomicBool,
    /// Refines `failed`: the reactor itself shut down.
    reactor_gone: AtomicBool,
    /// The socket error that killed the session, kept for diagnostics.
    fatal: Mutex<Option<io::Error>>,
    wakeup: Condvar,
    wakeup_lock: Mutex<()>,
    /// Per-session traffic totals for telemetry.
    counters: SessionCounters,
}

impl Inner {
    /// The error a blocked application call should surface once the
    /// reactor has stopped driving this session (protocol-level
    /// SessionFailed keeps its own error via the event path).
    fn failure(&self) -> NetError {
        if self.reactor_gone.load(Ordering::SeqCst) {
            NetError::ReactorClosed
        } else {
            NetError::SessionFailed
        }
    }

    /// Feed one decoded datagram to the engine, applying the feedback
    /// routing rules. Caller holds the engine lock.
    fn ingest(&self, engine: &mut ReceiverEngine, bytes: &[u8], from: SocketAddr, now: u64) {
        let pkt = match Packet::decode(bytes) {
            Ok(pkt) => pkt,
            // Audit corruption: a failed checksum is counted and
            // reported, not just silently dropped.
            Err(hrmc_wire::WireError::BadChecksum) => {
                engine.note_checksum_failure(now);
                return;
            }
            Err(_) => return,
        };
        // Peer NAKs pass through for local recovery; other
        // receiver-originated feedback is ignored. The sender's address
        // is learned from control packets unconditionally, and from
        // DATA/PARITY only while unknown (a local-recovery peer repair
        // is DATA from a *peer* and must not hijack the feedback path).
        use hrmc_wire::PacketType as PT;
        let sender_originated = pkt.header.ptype.is_sender_originated();
        if !sender_originated && pkt.header.ptype != PT::Nak {
            return;
        }
        if sender_originated {
            let mut addr = self.sender_addr.lock();
            match pkt.header.ptype {
                PT::Data | PT::Parity => {
                    if addr.is_none() {
                        *addr = Some(from);
                    }
                }
                _ => *addr = Some(from),
            }
        }
        engine.handle_packet(&pkt, now);
    }

    /// Drain engine output into the reactor's `sendmmsg` staging and
    /// surface events. All feedback leaves via the unicast socket.
    fn flush(&self, io: &mut IoBatch) {
        let target = *self.sender_addr.lock();
        let mut engine = self.engine.lock();
        while let Some(out) = engine.poll_output() {
            let dest = match out.dest {
                // Local-recovery NAKs and repairs go to the whole group.
                hrmc_core::Dest::Multicast => SocketAddr::V4(self.ucast.group()),
                _ => match target {
                    Some(addr) => addr,
                    None => continue,
                },
            };
            let buf = io.stage();
            out.packet.encode_into(buf);
            let len = buf.len() as u64;
            io.commit(dest, &self.ucast);
            self.counters.note_tx(len);
        }
        io.flush_tx(&self.ucast);
        self.drain_events(&mut engine);
    }

    /// Drain engine output with direct single-datagram sends — the path
    /// for application threads (close/Drop), which don't own the
    /// reactor's batch scratch and must get LEAVE on the wire *now*,
    /// before deregistration.
    fn flush_inline(&self) {
        let target = *self.sender_addr.lock();
        let mut engine = self.engine.lock();
        let mut bytes = Vec::new();
        while let Some(out) = engine.poll_output() {
            out.packet.encode_into(&mut bytes);
            match out.dest {
                hrmc_core::Dest::Multicast => {
                    let _ = self.ucast.send_multicast(&bytes);
                }
                _ => {
                    if let Some(addr) = target {
                        let _ = self.ucast.send_unicast(&bytes, addr);
                    }
                }
            }
        }
        self.drain_events(&mut engine);
    }

    fn drain_events(&self, engine: &mut ReceiverEngine) {
        while let Some(ev) = engine.poll_event() {
            match ev {
                ReceiverEvent::DataReady => {
                    self.wakeup.notify_all();
                }
                ReceiverEvent::StreamComplete => {
                    self.complete.store(true, Ordering::SeqCst);
                    self.wakeup.notify_all();
                }
                ReceiverEvent::DataLost { .. } => {
                    self.lost.store(true, Ordering::SeqCst);
                    self.wakeup.notify_all();
                }
                ReceiverEvent::SessionFailed => {
                    self.failed.store(true, Ordering::SeqCst);
                    self.wakeup.notify_all();
                }
                ReceiverEvent::Joined | ReceiverEvent::Left => {}
            }
        }
    }
}

impl ReactorSession for Inner {
    fn sockets(&self) -> Vec<&McastSocket> {
        // Role 0: shared group-port socket (DATA, KEEPALIVE, mcast PROBE).
        // Role 1: private unicast socket (JOIN_RESPONSE, PROBE, NAK_ERR).
        vec![&self.socket, &self.ucast]
    }

    fn on_readable(&self, role: usize, io: &mut IoBatch) -> io::Result<()> {
        let sock = if role == 0 { &self.socket } else { &self.ucast };
        for _ in 0..RX_ROUNDS {
            let n = match io.recv(sock) {
                Ok(n) => n,
                Err(e) => match crate::reactor::rx_error_disposition(&e) {
                    RxError::Drained => break,
                    RxError::Retry => continue,
                    // EBADF and friends: surfacing the error deregisters
                    // the session — never spin on a dead socket.
                    RxError::Fatal => return Err(e),
                },
            };
            let now = self.clock.now();
            {
                let mut engine = self.engine.lock();
                let mut rx_bytes = 0u64;
                for i in 0..n {
                    let (bytes, from) = io.rx.datagram(i);
                    rx_bytes += bytes.len() as u64;
                    self.ingest(&mut engine, bytes, from, now);
                }
                self.counters.note_rx(n as u64, rx_bytes);
            }
            self.flush(io);
            if n < RX_SLOTS {
                break;
            }
        }
        Ok(())
    }

    fn on_tick(&self, io: &mut IoBatch) {
        let now = self.clock.now();
        self.engine.lock().on_tick(now);
        self.flush(io);
    }

    fn next_deadline(&self) -> Option<Instant> {
        let now = self.clock.now();
        self.engine
            .lock()
            .next_wakeup(now)
            .map(|us| self.clock.at(us))
    }

    fn on_fatal(&self, reason: Fatal) {
        match reason {
            Fatal::ReactorClosed => self.reactor_gone.store(true, Ordering::SeqCst),
            Fatal::Io(e) => *self.fatal.lock() = Some(e),
        }
        self.failed.store(true, Ordering::SeqCst);
        self.wakeup.notify_all();
    }

    fn health(&self) -> SessionHealth {
        let mut h = self.counters.health("receiver");
        let engine = self.engine.lock();
        h.malformed_packets = engine.stats.malformed_packets;
        h.checksum_failures = engine.stats.checksum_failures;
        h.overflow_drops = engine.stats.overflow_drops;
        h.session_failed = engine.has_failed();
        h
    }

    fn publish_metrics(&self, reg: &mut hrmc_core::metrics::MetricsRegistry) {
        // The receiver's window pressure, the live counterpart of the
        // sim's occupancy gauge. Last writer wins across sessions,
        // matching the sender's convention above.
        let engine = self.engine.lock();
        reg.set_gauge(
            "receiver_window_occupancy_permille",
            (engine.window_occupancy() * 1000.0) as u64,
        );
        reg.set_gauge("receiver_pending_naks", engine.pending_naks() as u64);
    }
}

/// Owner handle for a live receiving endpoint; dropping it sends LEAVE
/// and deregisters the session from its reactor.
pub struct ReceiverHandle {
    inner: Arc<Inner>,
    reactor: ReactorRef,
    id: u64,
    flight: Option<hrmc_core::SharedRecorder>,
}

/// Join `group` and register the session with `reactor`. The observer
/// is installed on the engine *before* the session becomes reachable
/// from the reactor thread, so no early packet or tick can slip by
/// unobserved (the race the removed post-join `set_observer` shim
/// could not avoid).
pub(crate) fn join_with(
    group: SocketAddrV4,
    interface: Ipv4Addr,
    config: ProtocolConfig,
    observer: Option<Box<dyn hrmc_core::ProtocolObserver>>,
    flight: Option<hrmc_core::SharedRecorder>,
    reactor: Reactor,
) -> Result<ReceiverHandle, NetError> {
    let socket = McastSocket::receiver(group, interface)?;
    let ucast = McastSocket::sender(group, interface)?;
    let local_port = match ucast.local_addr()? {
        SocketAddr::V4(a) => a.port(),
        SocketAddr::V6(a) => a.port(),
    };
    let clock = DriverClock::new();
    let mut engine = ReceiverEngine::new(config, local_port, group.port(), clock.now());
    if let Some(obs) = observer {
        engine.set_observer(obs);
    }
    let inner = Arc::new(Inner {
        engine: Mutex::new(engine),
        sender_addr: Mutex::new(None),
        socket,
        ucast,
        clock,
        complete: AtomicBool::new(false),
        lost: AtomicBool::new(false),
        failed: AtomicBool::new(false),
        reactor_gone: AtomicBool::new(false),
        fatal: Mutex::new(None),
        wakeup: Condvar::new(),
        wakeup_lock: Mutex::new(()),
        counters: SessionCounters::default(),
    });
    let (id, reactor) = reactor.register(Arc::clone(&inner) as Arc<dyn ReactorSession>)?;
    Ok(ReceiverHandle {
        inner,
        reactor,
        id,
        flight,
    })
}

/// Constructor namespace retained for source compatibility — new code
/// should use the [`crate::Session`] builder.
pub struct HrmcReceiver;

impl HrmcReceiver {
    /// Join `group` on `interface` via the global reactor.
    #[deprecated(note = "use `Session::receiver(group).interface(..).config(..).bind()`")]
    pub fn join(
        group: SocketAddrV4,
        interface: Ipv4Addr,
        config: ProtocolConfig,
    ) -> Result<ReceiverHandle, NetError> {
        crate::Session::receiver(group)
            .interface(interface)
            .config(config)
            .bind()
    }
}

impl ReceiverHandle {
    /// Read in-order stream bytes, blocking until some are available, the
    /// stream completes (returns `Ok(0)`), or `timeout` elapses.
    pub fn recv(&self, buf: &mut [u8], timeout: Duration) -> Result<usize, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut engine = self.inner.engine.lock();
                let n = engine.read(buf, self.inner.clock.now());
                if n > 0 {
                    return Ok(n);
                }
                if engine.fully_consumed() {
                    return Ok(0);
                }
            }
            if self.inner.failed.load(Ordering::SeqCst) {
                return Err(self.inner.failure());
            }
            if self.inner.lost.load(Ordering::SeqCst) {
                return Err(NetError::DataLost);
            }
            if Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
            let mut guard = self.inner.wakeup_lock.lock();
            self.inner
                .wakeup
                .wait_for(&mut guard, Duration::from_millis(10));
        }
    }

    /// `true` once the whole stream (through FIN) has been assembled.
    pub fn is_complete(&self) -> bool {
        self.inner.complete.load(Ordering::SeqCst)
    }

    /// `true` once the session terminally failed: the sender presumed
    /// dead, the JOIN retry budget exhausted, or the driver gone.
    pub fn has_failed(&self) -> bool {
        self.inner.failed.load(Ordering::SeqCst)
    }

    /// Snapshot of the engine's counters.
    pub fn stats(&self) -> ReceiverStats {
        self.inner.engine.lock().stats.clone()
    }

    /// The flight recorder attached at build time
    /// ([`crate::ReceiverBuilder::flight_recorder`]), if any.
    pub fn flight_recorder(&self) -> Option<&hrmc_core::SharedRecorder> {
        self.flight.as_ref()
    }

    /// The socket error that terminally failed the session, if that is
    /// why it died (a `SessionFailed` return with a non-`None` value
    /// here means the socket broke, not the protocol).
    pub fn fatal_error(&self) -> Option<io::ErrorKind> {
        self.inner.fatal.lock().as_ref().map(io::Error::kind)
    }

    /// Leave the group (the paper's `close`): sends LEAVE to the sender
    /// immediately, from the calling thread.
    pub fn close(&self) {
        self.inner.engine.lock().close(self.inner.clock.now());
        self.inner.flush_inline();
        self.reactor.kick(self.id);
    }
}

impl Drop for ReceiverHandle {
    fn drop(&mut self) {
        // LEAVE must hit the wire before the reactor stops watching.
        self.close();
        self.reactor.deregister(self.id, &*self.inner);
        self.inner.wakeup.notify_all();
    }
}
