//! Differential property test: the sharded, heap-gated [`Membership`]
//! must give bit-identical answers to the naive flat-table reference it
//! replaced, across randomized add/update/eject/probe/wraparound
//! sequences. The reference below *is* the original implementation — an
//! O(n) walk over a `HashMap` — kept here as the executable spec (with
//! the re-JOIN-clears-probe-state fix applied to both sides).

use std::collections::HashMap;

use hrmc_core::membership::Membership;
use hrmc_core::PeerId;
use hrmc_wire::{seq_le, seq_lt, Seq};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct NaiveMember {
    next_expected: Seq,
    last_heard: u64,
    last_probed: Option<u64>,
    probe_failures: u32,
}

/// The pre-shard flat implementation, verbatim semantics.
#[derive(Debug, Clone, Default)]
struct NaiveMembership {
    members: HashMap<PeerId, NaiveMember>,
    total_joins: u64,
    total_leaves: u64,
    total_ejections: u64,
}

impl NaiveMembership {
    fn add(&mut self, peer: PeerId, next_expected: Seq, now: u64) {
        self.total_joins += 1;
        self.members
            .entry(peer)
            .and_modify(|m| {
                m.last_heard = now;
                m.last_probed = None;
                m.probe_failures = 0;
            })
            .or_insert(NaiveMember {
                next_expected,
                last_heard: now,
                last_probed: None,
                probe_failures: 0,
            });
    }

    fn remove(&mut self, peer: PeerId) -> bool {
        let removed = self.members.remove(&peer).is_some();
        if removed {
            self.total_leaves += 1;
        }
        removed
    }

    fn update(&mut self, peer: PeerId, next_expected: Seq, now: u64) {
        if let Some(m) = self.members.get_mut(&peer) {
            m.last_heard = now;
            if seq_lt(m.next_expected, next_expected) {
                m.next_expected = next_expected;
            }
            m.last_probed = None;
            m.probe_failures = 0;
        }
    }

    fn eject(&mut self, peer: PeerId) -> bool {
        let removed = self.members.remove(&peer).is_some();
        if removed {
            self.total_ejections += 1;
        }
        removed
    }

    fn stale(&self, now: u64, deadline: u64) -> Vec<PeerId> {
        if deadline == 0 {
            return Vec::new();
        }
        let mut v: Vec<PeerId> = self
            .members
            .iter()
            .filter(|(_, m)| now.saturating_sub(m.last_heard) >= deadline)
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    fn probe_failed(&self, limit: u32) -> Vec<PeerId> {
        if limit == 0 {
            return Vec::new();
        }
        let mut v: Vec<PeerId> = self
            .members
            .iter()
            .filter(|(_, m)| m.probe_failures >= limit)
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    fn all_have(&self, seq: Seq) -> bool {
        self.members
            .values()
            .all(|m| seq_le(seq.wrapping_add(1), m.next_expected))
    }

    fn lacking(&self, seq: Seq) -> Vec<PeerId> {
        let mut v: Vec<PeerId> = self
            .members
            .iter()
            .filter(|(_, m)| !seq_le(seq.wrapping_add(1), m.next_expected))
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    fn min_next_expected(&self) -> Option<Seq> {
        self.members
            .values()
            .map(|m| m.next_expected)
            .fold(None, |acc, s| match acc {
                None => Some(s),
                Some(cur) if seq_lt(s, cur) => Some(s),
                Some(cur) => Some(cur),
            })
    }

    fn mark_probed(&mut self, peer: PeerId, now: u64) {
        if let Some(m) = self.members.get_mut(&peer) {
            if m.last_probed.is_some() {
                m.probe_failures += 1;
            }
            m.last_probed = Some(now);
        }
    }
}

/// Every observable query, compared bit-for-bit.
fn assert_equivalent(
    sharded: &mut Membership,
    naive: &NaiveMembership,
    base: Seq,
    probe_off: u32,
    now: u64,
) {
    let probe = base.wrapping_add(probe_off);
    assert_eq!(sharded.len(), naive.members.len());
    assert_eq!(sharded.is_empty(), naive.members.is_empty());
    assert_eq!(sharded.all_have(probe), naive.all_have(probe));
    assert_eq!(sharded.lacking(probe), naive.lacking(probe));
    assert_eq!(sharded.min_next_expected(), naive.min_next_expected());
    for deadline in [0u64, 1, 1_000, 100_000] {
        assert_eq!(sharded.stale(now, deadline), naive.stale(now, deadline));
    }
    for limit in [0u32, 1, 2, 5] {
        assert_eq!(sharded.probe_failed(limit), naive.probe_failed(limit));
    }
    assert_eq!(sharded.total_joins, naive.total_joins);
    assert_eq!(sharded.total_leaves, naive.total_leaves);
    assert_eq!(sharded.total_ejections, naive.total_ejections);
    for (peer, nm) in naive.members.iter() {
        let sm = sharded.get(*peer).expect("member present in both");
        assert_eq!(sm.next_expected, nm.next_expected);
        assert_eq!(sm.last_heard, nm.last_heard);
        assert_eq!(sm.last_probed, nm.last_probed);
        assert_eq!(sm.probe_failures, nm.probe_failures);
    }
}

/// Bases exercising the easy region, a mid-range region, and the
/// u32::MAX wraparound region (members straddling the wrap).
fn pick_base(sel: u32) -> Seq {
    match sel % 4 {
        0 => 0,
        1 => 1_000_000,
        2 => u32::MAX - 100_000,
        _ => u32::MAX - 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_membership_matches_naive_reference(
        base_sel in 0u32..4,
        // (op selector, peer, sequence offset); offsets stay well inside
        // a serial half-space of the base, as live members do in the
        // protocol (all within the active window).
        ops in proptest::collection::vec((0u32..17, any::<u8>(), 0u32..200_000), 1..120),
        probe_off in 0u32..200_000,
    ) {
        let base = pick_base(base_sel);
        let mut sharded = Membership::new();
        let mut naive = NaiveMembership::default();
        let mut now = 0u64;
        for (op, peer, off) in ops {
            now += 137; // arbitrary monotone clock
            let p = PeerId(peer as u32);
            let seq = base.wrapping_add(off);
            match op {
                0..=3 => {
                    sharded.add(p, seq, now);
                    naive.add(p, seq, now);
                }
                4..=11 => {
                    sharded.update(p, seq, now);
                    naive.update(p, seq, now);
                }
                12 => prop_assert_eq!(sharded.remove(p), naive.remove(p)),
                13 => prop_assert_eq!(sharded.eject(p), naive.eject(p)),
                _ => {
                    sharded.mark_probed(p, now);
                    naive.mark_probed(p, now);
                }
            }
            assert_equivalent(&mut sharded, &naive, base, probe_off, now);
        }
    }

    #[test]
    fn sharded_membership_matches_under_monotone_advance(
        // The protocol-shaped workload: every member's next_expected only
        // advances, marching the whole group across the u32 wrap.
        start_off in 0u32..1000,
        steps in proptest::collection::vec((any::<u8>(), 1u32..5_000), 1..150),
        probe_off in 0u32..400_000,
    ) {
        let base = u32::MAX - 200_000 + start_off;
        let mut sharded = Membership::new();
        let mut naive = NaiveMembership::default();
        let mut now = 0u64;
        for p in 0..8u32 {
            now += 11;
            sharded.add(PeerId(p), base, now);
            naive.add(PeerId(p), base, now);
        }
        let mut fronts = [base; 8];
        for (peer, adv) in steps {
            now += 211;
            let p = (peer % 8) as usize;
            fronts[p] = fronts[p].wrapping_add(adv);
            sharded.update(PeerId(p as u32), fronts[p], now);
            naive.update(PeerId(p as u32), fronts[p], now);
            assert_equivalent(&mut sharded, &naive, base, probe_off, now);
        }
    }
}
