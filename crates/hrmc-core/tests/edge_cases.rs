//! Edge-case and failure-injection tests for the engines: inputs that a
//! hostile network or an unlucky schedule can produce.

use bytes::Bytes;
use hrmc_core::{PeerId, ProtocolConfig, ReceiverEngine, ReceiverEvent, SenderEngine, JIFFY_US};
use hrmc_wire::{Packet, PacketType};

fn receiver() -> ReceiverEngine {
    ReceiverEngine::new(ProtocolConfig::hrmc().with_buffer(64 * 1024), 8000, 7001, 0)
}

fn sender() -> SenderEngine {
    SenderEngine::new(
        ProtocolConfig::hrmc().with_buffer(64 * 1024),
        7000,
        7001,
        0,
        0,
    )
}

fn data(seq: u32, len: usize) -> Packet {
    Packet::data(7000, 7001, seq, Bytes::from(vec![seq as u8; len]))
}

fn drain_r(r: &mut ReceiverEngine) -> Vec<Packet> {
    std::iter::from_fn(|| r.poll_output())
        .map(|o| o.packet)
        .collect()
}

fn drain_s(s: &mut SenderEngine) -> Vec<hrmc_core::Outgoing> {
    std::iter::from_fn(|| s.poll_output()).collect()
}

// ----------------------------------------------------------------------
// Receiver: packets before attachment
// ----------------------------------------------------------------------

#[test]
fn probe_before_any_data_is_ignored() {
    let mut r = receiver();
    let probe = Packet::control(PacketType::Probe, 7000, 7001, 100);
    r.handle_packet(&probe, 1_000);
    assert!(
        drain_r(&mut r).is_empty(),
        "unattached receiver must stay silent"
    );
    assert_eq!(r.stats.probes_received, 1);
}

#[test]
fn keepalive_before_any_data_is_ignored() {
    let mut r = receiver();
    let ka = Packet::control(PacketType::Keepalive, 7000, 7001, 100);
    r.handle_packet(&ka, 1_000);
    assert!(drain_r(&mut r).is_empty());
}

#[test]
fn parity_before_any_data_is_ignored() {
    let mut r = ReceiverEngine::new(
        ProtocolConfig::hrmc().with_buffer(64 * 1024).with_fec(4),
        8000,
        7001,
        0,
    );
    let mut parity = Packet::control(PacketType::Parity, 7000, 7001, 0);
    parity.header.length = 4;
    parity.payload = Bytes::from(vec![0u8; 8 + 100]);
    r.handle_packet(&parity, 1_000);
    assert!(drain_r(&mut r).is_empty());
    assert_eq!(r.stats.fec_parities_received, 1);
    assert_eq!(r.stats.fec_recoveries, 0);
}

#[test]
fn expect_stream_start_turns_lost_prefix_into_gap() {
    let mut r = receiver();
    r.expect_stream_start(0);
    // First packet actually *received* is seq 3: packets 0-2 were lost.
    r.handle_packet(&data(3, 100), 1_000);
    let out = drain_r(&mut r);
    let naks: Vec<&Packet> = out
        .iter()
        .filter(|p| p.header.ptype == PacketType::Nak)
        .collect();
    assert_eq!(naks.len(), 1, "lost prefix must be NAKed");
    assert_eq!(naks[0].header.seq, 0);
    assert_eq!(naks[0].header.length, 3);
    // And the JOIN still goes out on the first received packet.
    assert!(out.iter().any(|p| p.header.ptype == PacketType::Join));
}

#[test]
fn without_expect_stream_start_prefix_is_skipped() {
    let mut r = receiver();
    r.handle_packet(&data(3, 100), 1_000);
    let out = drain_r(&mut r);
    assert!(
        !out.iter().any(|p| p.header.ptype == PacketType::Nak),
        "late-join semantics: no NAK for data before the attach point"
    );
    assert_eq!(r.rcv_nxt(), Some(4));
}

// ----------------------------------------------------------------------
// Receiver: hostile/odd inputs
// ----------------------------------------------------------------------

#[test]
fn receiver_ignores_receiver_originated_types() {
    let mut r = receiver();
    r.handle_packet(&data(0, 100), 0);
    drain_r(&mut r);
    for ptype in [
        PacketType::Nak,
        PacketType::Control,
        PacketType::Update,
        PacketType::Join,
    ] {
        let pkt = Packet::control(ptype, 9999, 7001, 0);
        r.handle_packet(&pkt, 1_000);
    }
    assert!(
        drain_r(&mut r).is_empty(),
        "looped-back feedback must be inert"
    );
}

#[test]
fn duplicate_fin_is_harmless() {
    let mut r = receiver();
    r.handle_packet(&data(0, 100), 0);
    let mut fin = data(1, 0);
    fin.header.flags.fin = true;
    r.handle_packet(&fin, 100);
    r.handle_packet(&fin, 200);
    r.handle_packet(&fin, 300);
    assert!(r.stream_complete());
    assert_eq!(r.stats.duplicates_dropped, 2);
    let events: Vec<_> = std::iter::from_fn(|| r.poll_event()).collect();
    assert_eq!(
        events
            .iter()
            .filter(|e| **e == ReceiverEvent::StreamComplete)
            .count(),
        1,
        "StreamComplete must fire exactly once"
    );
}

#[test]
fn far_future_seq_rejected_not_crashing() {
    let mut r = receiver();
    r.handle_packet(&data(0, 100), 0);
    // Way beyond the window span.
    r.handle_packet(&data(1_000_000, 100), 100);
    assert_eq!(r.stats.beyond_window_drops, 1);
    assert_eq!(r.rcv_nxt(), Some(1));
    // No NAK storm for the absurd gap.
    let naks = drain_r(&mut r)
        .iter()
        .filter(|p| p.header.ptype == PacketType::Nak)
        .count();
    assert_eq!(naks, 0);
}

#[test]
fn locked_socket_backlogs_probes_too() {
    let mut r = receiver();
    r.handle_packet(&data(0, 100), 0);
    drain_r(&mut r);
    r.lock();
    let probe = Packet::control(PacketType::Probe, 7000, 7001, 0);
    r.handle_packet(&probe, 1_000);
    assert!(drain_r(&mut r).is_empty(), "locked socket must not respond");
    r.unlock(2_000);
    let out = drain_r(&mut r);
    assert!(
        out.iter().any(|p| p.header.ptype == PacketType::Update),
        "probe must be answered after unlock"
    );
}

// ----------------------------------------------------------------------
// Sender: hostile/odd inputs
// ----------------------------------------------------------------------

#[test]
fn nak_for_never_sent_data_is_safe() {
    let mut s = sender();
    let join = Packet::control(PacketType::Join, 9, 7000, 0);
    s.handle_packet(&join, PeerId(1), 0);
    drain_s(&mut s);
    // NAK for data the sender never transmitted (seq far beyond snd_nxt).
    let mut nak = Packet::control(PacketType::Nak, 9, 7000, 5_000);
    nak.header.length = 10;
    s.handle_packet(&nak, PeerId(1), 1_000);
    s.on_tick(JIFFY_US);
    let out = drain_s(&mut s);
    assert!(
        !out.iter()
            .any(|o| o.packet.header.ptype == PacketType::Data),
        "must not retransmit data that was never sent"
    );
}

#[test]
fn feedback_from_unknown_peer_does_not_create_membership() {
    let mut s = sender();
    let upd = Packet::control(PacketType::Update, 9, 7000, 50);
    s.handle_packet(&upd, PeerId(7), 0);
    assert_eq!(
        s.member_count(),
        0,
        "UPDATE without JOIN must not add a member"
    );
    assert_eq!(s.stats.updates_received, 1);
}

#[test]
fn leave_from_unknown_peer_is_answered_idempotently() {
    let mut s = sender();
    let leave = Packet::control(PacketType::Leave, 9, 7000, 0);
    s.handle_packet(&leave, PeerId(3), 0);
    let out = drain_s(&mut s);
    assert!(out
        .iter()
        .any(|o| o.packet.header.ptype == PacketType::LeaveResponse));
    assert_eq!(s.stats.leaves, 0, "no member was removed");
}

#[test]
fn close_with_no_data_still_completes() {
    let mut s = sender();
    s.close(0);
    let mut t = 0;
    while !s.is_finished() && t < 10_000_000 {
        t += JIFFY_US;
        s.on_tick(t);
        drain_s(&mut s);
    }
    assert!(s.is_finished(), "empty stream must still finish (bare FIN)");
}

#[test]
fn submit_after_close_is_rejected() {
    let mut s = sender();
    s.submit(b"before", 0);
    s.close(0);
    assert_eq!(s.submit(b"after", 100), 0);
}

#[test]
fn member_churn_does_not_wedge_release() {
    let mut s = sender();
    // Two receivers join; one confirms; the other leaves without ever
    // confirming — release must proceed on the survivor's confirmation.
    for p in [1u32, 2] {
        let join = Packet::control(PacketType::Join, 9, 7000, 0);
        s.handle_packet(&join, PeerId(p), 0);
    }
    s.submit(&vec![0u8; 1400], 0);
    let mut t = 0;
    while t < 400_000 {
        t += JIFFY_US;
        s.on_tick(t);
        drain_s(&mut s);
    }
    assert_eq!(s.stats.segments_released, 0, "blocked: nobody confirmed");
    let upd = Packet::control(PacketType::Update, 9, 7000, 1);
    s.handle_packet(&upd, PeerId(1), t);
    let leave = Packet::control(PacketType::Leave, 9, 7000, 0);
    s.handle_packet(&leave, PeerId(2), t);
    while t < 800_000 {
        t += JIFFY_US;
        s.on_tick(t);
        drain_s(&mut s);
    }
    assert_eq!(
        s.stats.segments_released, 1,
        "leave must unblock the release"
    );
}

#[test]
fn sender_ignores_own_packet_types() {
    let mut s = sender();
    for ptype in [
        PacketType::Data,
        PacketType::Probe,
        PacketType::Keepalive,
        PacketType::JoinResponse,
        PacketType::NakErr,
        PacketType::Parity,
    ] {
        let pkt = Packet::control(ptype, 9, 7000, 0);
        s.handle_packet(&pkt, PeerId(1), 0);
    }
    assert!(drain_s(&mut s).is_empty());
    assert_eq!(s.member_count(), 0);
}
