//! Property-based tests on the core protocol invariants.

use bytes::Bytes;
use hrmc_core::membership::Membership;
use hrmc_core::nak::NakManager;
use hrmc_core::rate::RateController;
use hrmc_core::rxwindow::{Offer, ReceiveWindow};
use hrmc_core::PeerId;
use proptest::prelude::*;

// ----------------------------------------------------------------------
// ReceiveWindow: any arrival order of any subset (with duplicates) of a
// stream reassembles exactly the in-order prefix available, never
// corrupts bytes, and never double-counts buffer space.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rxwindow_reassembles_any_arrival_order(
        n_packets in 1usize..40,
        order in proptest::collection::vec(any::<prop::sample::Index>(), 0..120),
    ) {
        // Stream: packet i carries byte value i, 10 bytes each.
        let mut w = ReceiveWindow::new(1 << 20, 10, 0.5, 0.9);
        // Attach at 0 deterministically.
        w.offer(0, Bytes::from(vec![0u8; 10]), false);
        let mut offered = vec![false; n_packets];
        offered[0] = true;
        for idx in order {
            let i = idx.index(n_packets);
            let out = w.offer(i as u32, Bytes::from(vec![i as u8; 10]), false);
            match out {
                Offer::Duplicate => prop_assert!(offered[i]),
                Offer::InOrder | Offer::OutOfOrder => {
                    prop_assert!(!offered[i]);
                    offered[i] = true;
                }
                Offer::BeyondWindow | Offer::Overflow => {
                    prop_assert!(false, "huge window must accept everything: {out:?}");
                }
            }
        }
        // rcv_nxt must equal the length of the received prefix.
        let prefix = offered.iter().take_while(|&&x| x).count();
        prop_assert_eq!(w.rcv_nxt(), Some(prefix as u32));
        // The readable bytes must be exactly the prefix, in order.
        let mut buf = vec![0u8; prefix * 10 + 16];
        let n = w.read(&mut buf);
        prop_assert_eq!(n, prefix * 10);
        for i in 0..prefix {
            prop_assert!(buf[i * 10..(i + 1) * 10].iter().all(|&b| b == i as u8));
        }
        // After reading, buffered bytes are exactly the out-of-order ones.
        let ooo_count = offered.iter().skip(prefix).filter(|&&x| x).count();
        prop_assert_eq!(w.buffered_bytes(), ooo_count * 10);
    }

    #[test]
    fn rxwindow_missing_plus_present_partitions_space(
        present in proptest::collection::btree_set(1u32..60, 0..30),
        limit in 1u64..80,
    ) {
        let mut w = ReceiveWindow::new(1 << 20, 10, 0.5, 0.9);
        w.offer(0, Bytes::from(vec![0u8; 10]), false);
        for &s in &present {
            w.offer(s, Bytes::from(vec![1u8; 10]), false);
        }
        let next = u64::from(w.rcv_nxt().unwrap());
        let missing = w.missing_below(limit);
        // Missing ranges are sorted, disjoint, within [rcv_nxt, limit).
        let mut cursor = next;
        for &(first, count) in &missing {
            prop_assert!(first >= cursor);
            prop_assert!(count > 0);
            prop_assert!(first + count as u64 <= limit);
            cursor = first + count as u64;
        }
        // Every seq in [next, limit) is either present (delivered or ooo)
        // or covered by exactly one missing range.
        for s in next..limit {
            let in_missing = missing
                .iter()
                .any(|&(f, c)| s >= f && s < f + c as u64);
            let is_present = s < next || present.contains(&(s as u32));
            prop_assert_eq!(in_missing, !is_present, "seq {}", s);
        }
    }

    // ------------------------------------------------------------------
    // NakManager: no matter the interleaving of note/satisfy/due, an
    // entry is never reported twice within a suppression window, and
    // satisfied entries never resurface.
    // ------------------------------------------------------------------

    #[test]
    fn nak_manager_suppression_invariant(
        ops in proptest::collection::vec((0u8..3, 0u64..30, 1u32..4), 1..60),
    ) {
        let mut m = NakManager::new();
        let mut now = 0u64;
        let suppress = 1_000u64;
        let mut last_reported: std::collections::HashMap<u64, u64> = Default::default();
        for (op, seq, count) in ops {
            now += 100;
            let reported: Vec<(u64, u32)> = match op {
                0 => m.note_missing(&[(seq, count)], now),
                1 => {
                    m.satisfy(seq);
                    prop_assert!(!m.contains(seq));
                    // A later note for this seq is a brand-new gap.
                    last_reported.remove(&seq);
                    Vec::new()
                }
                _ => m.due(now, suppress),
            };
            for (first, c) in reported {
                for s in first..first + c as u64 {
                    if let Some(&t) = last_reported.get(&s) {
                        prop_assert!(
                            now - t >= suppress || t == now,
                            "seq {s} re-reported after {} µs", now - t
                        );
                    }
                    last_reported.insert(s, now);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // RateController: the rate never leaves [min_rate, max_rate], and the
    // long-run byte budget never exceeds rate × time by more than the
    // carry-over bound.
    // ------------------------------------------------------------------

    #[test]
    fn rate_stays_in_bounds_under_any_event_sequence(
        events in proptest::collection::vec(0u8..4, 1..200),
    ) {
        let min_rate = 1_000u64;
        let max_rate = 1_000_000u64;
        let mut c = RateController::new(min_rate, max_rate, 1.0, 1_000, 1.0, 2, 0);
        let rtt = 10_000u64;
        let mut now = 0u64;
        for e in events {
            now += 5_000;
            match e {
                0 => c.on_tick(now, rtt),
                1 => c.on_congestion(now, rtt, None),
                2 => c.on_congestion(now, rtt, Some(u64::from(now as u32))),
                _ => c.on_urgent(now, rtt),
            }
            prop_assert!(c.rate() >= min_rate, "rate {} < min", c.rate());
            prop_assert!(c.rate() <= max_rate, "rate {} > max", c.rate());
        }
    }

    #[test]
    fn rate_budget_bounded_by_rate_times_time(
        ticks in proptest::collection::vec(1_000u64..50_000, 1..100),
    ) {
        let max_rate = 500_000u64;
        let mut c = RateController::new(10_000, max_rate, 1.0, 1_000, 1.0, 2, 0);
        let mut now = 0u64;
        let mut total = 0u128;
        for dt in ticks {
            now += dt;
            c.on_tick(now, 10_000);
            total += c.budget(now, 10_000) as u128;
        }
        // Ceiling: max_rate for the whole run plus two ticks of carry.
        let bound = (max_rate as u128 * now as u128) / 1_000_000 + 2 * (max_rate as u128 / 100);
        prop_assert!(total <= bound, "budget {total} exceeds bound {bound}");
    }

    // ------------------------------------------------------------------
    // Membership: all_have(s) is exactly min(next_expected) > s.
    // ------------------------------------------------------------------

    #[test]
    fn membership_all_have_equals_min_gate(
        peers in proptest::collection::vec(0u32..1_000, 1..20),
        probe in 0u32..1_000,
    ) {
        let mut m = Membership::new();
        for (i, &ne) in peers.iter().enumerate() {
            m.add(PeerId(i as u32), 0, 0);
            m.update(PeerId(i as u32), ne, 1);
        }
        let min = peers.iter().copied().min().unwrap();
        prop_assert_eq!(m.all_have(probe), min > probe);
        prop_assert_eq!(m.min_next_expected(), Some(min));
        let lacking = m.lacking(probe);
        let expected: usize = peers.iter().filter(|&&ne| ne <= probe).count();
        prop_assert_eq!(lacking.len(), expected);
    }
}
