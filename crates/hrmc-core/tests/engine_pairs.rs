//! End-to-end tests wiring a [`SenderEngine`] to several
//! [`ReceiverEngine`]s over a minimal in-memory channel with configurable
//! delay and deterministic (seeded) loss. These validate the protocol's
//! core claims before any real simulator or socket driver is involved:
//!
//! * H-RMC delivers the stream **intact and completely** to every
//!   receiver even under heavy loss (hybrid reliability);
//! * RMC (pure NAK) delivers intact streams in low-loss settings;
//! * slow receivers throttle the sender through rate requests rather
//!   than losing data.

use hrmc_core::{Dest, PeerId, ProtocolConfig, ReceiverEngine, SenderEngine, JIFFY_US};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An in-flight packet: (arrival time, monotone tiebreak, destination
/// receiver index or None for the sender, encoded bytes).
type Flight = Reverse<(u64, u64, Option<usize>, Vec<u8>)>;

struct Channel {
    inflight: BinaryHeap<Flight>,
    counter: u64,
    delay: u64,
    loss: f64,
    rng: SmallRng,
    dropped: u64,
}

impl Channel {
    fn new(delay: u64, loss: f64, seed: u64) -> Channel {
        Channel {
            inflight: BinaryHeap::new(),
            counter: 0,
            delay,
            loss,
            rng: SmallRng::seed_from_u64(seed),
            dropped: 0,
        }
    }

    fn send(&mut self, now: u64, to: Option<usize>, bytes: Vec<u8>) {
        if self.loss > 0.0 && self.rng.gen_bool(self.loss) {
            self.dropped += 1;
            return;
        }
        self.counter += 1;
        self.inflight
            .push(Reverse((now + self.delay, self.counter, to, bytes)));
    }

    fn due(&mut self, now: u64) -> Vec<(Option<usize>, Vec<u8>)> {
        let mut out = Vec::new();
        while let Some(Reverse((t, _, _, _))) = self.inflight.peek() {
            if *t > now {
                break;
            }
            let Reverse((_, _, to, bytes)) = self.inflight.pop().unwrap();
            out.push((to, bytes));
        }
        out
    }
}

struct Harness {
    sender: SenderEngine,
    receivers: Vec<ReceiverEngine>,
    channel: Channel,
    now: u64,
    received: Vec<Vec<u8>>,
}

impl Harness {
    fn new(
        config: ProtocolConfig,
        n_receivers: usize,
        delay: u64,
        loss: f64,
        seed: u64,
    ) -> Harness {
        let sender = SenderEngine::new(config.clone(), 7000, 7001, 0, 0);
        let receivers = (0..n_receivers)
            .map(|i| ReceiverEngine::new(config.clone(), 8000 + i as u16, 7001, 0))
            .collect();
        Harness {
            sender,
            receivers,
            channel: Channel::new(delay, loss, seed),
            now: 0,
            received: vec![Vec::new(); n_receivers],
        }
    }

    /// Advance one jiffy: deliver due packets, tick engines, collect
    /// output, read receivers.
    fn step(&mut self) {
        self.now += JIFFY_US;

        for (to, bytes) in self.channel.due(self.now) {
            let pkt = hrmc_wire::Packet::decode(&bytes).expect("channel corrupts nothing");
            match to {
                None => {
                    // Receiver → sender: identify by source port.
                    let idx = (pkt.header.src_port - 8000) as usize;
                    self.sender
                        .handle_packet(&pkt, PeerId(idx as u32), self.now);
                }
                Some(idx) => self.receivers[idx].handle_packet(&pkt, self.now),
            }
        }

        self.sender.on_tick(self.now);
        while let Some(out) = self.sender.poll_output() {
            let bytes = out.packet.encode();
            match out.dest {
                Dest::Multicast => {
                    for i in 0..self.receivers.len() {
                        self.channel.send(self.now, Some(i), bytes.clone());
                    }
                }
                Dest::Unicast(p) => self.channel.send(self.now, Some(p.0 as usize), bytes),
                Dest::Sender => unreachable!("sender never sends to itself"),
            }
        }

        let n_receivers = self.receivers.len();
        for (i, r) in self.receivers.iter_mut().enumerate() {
            r.on_tick(self.now);
            let mut buf = [0u8; 4096];
            loop {
                let n = r.read(&mut buf, self.now);
                if n == 0 {
                    break;
                }
                self.received[i].extend_from_slice(&buf[..n]);
            }
            while let Some(out) = r.poll_output() {
                let bytes = out.packet.encode();
                match out.dest {
                    // Local-recovery multicast: peers and the sender.
                    Dest::Multicast => {
                        for j in 0..n_receivers {
                            if j != i {
                                self.channel.send(self.now, Some(j), bytes.clone());
                            }
                        }
                        self.channel.send(self.now, None, bytes);
                    }
                    _ => self.channel.send(self.now, None, bytes),
                }
            }
        }
    }

    #[allow(dead_code)] // convenience for future tests
    fn run_until_finished(&mut self, max_jiffies: u64) -> bool {
        for _ in 0..max_jiffies {
            self.step();
            if self.sender.is_finished() && self.receivers.iter().all(|r| r.fully_consumed()) {
                return true;
            }
        }
        false
    }
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

#[test]
fn lossless_transfer_two_receivers() {
    let cfg = ProtocolConfig::hrmc().with_buffer(128 * 1024);
    let mut h = Harness::new(cfg, 2, 500, 0.0, 1);
    let data = pattern(200_000);
    let mut offset = 0;
    // Submit incrementally (the application-blocking path).
    for _ in 0..20_000 {
        if offset < data.len() {
            offset += h.sender.submit(&data[offset..], h.now);
            if offset == data.len() {
                h.sender.close(h.now);
            }
        }
        h.step();
        if h.sender.is_finished() && h.receivers.iter().all(|r| r.fully_consumed()) {
            break;
        }
    }
    assert!(h.sender.is_finished(), "sender did not finish");
    for (i, got) in h.received.iter().enumerate() {
        assert_eq!(got.len(), data.len(), "receiver {i} byte count");
        assert_eq!(got, &data, "receiver {i} data corrupted");
    }
    assert_eq!(h.sender.stats.nak_errs_sent, 0);
    assert_eq!(h.sender.stats.unsafe_releases, 0);
}

#[test]
fn hybrid_survives_heavy_loss() {
    // 5% loss on every hop; H-RMC must still deliver everything intact.
    let cfg = ProtocolConfig::hrmc().with_buffer(128 * 1024);
    let mut h = Harness::new(cfg, 3, 1_000, 0.05, 42);
    let data = pattern(100_000);
    let mut offset = 0;
    for _ in 0..60_000 {
        if offset < data.len() {
            offset += h.sender.submit(&data[offset..], h.now);
            if offset == data.len() {
                h.sender.close(h.now);
            }
        }
        h.step();
        if h.sender.is_finished() && h.receivers.iter().all(|r| r.fully_consumed()) {
            break;
        }
    }
    assert!(h.channel.dropped > 0, "loss model never fired");
    assert!(
        h.sender.is_finished(),
        "transfer stalled under loss (dropped {})",
        h.channel.dropped
    );
    for (i, got) in h.received.iter().enumerate() {
        assert_eq!(got, &data, "receiver {i} data wrong under loss");
    }
    // Reliability invariant: no unsafe releases, ever, in Hybrid mode.
    assert_eq!(h.sender.stats.unsafe_releases, 0);
    assert_eq!(h.sender.stats.nak_errs_sent, 0);
    assert!(h.sender.stats.retransmissions > 0);
}

#[test]
fn rmc_lossless_transfer_matches() {
    let cfg = ProtocolConfig::rmc().with_buffer(128 * 1024);
    let mut h = Harness::new(cfg, 2, 500, 0.0, 7);
    let data = pattern(100_000);
    let mut offset = 0;
    for _ in 0..20_000 {
        if offset < data.len() {
            offset += h.sender.submit(&data[offset..], h.now);
            if offset == data.len() {
                h.sender.close(h.now);
            }
        }
        h.step();
        if h.sender.is_finished() && h.receivers.iter().all(|r| r.fully_consumed()) {
            break;
        }
    }
    assert!(h.sender.is_finished());
    for got in &h.received {
        assert_eq!(got, &data);
    }
    // No probes and no updates in RMC mode.
    assert_eq!(h.sender.stats.probes_sent, 0);
    assert_eq!(h.sender.stats.updates_received, 0);
}

#[test]
fn hybrid_beats_rmc_on_information_completeness() {
    // The Figure 3 contrast in miniature: with identical loss, the H-RMC
    // sender has complete receiver information at release far more often
    // than the RMC sender.
    let run = |cfg: ProtocolConfig| {
        let mut h = Harness::new(cfg, 3, 1_000, 0.005, 99);
        let data = pattern(150_000);
        let mut offset = 0;
        for _ in 0..60_000 {
            if offset < data.len() {
                offset += h.sender.submit(&data[offset..], h.now);
                if offset == data.len() {
                    h.sender.close(h.now);
                }
            }
            h.step();
            if h.sender.is_finished() {
                break;
            }
        }
        assert!(h.sender.stats.release_attempts > 0);
        h.sender.stats.complete_info_ratio()
    };
    let rmc_ratio = run(ProtocolConfig::rmc().with_buffer(64 * 1024));
    let hrmc_ratio = run(ProtocolConfig::hrmc().with_buffer(64 * 1024));
    assert!(
        hrmc_ratio > rmc_ratio,
        "updates must raise completeness: hrmc={hrmc_ratio:.3} rmc={rmc_ratio:.3}"
    );
    assert!(
        hrmc_ratio > 0.9,
        "hrmc completeness too low: {hrmc_ratio:.3}"
    );
}

#[test]
fn slow_receiver_throttles_sender_without_loss() {
    // One receiver consumes slowly; flow control must hold the stream
    // intact (drops at the receiver window are recovered via NAKs).
    let cfg = ProtocolConfig::hrmc().with_buffer(32 * 1024);
    let sender_cfg = cfg.clone();
    let mut h = Harness::new(sender_cfg, 1, 500, 0.0, 5);
    let data = pattern(120_000);
    let mut offset = 0;
    let mut received = Vec::new();
    let mut done = false;
    for step in 0..100_000 {
        if offset < data.len() {
            offset += h.sender.submit(&data[offset..], h.now);
            if offset == data.len() {
                h.sender.close(h.now);
            }
        }
        // Bypass Harness::step's greedy read: custom slow consumption.
        h.now += JIFFY_US;
        for (to, bytes) in h.channel.due(h.now) {
            let pkt = hrmc_wire::Packet::decode(&bytes).unwrap();
            match to {
                None => h.sender.handle_packet(&pkt, PeerId(0), h.now),
                Some(0) => h.receivers[0].handle_packet(&pkt, h.now),
                Some(_) => unreachable!(),
            }
        }
        h.sender.on_tick(h.now);
        while let Some(out) = h.sender.poll_output() {
            let bytes = out.packet.encode();
            match out.dest {
                Dest::Multicast | Dest::Unicast(_) => h.channel.send(h.now, Some(0), bytes),
                Dest::Sender => unreachable!(),
            }
        }
        let r = &mut h.receivers[0];
        r.on_tick(h.now);
        // Read at most 600 bytes per jiffy: a 60 KB/s application.
        let _ = step;
        {
            let mut buf = [0u8; 600];
            let n = r.read(&mut buf, h.now);
            received.extend_from_slice(&buf[..n]);
        }
        while let Some(out) = r.poll_output() {
            h.channel.send(h.now, None, out.packet.encode());
        }
        if h.sender.is_finished() && r.fully_consumed() {
            done = true;
            break;
        }
    }
    assert!(done, "slow-receiver transfer stalled");
    assert_eq!(received, data);
    // The receiver must have pushed back at least once.
    assert!(
        h.sender.stats.rate_requests_received > 0,
        "no rate requests from a slow receiver"
    );
}

#[test]
fn rmc_reliability_hole_is_survivable() {
    // The paper §1: in RMC "it is possible for the sending protocol to
    // release data that is later requested for retransmission ... both
    // the sending and the receiving applications are informed of the
    // retransmission error and can take appropriate actions."
    // Force the hole: tiny MINBUF so releases race feedback, heavy loss.
    let mut cfg = ProtocolConfig::rmc().with_buffer(64 * 1024);
    cfg.minbuf_rtts = 1;
    cfg.anonymous_release_hold = 0;
    // Seed-sensitive: the run only terminates if the FIN survives to both
    // receivers before release (RMC has no probe to re-offer it). This
    // seed both terminates and produces NAK_ERRs under the in-tree RNG.
    let mut h = Harness::new(cfg, 2, 5_000, 0.10, 7);
    let data = pattern(150_000);
    let mut offset = 0;
    let mut done = false;
    for _ in 0..60_000 {
        if offset < data.len() {
            offset += h.sender.submit(&data[offset..], h.now);
            if offset == data.len() {
                h.sender.close(h.now);
            }
        }
        h.step();
        if h.sender.is_finished() && h.receivers.iter().all(|r| r.fully_consumed()) {
            done = true;
            break;
        }
    }
    // The run must terminate either way (no livelock), and if data was
    // lost, both sides were told.
    assert!(
        done,
        "RMC run wedged instead of completing or reporting loss"
    );
    let nak_errs = h.sender.stats.nak_errs_sent;
    let lost_events: usize = h
        .receivers
        .iter_mut()
        .map(|r| {
            std::iter::from_fn(|| r.poll_event())
                .filter(|e| matches!(e, hrmc_core::ReceiverEvent::DataLost { .. }))
                .count()
        })
        .sum();
    if nak_errs > 0 {
        assert!(lost_events > 0, "NAK_ERRs sent but no receiver was told");
        // The streams differ exactly where the holes are; everything
        // that *was* delivered stays in order (a subsequence of data).
        for got in &h.received {
            assert!(got.len() <= data.len());
        }
    } else {
        // Got lucky with this seed: then the transfer must be intact.
        for got in &h.received {
            assert_eq!(got, &data);
        }
    }
}

#[test]
fn fec_recovers_losses_without_retransmissions() {
    // Identical lossy channel, with and without XOR parity (k = 4):
    // FEC must log local recoveries and reduce retransmissions, and the
    // stream must stay intact.
    let run = |fec: bool| {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(128 * 1024);
        if fec {
            cfg = cfg.with_fec(4);
        }
        let mut h = Harness::new(cfg, 2, 1_000, 0.03, 77);
        let data = pattern(120_000);
        let mut offset = 0;
        for _ in 0..60_000 {
            if offset < data.len() {
                offset += h.sender.submit(&data[offset..], h.now);
                if offset == data.len() {
                    h.sender.close(h.now);
                }
            }
            h.step();
            if h.sender.is_finished() && h.receivers.iter().all(|r| r.fully_consumed()) {
                break;
            }
        }
        assert!(h.sender.is_finished(), "stalled (fec={fec})");
        for got in &h.received {
            assert_eq!(got, &data, "corrupt (fec={fec})");
        }
        let recoveries: u64 = h.receivers.iter().map(|r| r.stats.fec_recoveries).sum();
        (
            h.sender.stats.retransmissions,
            recoveries,
            h.sender.stats.fec_parities_sent,
        )
    };
    let (retrans_plain, recov_plain, parities_plain) = run(false);
    let (retrans_fec, recov_fec, parities_fec) = run(true);
    assert_eq!(recov_plain, 0);
    assert_eq!(parities_plain, 0);
    assert!(parities_fec > 0, "no parity packets emitted");
    assert!(recov_fec > 0, "FEC never recovered a loss at 3% loss");
    assert!(
        retrans_fec < retrans_plain,
        "FEC should reduce retransmissions: {retrans_fec} vs {retrans_plain}"
    );
}

#[test]
fn local_recovery_offloads_the_sender() {
    // Ten receivers, lossy channel, with and without SRM-style local
    // recovery: recovery must keep the streams intact while peers absorb
    // repair work the sender would otherwise do.
    let run = |local: bool| {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(128 * 1024);
        if local {
            cfg = cfg.with_local_recovery();
        }
        let seeds = 4u64;
        let mut retrans = 0u64;
        let mut repairs = 0u64;
        let mut cancelled = 0u64;
        for seed in 1..=seeds {
            let mut h = Harness::new(cfg.clone(), 10, 1_000, 0.02, seed);
            let data = pattern(100_000);
            let mut offset = 0;
            let mut done = false;
            for _ in 0..60_000 {
                if offset < data.len() {
                    offset += h.sender.submit(&data[offset..], h.now);
                    if offset == data.len() {
                        h.sender.close(h.now);
                    }
                }
                h.step();
                if h.sender.is_finished() && h.receivers.iter().all(|r| r.fully_consumed()) {
                    done = true;
                    break;
                }
            }
            assert!(done, "stalled (local={local} seed={seed})");
            for got in &h.received {
                assert_eq!(got, &data, "corrupt (local={local} seed={seed})");
            }
            retrans += h.sender.stats.retransmissions;
            cancelled += h.sender.stats.retransmissions_cancelled;
            repairs += h
                .receivers
                .iter()
                .map(|r| r.stats.repairs_sent)
                .sum::<u64>();
        }
        (retrans, repairs, cancelled)
    };
    let (retrans_central, repairs_central, _) = run(false);
    let (retrans_local, repairs_local, cancelled_local) = run(true);
    assert_eq!(repairs_central, 0);
    assert!(repairs_local > 0, "no peer repairs happened");
    assert!(
        cancelled_local > 0,
        "the sender never benefited from a peer repair"
    );
    assert!(
        retrans_local < retrans_central,
        "local recovery should offload the sender: {retrans_local} vs {retrans_central}"
    );
}

#[test]
fn fec_lossless_stream_identical() {
    // With no loss, FEC must be pure overhead: same bytes delivered,
    // zero recoveries, parity packets simply ignored.
    let cfg = ProtocolConfig::hrmc().with_buffer(128 * 1024).with_fec(8);
    let mut h = Harness::new(cfg, 2, 500, 0.0, 3);
    let data = pattern(60_000);
    let mut offset = 0;
    for _ in 0..20_000 {
        if offset < data.len() {
            offset += h.sender.submit(&data[offset..], h.now);
            if offset == data.len() {
                h.sender.close(h.now);
            }
        }
        h.step();
        if h.sender.is_finished() && h.receivers.iter().all(|r| r.fully_consumed()) {
            break;
        }
    }
    assert!(h.sender.is_finished());
    for (i, got) in h.received.iter().enumerate() {
        assert_eq!(got, &data, "receiver {i}");
    }
    for r in &h.receivers {
        assert_eq!(r.stats.fec_recoveries, 0);
        assert!(r.stats.fec_parities_received > 0);
    }
}

#[test]
fn late_joiner_gets_suffix_reliably() {
    // A receiver that joins mid-stream receives the suffix from its join
    // point onward, completely.
    let cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
    let mut h = Harness::new(cfg.clone(), 1, 500, 0.0, 11);
    let data = pattern(100_000);
    let mut offset = 0;
    // Run briefly with one receiver — slow start means only a prefix of
    // the stream has been transmitted when the second receiver appears.
    for _ in 0..10 {
        if offset < data.len() {
            offset += h.sender.submit(&data[offset..], h.now);
        }
        h.step();
    }
    let already = h.received[0].len();
    assert!(already > 0, "nothing transferred in warmup");
    assert!(
        offset < data.len() || already < data.len(),
        "warmup sent everything"
    );
    // A second receiver appears.
    h.receivers
        .push(ReceiverEngine::new(cfg, 8001, 7001, h.now));
    h.received.push(Vec::new());
    let mut closed = false;
    for _ in 0..30_000 {
        if offset < data.len() {
            offset += h.sender.submit(&data[offset..], h.now);
        }
        if offset == data.len() && !closed {
            closed = true;
            h.sender.close(h.now);
        }
        h.step();
        if h.sender.is_finished() && h.receivers.iter().all(|r| r.fully_consumed()) {
            break;
        }
    }
    assert!(h.sender.is_finished(), "late-join transfer stalled");
    assert_eq!(h.received[0], data, "original receiver corrupted");
    // The late joiner holds a contiguous suffix of the stream.
    let suffix = &h.received[1];
    assert!(!suffix.is_empty(), "late joiner got nothing");
    assert_eq!(
        suffix.as_slice(),
        &data[data.len() - suffix.len()..],
        "late joiner's bytes are not the stream suffix"
    );
}

/// Shared event recorder for the observer test: every endpoint appends
/// (role, JSON line) to one log. The harness drives all engines off one
/// logical clock in one thread, so append order is causal order.
struct Recorder {
    role: &'static str,
    log: std::sync::Arc<std::sync::Mutex<Vec<(&'static str, String)>>>,
}

impl hrmc_core::ProtocolObserver for Recorder {
    fn on_event(&mut self, now: u64, ev: &hrmc_core::Event) {
        self.log
            .lock()
            .unwrap()
            .push((self.role, hrmc_core::obs::event_json(now, ev)));
    }
}

#[test]
fn observer_sees_the_protocol_sequence_under_loss() {
    // A lossy hybrid run must surface the canonical lifecycle through
    // the observer, in causal order: the peer joins, data flows in slow
    // start, loss draws a NAK, congestion halves the rate, and buffer
    // releases continue to the end of the stream.
    let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let cfg = ProtocolConfig::hrmc().with_buffer(128 * 1024);
    let mut h = Harness::new(cfg, 2, 1_000, 0.05, 42);
    h.sender.set_observer(Box::new(Recorder {
        role: "sender",
        log: log.clone(),
    }));
    let roles = ["recv0", "recv1"];
    for (i, r) in h.receivers.iter_mut().enumerate() {
        r.set_observer(Box::new(Recorder {
            role: roles[i],
            log: log.clone(),
        }));
    }
    let data = pattern(100_000);
    let mut offset = 0;
    let mut done = false;
    for _ in 0..60_000 {
        if offset < data.len() {
            offset += h.sender.submit(&data[offset..], h.now);
            if offset == data.len() {
                h.sender.close(h.now);
            }
        }
        h.step();
        if h.sender.is_finished() && h.receivers.iter().all(|r| r.fully_consumed()) {
            done = true;
            break;
        }
    }
    assert!(done, "observed transfer stalled");
    assert!(h.channel.dropped > 0, "loss model never fired");
    for got in &h.received {
        assert_eq!(got, &data, "observation must not perturb delivery");
    }

    let log = log.lock().unwrap();
    let first = |role: &str, needle: &str| {
        log.iter()
            .position(|(r, j)| *r == role && j.contains(needle))
            .unwrap_or_else(|| panic!("no {needle} event from {role}"))
    };
    let joined = first("sender", "\"event\":\"peer_joined\"");
    let first_data = first("sender", "\"event\":\"data_sent\"");
    let left_slow_start = first("sender", "\"from\":\"slow_start\"");
    let nak = usize::min(
        first("recv0", "\"event\":\"nak_sent\""),
        first("recv1", "\"event\":\"nak_sent\""),
    );
    let halved = first("sender", "\"event\":\"rate_halved\"");
    let last_release = log
        .iter()
        .rposition(|(r, j)| *r == "sender" && j.contains("\"released\":true"))
        .expect("no confirmed release");
    // Membership is data-triggered: the first DATA draws the JOINs.
    assert!(
        first_data < joined,
        "a JOIN arrived before any data went out"
    );
    assert!(joined < nak, "a NAK preceded the join handshake");
    assert!(nak < halved, "rate halved before any receiver NAKed");
    assert!(
        left_slow_start >= halved,
        "left slow start without congestion"
    );
    assert!(halved < last_release, "no release after congestion onset");
    // Receivers observed their own lifecycle too: join handshake,
    // in-order delivery, and loss recovery with a latency measurement.
    for role in roles {
        first(role, "\"event\":\"joined\"");
        first(role, "\"event\":\"delivered\"");
        let rec = first(role, "\"event\":\"recovered\"");
        assert!(rec > nak, "recovery cannot precede the first NAK");
        let (_, line) = &log[rec];
        assert!(
            line.contains("\"elapsed_us\":"),
            "recovery without latency: {line}"
        );
    }
}
