//! # hrmc-core
//!
//! Sans-io protocol engines for H-RMC (McKinley, Rao, Wright — SC'99), the
//! hybrid reliable multicast protocol the paper implements as a Linux
//! kernel driver, plus its pure-NAK predecessor RMC as a baseline.
//!
//! ## Architecture
//!
//! The paper inserts the *same kernel code* into a live Linux driver and a
//! CSIM simulation. We reproduce that property by writing the protocol as
//! two pure state machines:
//!
//! * [`SenderEngine`] — the five concurrent sender tasks of paper Figure 8
//!   (application interface, transmitter, feedback processor,
//!   retransmitter, keepalive controller) collapsed into one deterministic
//!   state machine driven by `{submit, handle_packet, on_tick}`.
//! * [`ReceiverEngine`] — the receiver of paper Figure 9 (initial/main
//!   packet processors, NAK manager, update generator, application
//!   interface) driven by `{handle_packet, on_tick, read}`.
//!
//! Neither engine performs I/O or reads a clock: every entry point takes
//! `now` in microseconds and every outgoing packet is queued on an output
//! queue the host driver drains. `hrmc-sim` drives the engines under a
//! discrete-event clock; `hrmc-net` drives the identical engines from real
//! UDP multicast sockets and real time.
//!
//! ## Protocol summary
//!
//! H-RMC guarantees 100% reliability with finite buffers through five
//! cooperating mechanisms (paper §3 "Summary"):
//!
//! 1. **membership state maintenance** — [`membership`]: per receiver, its
//!    address and next-expected sequence number;
//! 2. **NAK-based feedback** — [`nak`]: receivers detect gaps and request
//!    retransmission, with local NAK suppression;
//! 3. **periodic updates** — [`update`]: receivers report their
//!    next-expected sequence number on an adaptive timer;
//! 4. **probes** — the sender polls receivers it lacks information from
//!    before releasing buffer space;
//! 5. **retransmissions** — centralized at the sender.
//!
//! Flow control combines a byte-accounted send/receive window
//! ([`txwindow`], [`rxwindow`]) with two-stage rate control ([`rate`]):
//! slow start and congestion avoidance grow the rate, NAKs and warning
//! rate-requests halve it, and urgent rate-requests stop transmission for
//! two RTTs and restart from the minimum rate.
//!
//! ## Observability
//!
//! Both engines accept an optional [`ProtocolObserver`] (see [`obs`]): a
//! synchronous hook invoked at every protocol state transition — rate
//! phase changes, window-region crossings, NAK emission/suppression,
//! PROBE/UPDATE exchanges, RTT samples, keepalive backoff, and each
//! buffer-release decision. The hook costs one branch per site when no
//! observer is installed. [`metrics`] provides the matching aggregation
//! primitives (counters, gauges, log2 histograms with p50/p90/p99).

pub mod config;
pub mod events;
pub mod fec;
pub mod health;
pub mod keepalive;
pub mod membership;
pub mod metrics;
pub mod nak;
pub mod obs;
pub mod rate;
pub mod receiver;
pub mod rtt;
pub mod rxwindow;
pub mod sender;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod txwindow;
pub mod update;

pub use config::{ProbePolicy, ProbeTransport, ProtocolConfig, ReliabilityMode, UpdateMode};
pub use events::{ReceiverEvent, SenderEvent};
pub use fec::FecConfig;
pub use health::{
    Alert, AlertRule, HealthConfig, HealthMonitor, RuleConfig, Severity, SharedMonitor,
};
pub use metrics::{Histogram, HistogramSummary, MetricsRegistry};
pub use obs::{
    Event, FlightRecorder, JsonlObserver, MetricsObserver, MultiObserver, NakTrigger,
    ProtocolObserver, RecordedEvent, SharedRecorder, SCHEMA_VERSION,
};
pub use receiver::ReceiverEngine;
pub use sender::SenderEngine;
pub use stats::{ReceiverStats, SenderStats};
pub use telemetry::{HistSample, Sampler, TelemetrySample};
pub use time::{Micros, JIFFY_US};

use hrmc_wire::Packet;

/// Largest sequence span one control packet (NAK, NAK_ERR, peer NAK) may
/// make an engine iterate. The wire `length` field is attacker-
/// controlled; a forged packet naming a 2^32-sequence range must not buy
/// four billion loop iterations. Legitimate spans are bounded far below
/// this by the byte-accounted windows.
pub const MAX_CONTROL_SPAN: u32 = 1 << 16;

/// Identifies a receiver from the sender's point of view. Drivers map this
/// to a transport address (a simulator node id or a UDP socket address).
/// The paper's sender keys its membership structures by the receiver's
/// unicast IP address; `PeerId` is the transport-agnostic equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

/// Where an outgoing packet should be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Send to the multicast group (DATA, retransmissions, KEEPALIVE, and
    /// optionally PROBE when [`ProbeTransport::MulticastAbove`] applies).
    Multicast,
    /// Unicast to one receiver (JOIN_RESPONSE, LEAVE_RESPONSE, NAK_ERR,
    /// PROBE).
    Unicast(PeerId),
    /// Unicast to the sender (every receiver-originated packet).
    Sender,
}

/// An outgoing packet paired with its destination.
#[derive(Debug, Clone)]
pub struct Outgoing {
    /// Where to deliver the packet.
    pub dest: Dest,
    /// The packet itself (checksum filled in on encode).
    pub packet: Packet,
}
