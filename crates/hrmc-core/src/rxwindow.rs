//! The receiver's window and stream reassembly (paper Figure 2 and §4.3).
//!
//! The receive sequence space is split into four regions:
//!
//! ```text
//!   R1 (consumed) | R2 (buffered for app) | R3 (receivable) | R4 (beyond)
//!                 ^rcv_wnd                ^rcv_nxt          ^rcv_wnd + rcv_wnd_size
//! ```
//!
//! and the *occupancy* of R2+R3 determines the flow-control region:
//! safe / warning / critical (the three rate-request rules of §2 act on
//! the region). This module owns:
//!
//! * the **receive queue** (in-order payloads awaiting the application),
//! * the **out-of-order queue** (payloads beyond a gap),
//! * byte accounting against `rcvbuf`, and
//! * gap reporting for the NAK manager.
//!
//! Internally sequence numbers are *unwrapped* to `u64` stream offsets so
//! that 32-bit wraparound never corrupts the `BTreeMap` ordering; the
//! 32-bit wire value is recovered with a truncation.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use hrmc_wire::Seq;

/// Flow-control region of the receive window (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// "no flow control action is taken"
    Safe,
    /// rule 2: rate request if the advertised rate would overrun the free
    /// window within WARNBUF RTTs
    Warning,
    /// rule 3: urgent rate request; sender stops for two RTTs
    Critical,
}

/// Result of offering a data packet to the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Already delivered or already buffered; dropped.
    Duplicate,
    /// Accepted in order; `rcv_nxt` advanced (possibly draining the
    /// out-of-order queue behind it).
    InOrder,
    /// Accepted out of order; a gap precedes it.
    OutOfOrder,
    /// Rejected: sequence number beyond the window (region R4).
    BeyondWindow,
    /// Rejected: no buffer space (receive buffer overflow).
    Overflow,
}

/// Unwrap a 32-bit wire sequence number to the 64-bit stream offset
/// nearest to `reference`.
pub fn unwrap_seq(seq: Seq, reference: u64) -> u64 {
    let ref_low = reference as u32;
    let delta = seq.wrapping_sub(ref_low) as i32;
    reference.wrapping_add(delta as i64 as u64)
}

/// Byte-accounted receive window with reassembly.
#[derive(Debug)]
pub struct ReceiveWindow {
    /// In-order payloads awaiting the application (region R2).
    ready: VecDeque<Bytes>,
    /// Read offset into `ready.front()` for partial reads.
    front_offset: usize,
    /// Out-of-order segments keyed by unwrapped sequence number.
    ooo: BTreeMap<u64, Bytes>,
    /// Next expected unwrapped sequence number (`rcv_nxt`); `None` until
    /// the first data packet attaches the window to the stream.
    next: Option<u64>,
    /// Unwrapped sequence number carrying FIN, once seen.
    fin_seq: Option<u64>,
    /// Bytes buffered across both queues.
    buffered: usize,
    /// Capacity in bytes (`rcvbuf`).
    capacity: usize,
    /// Window span in packets (`rcv_wnd_size`): offers at or beyond
    /// `next + span` land in region R4 and are rejected.
    span: u64,
    warn_threshold: f64,
    critical_threshold: f64,
    /// Total in-order bytes ever delivered to `ready` (stat).
    pub total_bytes_assembled: u64,
    /// Duplicates dropped (stat).
    pub duplicates: u64,
    /// R4 rejections (stat).
    pub beyond_window_drops: u64,
    /// Overflow rejections (stat).
    pub overflow_drops: u64,
}

impl ReceiveWindow {
    /// Create a window of `capacity` bytes. `segment_size` sets the packet
    /// span of region R3 (`rcv_wnd_size = capacity / segment_size`).
    pub fn new(
        capacity: usize,
        segment_size: usize,
        warn_threshold: f64,
        critical_threshold: f64,
    ) -> ReceiveWindow {
        ReceiveWindow {
            ready: VecDeque::new(),
            front_offset: 0,
            ooo: BTreeMap::new(),
            next: None,
            fin_seq: None,
            buffered: 0,
            capacity,
            span: ((capacity / segment_size.max(1)).max(2)) as u64,
            warn_threshold,
            critical_threshold,
            total_bytes_assembled: 0,
            duplicates: 0,
            beyond_window_drops: 0,
            overflow_drops: 0,
        }
    }

    /// `true` once the window is attached to the stream (first DATA seen
    /// or [`ReceiveWindow::attach_at`] called).
    pub fn attached(&self) -> bool {
        self.next.is_some()
    }

    /// Attach the window at a known stream start before any data arrives
    /// (a receiver that started before the sender and knows the initial
    /// sequence number). Lost leading packets then become ordinary gaps
    /// instead of a silently skipped prefix. No-op once attached.
    pub fn attach_at(&mut self, seq: Seq) {
        if self.next.is_none() {
            self.next = Some(seq as u64);
        }
    }

    /// Next expected unwrapped sequence number. Panics if unattached.
    pub fn next_u64(&self) -> u64 {
        self.next.expect("window not attached")
    }

    /// Next expected wire sequence number (`rcv_nxt`), or `None` before
    /// the first data packet.
    pub fn rcv_nxt(&self) -> Option<Seq> {
        self.next.map(|n| n as Seq)
    }

    /// Bytes buffered in both queues (R2 + R3 occupancy).
    pub fn buffered_bytes(&self) -> usize {
        self.buffered
    }

    /// Free bytes in the window ("the empty portion of the receive
    /// window" of rate rule 2).
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.buffered
    }

    /// Occupancy fraction in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.buffered as f64 / self.capacity as f64
        }
    }

    /// Current flow-control region.
    pub fn region(&self) -> Region {
        let occ = self.occupancy();
        if occ >= self.critical_threshold {
            Region::Critical
        } else if occ >= self.warn_threshold {
            Region::Warning
        } else {
            Region::Safe
        }
    }

    /// Bytes ready for the application.
    pub fn readable_bytes(&self) -> usize {
        self.ready.iter().map(Bytes::len).sum::<usize>() - self.front_offset
    }

    /// Offer a data packet. On the very first packet the window attaches
    /// to the stream at that sequence number (late-join semantics: the
    /// stream begins wherever the receiver tunes in; paper §2, Connection
    /// Management).
    pub fn offer(&mut self, seq: Seq, payload: Bytes, fin: bool) -> Offer {
        let next = match self.next {
            Some(n) => n,
            None => {
                let n = seq as u64;
                self.next = Some(n);
                n
            }
        };
        let useq = unwrap_seq(seq, next);
        if useq < next {
            self.duplicates += 1;
            return Offer::Duplicate;
        }
        if useq >= next + self.span {
            self.beyond_window_drops += 1;
            return Offer::BeyondWindow;
        }
        if self.buffered + payload.len() > self.capacity {
            self.overflow_drops += 1;
            return Offer::Overflow;
        }
        if fin {
            self.fin_seq = Some(useq);
        }
        if useq == next {
            self.buffered += payload.len();
            self.accept_in_order(payload);
            // Drain any contiguous run from the out-of-order queue.
            while let Some(entry) = self.ooo.first_entry() {
                if *entry.key() == self.next.unwrap() {
                    let p = entry.remove();
                    self.accept_in_order(p);
                } else {
                    break;
                }
            }
            Offer::InOrder
        } else {
            if self.ooo.contains_key(&useq) {
                self.duplicates += 1;
                return Offer::Duplicate;
            }
            self.buffered += payload.len();
            self.ooo.insert(useq, payload);
            Offer::OutOfOrder
        }
    }

    fn accept_in_order(&mut self, payload: Bytes) {
        self.total_bytes_assembled += payload.len() as u64;
        // Zero-length segments (the FIN marker, NAK_ERR hole fillers)
        // consume a sequence number but carry nothing for the
        // application; queueing them would wedge `fully_consumed`.
        if !payload.is_empty() {
            self.ready.push_back(payload);
        }
        self.next = Some(self.next.unwrap() + 1);
    }

    /// Copy up to `buf.len()` in-order bytes to the application, freeing
    /// window space. Returns the byte count (0 when nothing is ready).
    pub fn read(&mut self, buf: &mut [u8]) -> usize {
        let mut copied = 0;
        while copied < buf.len() {
            let Some(front) = self.ready.front() else {
                break;
            };
            let avail = front.len() - self.front_offset;
            let take = avail.min(buf.len() - copied);
            buf[copied..copied + take]
                .copy_from_slice(&front[self.front_offset..self.front_offset + take]);
            copied += take;
            self.front_offset += take;
            self.buffered -= take;
            if self.front_offset == front.len() {
                self.ready.pop_front();
                self.front_offset = 0;
            }
        }
        copied
    }

    /// Discard up to `n` readable bytes without copying (an application
    /// sink that only measures). Returns the count discarded.
    pub fn consume(&mut self, n: usize) -> usize {
        let mut left = n;
        while left > 0 {
            let Some(front) = self.ready.front() else {
                break;
            };
            let avail = front.len() - self.front_offset;
            let take = avail.min(left);
            left -= take;
            self.front_offset += take;
            self.buffered -= take;
            if self.front_offset == front.len() {
                self.ready.pop_front();
                self.front_offset = 0;
            }
        }
        n - left
    }

    /// The gaps below `limit` (unwrapped, exclusive): maximal runs of
    /// sequence numbers in `[rcv_nxt, limit)` that are neither delivered
    /// nor in the out-of-order queue. These are the ranges the NAK manager
    /// must request.
    pub fn missing_below(&self, limit: u64) -> Vec<(u64, u32)> {
        let Some(next) = self.next else {
            return Vec::new();
        };
        if limit <= next {
            return Vec::new();
        }
        let mut gaps = Vec::new();
        let mut cursor = next;
        for (&have, _) in self.ooo.range(next..limit) {
            if have > cursor {
                gaps.push((cursor, (have - cursor) as u32));
            }
            cursor = have + 1;
        }
        if limit > cursor {
            gaps.push((cursor, (limit - cursor) as u32));
        }
        gaps
    }

    /// `true` when every packet up to and including unwrapped `useq` has
    /// been received in order — the PROBE answer predicate.
    pub fn has_all_through(&self, useq: u64) -> bool {
        match self.next {
            Some(n) => n > useq,
            None => false,
        }
    }

    /// The FIN sequence number (unwrapped), once seen.
    pub fn fin_seq(&self) -> Option<u64> {
        self.fin_seq
    }

    /// `true` when the whole stream (through FIN) has been assembled.
    pub fn stream_complete(&self) -> bool {
        matches!((self.fin_seq, self.next), (Some(f), Some(n)) if n > f)
    }

    /// `true` when the stream is complete *and* the application has
    /// consumed every byte.
    pub fn fully_consumed(&self) -> bool {
        self.stream_complete() && self.ready.is_empty()
    }

    /// Number of out-of-order segments held.
    pub fn ooo_len(&self) -> usize {
        self.ooo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> ReceiveWindow {
        ReceiveWindow::new(10_000, 1_000, 0.5, 0.9)
    }

    fn b(n: usize) -> Bytes {
        Bytes::from(vec![0x5au8; n])
    }

    #[test]
    fn unwrap_seq_near_reference() {
        assert_eq!(unwrap_seq(5, 3), 5);
        assert_eq!(unwrap_seq(3, 5), 3);
        // Crossing a 32-bit boundary.
        let reference = (1u64 << 32) + 10;
        assert_eq!(unwrap_seq(8, reference), (1u64 << 32) + 8);
        assert_eq!(unwrap_seq(u32::MAX, reference), (1u64 << 32) - 1);
    }

    #[test]
    fn attaches_on_first_packet() {
        let mut w = window();
        assert!(!w.attached());
        assert_eq!(w.offer(500, b(100), false), Offer::InOrder);
        assert!(w.attached());
        assert_eq!(w.rcv_nxt(), Some(501));
    }

    #[test]
    fn in_order_assembly_and_read() {
        let mut w = window();
        w.offer(0, Bytes::from_static(b"hello "), false);
        w.offer(1, Bytes::from_static(b"world"), false);
        assert_eq!(w.readable_bytes(), 11);
        let mut buf = [0u8; 32];
        let n = w.read(&mut buf);
        assert_eq!(&buf[..n], b"hello world");
        assert_eq!(w.buffered_bytes(), 0);
        assert_eq!(w.read(&mut buf), 0);
    }

    #[test]
    fn partial_reads_across_segments() {
        let mut w = window();
        w.offer(0, Bytes::from_static(b"abcdef"), false);
        w.offer(1, Bytes::from_static(b"ghij"), false);
        let mut buf = [0u8; 4];
        assert_eq!(w.read(&mut buf), 4);
        assert_eq!(&buf, b"abcd");
        assert_eq!(w.read(&mut buf), 4);
        assert_eq!(&buf, b"efgh");
        assert_eq!(w.read(&mut buf), 2);
        assert_eq!(&buf[..2], b"ij");
    }

    #[test]
    fn out_of_order_held_then_drained() {
        let mut w = window();
        assert_eq!(w.offer(0, b(10), false), Offer::InOrder);
        assert_eq!(w.offer(2, b(10), false), Offer::OutOfOrder);
        assert_eq!(w.offer(3, b(10), false), Offer::OutOfOrder);
        assert_eq!(w.rcv_nxt(), Some(1));
        assert_eq!(w.ooo_len(), 2);
        // The gap fills: everything drains at once.
        assert_eq!(w.offer(1, b(10), false), Offer::InOrder);
        assert_eq!(w.rcv_nxt(), Some(4));
        assert_eq!(w.ooo_len(), 0);
        assert_eq!(w.readable_bytes(), 40);
    }

    #[test]
    fn duplicates_detected_everywhere() {
        let mut w = window();
        w.offer(0, b(10), false);
        assert_eq!(w.offer(0, b(10), false), Offer::Duplicate); // delivered
        w.offer(2, b(10), false);
        assert_eq!(w.offer(2, b(10), false), Offer::Duplicate); // in ooo
        assert_eq!(w.duplicates, 2);
    }

    #[test]
    fn beyond_window_rejected() {
        let mut w = window(); // span = 10000/1000 = 10 packets
        w.offer(0, b(10), false);
        assert_eq!(w.offer(10, b(10), false), Offer::OutOfOrder); // rel 9 < 10
        assert_eq!(w.offer(11, b(10), false), Offer::BeyondWindow); // rel 10
        assert_eq!(w.beyond_window_drops, 1);
    }

    #[test]
    fn overflow_rejected_by_bytes() {
        let mut w = ReceiveWindow::new(2_500, 1_000, 0.5, 0.9);
        assert_eq!(w.offer(0, b(1000), false), Offer::InOrder);
        assert_eq!(w.offer(1, b(1000), false), Offer::InOrder);
        assert_eq!(w.offer(2, b(1000), false), Offer::Overflow);
        assert_eq!(w.overflow_drops, 1);
        // Reading frees space.
        let mut buf = [0u8; 1000];
        w.read(&mut buf);
        assert_eq!(w.offer(2, b(1000), false), Offer::InOrder);
    }

    #[test]
    fn regions_follow_occupancy() {
        let mut w = ReceiveWindow::new(1_000, 100, 0.5, 0.9);
        assert_eq!(w.region(), Region::Safe);
        w.offer(0, b(499), false);
        assert_eq!(w.region(), Region::Safe);
        w.offer(1, b(1), false);
        assert_eq!(w.region(), Region::Warning); // exactly 50%
        w.offer(2, b(400), false);
        assert_eq!(w.region(), Region::Critical); // 90%
    }

    #[test]
    fn missing_ranges_reported() {
        let mut w = window();
        w.offer(0, b(1), false); // next = 1
        w.offer(3, b(1), false);
        w.offer(4, b(1), false);
        w.offer(7, b(1), false);
        // Gaps below 9: [1,2] and [5,6] and [8].
        assert_eq!(w.missing_below(9), vec![(1, 2), (5, 2), (8, 1)]);
        // Bounded query.
        assert_eq!(w.missing_below(5), vec![(1, 2)]);
        assert_eq!(w.missing_below(1), vec![]);
    }

    #[test]
    fn probe_predicate() {
        let mut w = window();
        w.offer(0, b(1), false);
        w.offer(1, b(1), false);
        assert!(w.has_all_through(1));
        assert!(!w.has_all_through(2));
    }

    #[test]
    fn fin_completion_flow() {
        let mut w = window();
        w.offer(0, b(10), false);
        assert!(!w.stream_complete());
        w.offer(2, b(10), true); // FIN out of order
        assert!(!w.stream_complete());
        w.offer(1, b(10), false);
        assert!(w.stream_complete());
        assert!(!w.fully_consumed());
        let mut buf = [0u8; 64];
        while w.read(&mut buf) > 0 {}
        assert!(w.fully_consumed());
    }

    #[test]
    fn consume_discards_without_copy() {
        let mut w = window();
        w.offer(0, b(100), false);
        w.offer(1, b(100), false);
        assert_eq!(w.consume(150), 150);
        assert_eq!(w.readable_bytes(), 50);
        assert_eq!(w.consume(150), 50);
    }
}
