//! Forward error correction — the paper's future-work item (4):
//! "incorporation of forward error correction, particularly for wireless
//! environments".
//!
//! The scheme is single-loss XOR parity: after every `k` consecutive
//! first-transmission DATA packets, the sender multicasts one PARITY
//! packet whose body is the XOR of the block's payloads (each padded to
//! the block maximum). A receiver that lost exactly one packet of a
//! block reconstructs it locally — no NAK, no retransmission, no extra
//! sender round trip — which is what makes the scheme attractive on
//! lossy tail links where NAK recovery costs a full (possibly wireless)
//! round trip per loss.
//!
//! Wire format of a PARITY packet (type code 11, an extension to the
//! paper's Table 1):
//!
//! * `header.seq` — sequence number of the first packet in the block;
//! * `header.length` — `k`, the number of packets covered;
//! * payload — `k` big-endian `u16` payload lengths, then the XOR body
//!   (`max(len_i)` bytes).
//!
//! Zero-length packets (the FIN marker) are never reconstructed from
//! parity: the FIN *flag* is not covered by the XOR, so recovering the
//! bytes without the flag would strand stream completion. The ordinary
//! NAK path recovers those.
//!
//! When FEC is enabled the receiver also *holds* fresh-gap NAKs for one
//! suppression interval instead of firing them on detection: parity
//! trails its block by at most `k` packet times, and NAKing immediately
//! would request a retransmission the local repair is about to make
//! redundant. Gaps the parity cannot fix (≥ 2 losses per block — long
//! fades) go out with the next `nak_timer` scan.

use std::collections::BTreeMap;

use bytes::Bytes;
use hrmc_wire::{Packet, PacketType, Seq};

/// FEC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FecConfig {
    /// Block size: one parity packet per `k` data packets (overhead 1/k).
    pub k: usize,
}

impl FecConfig {
    /// Validate the block size.
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=64).contains(&self.k) {
            return Err("FEC block size k must be in 2..=64".into());
        }
        Ok(())
    }
}

/// XOR `src` into `dst`, extending `dst` if `src` is longer.
fn xor_into(dst: &mut Vec<u8>, src: &[u8]) {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

/// Sender-side parity builder.
#[derive(Debug)]
pub struct FecEncoder {
    k: usize,
    /// Sequence number of the first packet in the open block.
    block_start: Option<Seq>,
    lengths: Vec<u16>,
    body: Vec<u8>,
    /// Parity packets emitted (stat).
    pub parities_emitted: u64,
}

impl FecEncoder {
    /// An encoder emitting one parity per `k` data packets.
    pub fn new(k: usize) -> FecEncoder {
        FecEncoder {
            k,
            block_start: None,
            lengths: Vec::with_capacity(k),
            body: Vec::new(),
            parities_emitted: 0,
        }
    }

    /// Feed one first-transmission DATA packet (in sequence order).
    /// Returns a PARITY packet when the block completes.
    pub fn on_data(
        &mut self,
        seq: Seq,
        payload: &Bytes,
        src_port: u16,
        dst_port: u16,
    ) -> Option<Packet> {
        match self.block_start {
            None => {
                self.block_start = Some(seq);
            }
            Some(start) => {
                // A sequence discontinuity (only possible if the caller
                // skips packets) restarts the block.
                let expected = start.wrapping_add(self.lengths.len() as u32);
                if seq != expected {
                    self.reset();
                    self.block_start = Some(seq);
                }
            }
        }
        self.lengths
            .push(payload.len().min(usize::from(u16::MAX)) as u16);
        xor_into(&mut self.body, payload);
        if self.lengths.len() < self.k {
            return None;
        }
        let start = self.block_start.expect("open block");
        let mut wire = Vec::with_capacity(2 * self.k + self.body.len());
        for len in &self.lengths {
            wire.extend_from_slice(&len.to_be_bytes());
        }
        wire.extend_from_slice(&self.body);
        let mut pkt = Packet {
            header: hrmc_wire::Header::new(PacketType::Parity, src_port, dst_port, start),
            payload: Bytes::from(wire),
        };
        pkt.header.length = self.k as u32;
        self.reset();
        self.parities_emitted += 1;
        Some(pkt)
    }

    fn reset(&mut self) {
        self.block_start = None;
        self.lengths.clear();
        self.body.clear();
    }
}

/// Receiver-side payload cache and reconstructor.
#[derive(Debug)]
pub struct FecDecoder {
    /// Recently seen payloads keyed by *unwrapped* sequence number.
    cache: BTreeMap<u64, Bytes>,
    /// Cache budget in packets.
    retain: usize,
    /// Successful reconstructions (stat).
    pub recoveries: u64,
    /// Parity packets that could not help (0 or ≥2 losses in block).
    pub unusable_parities: u64,
}

impl FecDecoder {
    /// A decoder retaining roughly `retain` recent payloads.
    pub fn new(retain: usize) -> FecDecoder {
        FecDecoder {
            cache: BTreeMap::new(),
            retain: retain.max(8),
            recoveries: 0,
            unusable_parities: 0,
        }
    }

    /// Record a received DATA payload (in-order or out-of-order).
    pub fn on_data(&mut self, useq: u64, payload: Bytes) {
        self.cache.insert(useq, payload);
        while self.cache.len() > self.retain {
            self.cache.pop_first();
        }
    }

    /// Process a PARITY packet. `block_start` is the unwrapped sequence
    /// of the block's first packet; `have` reports whether a sequence has
    /// been received (delivered in order counts). Returns the
    /// reconstructed `(useq, payload)` when exactly one covered packet is
    /// missing and every other payload is cached.
    pub fn on_parity(
        &mut self,
        block_start: u64,
        pkt: &Packet,
        have: impl Fn(u64) -> bool,
    ) -> Option<(u64, Bytes)> {
        let k = pkt.header.length as usize;
        if k < 2 || pkt.payload.len() < 2 * k {
            self.unusable_parities += 1;
            return None;
        }
        let lengths: Vec<usize> = (0..k)
            .map(|i| {
                usize::from(u16::from_be_bytes([
                    pkt.payload[2 * i],
                    pkt.payload[2 * i + 1],
                ]))
            })
            .collect();
        let body = &pkt.payload[2 * k..];

        let missing: Vec<u64> = (0..k as u64)
            .map(|i| block_start + i)
            .filter(|s| !have(*s))
            .collect();
        let [lost] = missing.as_slice() else {
            self.unusable_parities += 1;
            return None; // nothing missing, or more than XOR can fix
        };
        let lost = *lost;
        let lost_len = lengths[(lost - block_start) as usize];
        if lost_len == 0 {
            self.unusable_parities += 1;
            return None; // FIN marker: leave to the NAK path (see module docs)
        }
        // Need every other payload in cache.
        let mut recovered = body.to_vec();
        for i in 0..k as u64 {
            let s = block_start + i;
            if s == lost {
                continue;
            }
            let Some(p) = self.cache.get(&s) else {
                self.unusable_parities += 1;
                return None; // a sibling was received but already evicted
            };
            xor_into(&mut recovered, p);
        }
        recovered.truncate(lost_len);
        if recovered.len() < lost_len {
            self.unusable_parities += 1;
            return None; // body shorter than claimed: corrupt parity
        }
        self.recoveries += 1;
        let payload = Bytes::from(recovered);
        self.cache.insert(lost, payload.clone());
        Some((lost, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(seq: u32, len: usize) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| (seq as usize + i * 7) as u8)
                .collect::<Vec<_>>(),
        )
    }

    fn encode_block(enc: &mut FecEncoder, start: u32, k: usize, lens: &[usize]) -> Option<Packet> {
        let mut out = None;
        for (i, &len) in lens.iter().enumerate().take(k) {
            let seq = start + i as u32;
            let p = enc.on_data(seq, &payload(seq, len), 1, 2);
            if p.is_some() {
                out = p;
            }
        }
        out
    }

    #[test]
    fn parity_emitted_every_k_packets() {
        let mut enc = FecEncoder::new(4);
        let parity = encode_block(&mut enc, 0, 4, &[100, 100, 100, 100]).expect("parity");
        assert_eq!(parity.header.ptype, PacketType::Parity);
        assert_eq!(parity.header.seq, 0);
        assert_eq!(parity.header.length, 4);
        // 4 × u16 lengths + 100-byte body.
        assert_eq!(parity.payload.len(), 8 + 100);
        assert_eq!(enc.parities_emitted, 1);
        // The next block starts fresh.
        assert!(enc.on_data(4, &payload(4, 50), 1, 2).is_none());
    }

    #[test]
    fn recovers_single_loss() {
        let mut enc = FecEncoder::new(4);
        let parity = encode_block(&mut enc, 10, 4, &[100, 80, 120, 60]).expect("parity");
        let mut dec = FecDecoder::new(64);
        // Receiver got 10, 11, 13 — lost 12.
        for s in [10u64, 11, 13] {
            dec.on_data(s, payload(s as u32, [100, 80, 120, 60][(s - 10) as usize]));
        }
        let (lost, recovered) = dec
            .on_parity(10, &parity, |s| s != 12)
            .expect("reconstruction");
        assert_eq!(lost, 12);
        assert_eq!(recovered, payload(12, 120));
        assert_eq!(dec.recoveries, 1);
    }

    #[test]
    fn recovers_loss_of_longest_and_shortest() {
        for lost_idx in [0usize, 3] {
            let lens = [40, 100, 70, 10];
            let mut enc = FecEncoder::new(4);
            let parity = encode_block(&mut enc, 0, 4, &lens).expect("parity");
            let mut dec = FecDecoder::new(64);
            for (i, &len) in lens.iter().enumerate() {
                if i != lost_idx {
                    dec.on_data(i as u64, payload(i as u32, len));
                }
            }
            let (lost, recovered) = dec
                .on_parity(0, &parity, |s| s as usize != lost_idx)
                .expect("reconstruction");
            assert_eq!(lost, lost_idx as u64);
            assert_eq!(recovered, payload(lost_idx as u32, lens[lost_idx]));
        }
    }

    #[test]
    fn two_losses_are_beyond_xor() {
        let mut enc = FecEncoder::new(4);
        let parity = encode_block(&mut enc, 0, 4, &[50, 50, 50, 50]).expect("parity");
        let mut dec = FecDecoder::new(64);
        dec.on_data(0, payload(0, 50));
        dec.on_data(3, payload(3, 50));
        assert!(dec.on_parity(0, &parity, |s| s == 0 || s == 3).is_none());
        assert_eq!(dec.unusable_parities, 1);
        assert_eq!(dec.recoveries, 0);
    }

    #[test]
    fn no_loss_means_no_work() {
        let mut enc = FecEncoder::new(2);
        let parity = encode_block(&mut enc, 0, 2, &[10, 10]).expect("parity");
        let mut dec = FecDecoder::new(64);
        dec.on_data(0, payload(0, 10));
        dec.on_data(1, payload(1, 10));
        assert!(dec.on_parity(0, &parity, |_| true).is_none());
    }

    #[test]
    fn zero_length_fin_is_not_reconstructed() {
        let mut enc = FecEncoder::new(2);
        let mut parity = None;
        for (seq, len) in [(0u32, 100usize), (1, 0)] {
            let p = enc.on_data(seq, &payload(seq, len), 1, 2);
            if p.is_some() {
                parity = p;
            }
        }
        let parity = parity.expect("parity");
        let mut dec = FecDecoder::new(64);
        dec.on_data(0, payload(0, 100));
        assert!(dec.on_parity(0, &parity, |s| s == 0).is_none());
    }

    #[test]
    fn evicted_sibling_blocks_recovery() {
        let mut enc = FecEncoder::new(4);
        let parity = encode_block(&mut enc, 0, 4, &[50, 50, 50, 50]).expect("parity");
        let mut dec = FecDecoder::new(8);
        dec.on_data(0, payload(0, 50));
        dec.on_data(1, payload(1, 50));
        dec.on_data(3, payload(3, 50));
        // Flood the cache so the block's payloads evict.
        for s in 100..120u64 {
            dec.on_data(s, payload(s as u32, 10));
        }
        assert!(dec.on_parity(0, &parity, |s| s != 2).is_none());
        assert!(dec.unusable_parities > 0);
    }

    #[test]
    fn sequence_gap_restarts_block() {
        let mut enc = FecEncoder::new(3);
        assert!(enc.on_data(0, &payload(0, 10), 1, 2).is_none());
        // Skip seq 1 entirely (caller-side anomaly): block restarts at 2.
        assert!(enc.on_data(2, &payload(2, 10), 1, 2).is_none());
        assert!(enc.on_data(3, &payload(3, 10), 1, 2).is_none());
        let parity = enc.on_data(4, &payload(4, 10), 1, 2).expect("parity");
        assert_eq!(parity.header.seq, 2);
    }

    #[test]
    fn config_validation() {
        assert!(FecConfig { k: 1 }.validate().is_err());
        assert!(FecConfig { k: 2 }.validate().is_ok());
        assert!(FecConfig { k: 64 }.validate().is_ok());
        assert!(FecConfig { k: 65 }.validate().is_err());
    }
}
