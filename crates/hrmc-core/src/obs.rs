//! Sans-io protocol observability: a [`ProtocolObserver`] hook invoked by
//! both engines at every protocol state transition, an [`Event`] taxonomy
//! covering the paper's dynamics (rate control, window regions, NAK
//! emission/suppression, PROBE/UPDATE, releases), and ready-made sinks
//! (JSONL writer, metrics registry, fan-out).
//!
//! The hook is zero-cost when unused: engines hold
//! `Option<Box<dyn ProtocolObserver>>` defaulting to `None`, and every
//! emission site checks the option before constructing the event, so a
//! run without an observer pays one branch per site.
//!
//! Timestamps are whatever clock drives the engine — simulated time in
//! `hrmc-sim`, a monotonic wall clock in `hrmc-net` — so one sink type
//! serves both.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use hrmc_wire::Seq;

use crate::health::{AlertRule, Severity};
use crate::metrics::MetricsRegistry;
use crate::rate::RatePhase;
use crate::rxwindow::Region;
use crate::time::Micros;
use crate::PeerId;

/// Version of the JSONL event schema. Bumped whenever an event's field
/// set or rendering changes incompatibly; every stream opens with a
/// header line carrying this number so consumers can refuse traces they
/// do not understand. v2 added the `health_alert` event (the online
/// health monitor's alert transitions).
pub const SCHEMA_VERSION: u32 = 2;

/// Render the one-line JSONL stream header:
/// `{"schema":1,"role":"sim"}` or
/// `{"schema":1,"role":"endpoint","label":"sender"}`. Emitted as the
/// first line of every trace ([`JsonlObserver`], the sim event log,
/// [`FlightRecorder::dump`]) and skipped by every consumer.
pub fn header_json(role: &str, label: Option<&str>) -> String {
    match label {
        Some(l) => format!("{{\"schema\":{SCHEMA_VERSION},\"role\":\"{role}\",\"label\":\"{l}\"}}"),
        None => format!("{{\"schema\":{SCHEMA_VERSION},\"role\":\"{role}\"}}"),
    }
}

/// What prompted a NAK transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NakTrigger {
    /// A reception revealed (or extended) a gap.
    Gap,
    /// The `nak_timer` re-sent a suppressed NAK whose interval lapsed.
    Timer,
    /// A PROBE for data we lack forced an immediate NAK.
    Probe,
    /// A KEEPALIVE named a tail packet we never saw.
    Keepalive,
}

impl NakTrigger {
    /// Stable lower-case name (JSONL field value).
    pub fn name(self) -> &'static str {
        match self {
            NakTrigger::Gap => "gap",
            NakTrigger::Timer => "timer",
            NakTrigger::Probe => "probe",
            NakTrigger::Keepalive => "keepalive",
        }
    }
}

/// Stable lower-case name for a rate phase (JSONL field value).
pub fn phase_name(p: RatePhase) -> &'static str {
    match p {
        RatePhase::SlowStart => "slow_start",
        RatePhase::CongestionAvoidance => "congestion_avoidance",
        RatePhase::Stopped { .. } => "stopped",
    }
}

/// Stable lower-case name for a receive-window region (JSONL field
/// value).
pub fn region_name(r: Region) -> &'static str {
    match r {
        Region::Safe => "safe",
        Region::Warning => "warning",
        Region::Critical => "critical",
    }
}

/// One protocol state transition. Sender-side events come from
/// [`SenderEngine`](crate::SenderEngine), receiver-side events from
/// [`ReceiverEngine`](crate::ReceiverEngine); a driver that observes both
/// engines sees the full exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    // ---- sender ----
    /// The rate controller changed phase (slow start ↔ congestion
    /// avoidance, halt, restart).
    RatePhaseChanged {
        /// Previous phase.
        from: RatePhase,
        /// New phase.
        to: RatePhase,
        /// Transmission rate after the change (bytes/s).
        rate_bps: u64,
    },
    /// A NAK or warning rate request halved the rate.
    RateHalved {
        /// Transmission rate after the halving (bytes/s).
        rate_bps: u64,
    },
    /// An urgent rate request stopped forward transmission.
    UrgentStopped {
        /// Absolute time transmission may resume.
        until: Micros,
    },
    /// The RTT estimator absorbed a sample (Karn-admissible only).
    RttSample {
        /// The raw sample (µs).
        sample_us: u64,
        /// The smoothed estimate after absorbing it (µs).
        srtt_us: u64,
        /// `true` when measured against a PROBE/UPDATE nonce round trip.
        probe: bool,
    },
    /// A PROBE was sent to resolve unknown receiver state before release.
    ProbeSent {
        /// The sequence number whose state is being probed.
        seq: Seq,
        /// `true` when multicast to the group rather than unicast.
        multicast: bool,
    },
    /// A keepalive fired after an idle period.
    KeepaliveSent {
        /// The controller's backoff delay after this firing (µs).
        backoff_us: u64,
    },
    /// The front segment reached MINBUF residency and a release decision
    /// was taken.
    ReleaseAttempt {
        /// The segment considered.
        seq: Seq,
        /// `true` when the sender had complete receiver information.
        complete: bool,
        /// `true` when the buffer was actually released (always, in RMC
        /// mode; only with complete information, in Hybrid mode).
        released: bool,
    },
    /// A DATA packet was put on the wire.
    DataSent {
        /// Its sequence number.
        seq: Seq,
        /// Payload bytes.
        bytes: u32,
        /// `true` for retransmissions, `false` for first transmissions.
        retransmission: bool,
    },
    /// A receiver joined the group.
    PeerJoined {
        /// Driver-assigned peer id.
        peer: PeerId,
    },
    /// A member was forcibly ejected after consecutive unanswered PROBEs
    /// or silence past the configured deadline; its confirmations no
    /// longer gate buffer release.
    MemberEjected {
        /// The ejected peer.
        peer: PeerId,
    },

    // ---- either side ----
    /// An incoming datagram failed the wire checksum and was discarded.
    ChecksumFailed,

    // ---- receiver ----
    /// The receive window crossed a flow-control region boundary.
    RegionChanged {
        /// Previous region.
        from: Region,
        /// New region.
        to: Region,
    },
    /// A NAK packet was sent for a missing range.
    NakSent {
        /// First missing (unwrapped) sequence number.
        first: u64,
        /// Length of the missing range.
        count: u32,
        /// What prompted it.
        trigger: NakTrigger,
    },
    /// Known gaps were *not* re-NAKed (local NAK suppression held them).
    NakSuppressed {
        /// Number of sequence numbers withheld.
        pending: u32,
    },
    /// An UPDATE was sent to the sender.
    UpdateSent {
        /// Echoed PROBE nonce (nonzero means this UPDATE answers a PROBE
        /// and yields the sender an RTT sample).
        nonce: u32,
    },
    /// Previously missing data arrived (sender retransmission, peer
    /// repair, or FEC reconstruction): NAK-to-repair recovery.
    Recovered {
        /// First recovered (unwrapped) sequence number.
        first: u64,
        /// Length of the recovered range.
        count: u32,
        /// Time from first noting the gap to recovery (µs).
        elapsed_us: u64,
    },
    /// In-order data became deliverable to the application.
    Delivered {
        /// First delivered (unwrapped) sequence number.
        first: u64,
        /// Number of segments that became deliverable.
        count: u32,
    },
    /// The JOIN handshake completed.
    Joined {
        /// Handshake round-trip time, the receiver's RTT seed (µs).
        rtt_us: u64,
    },
    /// Terminal failure: sender presumed dead or JOIN budget exhausted.
    SessionFailed,

    // ---- monitor ----
    /// The online health monitor raised or cleared an invariant alert
    /// (see [`crate::health`]). Evidence is fixed-point: `value_m` and
    /// `limit_m` are the observed value and the raise threshold in
    /// milli-units of the rule's natural unit.
    HealthAlert {
        /// Which invariant.
        rule: AlertRule,
        /// Configured severity of the rule.
        severity: Severity,
        /// `true` = raised, `false` = cleared.
        raised: bool,
        /// Observed value, milli-units.
        value_m: u64,
        /// Raise threshold, milli-units.
        limit_m: u64,
    },
}

impl Event {
    /// Stable lower-case event name (JSONL `event` field).
    pub fn name(&self) -> &'static str {
        match self {
            Event::RatePhaseChanged { .. } => "rate_phase_changed",
            Event::RateHalved { .. } => "rate_halved",
            Event::UrgentStopped { .. } => "urgent_stopped",
            Event::RttSample { .. } => "rtt_sample",
            Event::ProbeSent { .. } => "probe_sent",
            Event::KeepaliveSent { .. } => "keepalive_sent",
            Event::ReleaseAttempt { .. } => "release_attempt",
            Event::DataSent { .. } => "data_sent",
            Event::PeerJoined { .. } => "peer_joined",
            Event::MemberEjected { .. } => "member_ejected",
            Event::ChecksumFailed => "checksum_failed",
            Event::RegionChanged { .. } => "region_changed",
            Event::NakSent { .. } => "nak_sent",
            Event::NakSuppressed { .. } => "nak_suppressed",
            Event::UpdateSent { .. } => "update_sent",
            Event::Recovered { .. } => "recovered",
            Event::Delivered { .. } => "delivered",
            Event::Joined { .. } => "joined",
            Event::SessionFailed => "session_failed",
            Event::HealthAlert { .. } => "health_alert",
        }
    }

    /// The unwrapped sequence range `[first, first + count)` this event
    /// refers to, if it names sequence numbers at all — the stable join
    /// key trace analyzers use to stitch per-sequence lifecycles
    /// together. Single-sequence events report `count == 1`.
    ///
    /// Simulated streams start at sequence 0, so the wire [`Seq`] carried
    /// by sender-side events and the receivers' unwrapped 64-bit numbers
    /// coincide there; over real sockets the caller must unwrap.
    pub fn seq_range(&self) -> Option<(u64, u32)> {
        match *self {
            Event::ProbeSent { seq, .. }
            | Event::ReleaseAttempt { seq, .. }
            | Event::DataSent { seq, .. } => Some((u64::from(seq), 1)),
            Event::NakSent { first, count, .. }
            | Event::Recovered { first, count, .. }
            | Event::Delivered { first, count } => Some((first, count)),
            _ => None,
        }
    }

    /// The group member this event refers to, if any — the stable join
    /// key for membership-lifecycle analysis (`"member"` in JSONL).
    pub fn member(&self) -> Option<PeerId> {
        match *self {
            Event::PeerJoined { peer } | Event::MemberEjected { peer } => Some(peer),
            _ => None,
        }
    }
}

/// Hook for protocol state transitions. Implementations must be cheap:
/// the engines call this synchronously from their hot paths.
pub trait ProtocolObserver: Send {
    /// Called at each transition with the engine's current clock.
    fn on_event(&mut self, now: Micros, ev: &Event);
}

/// Invoke an engine's observer with a lazily built event: the event
/// expression is evaluated only when an observer is installed, so each
/// emission site costs one branch otherwise. The event expression may
/// read other fields of `$self` (the borrow of `observer` is disjoint)
/// but must not call full-`self` methods.
macro_rules! emit {
    ($self:ident, $now:expr, $ev:expr) => {
        if let Some(obs) = $self.observer.as_deref_mut() {
            let ev = $ev;
            obs.on_event($now, &ev);
        }
    };
}
pub(crate) use emit;

/// Render one event as a single JSON line (no trailing newline). All
/// field values are numbers, booleans, or fixed identifier strings, so
/// no escaping is needed. `extra` is injected verbatim after the
/// timestamp — either empty or well-formed fields like `"host":3,`.
pub fn event_json_with(now: Micros, ev: &Event, extra: &str) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"t_us\":{now},{extra}\"event\":\"{}\"", ev.name());
    match *ev {
        Event::RatePhaseChanged { from, to, rate_bps } => {
            let _ = write!(
                s,
                ",\"from\":\"{}\",\"to\":\"{}\",\"rate_bps\":{rate_bps}",
                phase_name(from),
                phase_name(to)
            );
        }
        Event::RateHalved { rate_bps } => {
            let _ = write!(s, ",\"rate_bps\":{rate_bps}");
        }
        Event::UrgentStopped { until } => {
            let _ = write!(s, ",\"until_us\":{until}");
        }
        Event::RttSample {
            sample_us,
            srtt_us,
            probe,
        } => {
            let _ = write!(
                s,
                ",\"sample_us\":{sample_us},\"srtt_us\":{srtt_us},\"probe\":{probe}"
            );
        }
        Event::ProbeSent { seq, multicast } => {
            let _ = write!(s, ",\"seq\":{seq},\"multicast\":{multicast}");
        }
        Event::KeepaliveSent { backoff_us } => {
            let _ = write!(s, ",\"backoff_us\":{backoff_us}");
        }
        Event::ReleaseAttempt {
            seq,
            complete,
            released,
        } => {
            let _ = write!(
                s,
                ",\"seq\":{seq},\"complete\":{complete},\"released\":{released}"
            );
        }
        Event::DataSent {
            seq,
            bytes,
            retransmission,
        } => {
            let _ = write!(
                s,
                ",\"seq\":{seq},\"bytes\":{bytes},\"retransmission\":{retransmission}"
            );
        }
        Event::PeerJoined { peer } => {
            let _ = write!(s, ",\"member\":{}", peer.0);
        }
        Event::MemberEjected { peer } => {
            let _ = write!(s, ",\"member\":{}", peer.0);
        }
        Event::ChecksumFailed | Event::SessionFailed => {}
        Event::RegionChanged { from, to } => {
            let _ = write!(
                s,
                ",\"from\":\"{}\",\"to\":\"{}\"",
                region_name(from),
                region_name(to)
            );
        }
        Event::NakSent {
            first,
            count,
            trigger,
        } => {
            let _ = write!(
                s,
                ",\"first\":{first},\"count\":{count},\"trigger\":\"{}\"",
                trigger.name()
            );
        }
        Event::NakSuppressed { pending } => {
            let _ = write!(s, ",\"pending\":{pending}");
        }
        Event::UpdateSent { nonce } => {
            let _ = write!(s, ",\"nonce\":{nonce}");
        }
        Event::Recovered {
            first,
            count,
            elapsed_us,
        } => {
            let _ = write!(
                s,
                ",\"first\":{first},\"count\":{count},\"elapsed_us\":{elapsed_us}"
            );
        }
        Event::Delivered { first, count } => {
            let _ = write!(s, ",\"first\":{first},\"count\":{count}");
        }
        Event::Joined { rtt_us } => {
            let _ = write!(s, ",\"rtt_us\":{rtt_us}");
        }
        Event::HealthAlert {
            rule,
            severity,
            raised,
            value_m,
            limit_m,
        } => {
            let _ = write!(
                s,
                ",\"rule\":\"{}\",\"severity\":\"{}\",\"raised\":{raised},\
                 \"value_m\":{value_m},\"limit_m\":{limit_m}",
                rule.name(),
                severity.name()
            );
        }
    }
    s.push('}');
    s
}

/// [`event_json_with`] without injected fields.
pub fn event_json(now: Micros, ev: &Event) -> String {
    event_json_with(now, ev, "")
}

/// Observer that writes one JSON line per event to any `Write` sink,
/// preceded by one schema header line (see [`header_json`]). Write
/// errors are silently dropped (observability must never take the
/// protocol down).
pub struct JsonlObserver<W: std::io::Write + Send> {
    writer: W,
    extra: String,
    label: Option<String>,
    header_written: bool,
}

impl<W: std::io::Write + Send> JsonlObserver<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonlObserver<W> {
        JsonlObserver {
            writer,
            extra: String::new(),
            label: None,
            header_written: false,
        }
    }

    /// Tag every line with `"src":"<label>"` — e.g. `sender`, `recv0` —
    /// and carry the label in the stream header.
    pub fn with_label(mut self, label: &str) -> JsonlObserver<W> {
        self.extra = format!("\"src\":\"{label}\",");
        self.label = Some(label.to_string());
        self
    }

    /// Flush and recover the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: std::io::Write + Send> ProtocolObserver for JsonlObserver<W> {
    fn on_event(&mut self, now: Micros, ev: &Event) {
        if !self.header_written {
            self.header_written = true;
            let mut header = header_json("endpoint", self.label.as_deref());
            header.push('\n');
            let _ = self.writer.write_all(header.as_bytes());
        }
        let mut line = event_json_with(now, ev, &self.extra);
        line.push('\n');
        let _ = self.writer.write_all(line.as_bytes());
    }
}

/// Observer that aggregates events into a shared [`MetricsRegistry`]:
/// counters for discrete transitions, gauges for the latest rates, and
/// histograms for RTT and recovery latency.
#[derive(Clone, Default)]
pub struct MetricsObserver {
    registry: Arc<Mutex<MetricsRegistry>>,
}

impl MetricsObserver {
    /// A fresh observer around an empty registry.
    pub fn new() -> MetricsObserver {
        MetricsObserver::default()
    }

    /// Handle to the shared registry (lock to read or snapshot).
    pub fn registry(&self) -> Arc<Mutex<MetricsRegistry>> {
        Arc::clone(&self.registry)
    }

    /// Snapshot the registry.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.registry
            .lock()
            .expect("metrics registry poisoned")
            .snapshot()
    }
}

impl ProtocolObserver for MetricsObserver {
    fn on_event(&mut self, _now: Micros, ev: &Event) {
        let mut reg = self.registry.lock().expect("metrics registry poisoned");
        match *ev {
            Event::RatePhaseChanged { rate_bps, .. } => {
                reg.inc("rate_phase_changes");
                reg.set_gauge("rate_bps", rate_bps);
            }
            Event::RateHalved { rate_bps } => {
                reg.inc("rate_halvings");
                reg.set_gauge("rate_bps", rate_bps);
            }
            Event::UrgentStopped { .. } => reg.inc("urgent_stops"),
            Event::RttSample {
                sample_us,
                srtt_us,
                probe,
            } => {
                reg.observe("rtt_us", sample_us);
                if probe {
                    reg.observe("probe_rtt_us", sample_us);
                }
                reg.set_gauge("srtt_us", srtt_us);
            }
            Event::ProbeSent { .. } => reg.inc("probes_sent"),
            Event::KeepaliveSent { backoff_us } => {
                reg.inc("keepalives_sent");
                reg.set_gauge("keepalive_backoff_us", backoff_us);
            }
            Event::ReleaseAttempt {
                complete, released, ..
            } => {
                reg.inc("release_attempts");
                if complete {
                    reg.inc("release_attempts_complete_info");
                }
                if released {
                    reg.inc("segments_released");
                }
            }
            Event::DataSent {
                bytes,
                retransmission,
                ..
            } => {
                if retransmission {
                    reg.inc("retransmissions");
                } else {
                    reg.inc("data_packets_sent");
                }
                reg.add("data_bytes_sent", u64::from(bytes));
            }
            Event::PeerJoined { .. } => reg.inc("peers_joined"),
            Event::MemberEjected { .. } => reg.inc("members_ejected"),
            Event::ChecksumFailed => reg.inc("checksum_failures"),
            Event::RegionChanged { to, .. } => {
                reg.inc("region_changes");
                match to {
                    Region::Safe => reg.inc("region_entered_safe"),
                    Region::Warning => reg.inc("region_entered_warning"),
                    Region::Critical => reg.inc("region_entered_critical"),
                }
            }
            Event::NakSent { .. } => reg.inc("naks_sent"),
            Event::NakSuppressed { pending } => {
                reg.inc("nak_suppressions");
                reg.add("naks_suppressed", u64::from(pending));
            }
            Event::UpdateSent { .. } => reg.inc("updates_sent"),
            Event::Recovered {
                count, elapsed_us, ..
            } => {
                reg.add("segments_recovered", u64::from(count));
                reg.observe("recovery_latency_us", elapsed_us);
            }
            Event::Delivered { count, .. } => reg.add("segments_delivered", u64::from(count)),
            Event::Joined { rtt_us } => {
                reg.inc("joins_completed");
                reg.observe("join_rtt_us", rtt_us);
            }
            Event::SessionFailed => reg.inc("session_failures"),
            Event::HealthAlert { raised, .. } => {
                if raised {
                    reg.inc("alerts_raised");
                } else {
                    reg.inc("alerts_cleared");
                }
            }
        }
    }
}

/// One event captured by a [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedEvent {
    /// Engine clock at emission (µs).
    pub t_us: Micros,
    /// Simulation host tag (`None` for single-engine recorders); rendered
    /// as `"host":N` by [`FlightRecorder::dump`] so a dump is line-
    /// compatible with the streaming sim event log.
    pub host: Option<u32>,
    /// The event itself.
    pub event: Event,
}

/// Bounded in-memory ring of the most recent protocol events — a flight
/// recorder cheap enough to leave on in production paths: recording one
/// event is a `VecDeque` push of a `Copy` struct (no allocation, no
/// formatting), overwriting the oldest entry once the fixed capacity is
/// reached and counting what it overwrote. [`FlightRecorder::dump`]
/// renders the surviving window as schema-versioned JSONL, byte-
/// compatible with the streaming [`JsonlObserver`] / sim event-log
/// format, so one analyzer serves both.
pub struct FlightRecorder {
    cap: usize,
    buf: VecDeque<RecordedEvent>,
    dropped: u64,
    peak: usize,
    label: Option<String>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            cap,
            buf: VecDeque::with_capacity(cap),
            dropped: 0,
            peak: 0,
            label: None,
        }
    }

    /// Tag dumped lines with `"src":"<label>"` (endpoint identity), like
    /// [`JsonlObserver::with_label`].
    pub fn with_label(mut self, label: &str) -> FlightRecorder {
        self.label = Some(label.to_string());
        self
    }

    /// Record one event (no host tag).
    pub fn record(&mut self, now: Micros, ev: &Event) {
        self.record_tagged(now, ev, None);
    }

    /// Record one event tagged with a simulation host id.
    pub fn record_tagged(&mut self, now: Micros, ev: &Event, host: Option<u32>) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(RecordedEvent {
            t_us: now,
            host,
            event: *ev,
        });
        self.peak = self.peak.max(self.buf.len());
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded (or everything overwritten).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events overwritten because the ring was full — the observer-side
    /// backpressure signal.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// High-water mark of the buffer length.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// The surviving events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &RecordedEvent> {
        self.buf.iter()
    }

    /// Render the surviving window as JSONL: one schema header line
    /// (role `flight_recorder`, carrying the label if set and the drop
    /// count), then one line per event in record order, formatted exactly
    /// like the streaming paths so `hrmc analyze` reads a dump and a
    /// live trace identically.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(32 + self.buf.len() * 96);
        let _ = write!(
            out,
            "{{\"schema\":{SCHEMA_VERSION},\"role\":\"flight_recorder\""
        );
        if let Some(l) = &self.label {
            let _ = write!(out, ",\"label\":\"{l}\"");
        }
        let _ = write!(out, ",\"dropped_events\":{}}}", self.dropped);
        out.push('\n');
        let label_extra = self
            .label
            .as_ref()
            .map(|l| format!("\"src\":\"{l}\","))
            .unwrap_or_default();
        for rec in &self.buf {
            let extra = match rec.host {
                Some(h) => format!("\"host\":{h},"),
                None => label_extra.clone(),
            };
            out.push_str(&event_json_with(rec.t_us, &rec.event, &extra));
            out.push('\n');
        }
        out
    }

    /// Write [`FlightRecorder::dump`] to a sink.
    pub fn dump_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(self.dump().as_bytes())
    }

    /// Publish the recorder's backpressure gauges into a metrics
    /// registry: `flight_recorder_dropped_events`,
    /// `flight_recorder_peak_events`, `flight_recorder_capacity`.
    pub fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        reg.set_gauge("flight_recorder_dropped_events", self.dropped);
        reg.set_gauge("flight_recorder_peak_events", self.peak as u64);
        reg.set_gauge("flight_recorder_capacity", self.cap as u64);
    }
}

impl ProtocolObserver for FlightRecorder {
    fn on_event(&mut self, now: Micros, ev: &Event) {
        self.record(now, ev);
    }
}

/// Clone-able shared handle around a [`FlightRecorder`]: install clones
/// into several engines (or hand one to a driver thread) and keep one to
/// dump after the run — the same pattern as [`MetricsObserver`].
#[derive(Clone)]
pub struct SharedRecorder {
    inner: Arc<Mutex<FlightRecorder>>,
}

impl SharedRecorder {
    /// A shared recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> SharedRecorder {
        SharedRecorder {
            inner: Arc::new(Mutex::new(FlightRecorder::new(capacity))),
        }
    }

    /// Tag dumped lines with `"src":"<label>"`.
    pub fn with_label(self, label: &str) -> SharedRecorder {
        {
            let mut rec = self.inner.lock().expect("flight recorder poisoned");
            let owned = std::mem::replace(&mut *rec, FlightRecorder::new(1));
            *rec = owned.with_label(label);
        }
        self
    }

    /// Record one event tagged with a simulation host id.
    pub fn record_tagged(&self, now: Micros, ev: &Event, host: Option<u32>) {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .record_tagged(now, ev, host);
    }

    /// Run `f` against the underlying recorder (dump, gauges, …).
    pub fn with_recorder<T>(&self, f: impl FnOnce(&FlightRecorder) -> T) -> T {
        f(&self.inner.lock().expect("flight recorder poisoned"))
    }

    /// Render the surviving window as JSONL (see
    /// [`FlightRecorder::dump`]).
    pub fn dump(&self) -> String {
        self.with_recorder(|r| r.dump())
    }
}

impl ProtocolObserver for SharedRecorder {
    fn on_event(&mut self, now: Micros, ev: &Event) {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .record(now, ev);
    }
}

/// Fan one event stream out to several observers, in order.
#[derive(Default)]
pub struct MultiObserver {
    observers: Vec<Box<dyn ProtocolObserver>>,
}

impl MultiObserver {
    /// An empty fan-out.
    pub fn new() -> MultiObserver {
        MultiObserver::default()
    }

    /// Append an observer (builder style).
    pub fn with(mut self, obs: Box<dyn ProtocolObserver>) -> MultiObserver {
        self.observers.push(obs);
        self
    }

    /// Append an observer.
    pub fn push(&mut self, obs: Box<dyn ProtocolObserver>) {
        self.observers.push(obs);
    }
}

impl ProtocolObserver for MultiObserver {
    fn on_event(&mut self, now: Micros, ev: &Event) {
        for obs in &mut self.observers {
            obs.on_event(now, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_is_one_flat_object() {
        let ev = Event::NakSent {
            first: 17,
            count: 3,
            trigger: NakTrigger::Timer,
        };
        let line = event_json(12345, &ev);
        assert_eq!(
            line,
            "{\"t_us\":12345,\"event\":\"nak_sent\",\"first\":17,\"count\":3,\"trigger\":\"timer\"}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn event_json_with_injects_extra_fields() {
        let ev = Event::Delivered { first: 0, count: 2 };
        let line = event_json_with(7, &ev, "\"host\":3,");
        assert!(line.starts_with("{\"t_us\":7,\"host\":3,\"event\":\"delivered\""));
    }

    #[test]
    fn jsonl_observer_writes_lines() {
        let mut obs = JsonlObserver::new(Vec::new()).with_label("sender");
        obs.on_event(1, &Event::RateHalved { rate_bps: 500 });
        obs.on_event(
            2,
            &Event::ProbeSent {
                seq: 9,
                multicast: false,
            },
        );
        let out = String::from_utf8(obs.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"schema\":2,\"role\":\"endpoint\",\"label\":\"sender\"}"
        );
        assert!(lines[1].contains("\"src\":\"sender\""));
        assert!(lines[1].contains("\"rate_bps\":500"));
        assert!(lines[2].contains("\"event\":\"probe_sent\""));
    }

    #[test]
    fn header_json_shapes() {
        assert_eq!(header_json("sim", None), "{\"schema\":2,\"role\":\"sim\"}");
        assert_eq!(
            header_json("endpoint", Some("recv0")),
            "{\"schema\":2,\"role\":\"endpoint\",\"label\":\"recv0\"}"
        );
    }

    #[test]
    fn seq_range_and_member_join_keys() {
        assert_eq!(
            Event::DataSent {
                seq: 9,
                bytes: 1,
                retransmission: false
            }
            .seq_range(),
            Some((9, 1))
        );
        assert_eq!(
            Event::Recovered {
                first: 40,
                count: 3,
                elapsed_us: 1
            }
            .seq_range(),
            Some((40, 3))
        );
        assert_eq!(Event::SessionFailed.seq_range(), None);
        assert_eq!(
            Event::MemberEjected { peer: PeerId(2) }.member(),
            Some(PeerId(2))
        );
        assert_eq!(Event::ChecksumFailed.member(), None);
    }

    #[test]
    fn flight_recorder_overwrites_oldest_and_counts_drops() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record(i, &Event::Delivered { first: i, count: 1 });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.capacity(), 3);
        assert_eq!(rec.dropped_events(), 2);
        assert_eq!(rec.peak_len(), 3);
        let firsts: Vec<u64> = rec.events().map(|r| r.t_us).collect();
        assert_eq!(firsts, vec![2, 3, 4], "oldest entries are overwritten");
    }

    #[test]
    fn flight_recorder_dump_matches_streaming_format() {
        let mut rec = FlightRecorder::new(16);
        rec.record_tagged(42, &Event::Delivered { first: 0, count: 1 }, Some(3));
        let dump = rec.dump();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(
            lines[0],
            "{\"schema\":2,\"role\":\"flight_recorder\",\"dropped_events\":0}"
        );
        // The event line is byte-identical to what the sim's streaming
        // log emits for the same event.
        assert_eq!(
            lines[1],
            "{\"t_us\":42,\"host\":3,\"event\":\"delivered\",\"first\":0,\"count\":1}"
        );
    }

    #[test]
    fn flight_recorder_labelled_dump_matches_jsonl_observer() {
        let mut rec = FlightRecorder::new(4).with_label("sender");
        rec.record(7, &Event::RateHalved { rate_bps: 100 });
        let dump = rec.dump();
        let mut jsonl = JsonlObserver::new(Vec::new()).with_label("sender");
        jsonl.on_event(7, &Event::RateHalved { rate_bps: 100 });
        let streamed = String::from_utf8(jsonl.into_inner()).unwrap();
        // Same event line; headers differ only in role/drop fields.
        assert_eq!(dump.lines().nth(1), streamed.lines().nth(1));
        assert!(dump
            .lines()
            .next()
            .unwrap()
            .contains("\"label\":\"sender\""));
    }

    #[test]
    fn flight_recorder_publishes_backpressure_gauges() {
        let mut rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            rec.record(i, &Event::ChecksumFailed);
        }
        let mut reg = MetricsRegistry::new();
        rec.publish_metrics(&mut reg);
        assert_eq!(reg.gauge("flight_recorder_dropped_events"), Some(3));
        assert_eq!(reg.gauge("flight_recorder_peak_events"), Some(2));
        assert_eq!(reg.gauge("flight_recorder_capacity"), Some(2));
    }

    #[test]
    fn shared_recorder_is_observable_from_clones() {
        let rec = SharedRecorder::new(8).with_label("recv");
        let mut obs: Box<dyn ProtocolObserver> = Box::new(rec.clone());
        obs.on_event(1, &Event::UpdateSent { nonce: 0 });
        rec.record_tagged(2, &Event::Delivered { first: 0, count: 1 }, None);
        assert_eq!(rec.with_recorder(|r| r.len()), 2);
        assert!(rec.dump().contains("\"event\":\"update_sent\""));
    }

    #[test]
    fn metrics_observer_aggregates() {
        let mut obs = MetricsObserver::new();
        obs.on_event(0, &Event::RateHalved { rate_bps: 1000 });
        obs.on_event(1, &Event::RateHalved { rate_bps: 500 });
        obs.on_event(
            2,
            &Event::RttSample {
                sample_us: 900,
                srtt_us: 950,
                probe: true,
            },
        );
        obs.on_event(
            3,
            &Event::Recovered {
                first: 4,
                count: 2,
                elapsed_us: 7_000,
            },
        );
        obs.on_event(
            4,
            &Event::RegionChanged {
                from: Region::Safe,
                to: Region::Warning,
            },
        );
        let reg = obs.snapshot();
        assert_eq!(reg.counter("rate_halvings"), 2);
        assert_eq!(reg.gauge("rate_bps"), Some(500));
        assert_eq!(reg.histogram("rtt_us").unwrap().count(), 1);
        assert_eq!(reg.histogram("probe_rtt_us").unwrap().count(), 1);
        assert_eq!(reg.histogram("recovery_latency_us").unwrap().p50(), 7_000);
        assert_eq!(reg.counter("segments_recovered"), 2);
        assert_eq!(reg.counter("region_entered_warning"), 1);
    }

    #[test]
    fn multi_observer_fans_out() {
        let metrics = MetricsObserver::new();
        let reg = metrics.registry();
        let mut multi = MultiObserver::new()
            .with(Box::new(JsonlObserver::new(std::io::sink())))
            .with(Box::new(metrics));
        multi.on_event(0, &Event::UpdateSent { nonce: 0 });
        assert_eq!(reg.lock().unwrap().counter("updates_sent"), 1);
    }

    #[test]
    fn every_event_renders_valid_shape() {
        use hrmc_core_event_list::*;
        // Exhaustive render smoke test: each variant yields `{...}` with
        // its name embedded.
        for ev in all_events() {
            let line = event_json(1, &ev);
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(ev.name()), "{line}");
        }
    }

    mod hrmc_core_event_list {
        use super::*;

        pub fn all_events() -> Vec<Event> {
            vec![
                Event::RatePhaseChanged {
                    from: RatePhase::SlowStart,
                    to: RatePhase::CongestionAvoidance,
                    rate_bps: 1,
                },
                Event::RateHalved { rate_bps: 1 },
                Event::UrgentStopped { until: 1 },
                Event::RttSample {
                    sample_us: 1,
                    srtt_us: 1,
                    probe: false,
                },
                Event::ProbeSent {
                    seq: 1,
                    multicast: true,
                },
                Event::KeepaliveSent { backoff_us: 1 },
                Event::ReleaseAttempt {
                    seq: 1,
                    complete: true,
                    released: true,
                },
                Event::DataSent {
                    seq: 1,
                    bytes: 1,
                    retransmission: false,
                },
                Event::PeerJoined { peer: PeerId(1) },
                Event::MemberEjected { peer: PeerId(1) },
                Event::ChecksumFailed,
                Event::RegionChanged {
                    from: Region::Safe,
                    to: Region::Critical,
                },
                Event::NakSent {
                    first: 1,
                    count: 1,
                    trigger: NakTrigger::Gap,
                },
                Event::NakSuppressed { pending: 1 },
                Event::UpdateSent { nonce: 1 },
                Event::Recovered {
                    first: 1,
                    count: 1,
                    elapsed_us: 1,
                },
                Event::Delivered { first: 1, count: 1 },
                Event::Joined { rtt_us: 1 },
                Event::SessionFailed,
                Event::HealthAlert {
                    rule: AlertRule::NakStorm,
                    severity: Severity::Warning,
                    raised: true,
                    value_m: 1,
                    limit_m: 1,
                },
            ]
        }
    }
}
