//! The H-RMC sender engine (paper §4.2, Figure 8).
//!
//! The kernel driver runs five concurrent tasks; here they are methods of
//! one deterministic state machine:
//!
//! | Paper task | Engine entry point |
//! |------------|--------------------|
//! | Application Interface (`hrmc_sendmsg`) | [`SenderEngine::submit`] / [`SenderEngine::close`] |
//! | Transmitter (`transmit_timer`, every jiffy) | [`SenderEngine::on_tick`] |
//! | Feedback Processor (`hrmc_master_rcv`) | [`SenderEngine::handle_packet`] |
//! | Retransmitter (`retrans_timer`) | retransmission pass inside [`SenderEngine::on_tick`] |
//! | Keepalive Controller (`ka_timer`) | keepalive pass inside [`SenderEngine::on_tick`] |
//!
//! Outgoing packets accumulate on an output queue drained with
//! [`SenderEngine::poll_output`]; application-visible events with
//! [`SenderEngine::poll_event`].

use std::collections::{HashMap, HashSet, VecDeque};

use bytes::Bytes;
use hrmc_wire::{seq_le, Packet, PacketType, Seq};

use crate::config::{ProbePolicy, ProbeTransport, ProtocolConfig, ReliabilityMode};
use crate::events::SenderEvent;
use crate::fec::FecEncoder;
use crate::keepalive::KeepaliveController;
use crate::membership::Membership;
use crate::obs::emit;
use crate::obs::{Event, ProtocolObserver};
use crate::rate::{RateController, RatePhase};
use crate::rtt::RttEstimator;
use crate::stats::SenderStats;
use crate::time::{scale, Micros, JIFFY_US};
use crate::txwindow::SendWindow;
use crate::{Dest, Outgoing, PeerId};

/// How long probe-nonce RTT bookkeeping survives before pruning, in RTTs.
const NONCE_TTL_RTTS: f64 = 16.0;

/// Size of the transmission-timestamp ring (power of two).
const SEND_TIMES_RING: usize = 8192;

/// A ring of recent transmission timestamps, independent of the send
/// buffer: RTT samples for JOINs and NAKs must survive buffer release,
/// or a high-delay group can never correct the seed estimate (Karn
/// catch-22: the estimate stays small, releases happen before feedback
/// arrives, and no feedback ever finds its slot).
#[derive(Debug)]
struct SendTimes {
    ring: Vec<(Seq, Micros, u8)>,
}

impl SendTimes {
    fn new() -> SendTimes {
        SendTimes {
            ring: vec![(0, u64::MAX, u8::MAX); SEND_TIMES_RING],
        }
    }

    fn record(&mut self, seq: Seq, now: Micros, tries: u8) {
        self.ring[seq as usize % SEND_TIMES_RING] = (seq, now, tries);
    }

    fn get(&self, seq: Seq) -> Option<(Micros, u8)> {
        let (s, t, tries) = self.ring[seq as usize % SEND_TIMES_RING];
        (s == seq && t != u64::MAX).then_some((t, tries))
    }
}

/// The sender half of the protocol. See the module docs for the mapping
/// to the paper's architecture.
pub struct SenderEngine {
    config: ProtocolConfig,
    local_port: u16,
    group_port: u16,
    window: SendWindow,
    membership: Membership,
    rate: RateController,
    rtt: RttEstimator,
    keepalive: KeepaliveController,
    /// Retransmission request list (`retrans_queue` in Figure 8), deduped.
    /// Each entry carries a not-before time — with local recovery the
    /// sender holds back one repair window to let a peer answer first —
    /// and the first requester, so the hold can be cancelled when that
    /// receiver confirms the data (a later requester deduplicated against
    /// the entry simply re-NAKs after its suppression interval).
    retrans_queue: VecDeque<(Seq, Micros, PeerId)>,
    retrans_set: HashSet<Seq>,
    /// Recent transmission timestamps (survive buffer release).
    send_times: SendTimes,
    /// Optional FEC parity builder (extension).
    fec: Option<FecEncoder>,
    /// Outstanding probe nonces → issue time, for RTT samples on echo.
    probe_nonces: HashMap<u32, Micros>,
    next_nonce: u32,
    /// Reused PROBE-target buffer: the tick path collects laggards here
    /// instead of allocating a fresh `Vec` per gate stall.
    probe_scratch: Vec<PeerId>,
    /// Round-robin cursor into the sorted laggard list, advanced when
    /// `probe_batch_limit` caps a tick's unicast fan-out so successive
    /// ticks sweep the whole set.
    probe_rr_cursor: usize,
    /// Sequence whose release attempt has been counted (Figure 3 metric
    /// counts each segment's *first* eligibility exactly once).
    release_attempt_counted_through: Option<Seq>,
    /// Last sequence number actually transmitted (for KEEPALIVE).
    last_transmitted: Option<Seq>,
    closed: bool,
    transfer_complete_emitted: bool,
    submit_blocked: bool,
    out: VecDeque<Outgoing>,
    events: VecDeque<SenderEvent>,
    /// Optional observability hook (None by default: zero-cost).
    observer: Option<Box<dyn ProtocolObserver>>,
    /// Rate-controller state last reported to the observer, diffed after
    /// every rate-affecting input to detect transitions.
    last_phase: RatePhase,
    last_halvings: u64,
    last_urgent_stops: u64,
    /// Public counters; the experiment harnesses read these.
    pub stats: SenderStats,
}

impl SenderEngine {
    /// Create a sender bound to `local_port`, streaming toward the group
    /// port, with the first data segment numbered `initial_seq`.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(
        config: ProtocolConfig,
        local_port: u16,
        group_port: u16,
        initial_seq: Seq,
        now: Micros,
    ) -> SenderEngine {
        config.validate().expect("invalid ProtocolConfig");
        let rate = RateController::new(
            config.min_rate,
            config.max_rate,
            config.initial_ssthresh_fraction,
            config.linear_increase_per_rtt,
            config.halving_min_interval_rtts,
            config.urgent_stop_rtts,
            now,
        );
        let rtt = RttEstimator::new(config.initial_rtt, config.min_rtt);
        let keepalive =
            KeepaliveController::new(config.keepalive_initial, config.keepalive_max, now);
        let last_phase = rate.phase();
        SenderEngine {
            window: SendWindow::new(config.sndbuf, initial_seq),
            membership: Membership::new(),
            rate,
            rtt,
            keepalive,
            retrans_queue: VecDeque::new(),
            retrans_set: HashSet::new(),
            send_times: SendTimes::new(),
            fec: config.fec.map(|f| FecEncoder::new(f.k)),
            probe_nonces: HashMap::new(),
            next_nonce: 1,
            probe_scratch: Vec::new(),
            probe_rr_cursor: 0,
            release_attempt_counted_through: None,
            last_transmitted: None,
            closed: false,
            transfer_complete_emitted: false,
            submit_blocked: false,
            out: VecDeque::new(),
            events: VecDeque::new(),
            observer: None,
            last_phase,
            last_halvings: 0,
            last_urgent_stops: 0,
            stats: SenderStats::default(),
            config,
            local_port,
            group_port,
        }
    }

    /// Install a [`ProtocolObserver`], replacing any previous one. The
    /// engine reports every protocol state transition to it.
    pub fn set_observer(&mut self, observer: Box<dyn ProtocolObserver>) {
        self.observer = Some(observer);
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Current RTT estimate (most distant receiver), microseconds.
    pub fn rtt(&self) -> Micros {
        self.rtt.rtt()
    }

    /// Current advertised transmission rate, bytes/second.
    pub fn rate(&self) -> u64 {
        self.rate.rate()
    }

    /// Cumulative rate-halving episodes (congestion responses to NAKs
    /// and warning rate requests) — the graceful-degradation signal
    /// hostile-network harnesses assert on.
    pub fn rate_halvings(&self) -> u64 {
        self.rate.halvings
    }

    /// Cumulative urgent stops (URG rate requests that froze forward
    /// transmission for two RTTs).
    pub fn urgent_stops(&self) -> u64 {
        self.rate.urgent_stops
    }

    /// Number of receivers currently in the group.
    pub fn member_count(&self) -> usize {
        self.membership.len()
    }

    /// Bytes currently buffered in the send window.
    pub fn buffered_bytes(&self) -> usize {
        self.window.buffered_bytes()
    }

    /// `true` once the stream is closed and every segment released.
    pub fn is_finished(&self) -> bool {
        self.closed && self.window.is_empty() && !self.window.has_unsent()
    }

    /// The recommended driver tick interval (one jiffy).
    pub fn tick_interval(&self) -> Micros {
        JIFFY_US
    }

    /// Absolute time of the next timer this engine needs a tick for, or
    /// `None` when fully idle (a deadline-driven driver may then sleep
    /// until the next `submit`/`handle_packet` call re-arms it).
    ///
    /// While the transfer is in progress — unreleased data in the window,
    /// unsent segments queued, or retransmissions pending — the sender is
    /// jiffy-armed: rate credit accrues per tick and release probes are
    /// re-evaluated every jiffy, so the next deadline is simply `now +
    /// JIFFY_US`. Once the window drains, only the keepalive timer
    /// remains; once finished, nothing does.
    pub fn next_wakeup(&self, now: Micros) -> Option<Micros> {
        if self.is_finished() {
            return None;
        }
        if !self.window.is_empty() || self.window.has_unsent() || !self.retrans_queue.is_empty() {
            return Some(now + JIFFY_US);
        }
        self.last_transmitted
            .map(|_| self.keepalive.next_fire().max(now))
    }

    // ------------------------------------------------------------------
    // Application interface (hrmc_sendmsg)
    // ------------------------------------------------------------------

    /// Hand a slice of the application's stream to the protocol. The data
    /// is fragmented into segments of `segment_size` and queued in the
    /// send window. Returns the number of bytes accepted, which is less
    /// than `data.len()` when the send buffer fills — the application
    /// blocks and retries after [`SenderEvent::SendSpaceAvailable`].
    pub fn submit(&mut self, data: &[u8], _now: Micros) -> usize {
        if self.closed {
            return 0;
        }
        let mut offset = 0;
        while offset < data.len() {
            let take = (data.len() - offset).min(self.config.segment_size);
            let segment = Bytes::copy_from_slice(&data[offset..offset + take]);
            if !self.window.push(segment, false) {
                self.submit_blocked = true;
                break;
            }
            offset += take;
        }
        offset
    }

    /// Close the stream: a zero-length FIN segment is queued after the
    /// data, and the transfer completes once every segment is released.
    pub fn close(&mut self, _now: Micros) {
        if self.closed {
            return;
        }
        self.closed = true;
        // A FIN segment is zero bytes of payload, so it always fits.
        let pushed = self.window.push(Bytes::new(), true);
        debug_assert!(pushed, "zero-length FIN must always fit");
    }

    // ------------------------------------------------------------------
    // Feedback processor (hrmc_master_rcv)
    // ------------------------------------------------------------------

    /// Process a packet that arrived from `from`.
    pub fn handle_packet(&mut self, pkt: &Packet, from: PeerId, now: Micros) {
        match pkt.header.ptype {
            PacketType::Join => self.on_join(pkt, from, now),
            PacketType::Leave => self.on_leave(pkt, from, now),
            PacketType::Nak => self.on_nak(pkt, from, now),
            PacketType::Control => self.on_control(pkt, from, now),
            PacketType::Update => self.on_update(pkt, from, now),
            // Sender-originated types echoed back are ignored.
            _ => {}
        }
    }

    fn on_join(&mut self, pkt: &Packet, from: PeerId, now: Micros) {
        let echoed = pkt.header.seq;
        let is_new = self.membership.get(from).is_none();
        self.membership.add(from, echoed, now);
        self.stats.joins += 1;
        if is_new {
            self.events.push_back(SenderEvent::MemberJoined(from));
            emit!(self, now, Event::PeerJoined { peer: from });
        }
        // RTT sample: the JOIN echoes the data packet that triggered it.
        self.rtt_sample_against_slot(echoed, now);
        self.push_out(
            Dest::Unicast(from),
            self.make_control(PacketType::JoinResponse, echoed),
        );
    }

    fn on_leave(&mut self, pkt: &Packet, from: PeerId, now: Micros) {
        if self.membership.remove(from) {
            self.stats.leaves += 1;
            self.events.push_back(SenderEvent::MemberLeft(from));
            // Restart the keepalive backoff: a departure often precedes a
            // re-JOIN, and a line idling at the 2 s cap would leave the
            // newcomer's loss detection blind for up to that long.
            self.keepalive.on_activity(now);
        }
        self.push_out(
            Dest::Unicast(from),
            self.make_control(PacketType::LeaveResponse, pkt.header.seq),
        );
    }

    fn on_nak(&mut self, pkt: &Packet, from: PeerId, now: Micros) {
        self.stats.naks_received += 1;
        // NAKs piggyback the receiver's next-expected sequence number in
        // the rate-advertisement field (see the Header docs).
        self.membership.update(from, pkt.header.rate_adv, now);
        let first = pkt.header.seq;
        // The span is attacker-controlled: clamp before looping. Honest
        // NAK ranges are bounded far below the cap by the send window.
        let count = pkt.header.length.max(1);
        if count > crate::MAX_CONTROL_SPAN {
            self.stats.malformed_packets += 1;
        }
        let count = count.min(crate::MAX_CONTROL_SPAN);
        // RTT sample only from the *first* NAK for this segment: a repeat
        // NAK measures the age of a still-stuck gap, not a round trip,
        // and absorbing those ages would inflate the estimate without
        // bound (each inflation lengthens MINBUF and any local-recovery
        // hold, keeping the gap stuck even longer).
        if !self.retrans_set.contains(&first) {
            self.rtt_sample_against_slot(first, now);
        }
        let mut released_start: Option<Seq> = None;
        let ready_at = if self.config.local_recovery {
            // Capped: a wild RTT estimate must not park repairs forever.
            now + scale(self.rtt.rtt(), self.config.local_repair_wait_rtts).min(1_000_000)
        } else {
            now
        };
        for i in 0..count {
            let seq = first.wrapping_add(i);
            if self.window.contains(seq) {
                if self.retrans_set.insert(seq) {
                    self.retrans_queue.push_back((seq, ready_at, from));
                }
            } else if self.window.is_released(seq) && released_start.is_none() {
                released_start = Some(seq);
            }
        }
        if let Some(seq) = released_start {
            // In Hybrid mode a release normally required this receiver's
            // own confirmation, so a NAK for released data is usually
            // stale feedback that raced the confirmation — droppable. The
            // exception is the join race: data released while the
            // receiver's JOIN was still in flight was never confirmed by
            // it. The truthful answer in that case (and always in RMC
            // mode) is NAK_ERR: the data is gone.
            let confirmed_by_sender_state = self
                .membership
                .get(from)
                .is_some_and(|m| hrmc_wire::seq_lt(seq, m.next_expected));
            let stale = self.config.mode == ReliabilityMode::Hybrid && confirmed_by_sender_state;
            if !stale {
                let mut err = self.make_control(PacketType::NakErr, seq);
                err.header.length = count;
                self.push_out(Dest::Unicast(from), err);
                self.stats.nak_errs_sent += 1;
                self.events
                    .push_back(SenderEvent::RetransmissionError { peer: from, seq });
            }
        }
        // A NAK signals loss: halve the rate (one congestion event per RTT).
        self.rate.on_congestion(now, self.rtt.rtt(), None);
        self.note_rate_events(now);
    }

    fn on_control(&mut self, pkt: &Packet, from: PeerId, now: Micros) {
        self.stats.rate_requests_received += 1;
        self.membership.update(from, pkt.header.seq, now);
        if pkt.header.flags.urg {
            self.stats.urgent_rate_requests_received += 1;
            self.rate.on_urgent(now, self.rtt.rtt());
        } else {
            let suggested = u64::from(pkt.header.rate_adv);
            self.rate
                .on_congestion(now, self.rtt.rtt(), Some(suggested));
        }
        self.note_rate_events(now);
    }

    fn on_update(&mut self, pkt: &Packet, from: PeerId, now: Micros) {
        self.stats.updates_received += 1;
        self.membership.update(from, pkt.header.seq, now);
        // A nonzero length echoes a probe nonce: an RTT sample.
        let nonce = pkt.header.length;
        if nonce != 0 {
            if let Some(sent) = self.probe_nonces.remove(&nonce) {
                self.rtt.sample(now.saturating_sub(sent), 0);
                emit!(
                    self,
                    now,
                    Event::RttSample {
                        sample_us: now.saturating_sub(sent),
                        srtt_us: self.rtt.rtt(),
                        probe: true,
                    }
                );
            }
        }
    }

    /// Sample the RTT against a segment's transmission timestamp (kept in
    /// a ring that survives buffer release), honoring Karn's rule:
    /// segments transmitted more than once yield no sample.
    fn rtt_sample_against_slot(&mut self, seq: Seq, now: Micros) {
        if let Some((sent, tries)) = self.send_times.get(seq) {
            let karn_tries = if tries == 0 { 0 } else { 1 };
            self.rtt.sample(now.saturating_sub(sent), karn_tries);
            if karn_tries == 0 {
                emit!(
                    self,
                    now,
                    Event::RttSample {
                        sample_us: now.saturating_sub(sent),
                        srtt_us: self.rtt.rtt(),
                        probe: false,
                    }
                );
            }
        }
    }

    /// Report rate-controller transitions to the observer by diffing its
    /// state against the last reported snapshot. Called after every
    /// rate-affecting input (NAK, CONTROL, tick).
    fn note_rate_events(&mut self, now: Micros) {
        if self.observer.is_none() {
            return;
        }
        if self.rate.halvings != self.last_halvings {
            self.last_halvings = self.rate.halvings;
            emit!(
                self,
                now,
                Event::RateHalved {
                    rate_bps: self.rate.rate()
                }
            );
        }
        if self.rate.urgent_stops != self.last_urgent_stops {
            self.last_urgent_stops = self.rate.urgent_stops;
            if let RatePhase::Stopped { until } = self.rate.phase() {
                emit!(self, now, Event::UrgentStopped { until });
            }
        }
        let phase = self.rate.phase();
        if std::mem::discriminant(&phase) != std::mem::discriminant(&self.last_phase) {
            emit!(
                self,
                now,
                Event::RatePhaseChanged {
                    from: self.last_phase,
                    to: phase,
                    rate_bps: self.rate.rate(),
                }
            );
            self.last_phase = phase;
        }
    }

    // ------------------------------------------------------------------
    // Transmitter + Retransmitter + Keepalive (transmit_timer, every jiffy)
    // ------------------------------------------------------------------

    /// Run one transmitter tick at `now`. Drivers call this every jiffy.
    pub fn on_tick(&mut self, now: Micros) {
        let probes_at_entry = self.stats.probes_sent;
        self.rate.on_tick(now, self.rtt.rtt());
        self.note_rate_events(now);
        let allowance = self.rate.budget(now, JIFFY_US);
        let mut spent = 0usize;

        // Retransmissions first: Figure 8 gives the retransmitter
        // priority over new data.
        while spent < allowance {
            match self.retrans_queue.front() {
                Some((_, ready_at, _)) if *ready_at > now => break, // held back
                Some(_) => {}
                None => break,
            }
            let (seq, _, requester) = self.retrans_queue.pop_front().expect("peeked");
            self.retrans_set.remove(&seq);
            // Local recovery: if the requester (or the whole group)
            // confirmed the data while the sender held back, a peer
            // repair won — drop the entry.
            if self.config.local_recovery {
                let requester_has = self
                    .membership
                    .get(requester)
                    .is_some_and(|m| hrmc_wire::seq_lt(seq, m.next_expected));
                if requester_has || self.membership.all_have(seq) {
                    self.stats.retransmissions_cancelled += 1;
                    continue;
                }
            }
            let Some(slot) = self.window.mark_retransmitted(seq, now) else {
                continue; // released or still unsent; nothing to resend
            };
            let mut pkt = Packet::data(self.local_port, self.group_port, slot.seq, slot.payload);
            pkt.header.tries = slot.tries;
            pkt.header.flags.fin = slot.fin;
            pkt.header.rate_adv = self.rate_adv();
            spent += pkt.wire_len();
            self.send_times.record(slot.seq, now, slot.tries);
            self.stats.retransmissions += 1;
            self.keepalive.on_activity(now);
            emit!(
                self,
                now,
                Event::DataSent {
                    seq: pkt.header.seq,
                    bytes: pkt.header.length,
                    retransmission: true,
                }
            );
            self.push_out(Dest::Multicast, pkt);
        }

        // New data from the backlog.
        while spent < allowance && self.window.has_unsent() {
            let Some(slot) = self.window.take_unsent(now) else {
                break;
            };
            let mut pkt = Packet::data(self.local_port, self.group_port, slot.seq, slot.payload);
            pkt.header.tries = slot.tries;
            pkt.header.flags.fin = slot.fin;
            pkt.header.rate_adv = self.rate_adv();
            spent += pkt.wire_len();
            self.send_times.record(slot.seq, now, slot.tries);
            self.stats.data_packets_sent += 1;
            self.stats.data_bytes_sent += pkt.header.length as u64;
            self.last_transmitted = Some(slot.seq);
            self.keepalive.on_activity(now);
            // FEC: fold first transmissions into the parity block; a
            // completed block's parity rides in the same budget.
            let parity = self.fec.as_mut().and_then(|enc| {
                enc.on_data(slot.seq, &pkt.payload, self.local_port, self.group_port)
            });
            emit!(
                self,
                now,
                Event::DataSent {
                    seq: pkt.header.seq,
                    bytes: pkt.header.length,
                    retransmission: false,
                }
            );
            self.push_out(Dest::Multicast, pkt);
            if let Some(mut parity) = parity {
                parity.header.rate_adv = self.rate_adv();
                spent += parity.wire_len();
                self.stats.fec_parities_sent += 1;
                self.push_out(Dest::Multicast, parity);
            }
        }

        if spent < allowance {
            self.rate.refund(allowance - spent, JIFFY_US);
        } else if spent > allowance {
            self.rate.overdraw(spent - allowance);
        }

        self.maybe_eject(now);
        self.try_release(now);
        self.maybe_early_probe(now);
        self.maybe_keepalive(now);
        self.maybe_finish();
        self.prune_nonces(now);

        // Refresh the membership-pressure gauges (all serde-skipped, so
        // serialized stats and fixture hashes are unaffected).
        self.stats.probes_last_tick = self.stats.probes_sent - probes_at_entry;
        let costs = self.membership.costs();
        self.stats.gate_checks = costs.gate_checks;
        self.stats.gate_members_scanned = costs.members_scanned;
        self.stats.membership_heap_pops = costs.heap_lazy_pops;
        self.stats.membership_size = self.membership.len() as u64;
        self.stats.membership_shards = self.membership.shard_count() as u64;
    }

    /// Failure-domain pass: eject members that stopped answering PROBEs
    /// (`probe_failure_limit` consecutive failures) or fell silent past
    /// `member_silence_us`. An ejected member stops gating buffer
    /// release, so one crashed receiver cannot stall the group forever;
    /// reliability toward it is forfeited (it must re-JOIN to resume).
    /// Both knobs default to 0 (disabled) — the published protocol.
    fn maybe_eject(&mut self, now: Micros) {
        if self.config.probe_failure_limit == 0 && self.config.member_silence_us == 0 {
            return;
        }
        let mut victims = self
            .membership
            .probe_failed(self.config.probe_failure_limit);
        for p in self.membership.stale(now, self.config.member_silence_us) {
            if !victims.contains(&p) {
                victims.push(p);
            }
        }
        victims.sort_unstable();
        for peer in victims {
            if self.membership.eject(peer) {
                self.stats.members_ejected += 1;
                self.events.push_back(SenderEvent::MemberEjected(peer));
                emit!(self, now, Event::MemberEjected { peer });
                // Restart the keepalive backoff (same rationale as LEAVE:
                // a restarted receiver's re-JOIN should not meet a line
                // idling at the 2 s cap).
                self.keepalive.on_activity(now);
            }
        }
    }

    /// Attempt to advance the send window (release buffer space). This is
    /// the heart of the Figure 3 experiment: each segment's first
    /// eligibility is counted, and whether the sender already had complete
    /// receiver information decides whether the release proceeds (Hybrid)
    /// or merely whether it was *safe* (RMC).
    fn try_release(&mut self, now: Micros) {
        let mut minbuf = scale(self.rtt.rtt(), self.config.minbuf_rtts as f64);
        // Join race guard: while nobody has joined there is no RTT sample
        // and (in Hybrid mode) the membership gate is vacuous, so hold
        // releases long enough for a high-delay JOIN to arrive (see
        // `ProtocolConfig::anonymous_release_hold`). Both modes need it:
        // the paper's RMC, too, seeds its release clock from JOIN-derived
        // RTT estimates.
        if self.membership.is_empty() {
            minbuf = minbuf.max(self.config.anonymous_release_hold);
        }
        let mut released_any = false;
        #[allow(clippy::while_let_loop)] // two let-else exits; loop reads clearer
        loop {
            let Some(front) = self.window.front() else {
                break;
            };
            let Some(last_sent) = front.last_sent else {
                break;
            };
            if now.saturating_sub(last_sent) < minbuf {
                break; // MINBUF residency not yet met
            }
            let seq = front.seq;
            let complete = self.membership.all_have(seq);
            // Count each segment's first eligibility exactly once.
            let counted = self
                .release_attempt_counted_through
                .is_some_and(|c| seq_le(seq, c));
            if !counted {
                self.stats.release_attempts += 1;
                if complete {
                    self.stats.release_attempts_with_complete_info += 1;
                }
                self.release_attempt_counted_through = Some(seq);
            }
            match self.config.mode {
                ReliabilityMode::RmcNakOnly => {
                    if !complete {
                        self.stats.unsafe_releases += 1;
                    }
                    self.window.release_front();
                    self.stats.segments_released += 1;
                    released_any = true;
                    emit!(
                        self,
                        now,
                        Event::ReleaseAttempt {
                            seq,
                            complete,
                            released: true
                        }
                    );
                }
                ReliabilityMode::Hybrid => {
                    if complete {
                        self.window.release_front();
                        self.stats.segments_released += 1;
                        released_any = true;
                        emit!(
                            self,
                            now,
                            Event::ReleaseAttempt {
                                seq,
                                complete,
                                released: true
                            }
                        );
                    } else {
                        emit!(
                            self,
                            now,
                            Event::ReleaseAttempt {
                                seq,
                                complete,
                                released: false
                            }
                        );
                        // Poll the receivers we lack information from.
                        self.send_probes(seq, now);
                        break;
                    }
                }
            }
        }
        if released_any && self.submit_blocked {
            self.submit_blocked = false;
            self.events.push_back(SenderEvent::SendSpaceAvailable);
        }
    }

    /// Unicast (or multicast, per policy) PROBE packets to the receivers
    /// whose state for `seq` is unknown, rate-limited per receiver.
    ///
    /// The laggard set is collected into a reused scratch buffer (no
    /// per-tick allocation) and, when `probe_batch_limit` is set, unicast
    /// fan-out is capped per tick with a round-robin cursor so successive
    /// ticks sweep the whole set instead of bursting one PROBE per
    /// laggard per jiffy. The multicast-vs-unicast decision is judged on
    /// the *uncapped* laggard count: demand decides the transport, the
    /// cap only paces it.
    fn send_probes(&mut self, seq: Seq, now: Micros) {
        let retry = scale(self.rtt.rtt(), self.config.probe_retry_rtts).max(JIFFY_US);
        let mut lacking = std::mem::take(&mut self.probe_scratch);
        self.membership.lacking_into(seq, &mut lacking);
        lacking.retain(|p| {
            self.membership
                .get(*p)
                .and_then(|m| m.last_probed)
                .is_none_or(|t| now.saturating_sub(t) >= retry)
        });
        if lacking.is_empty() {
            self.probe_scratch = lacking;
            return;
        }
        let multicast = match self.config.probe_transport {
            ProbeTransport::Unicast => false,
            ProbeTransport::MulticastAbove(n) => lacking.len() > n,
        };
        if multicast {
            let pkt = self.make_probe(seq, now);
            self.stats.probes_sent += 1;
            for p in &lacking {
                self.membership.mark_probed(*p, now);
            }
            emit!(
                self,
                now,
                Event::ProbeSent {
                    seq,
                    multicast: true
                }
            );
            self.push_out(Dest::Multicast, pkt);
        } else {
            let total = lacking.len();
            let limit = self.config.probe_batch_limit as usize;
            let (start, count) = if limit == 0 || total <= limit {
                (0, total)
            } else {
                (self.probe_rr_cursor % total, limit)
            };
            for i in 0..count {
                let p = lacking[(start + i) % total];
                let pkt = self.make_probe(seq, now);
                self.stats.probes_sent += 1;
                self.membership.mark_probed(p, now);
                emit!(
                    self,
                    now,
                    Event::ProbeSent {
                        seq,
                        multicast: false
                    }
                );
                self.push_out(Dest::Unicast(p), pkt);
            }
            if count < total {
                self.probe_rr_cursor = (start + count) % total;
                self.stats.probes_deferred_by_batch += (total - count) as u64;
            }
        }
        self.probe_scratch = lacking;
    }

    /// Early-probe optimization (paper future-work item 1): probe lacking
    /// receivers `lead_rtts` before the front segment becomes
    /// release-eligible, so the stop-and-wait stall disappears.
    fn maybe_early_probe(&mut self, now: Micros) {
        let ProbePolicy::Early { lead_rtts } = self.config.probe_policy else {
            return;
        };
        if self.config.mode != ReliabilityMode::Hybrid {
            return;
        }
        let Some(front) = self.window.front() else {
            return;
        };
        let Some(last_sent) = front.last_sent else {
            return;
        };
        let seq = front.seq;
        let eligible_at = last_sent + scale(self.rtt.rtt(), self.config.minbuf_rtts as f64);
        let lead = scale(self.rtt.rtt(), lead_rtts as f64);
        if now + lead >= eligible_at && !self.membership.all_have(seq) {
            self.send_probes(seq, now);
        }
    }

    fn maybe_keepalive(&mut self, now: Micros) {
        // No keepalives before anything was transmitted.
        let Some(last) = self.last_transmitted else {
            return;
        };
        if self.is_finished() {
            return;
        }
        if self.keepalive.poll(now) {
            let pkt = self.make_control(PacketType::Keepalive, last);
            self.stats.keepalives_sent += 1;
            emit!(
                self,
                now,
                Event::KeepaliveSent {
                    backoff_us: self.keepalive.delay()
                }
            );
            self.push_out(Dest::Multicast, pkt);
        }
    }

    fn maybe_finish(&mut self) {
        if self.is_finished() && !self.transfer_complete_emitted {
            self.transfer_complete_emitted = true;
            self.events.push_back(SenderEvent::TransferComplete);
        }
    }

    fn prune_nonces(&mut self, now: Micros) {
        if self.probe_nonces.len() < 1024 {
            return;
        }
        let ttl = scale(self.rtt.rtt(), NONCE_TTL_RTTS);
        self.probe_nonces
            .retain(|_, sent| now.saturating_sub(*sent) < ttl);
    }

    // ------------------------------------------------------------------
    // Packet construction and output
    // ------------------------------------------------------------------

    fn rate_adv(&self) -> u32 {
        self.rate.rate().min(u64::from(u32::MAX)) as u32
    }

    fn make_control(&self, ptype: PacketType, seq: Seq) -> Packet {
        let mut pkt = Packet::control(ptype, self.local_port, self.group_port, seq);
        pkt.header.rate_adv = self.rate_adv();
        pkt
    }

    fn make_probe(&mut self, seq: Seq, now: Micros) -> Packet {
        let nonce = self.next_nonce;
        self.next_nonce = self.next_nonce.wrapping_add(1).max(1);
        self.probe_nonces.insert(nonce, now);
        let mut pkt = self.make_control(PacketType::Probe, seq);
        pkt.header.length = nonce;
        pkt
    }

    fn push_out(&mut self, dest: Dest, packet: Packet) {
        self.out.push_back(Outgoing { dest, packet });
    }

    /// Drain one outgoing packet, if any.
    pub fn poll_output(&mut self) -> Option<Outgoing> {
        self.out.pop_front()
    }

    /// Drain one application event, if any.
    pub fn poll_event(&mut self) -> Option<SenderEvent> {
        self.events.pop_front()
    }

    /// Read-only view of the membership table (for instrumentation).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Publish membership-pressure gauges into `reg` — the continuous-
    /// telemetry hook. Drivers call this while gathering a sample so
    /// `hrmc top` and `/metrics` show group size, shard count, and what
    /// the release gate's scans actually cost.
    pub fn publish_metrics(&self, reg: &mut crate::metrics::MetricsRegistry) {
        let costs = self.membership.costs();
        reg.set_gauge("membership_size", self.membership.len() as u64);
        reg.set_gauge("membership_shards", self.membership.shard_count() as u64);
        reg.set_gauge("membership_gate_checks", costs.gate_checks);
        reg.set_gauge("membership_gate_members_scanned", costs.members_scanned);
        reg.set_gauge("membership_heap_lazy_pops", costs.heap_lazy_pops);
        reg.set_gauge("probes_last_tick", self.stats.probes_last_tick);
        reg.set_gauge(
            "probes_deferred_by_batch",
            self.stats.probes_deferred_by_batch,
        );
    }

    /// Record an incoming datagram discarded for checksum failure. The
    /// driver decodes (and checksum-verifies) before the engine ever
    /// sees a packet, so it reports the failure here for stats/events.
    pub fn note_checksum_failure(&mut self, now: Micros) {
        self.stats.checksum_failures += 1;
        emit!(self, now, Event::ChecksumFailed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: PeerId = PeerId(1);

    fn engine(mode: ReliabilityMode) -> SenderEngine {
        let config = match mode {
            ReliabilityMode::Hybrid => ProtocolConfig::hrmc(),
            ReliabilityMode::RmcNakOnly => ProtocolConfig::rmc(),
        }
        .with_buffer(64 * 1024);
        SenderEngine::new(config, 7000, 7001, 0, 0)
    }

    fn drain(s: &mut SenderEngine) -> Vec<Outgoing> {
        std::iter::from_fn(|| s.poll_output()).collect()
    }

    fn join(s: &mut SenderEngine, peer: PeerId, echoed: Seq, now: Micros) {
        let pkt = Packet::control(PacketType::Join, 9, 7000, echoed);
        s.handle_packet(&pkt, peer, now);
    }

    fn update(s: &mut SenderEngine, peer: PeerId, next_expected: Seq, now: Micros) {
        let pkt = Packet::control(PacketType::Update, 9, 7000, next_expected);
        s.handle_packet(&pkt, peer, now);
    }

    /// Drive ticks until `deadline`, draining output.
    fn run_until(s: &mut SenderEngine, from: Micros, deadline: Micros) -> Vec<Outgoing> {
        let mut all = Vec::new();
        let mut t = from;
        while t <= deadline {
            s.on_tick(t);
            all.extend(drain(s));
            t += JIFFY_US;
        }
        all
    }

    #[test]
    fn next_wakeup_idle_active_keepalive_finished() {
        let mut s = engine(ReliabilityMode::Hybrid);
        // Nothing queued and nothing ever sent: fully idle.
        assert_eq!(s.next_wakeup(0), None);
        // Unsent data: jiffy-armed.
        s.submit(&vec![7u8; 3000], 0);
        assert_eq!(s.next_wakeup(0), Some(JIFFY_US));
        // With no members the segments sit out the 2 s anonymous release
        // hold, then drain. After that only the keepalive timer remains,
        // and the reported deadline is never in the past.
        let _ = run_until(&mut s, 0, 3_000_000);
        assert_eq!(s.buffered_bytes(), 0);
        let t = s.next_wakeup(3_000_000).expect("keepalive stays armed");
        assert!(t >= 3_000_000);
        // Closing queues the FIN segment: jiffy-armed again.
        s.close(3_010_000);
        assert_eq!(s.next_wakeup(3_010_000), Some(3_010_000 + JIFFY_US));
        let _ = run_until(&mut s, 3_010_000, 6_000_000);
        assert!(s.is_finished());
        assert_eq!(s.next_wakeup(6_000_000), None);
    }

    #[test]
    fn submit_fragments_into_segments() {
        let mut s = engine(ReliabilityMode::Hybrid);
        let n = s.submit(&vec![7u8; 3000], 0);
        assert_eq!(n, 3000);
        // 1400 + 1400 + 200.
        assert_eq!(s.buffered_bytes(), 3000);
        let sent = run_until(&mut s, 0, 500_000);
        let data: Vec<_> = sent
            .iter()
            .filter(|o| o.packet.header.ptype == PacketType::Data)
            .collect();
        assert_eq!(data.len(), 3);
        assert_eq!(data[0].packet.header.seq, 0);
        assert_eq!(data[0].packet.payload.len(), 1400);
        assert_eq!(data[2].packet.payload.len(), 200);
        assert!(data.iter().all(|o| o.dest == Dest::Multicast));
        assert_eq!(s.stats.data_packets_sent, 3);
    }

    #[test]
    fn submit_blocks_at_sndbuf() {
        let mut s = engine(ReliabilityMode::Hybrid);
        let big = vec![0u8; 128 * 1024];
        let n = s.submit(&big, 0);
        assert!(n < big.len());
        assert!(n >= 64 * 1024 - 1400);
        assert_eq!(s.submit(&big, 0), 0); // still blocked
    }

    #[test]
    fn rate_limits_transmission_per_tick() {
        let mut s = engine(ReliabilityMode::Hybrid);
        s.submit(&vec![0u8; 60_000], 0);
        // min_rate = 64 KiB/s → ~655 bytes per 10 ms jiffy: one segment
        // roughly every other tick at the start.
        s.on_tick(JIFFY_US);
        let first = drain(&mut s).len();
        assert!(first <= 1, "sent {first} packets in one minimum-rate tick");
    }

    #[test]
    fn join_creates_member_and_responds() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 1000);
        assert_eq!(s.member_count(), 1);
        let out = drain(&mut s);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.header.ptype, PacketType::JoinResponse);
        assert_eq!(out[0].dest, Dest::Unicast(P1));
        assert_eq!(s.poll_event(), Some(SenderEvent::MemberJoined(P1)));
    }

    #[test]
    fn leave_removes_member_and_responds() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 1000);
        drain(&mut s);
        let _ = s.poll_event();
        let pkt = Packet::control(PacketType::Leave, 9, 7000, 5);
        s.handle_packet(&pkt, P1, 2000);
        assert_eq!(s.member_count(), 0);
        let out = drain(&mut s);
        assert_eq!(out[0].packet.header.ptype, PacketType::LeaveResponse);
        assert_eq!(s.poll_event(), Some(SenderEvent::MemberLeft(P1)));
    }

    #[test]
    fn nak_triggers_retransmission_with_tries() {
        let mut s = engine(ReliabilityMode::Hybrid);
        // Join first so the membership gate keeps the segments buffered.
        join(&mut s, P1, 0, 0);
        s.submit(&vec![0u8; 2800], 0);
        run_until(&mut s, 0, 300_000);
        assert_eq!(s.stats.data_packets_sent, 2);
        // NAK for seq 0 (rate_adv piggybacks rcv_nxt = 0).
        let mut nak = Packet::control(PacketType::Nak, 9, 7000, 0);
        nak.header.length = 1;
        nak.header.rate_adv = 0;
        s.handle_packet(&nak, P1, 310_000);
        let out = run_until(&mut s, 310_000, 400_000);
        let retrans: Vec<_> = out
            .iter()
            .filter(|o| o.packet.header.ptype == PacketType::Data && o.packet.header.seq == 0)
            .collect();
        assert_eq!(retrans.len(), 1);
        assert_eq!(retrans[0].packet.header.tries, 1);
        assert_eq!(s.stats.retransmissions, 1);
        assert_eq!(s.stats.naks_received, 1);
    }

    #[test]
    fn duplicate_naks_queue_one_retransmission() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 0);
        s.submit(&vec![0u8; 1400], 0);
        run_until(&mut s, 0, 200_000);
        let mut nak = Packet::control(PacketType::Nak, 9, 7000, 0);
        nak.header.length = 1;
        s.handle_packet(&nak, P1, 210_000);
        s.handle_packet(&nak, P1, 210_500);
        let out = run_until(&mut s, 220_000, 400_000);
        let retrans = out
            .iter()
            .filter(|o| o.packet.header.ptype == PacketType::Data)
            .count();
        assert_eq!(retrans, 1);
    }

    #[test]
    fn nak_halves_rate_once_per_rtt() {
        let mut s = engine(ReliabilityMode::Hybrid);
        s.submit(&vec![0u8; 1400], 0);
        run_until(&mut s, 0, 1_000_000);
        let before = s.rate();
        let mut nak = Packet::control(PacketType::Nak, 9, 7000, 0);
        nak.header.length = 1;
        s.handle_packet(&nak, P1, 1_000_000);
        s.handle_packet(&nak, P1, 1_000_100);
        assert_eq!(s.rate(), before / 2);
    }

    #[test]
    fn urgent_control_stops_transmission() {
        let mut s = engine(ReliabilityMode::Hybrid);
        s.submit(&vec![0u8; 60_000], 0);
        run_until(&mut s, 0, 200_000);
        let mut ctl = Packet::control(PacketType::Control, 9, 7000, 0);
        ctl.header.flags.urg = true;
        s.handle_packet(&ctl, P1, 200_000);
        assert_eq!(s.stats.urgent_rate_requests_received, 1);
        // Refill the window (slow start drained the first batch long ago).
        s.submit(&vec![0u8; 20_000], 200_000);
        // No data for the next two RTTs (rtt default 10 ms → 20 ms).
        s.on_tick(205_000);
        s.on_tick(215_000);
        let during: Vec<_> = drain(&mut s)
            .into_iter()
            .filter(|o| o.packet.header.ptype == PacketType::Data)
            .collect();
        assert!(during.is_empty(), "data sent during urgent stop");
        // Transmission resumes afterwards, from the minimum rate.
        let after = run_until(&mut s, 230_000, 500_000);
        assert!(after
            .iter()
            .any(|o| o.packet.header.ptype == PacketType::Data));
        assert_eq!(s.stats.rate_requests_received, 1);
    }

    #[test]
    fn hybrid_release_waits_for_confirmation_and_probes() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 0);
        drain(&mut s);
        s.submit(&vec![0u8; 1400], 0);
        // Transmit, then run well past MINBUF × RTT (10 × 10 ms = 100 ms).
        let out = run_until(&mut s, 0, 400_000);
        assert_eq!(s.stats.segments_released, 0, "released unconfirmed data");
        let probes: Vec<_> = out
            .iter()
            .filter(|o| o.packet.header.ptype == PacketType::Probe)
            .collect();
        assert!(!probes.is_empty(), "no probes for the lacking receiver");
        assert!(probes.iter().all(|o| o.dest == Dest::Unicast(P1)));
        // The UPDATE confirming receipt unblocks the release.
        update(&mut s, P1, 1, 400_000);
        run_until(&mut s, 400_000, 450_000);
        assert_eq!(s.stats.segments_released, 1);
        assert_eq!(s.stats.unsafe_releases, 0);
    }

    #[test]
    fn rmc_releases_unconditionally_and_nak_errs() {
        let mut s = engine(ReliabilityMode::RmcNakOnly);
        join(&mut s, P1, 0, 0);
        drain(&mut s);
        s.submit(&vec![0u8; 1400], 0);
        let out = run_until(&mut s, 0, 400_000);
        assert_eq!(s.stats.segments_released, 1);
        assert_eq!(s.stats.unsafe_releases, 1);
        assert!(
            !out.iter()
                .any(|o| o.packet.header.ptype == PacketType::Probe),
            "RMC must not probe"
        );
        // A late NAK for the released segment gets NAK_ERR.
        let mut nak = Packet::control(PacketType::Nak, 9, 7000, 0);
        nak.header.length = 1;
        s.handle_packet(&nak, P1, 500_000);
        let out = drain(&mut s);
        assert!(out
            .iter()
            .any(|o| o.packet.header.ptype == PacketType::NakErr));
        assert!(matches!(
            std::iter::from_fn(|| s.poll_event())
                .find(|e| matches!(e, SenderEvent::RetransmissionError { .. })),
            Some(SenderEvent::RetransmissionError { peer: P1, seq: 0 })
        ));
    }

    #[test]
    fn hybrid_ignores_stale_nak_for_released_data() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 0);
        s.submit(&vec![0u8; 1400], 0);
        run_until(&mut s, 0, 150_000);
        update(&mut s, P1, 1, 150_000);
        run_until(&mut s, 150_000, 300_000);
        assert_eq!(s.stats.segments_released, 1);
        let mut nak = Packet::control(PacketType::Nak, 9, 7000, 0);
        nak.header.length = 1;
        s.handle_packet(&nak, P1, 310_000);
        let out = drain(&mut s);
        assert!(!out
            .iter()
            .any(|o| o.packet.header.ptype == PacketType::NakErr));
        assert_eq!(s.stats.nak_errs_sent, 0);
    }

    #[test]
    fn release_attempt_counted_once_per_segment() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 0);
        s.submit(&vec![0u8; 1400], 0);
        // Many ticks past eligibility: still one attempt counted.
        run_until(&mut s, 0, 800_000);
        assert_eq!(s.stats.release_attempts, 1);
        assert_eq!(s.stats.release_attempts_with_complete_info, 0);
        update(&mut s, P1, 1, 800_000);
        run_until(&mut s, 800_000, 900_000);
        assert_eq!(s.stats.release_attempts, 1);
        assert_eq!(s.complete_info_ratio_test(), 0.0);
    }

    #[test]
    fn keepalive_fires_when_idle_with_backoff() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 0);
        s.submit(&vec![0u8; 1400], 0);
        update(&mut s, P1, 1, 0);
        let out = run_until(&mut s, 0, 10_000_000);
        let kas: Vec<&Outgoing> = out
            .iter()
            .filter(|o| o.packet.header.ptype == PacketType::Keepalive)
            .collect();
        assert!(kas.len() >= 3, "got {} keepalives", kas.len());
        assert!(kas
            .iter()
            .all(|o| o.packet.header.seq == 0 && o.dest == Dest::Multicast));
        // Backoff: inter-keepalive spacing must reach but not exceed 2 s.
        assert!(s.stats.keepalives_sent as usize == kas.len());
        assert!(kas.len() <= 10, "backoff failed: {} keepalives", kas.len());
    }

    #[test]
    fn transfer_completes_after_close_and_confirmation() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 0);
        s.submit(&vec![0u8; 1400], 0);
        s.close(0);
        assert!(!s.is_finished());
        let out = run_until(&mut s, 0, 200_000);
        // FIN segment (seq 1, empty) transmitted with the FIN flag.
        assert!(out.iter().any(|o| {
            o.packet.header.ptype == PacketType::Data
                && o.packet.header.seq == 1
                && o.packet.header.flags.fin
        }));
        update(&mut s, P1, 2, 200_000); // receiver confirms both segments
        run_until(&mut s, 200_000, 400_000);
        assert!(s.is_finished());
        assert!(std::iter::from_fn(|| s.poll_event()).any(|e| e == SenderEvent::TransferComplete));
    }

    #[test]
    fn multicast_probe_above_threshold() {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.probe_transport = ProbeTransport::MulticastAbove(2);
        let mut s = SenderEngine::new(cfg, 7000, 7001, 0, 0);
        for p in 1..=4u32 {
            join(&mut s, PeerId(p), 0, 0);
        }
        drain(&mut s);
        s.submit(&vec![0u8; 1400], 0);
        let out = run_until(&mut s, 0, 300_000);
        let probes: Vec<_> = out
            .iter()
            .filter(|o| o.packet.header.ptype == PacketType::Probe)
            .collect();
        assert!(!probes.is_empty());
        assert!(
            probes.iter().all(|o| o.dest == Dest::Multicast),
            "4 lacking receivers > threshold 2 must multicast the probe"
        );
    }

    #[test]
    fn probe_batch_limit_paces_fanout_round_robin() {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.probe_batch_limit = 2;
        let mut s = SenderEngine::new(cfg, 7000, 7001, 0, 0);
        let peers: Vec<PeerId> = (1..=5u32).map(PeerId).collect();
        for &p in &peers {
            join(&mut s, p, 0, 0);
        }
        drain(&mut s);
        s.submit(&vec![0u8; 1400], 0);
        // Drive tick by tick: no tick may exceed the cap, yet the
        // round-robin cursor must reach every laggard.
        let mut probed: HashSet<PeerId> = HashSet::new();
        let mut t = 0;
        while t <= 400_000 {
            s.on_tick(t);
            let probes: Vec<PeerId> = drain(&mut s)
                .into_iter()
                .filter(|o| o.packet.header.ptype == PacketType::Probe)
                .filter_map(|o| match o.dest {
                    Dest::Unicast(p) => Some(p),
                    _ => None,
                })
                .collect();
            assert!(
                probes.len() <= 2,
                "tick at {t} emitted {} probes past the cap",
                probes.len()
            );
            assert_eq!(s.stats.probes_last_tick, probes.len() as u64);
            probed.extend(probes);
            t += JIFFY_US;
        }
        assert_eq!(
            probed.len(),
            peers.len(),
            "round-robin never reached some laggards: {probed:?}"
        );
        assert!(s.stats.probes_deferred_by_batch > 0);
        assert_eq!(s.stats.segments_released, 0);
    }

    #[test]
    fn probe_batch_cap_does_not_defeat_multicast_threshold() {
        // The multicast decision sees all 4 laggards even though the cap
        // would allow only one unicast probe per tick: demand picks the
        // transport, the cap only paces unicast fan-out.
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.probe_transport = ProbeTransport::MulticastAbove(2);
        cfg.probe_batch_limit = 1;
        let mut s = SenderEngine::new(cfg, 7000, 7001, 0, 0);
        for p in 1..=4u32 {
            join(&mut s, PeerId(p), 0, 0);
        }
        drain(&mut s);
        s.submit(&vec![0u8; 1400], 0);
        let out = run_until(&mut s, 0, 300_000);
        let probes: Vec<_> = out
            .iter()
            .filter(|o| o.packet.header.ptype == PacketType::Probe)
            .collect();
        assert!(!probes.is_empty());
        assert!(probes.iter().all(|o| o.dest == Dest::Multicast));
        assert_eq!(s.stats.probes_deferred_by_batch, 0);
    }

    #[test]
    fn early_probe_fires_before_eligibility() {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.probe_policy = ProbePolicy::Early { lead_rtts: 4 };
        let mut s = SenderEngine::new(cfg, 7000, 7001, 0, 0);
        join(&mut s, P1, 0, 0);
        drain(&mut s);
        s.submit(&vec![0u8; 1400], 0);
        // Eligibility at first_sent + 10 RTTs ≈ 100 ms; early probe must
        // appear by ~6 RTTs ≈ 60 ms + transmission time.
        let out = run_until(&mut s, 0, 80_000);
        assert!(
            out.iter()
                .any(|o| o.packet.header.ptype == PacketType::Probe),
            "no early probe before release eligibility"
        );
        assert_eq!(s.stats.segments_released, 0);
    }

    #[test]
    fn update_with_nonce_samples_rtt() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 0);
        s.submit(&vec![0u8; 1400], 0);
        let out = run_until(&mut s, 0, 300_000);
        let probe = out
            .iter()
            .find(|o| o.packet.header.ptype == PacketType::Probe)
            .expect("probe");
        let nonce = probe.packet.header.length;
        assert_ne!(nonce, 0);
        let before_samples = s.rtt.samples_taken();
        let mut upd = Packet::control(PacketType::Update, 9, 7000, 1);
        upd.header.length = nonce;
        s.handle_packet(&upd, P1, 305_000);
        assert_eq!(s.rtt.samples_taken(), before_samples + 1);
    }

    #[test]
    fn send_space_event_after_blocked_submit() {
        let mut s = engine(ReliabilityMode::RmcNakOnly);
        let n = s.submit(&vec![0u8; 128 * 1024], 0);
        assert!(n < 128 * 1024);
        // No members: the anonymous-release hold (2 s) applies first.
        run_until(&mut s, 0, 6_000_000);
        assert!(s.stats.segments_released > 0);
        assert!(std::iter::from_fn(|| s.poll_event()).any(|e| e == SenderEvent::SendSpaceAvailable));
    }

    #[test]
    fn keepalive_backoff_resets_on_leave() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 0);
        s.submit(&vec![0u8; 1400], 0);
        update(&mut s, P1, 1, 0);
        // Idle long enough for the backoff to reach the 2 s cap.
        run_until(&mut s, 0, 10_000_000);
        assert_eq!(s.keepalive.delay(), s.config.keepalive_max);
        let pkt = Packet::control(PacketType::Leave, 9, 7000, 0);
        s.handle_packet(&pkt, P1, 10_000_000);
        assert_eq!(
            s.keepalive.delay(),
            s.config.keepalive_initial,
            "a re-JOIN after this LEAVE must not inherit the capped backoff"
        );
    }

    #[test]
    fn unanswered_probes_eject_member_and_unblock_release() {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.probe_failure_limit = 3;
        let mut s = SenderEngine::new(cfg, 7000, 7001, 0, 0);
        join(&mut s, P1, 0, 0);
        join(&mut s, PeerId(2), 0, 0);
        s.submit(&vec![0u8; 1400], 0);
        update(&mut s, P1, 1, 0); // P1 confirms; PeerId(2) goes silent
        run_until(&mut s, 0, 1_000_000);
        assert_eq!(s.stats.members_ejected, 1);
        assert_eq!(s.member_count(), 1);
        assert!(std::iter::from_fn(|| s.poll_event())
            .any(|e| e == SenderEvent::MemberEjected(PeerId(2))));
        assert_eq!(
            s.stats.segments_released, 1,
            "ejection must unblock the release gate"
        );
        // Keepalive backoff restarted at ejection time.
        assert!(s.keepalive.delay() < s.config.keepalive_max);
    }

    #[test]
    fn silence_deadline_ejects_caught_up_member() {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.member_silence_us = 1_000_000;
        let mut s = SenderEngine::new(cfg, 7000, 7001, 0, 0);
        join(&mut s, P1, 0, 0);
        // Fully caught up (nothing submitted): no probes are ever owed,
        // so only the silence deadline can notice the death.
        run_until(&mut s, 0, 500_000);
        assert_eq!(s.member_count(), 1);
        run_until(&mut s, 500_000, 1_200_000);
        assert_eq!(s.member_count(), 0);
        assert_eq!(s.stats.members_ejected, 1);
    }

    #[test]
    fn checksum_failures_are_counted() {
        let mut s = engine(ReliabilityMode::Hybrid);
        s.note_checksum_failure(100);
        s.note_checksum_failure(200);
        assert_eq!(s.stats.checksum_failures, 2);
    }

    #[test]
    fn hostile_nak_span_is_clamped_and_counted() {
        let mut s = engine(ReliabilityMode::Hybrid);
        join(&mut s, P1, 0, 0);
        s.submit(&[7u8; 4096], 0);
        let _ = run_until(&mut s, 0, 50_000);
        // A forged NAK naming a 2^32-sequence gap: the honest window is
        // a few segments, so the span must be clamped and audited, and
        // handling it must not buy the attacker four billion loop turns
        // (the test would time out if it did).
        let mut nak = Packet::control(PacketType::Nak, 9, 7000, 0);
        nak.header.length = u32::MAX;
        s.handle_packet(&nak, P1, 60_000);
        assert_eq!(s.stats.malformed_packets, 1);
        // Retransmissions stay bounded by what the window actually
        // holds; the forged span buys nothing extra.
        let retrans_queued = s.retrans_queue.len();
        assert!(
            retrans_queued <= s.config.sndbuf_segments(),
            "forged NAK inflated the retransmission queue: {retrans_queued}"
        );
        // An honest in-window NAK is NOT flagged.
        let mut honest = Packet::control(PacketType::Nak, 9, 7000, 0);
        honest.header.length = 2;
        s.handle_packet(&honest, P1, 70_000);
        assert_eq!(s.stats.malformed_packets, 1);
    }

    impl SenderEngine {
        fn complete_info_ratio_test(&self) -> f64 {
            self.stats.complete_info_ratio()
        }
    }
}
