//! The receiver's update generator (paper §3 "Periodic Updates" /
//! "Dynamic Update Timers" and §4.3).
//!
//! "Every update period, which is initially set at 50 jiffies, the update
//! generator ... send\[s\] an UPDATE packet to the sender. The period of
//! the update generator is varied depending on whether any probes are
//! received in an update period. If probes are received, the update
//! period is reduced by one jiffy, otherwise it increases it by one
//! jiffy. In this manner, the update generator tries to find an optimal
//! period at which a minimum number of probes are sent to the receiver."
//!
//! Intuition for the direction of adaptation: a PROBE means the sender
//! lacked information about this receiver — updates were too sparse — so
//! the period shrinks; a probe-free period means the updates (or the
//! NAK/rate-request traffic of a lossy path) already suffice, so the
//! period stretches, shedding reverse traffic.

use crate::config::UpdateMode;
use crate::time::{jiffies, Micros, JIFFY_US};

/// Adaptive update timer.
#[derive(Debug, Clone)]
pub struct UpdateGenerator {
    mode: UpdateMode,
    /// Current period in jiffies.
    period_jiffies: u64,
    min_jiffies: u64,
    max_jiffies: u64,
    /// Next firing time.
    next_fire: Micros,
    /// PROBEs seen since the last firing.
    probes_this_period: u32,
    /// Total updates fired (stat).
    pub updates_fired: u64,
}

impl UpdateGenerator {
    /// Create a generator; the first update fires one period after `now`.
    pub fn new(
        mode: UpdateMode,
        initial_jiffies: u64,
        min_jiffies: u64,
        max_jiffies: u64,
        now: Micros,
    ) -> UpdateGenerator {
        let period_jiffies = match mode {
            UpdateMode::Dynamic => initial_jiffies,
            UpdateMode::Fixed(j) => j,
            UpdateMode::Disabled => initial_jiffies,
        }
        .clamp(min_jiffies, max_jiffies);
        UpdateGenerator {
            mode,
            period_jiffies,
            min_jiffies,
            max_jiffies,
            next_fire: now + jiffies(period_jiffies),
            probes_this_period: 0,
            updates_fired: 0,
        }
    }

    /// Current period in jiffies.
    pub fn period_jiffies(&self) -> u64 {
        self.period_jiffies
    }

    /// Current period in microseconds.
    pub fn period(&self) -> Micros {
        self.period_jiffies * JIFFY_US
    }

    /// Record an incoming PROBE (drives the adaptation).
    pub fn on_probe(&mut self) {
        self.probes_this_period += 1;
    }

    /// Poll the timer. Returns `true` when an UPDATE should be sent now;
    /// firing also adapts the period (Dynamic mode) and re-arms.
    pub fn poll(&mut self, now: Micros) -> bool {
        if self.mode == UpdateMode::Disabled || now < self.next_fire {
            return false;
        }
        if self.mode == UpdateMode::Dynamic {
            if self.probes_this_period > 0 {
                self.period_jiffies = self.period_jiffies.saturating_sub(1);
            } else {
                self.period_jiffies += 1;
            }
            self.period_jiffies = self
                .period_jiffies
                .clamp(self.min_jiffies, self.max_jiffies);
        }
        self.probes_this_period = 0;
        self.next_fire = now + jiffies(self.period_jiffies);
        self.updates_fired += 1;
        true
    }

    /// Time of the next firing (for driver scheduling).
    pub fn next_fire(&self) -> Micros {
        self.next_fire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dynamic(now: Micros) -> UpdateGenerator {
        UpdateGenerator::new(UpdateMode::Dynamic, 50, 2, 500, now)
    }

    #[test]
    fn initial_period_is_fifty_jiffies() {
        let g = dynamic(0);
        assert_eq!(g.period_jiffies(), 50);
        assert_eq!(g.period(), 500_000); // 0.5 s
        assert_eq!(g.next_fire(), 500_000);
    }

    #[test]
    fn fires_once_per_period() {
        let mut g = dynamic(0);
        assert!(!g.poll(499_999));
        assert!(g.poll(500_000));
        assert!(!g.poll(500_001));
        assert_eq!(g.updates_fired, 1);
    }

    #[test]
    fn probe_free_period_grows_by_one_jiffy() {
        let mut g = dynamic(0);
        assert!(g.poll(500_000));
        assert_eq!(g.period_jiffies(), 51);
    }

    #[test]
    fn probed_period_shrinks_by_one_jiffy() {
        let mut g = dynamic(0);
        g.on_probe();
        assert!(g.poll(500_000));
        assert_eq!(g.period_jiffies(), 49);
        // The probe counter resets per period.
        assert!(g.poll(500_000 + g.period()));
        assert_eq!(g.period_jiffies(), 50);
    }

    #[test]
    fn period_clamped_at_bounds() {
        let mut g = UpdateGenerator::new(UpdateMode::Dynamic, 3, 2, 500, 0);
        for _ in 0..10 {
            g.on_probe();
            let now = g.next_fire();
            assert!(g.poll(now));
        }
        assert_eq!(g.period_jiffies(), 2); // clamped at min

        let mut g = UpdateGenerator::new(UpdateMode::Dynamic, 499, 2, 500, 0);
        for _ in 0..10 {
            let now = g.next_fire();
            assert!(g.poll(now));
        }
        assert_eq!(g.period_jiffies(), 500); // clamped at max
    }

    #[test]
    fn fixed_mode_never_adapts() {
        let mut g = UpdateGenerator::new(UpdateMode::Fixed(50), 999, 2, 500, 0);
        g.on_probe();
        assert!(g.poll(500_000));
        assert_eq!(g.period_jiffies(), 50);
        assert!(g.poll(1_000_000));
        assert_eq!(g.period_jiffies(), 50);
    }

    #[test]
    fn disabled_mode_never_fires() {
        let mut g = UpdateGenerator::new(UpdateMode::Disabled, 50, 2, 500, 0);
        g.on_probe();
        assert!(!g.poll(u64::MAX));
        assert_eq!(g.updates_fired, 0);
    }
}
