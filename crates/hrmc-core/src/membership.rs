//! Group membership state at the sender (paper §3, Membership
//! Maintenance).
//!
//! "In H-RMC, group membership is maintained in the form of a doubly
//! linked list as well as a hashed list of all the receivers. The space
//! required is minimal: for each receiver, the sender keeps its (unicast)
//! IP address and the sequence number that the receiver is expecting
//! next."
//!
//! The kernel's linked-list-plus-hash idiom collapsed to a single
//! `HashMap` in the first cut of this crate; that is faithful to the
//! paper but O(n) for every release-gate check and PROBE-target scan,
//! which the sender runs several times per jiffy. At the paper's 1–30
//! receivers that is noise; at the ROADMAP's 10⁵–10⁶ it is the first
//! scaling wall. This version keeps the flat per-peer record table but
//! adds a sequence-bucketed index over it:
//!
//! * **Shards.** Members are bucketed by the high bits of their
//!   `next_expected` (`seq >> SHARD_SHIFT`). All members of a shard share
//!   those high bits exactly, so ordering *within* a shard is plain
//!   integer order on the low bits — no serial-number arithmetic needed —
//!   and each shard keeps an exact multiset of its members' low bits in a
//!   `BTreeMap`, making the shard minimum an O(log) lookup under every
//!   mutation. Receivers cluster inside the sender's active window, so
//!   the live shard count stays proportional to the window span (a few
//!   dozen), not the receiver count.
//! * **Release-gate heap.** A lazy-deletion min-heap (the same idiom as
//!   the reactor's deadline heap) over per-shard minima. Every time a
//!   shard's minimum changes, a fresh entry is pushed; stale entries are
//!   discarded when they surface at the top. `all_have` and
//!   `min_next_expected` are therefore heap-peeks — amortized O(log n) —
//!   instead of full-table walks.
//! * **Wraparound.** Heap keys must be totally ordered, but serial
//!   comparison (`seq_lt`) is not a total order over all of `u32`. Keys
//!   are *virtual sequences*: a `u64` line anchored at the group minimum
//!   (`vseq(s) = vbase + serial_distance(vbase_seq, s)`), re-anchored at
//!   the current minimum on every successful peek. All live members sit
//!   within a serial half-space of the group minimum (they are all inside
//!   the active window), so every computed key is in range and keys never
//!   need recomputation — the mapping is a single consistent line.
//! * **Aggregate bounds.** Each shard carries a conservative lower bound
//!   on its members' `last_heard` and an upper bound on their
//!   `probe_failures`. `stale`/`probe_failed` skip shards whose bound
//!   proves the shard cannot match and re-tighten the bound whenever they
//!   do descend, so the idle-tick cost is O(shards), not O(members).
//!
//! In the original RMC protocol membership is anonymous — the sender
//! keeps only a count — but the Figure 3(a) experiment instruments RMC
//! with the same table *without letting it gate buffer release*, so the
//! table is maintained in both modes and the
//! [`ReliabilityMode`](crate::config::ReliabilityMode) decides whether the
//! sender consults it.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

use hrmc_wire::{seq_le, Seq};

use crate::time::Micros;
use crate::PeerId;

/// Shard width exponent: members whose `next_expected` agree on all but
/// the low `SHARD_SHIFT` bits share a shard (64-sequence buckets). Wide
/// enough that a congestion-window's worth of receivers spans a handful
/// of shards; narrow enough that a gate descent touches few non-matching
/// members.
const SHARD_SHIFT: u32 = 6;

/// Virtual-sequence origin: far from zero so transient undershoot (a
/// member joining slightly behind the anchor) stays positive.
const VBASE_ORIGIN: u64 = 1 << 34;

#[inline]
fn bucket(seq: Seq) -> u32 {
    seq >> SHARD_SHIFT
}

#[inline]
fn low_bits(seq: Seq) -> u32 {
    seq & ((1 << SHARD_SHIFT) - 1)
}

#[inline]
fn shard_seq(bucket: u32, low: u32) -> Seq {
    (bucket << SHARD_SHIFT) | low
}

/// Per-receiver state kept by the sender — deliberately minimal, matching
/// the paper's two fields plus bookkeeping for probes.
#[derive(Debug, Clone)]
pub struct Member {
    /// The sequence number this receiver expects next (one past the
    /// highest in-order packet it has confirmed). Updated from every NAK,
    /// CONTROL, and UPDATE.
    pub next_expected: Seq,
    /// When we last heard any feedback from this receiver.
    pub last_heard: Micros,
    /// When we last probed this receiver (rate-limits re-probes).
    pub last_probed: Option<Micros>,
    /// Consecutive probes that went unanswered: re-probing a receiver
    /// whose previous probe is still outstanding counts one failure; any
    /// feedback resets the count. Drives stall ejection.
    pub probe_failures: u32,
    /// When this receiver joined.
    pub joined_at: Micros,
}

/// One sequence bucket: the peers whose `next_expected` currently falls in
/// it, an exact low-bits multiset (first key = exact shard minimum), and
/// conservative aggregate bounds for the staleness/probe-failure scans.
#[derive(Debug, Clone)]
struct Shard {
    peers: HashSet<PeerId>,
    /// `low_bits(next_expected)` → member count. Exact; never stale.
    by_low: BTreeMap<u32, u32>,
    /// Lower bound on the members' `last_heard` (feedback only moves
    /// `last_heard` forward, so the bound stays valid and is re-tightened
    /// on descent).
    oldest_last_heard: Micros,
    /// Upper bound on the members' `probe_failures` (feedback resets the
    /// member counter to zero, leaving the bound stale-high until the
    /// next descent re-tightens it).
    max_probe_failures: u32,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            peers: HashSet::new(),
            by_low: BTreeMap::new(),
            oldest_last_heard: Micros::MAX,
            max_probe_failures: 0,
        }
    }

    #[inline]
    fn min_low(&self) -> Option<u32> {
        self.by_low.keys().next().copied()
    }
}

/// Running cost counters for the sharded index: how much work the
/// release gate and the PROBE/staleness scans actually did. Exposed so
/// telemetry can show membership pressure (and so the bench can assert
/// sub-linear growth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MembershipCosts {
    /// Release-gate (`all_have`) evaluations.
    pub gate_checks: u64,
    /// Shards descended into by `lacking`/`stale`/`probe_failed` (shards
    /// skipped by their aggregate bound are not counted).
    pub shards_scanned: u64,
    /// Members touched by those descents.
    pub members_scanned: u64,
    /// Stale heap entries discarded by lazy deletion.
    pub heap_lazy_pops: u64,
}

/// The sender's membership table.
#[derive(Debug, Clone)]
pub struct Membership {
    members: HashMap<PeerId, Member>,
    shards: HashMap<u32, Shard>,
    /// Lazy-deletion min-heap over `(vseq(shard minimum), bucket)`.
    /// Invariant: every non-empty shard has at least one entry whose key
    /// equals the virtual sequence of its *current* minimum.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Virtual-sequence anchor: `vseq(vbase_seq) == vbase`.
    vbase: u64,
    vbase_seq: Seq,
    costs: MembershipCosts,
    /// Total JOINs processed (paper: RMC "approximates the number of
    /// receivers" from joins; kept as a stat in both modes).
    pub total_joins: u64,
    /// Total LEAVEs processed.
    pub total_leaves: u64,
    /// Members forcibly ejected (stall / silence), as opposed to LEAVEs.
    pub total_ejections: u64,
}

impl Default for Membership {
    fn default() -> Self {
        Membership::new()
    }
}

impl Membership {
    /// Empty table.
    pub fn new() -> Membership {
        Membership {
            members: HashMap::new(),
            shards: HashMap::new(),
            heap: BinaryHeap::new(),
            vbase: VBASE_ORIGIN,
            vbase_seq: 0,
            costs: MembershipCosts::default(),
            total_joins: 0,
            total_leaves: 0,
            total_ejections: 0,
        }
    }

    /// Number of current members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no receivers are known.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of live sequence shards (a window-span gauge, not a
    /// receiver-count gauge).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The running scan-cost counters.
    pub fn costs(&self) -> MembershipCosts {
        self.costs
    }

    /// Map a sequence onto the virtual (non-wrapping) line. Sound while
    /// `seq` is within a serial half-space of the anchor, which holds for
    /// every live member because the anchor tracks the group minimum.
    #[inline]
    fn vseq(&self, seq: Seq) -> u64 {
        let delta = seq.wrapping_sub(self.vbase_seq) as i32 as i64;
        (self.vbase as i64 + delta) as u64
    }

    /// Insert `peer` (already in `members`) into the shard index.
    fn shard_insert(&mut self, peer: PeerId, seq: Seq, last_heard: Micros, probe_failures: u32) {
        let b = bucket(seq);
        let l = low_bits(seq);
        let key = self.vseq(seq);
        let shard = self.shards.entry(b).or_insert_with(Shard::new);
        shard.peers.insert(peer);
        let new_min = shard.min_low().is_none_or(|m| l < m);
        *shard.by_low.entry(l).or_insert(0) += 1;
        shard.oldest_last_heard = shard.oldest_last_heard.min(last_heard);
        shard.max_probe_failures = shard.max_probe_failures.max(probe_failures);
        if new_min {
            self.heap.push(Reverse((key, b)));
        }
    }

    /// Remove `peer` from the shard index position `seq`.
    fn shard_remove(&mut self, peer: PeerId, seq: Seq) {
        let b = bucket(seq);
        let l = low_bits(seq);
        let Some(shard) = self.shards.get_mut(&b) else {
            return;
        };
        shard.peers.remove(&peer);
        if let Some(cnt) = shard.by_low.get_mut(&l) {
            *cnt -= 1;
            if *cnt == 0 {
                shard.by_low.remove(&l);
            }
        }
        if shard.peers.is_empty() {
            // Stale heap entries for the dead bucket are discarded lazily.
            self.shards.remove(&b);
        } else if let Some(m) = shard.min_low() {
            if m > l {
                // The minimum advanced: restore the heap invariant with a
                // fresh entry for the new minimum.
                let key = self.vseq(shard_seq(b, m));
                self.heap.push(Reverse((key, b)));
            }
        }
    }

    /// The exact group minimum via the lazy heap: discard stale entries
    /// until the top one matches its shard's current minimum, then
    /// re-anchor the virtual line there.
    fn refresh_min(&mut self) -> Option<Seq> {
        loop {
            let &Reverse((key, b)) = self.heap.peek()?;
            let cur = self
                .shards
                .get(&b)
                .and_then(|s| s.min_low())
                .map(|l| shard_seq(b, l));
            match cur {
                Some(seq) if self.vseq(seq) == key => {
                    self.vbase = key;
                    self.vbase_seq = seq;
                    return Some(seq);
                }
                _ => {
                    self.heap.pop();
                    self.costs.heap_lazy_pops += 1;
                }
            }
        }
    }

    /// Add a member (the sender's `add_member` routine). `next_expected`
    /// is seeded with the sequence number echoed in the JOIN — the first
    /// data packet the receiver saw. Re-joining refreshes `last_heard`
    /// without regressing `next_expected`; a re-JOIN is feedback, so it
    /// also answers any outstanding probe (clearing `last_probed` and the
    /// consecutive-failure count) — otherwise a rejoining member could
    /// still be counted toward probe-failure ejection by state from
    /// before its retry.
    pub fn add(&mut self, peer: PeerId, next_expected: Seq, now: Micros) {
        self.total_joins += 1;
        if let Some(m) = self.members.get_mut(&peer) {
            m.last_heard = now;
            m.last_probed = None;
            m.probe_failures = 0;
            return;
        }
        if self.members.is_empty() {
            // First member: anchor the virtual line at its sequence.
            self.vbase = VBASE_ORIGIN;
            self.vbase_seq = next_expected;
        }
        self.members.insert(
            peer,
            Member {
                next_expected,
                last_heard: now,
                last_probed: None,
                probe_failures: 0,
                joined_at: now,
            },
        );
        self.shard_insert(peer, next_expected, now, 0);
    }

    /// Remove a member (the sender's `rm_member` routine). Returns `true`
    /// if the peer was present.
    pub fn remove(&mut self, peer: PeerId) -> bool {
        let Some(m) = self.members.remove(&peer) else {
            return false;
        };
        self.shard_remove(peer, m.next_expected);
        self.total_leaves += 1;
        true
    }

    /// Update a member's next-expected sequence number from feedback (the
    /// sender's `update_mem` routine). Sequence state never regresses:
    /// reordered feedback cannot pull a receiver's confirmed prefix back.
    /// Unknown peers are ignored (feedback can race a LEAVE).
    pub fn update(&mut self, peer: PeerId, next_expected: Seq, now: Micros) {
        let Some(m) = self.members.get_mut(&peer) else {
            return;
        };
        m.last_heard = now;
        m.last_probed = None; // any feedback satisfies a pending probe
        m.probe_failures = 0;
        let old = m.next_expected;
        if !hrmc_wire::seq_lt(old, next_expected) {
            return;
        }
        m.next_expected = next_expected;
        let (ob, nb) = (bucket(old), bucket(next_expected));
        if ob == nb {
            // Same shard: adjust the low-bits multiset in place. An
            // advance only ever raises the shard minimum.
            let (ol, nl) = (low_bits(old), low_bits(next_expected));
            let shard = self.shards.get_mut(&ob).expect("member shard exists");
            if let Some(cnt) = shard.by_low.get_mut(&ol) {
                *cnt -= 1;
                if *cnt == 0 {
                    shard.by_low.remove(&ol);
                }
            }
            *shard.by_low.entry(nl).or_insert(0) += 1;
            if let Some(m) = shard.min_low() {
                if m > ol {
                    let key = self.vseq(shard_seq(ob, m));
                    self.heap.push(Reverse((key, ob)));
                }
            }
        } else {
            self.shard_remove(peer, old);
            self.shard_insert(peer, next_expected, now, 0);
        }
    }

    /// Forcibly remove a member (stall ejection) — the failure-domain
    /// counterpart of [`remove`](Membership::remove); counted separately
    /// from voluntary LEAVEs. Returns `true` if the peer was present.
    /// Ejected members vanish from the table, so `all_have`, `lacking`
    /// and `min_next_expected` stop consulting them immediately and the
    /// release gate unblocks.
    pub fn eject(&mut self, peer: PeerId) -> bool {
        let Some(m) = self.members.remove(&peer) else {
            return false;
        };
        self.shard_remove(peer, m.next_expected);
        self.total_ejections += 1;
        true
    }

    /// Members from whom nothing has been heard for at least `deadline`
    /// microseconds, sorted for deterministic ejection order. `deadline`
    /// of zero matches no one (staleness pruning disabled). Shards whose
    /// oldest-feedback bound proves every member recent are skipped
    /// without touching their members; descended shards get their bound
    /// re-tightened for free.
    pub fn stale(&mut self, now: Micros, deadline: Micros) -> Vec<PeerId> {
        let mut v: Vec<PeerId> = Vec::new();
        if deadline == 0 {
            return v;
        }
        for shard in self.shards.values_mut() {
            if now.saturating_sub(shard.oldest_last_heard) < deadline {
                continue;
            }
            self.costs.shards_scanned += 1;
            self.costs.members_scanned += shard.peers.len() as u64;
            let mut oldest = Micros::MAX;
            for &p in &shard.peers {
                let m = &self.members[&p];
                if now.saturating_sub(m.last_heard) >= deadline {
                    v.push(p);
                }
                oldest = oldest.min(m.last_heard);
            }
            shard.oldest_last_heard = oldest;
        }
        v.sort_unstable();
        v
    }

    /// Members whose consecutive unanswered-probe count has reached
    /// `limit`, sorted for deterministic ejection order. `limit` of zero
    /// matches no one (probe-failure ejection disabled). Shards whose
    /// failure-count bound sits below `limit` are skipped whole.
    pub fn probe_failed(&mut self, limit: u32) -> Vec<PeerId> {
        let mut v: Vec<PeerId> = Vec::new();
        if limit == 0 {
            return v;
        }
        for shard in self.shards.values_mut() {
            if shard.max_probe_failures < limit {
                continue;
            }
            self.costs.shards_scanned += 1;
            self.costs.members_scanned += shard.peers.len() as u64;
            let mut max_pf = 0;
            for &p in &shard.peers {
                let m = &self.members[&p];
                if m.probe_failures >= limit {
                    v.push(p);
                }
                max_pf = max_pf.max(m.probe_failures);
            }
            shard.max_probe_failures = max_pf;
        }
        v.sort_unstable();
        v
    }

    /// Look up one member.
    pub fn get(&self, peer: PeerId) -> Option<&Member> {
        self.members.get(&peer)
    }

    /// Iterate over members.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, &Member)> {
        self.members.iter().map(|(p, m)| (*p, m))
    }

    /// `true` when the sender has information that **all** receivers have
    /// received every packet up to and including `seq` — the release-gate
    /// predicate of paper §3 (Probe Messages): "before releasing buffer
    /// space, the sender checks the state of all the receivers with
    /// respect to the sequence number past which it intends to advance
    /// the window." A heap-peek against the group minimum, not a table
    /// walk.
    ///
    /// With no members the release is trivially safe (there is no one to
    /// owe the data to; matches IP-multicast anonymous semantics before
    /// any JOIN arrives).
    pub fn all_have(&mut self, seq: Seq) -> bool {
        self.costs.gate_checks += 1;
        match self.refresh_min() {
            None => true,
            Some(min) => seq_le(seq.wrapping_add(1), min),
        }
    }

    /// The receivers lacking confirmation of `seq`, i.e. the PROBE
    /// targets. See [`lacking_into`](Membership::lacking_into).
    pub fn lacking(&mut self, seq: Seq) -> Vec<PeerId> {
        let mut v = Vec::new();
        self.lacking_into(seq, &mut v);
        v
    }

    /// Collect the receivers lacking confirmation of `seq` into `out`
    /// (cleared first), sorted for deterministic probe order. The
    /// allocation-free variant for the sender's tick path: only shards
    /// whose minimum fails the gate are descended — at most one shard
    /// straddles the gate; the rest either pass whole (skipped) or lag
    /// whole (every member is a target).
    pub fn lacking_into(&mut self, seq: Seq, out: &mut Vec<PeerId>) {
        out.clear();
        let gate = seq.wrapping_add(1);
        match self.refresh_min() {
            None => return,
            Some(min) if seq_le(gate, min) => return, // everyone has it
            Some(_) => {}
        }
        for (&b, shard) in self.shards.iter() {
            let smin = shard_seq(b, shard.min_low().expect("non-empty shard"));
            if seq_le(gate, smin) {
                continue; // the whole shard passes the gate
            }
            self.costs.shards_scanned += 1;
            self.costs.members_scanned += shard.peers.len() as u64;
            for &p in &shard.peers {
                if !seq_le(gate, self.members[&p].next_expected) {
                    out.push(p);
                }
            }
        }
        out.sort_unstable(); // deterministic probe order
    }

    /// The group-wide minimum next-expected sequence number, or `None`
    /// with no members. Everything before this is confirmed everywhere.
    pub fn min_next_expected(&mut self) -> Option<Seq> {
        self.refresh_min()
    }

    /// Record that `peer` was probed at `now`. Probing a peer whose
    /// previous probe is still unanswered counts one probe failure.
    pub fn mark_probed(&mut self, peer: PeerId, now: Micros) {
        let Some(m) = self.members.get_mut(&peer) else {
            return;
        };
        if m.last_probed.is_some() {
            m.probe_failures += 1;
            let b = bucket(m.next_expected);
            let pf = m.probe_failures;
            if let Some(shard) = self.shards.get_mut(&b) {
                shard.max_probe_failures = shard.max_probe_failures.max(pf);
            }
        }
        m.last_probed = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: PeerId = PeerId(1);
    const P2: PeerId = PeerId(2);
    const P3: PeerId = PeerId(3);

    #[test]
    fn add_update_remove() {
        let mut m = Membership::new();
        assert!(m.is_empty());
        m.add(P1, 0, 100);
        m.add(P2, 0, 100);
        assert_eq!(m.len(), 2);
        m.update(P1, 7, 200);
        assert_eq!(m.get(P1).unwrap().next_expected, 7);
        assert!(m.remove(P2));
        assert!(!m.remove(P2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.total_joins, 2);
        assert_eq!(m.total_leaves, 1);
    }

    #[test]
    fn rejoin_does_not_regress_state() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.update(P1, 50, 10);
        m.add(P1, 0, 20); // duplicate JOIN (retry)
        assert_eq!(m.get(P1).unwrap().next_expected, 50);
        assert_eq!(m.get(P1).unwrap().last_heard, 20);
    }

    #[test]
    fn rejoin_clears_outstanding_probe_state() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.mark_probed(P1, 5);
        m.mark_probed(P1, 10);
        m.mark_probed(P1, 15);
        assert_eq!(m.get(P1).unwrap().probe_failures, 2);
        // A duplicate JOIN is feedback: the receiver is alive, so the
        // outstanding probe is answered and the failure streak resets —
        // a re-JOINing member must not inherit a pre-retry ejection
        // countdown.
        m.add(P1, 0, 20);
        assert_eq!(m.get(P1).unwrap().last_probed, None);
        assert_eq!(m.get(P1).unwrap().probe_failures, 0);
        assert_eq!(m.probe_failed(2), Vec::<PeerId>::new());
    }

    #[test]
    fn feedback_never_regresses_next_expected() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.update(P1, 100, 1);
        m.update(P1, 40, 2); // stale, reordered feedback
        assert_eq!(m.get(P1).unwrap().next_expected, 100);
        assert_eq!(m.get(P1).unwrap().last_heard, 2);
    }

    #[test]
    fn update_for_unknown_peer_is_ignored() {
        let mut m = Membership::new();
        m.update(P1, 10, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn all_have_and_lacking() {
        let mut m = Membership::new();
        assert!(m.all_have(1000)); // vacuous with no members
        m.add(P1, 0, 0);
        m.add(P2, 0, 0);
        m.add(P3, 0, 0);
        m.update(P1, 11, 1); // has 0..=10
        m.update(P2, 10, 1); // has 0..=9
        m.update(P3, 11, 1);
        assert!(m.all_have(9));
        assert!(!m.all_have(10));
        assert_eq!(m.lacking(10), vec![P2]);
        assert_eq!(m.lacking(9), Vec::<PeerId>::new());
        m.update(P2, 11, 2);
        assert!(m.all_have(10));
    }

    #[test]
    fn lacking_is_sorted_and_complete() {
        let mut m = Membership::new();
        for i in (0..10).rev() {
            m.add(PeerId(i), 0, 0);
        }
        let lacking = m.lacking(5);
        assert_eq!(lacking.len(), 10);
        assert!(lacking.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn probe_bookkeeping_cleared_by_feedback() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.mark_probed(P1, 5);
        assert_eq!(m.get(P1).unwrap().last_probed, Some(5));
        m.update(P1, 3, 6);
        assert_eq!(m.get(P1).unwrap().last_probed, None);
    }

    #[test]
    fn min_next_expected_uses_serial_order() {
        let mut m = Membership::new();
        assert_eq!(m.min_next_expected(), None);
        let base = u32::MAX - 5;
        m.add(P1, base, 0);
        m.add(P2, base, 0);
        m.update(P1, base.wrapping_add(10), 1); // wrapped past 0
        m.update(P2, base.wrapping_add(2), 1);
        assert_eq!(m.min_next_expected(), Some(base.wrapping_add(2)));
    }

    #[test]
    fn reprobe_counts_failures_and_feedback_resets_them() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.mark_probed(P1, 5); // first probe: no failure yet
        assert_eq!(m.get(P1).unwrap().probe_failures, 0);
        m.mark_probed(P1, 10); // re-probe of an unanswered probe
        m.mark_probed(P1, 15);
        assert_eq!(m.get(P1).unwrap().probe_failures, 2);
        assert_eq!(m.probe_failed(2), vec![P1]);
        assert_eq!(m.probe_failed(3), Vec::<PeerId>::new());
        assert_eq!(m.probe_failed(0), Vec::<PeerId>::new()); // disabled
        m.update(P1, 1, 20); // any feedback answers the probe
        assert_eq!(m.get(P1).unwrap().probe_failures, 0);
        assert_eq!(m.get(P1).unwrap().last_probed, None);
    }

    #[test]
    fn stale_finds_silent_members_sorted() {
        let mut m = Membership::new();
        m.add(P2, 0, 0);
        m.add(P1, 0, 0);
        m.add(P3, 0, 0);
        m.update(P3, 1, 900);
        assert_eq!(m.stale(1000, 500), vec![P1, P2]);
        assert_eq!(m.stale(1000, 1001), Vec::<PeerId>::new());
        assert_eq!(m.stale(1000, 0), Vec::<PeerId>::new()); // disabled
    }

    #[test]
    fn ejection_removes_member_from_release_gate() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.add(P2, 0, 0);
        m.update(P1, 11, 1); // P1 confirmed 0..=10; P2 silent
        assert!(!m.all_have(10));
        assert_eq!(m.lacking(10), vec![P2]);
        assert_eq!(m.min_next_expected(), Some(0));
        assert!(m.eject(P2));
        assert!(!m.eject(P2));
        assert!(m.all_have(10));
        assert_eq!(m.lacking(10), Vec::<PeerId>::new());
        assert_eq!(m.min_next_expected(), Some(11));
        assert_eq!(m.total_ejections, 1);
        assert_eq!(m.total_leaves, 0); // ejection is not a LEAVE
                                       // A re-JOIN after ejection starts a fresh record.
        m.add(P2, 5, 100);
        assert_eq!(m.get(P2).unwrap().next_expected, 5);
        assert_eq!(m.get(P2).unwrap().probe_failures, 0);
    }

    #[test]
    fn all_have_handles_wraparound() {
        let mut m = Membership::new();
        let base = u32::MAX - 1;
        m.add(P1, base, 0);
        m.update(P1, base.wrapping_add(3), 1); // confirmed through wrap
        assert!(m.all_have(base.wrapping_add(2)));
        assert!(!m.all_have(base.wrapping_add(3)));
    }

    #[test]
    fn gate_is_exact_across_shard_boundaries() {
        // Members straddling several 64-sequence buckets: the gate must
        // stay member-exact even when whole shards are skipped or lag.
        let mut m = Membership::new();
        for i in 0..10u32 {
            m.add(PeerId(i), 0, 0);
            m.update(PeerId(i), i * 50, 1); // buckets 0..=7
        }
        assert_eq!(m.min_next_expected(), Some(0));
        assert!(!m.all_have(0));
        // Everyone with next_expected <= 200 lacks seq 200: peers 0..=4.
        assert_eq!(
            m.lacking(200),
            (0..5).map(PeerId).collect::<Vec<_>>(),
            "shard-skipping descent must still be member-exact"
        );
        m.update(PeerId(0), 451, 2);
        assert_eq!(m.min_next_expected(), Some(50));
        assert!(m.all_have(49));
        assert!(!m.all_have(50));
        assert!(m.shard_count() >= 2);
    }

    #[test]
    fn wraparound_group_min_advances_through_zero() {
        // March a small group's minimum across the u32 wrap; the heap's
        // virtual keys must keep the gate exact the whole way.
        let mut m = Membership::new();
        let start = u32::MAX - 300;
        for i in 0..4u32 {
            m.add(PeerId(i), start, 0);
        }
        let mut now = 1;
        for step in 1..=40u32 {
            for i in 0..4u32 {
                let ne = start.wrapping_add(step * 20 + i);
                m.update(PeerId(i), ne, now);
                now += 1;
            }
            let min = start.wrapping_add(step * 20);
            assert_eq!(m.min_next_expected(), Some(min), "step {step}");
            assert!(m.all_have(min.wrapping_sub(1)));
            assert!(!m.all_have(min));
        }
        assert!(m.costs().gate_checks > 0);
    }

    #[test]
    fn scan_costs_skip_clean_shards() {
        let mut m = Membership::new();
        for i in 0..100u32 {
            m.add(PeerId(i), 0, 0);
            m.update(PeerId(i), 1000, 5);
        }
        let before = m.costs();
        // Nobody is stale and no shard bound can match: zero descents.
        assert_eq!(m.stale(10, 100), Vec::<PeerId>::new());
        assert_eq!(m.probe_failed(1), Vec::<PeerId>::new());
        let after = m.costs();
        assert_eq!(after.members_scanned, before.members_scanned);
        // Everyone already has seq 500: the gate answers by heap-peek,
        // descending into no shard at all.
        assert!(m.all_have(500));
        assert_eq!(m.lacking(500), Vec::<PeerId>::new());
        assert_eq!(m.costs().members_scanned, before.members_scanned);
    }
}
