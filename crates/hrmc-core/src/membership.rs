//! Group membership state at the sender (paper §3, Membership
//! Maintenance).
//!
//! "In H-RMC, group membership is maintained in the form of a doubly
//! linked list as well as a hashed list of all the receivers. The space
//! required is minimal: for each receiver, the sender keeps its (unicast)
//! IP address and the sequence number that the receiver is expecting
//! next."
//!
//! The kernel's linked-list-plus-hash idiom collapses to a single
//! `HashMap` in Rust; the map owns the per-receiver records and iteration
//! replaces the list walk. In the original RMC protocol membership is
//! anonymous — the sender keeps only a count — but the Figure 3(a)
//! experiment instruments RMC with the same table *without letting it
//! gate buffer release*, so the table is maintained in both modes and the
//! [`ReliabilityMode`](crate::config::ReliabilityMode) decides whether the
//! sender consults it.

use std::collections::HashMap;

use hrmc_wire::{seq_le, Seq};

use crate::time::Micros;
use crate::PeerId;

/// Per-receiver state kept by the sender — deliberately minimal, matching
/// the paper's two fields plus bookkeeping for probes.
#[derive(Debug, Clone)]
pub struct Member {
    /// The sequence number this receiver expects next (one past the
    /// highest in-order packet it has confirmed). Updated from every NAK,
    /// CONTROL, and UPDATE.
    pub next_expected: Seq,
    /// When we last heard any feedback from this receiver.
    pub last_heard: Micros,
    /// When we last probed this receiver (rate-limits re-probes).
    pub last_probed: Option<Micros>,
    /// Consecutive probes that went unanswered: re-probing a receiver
    /// whose previous probe is still outstanding counts one failure; any
    /// feedback resets the count. Drives stall ejection.
    pub probe_failures: u32,
    /// When this receiver joined.
    pub joined_at: Micros,
}

/// The sender's membership table.
#[derive(Debug, Clone, Default)]
pub struct Membership {
    members: HashMap<PeerId, Member>,
    /// Total JOINs processed (paper: RMC "approximates the number of
    /// receivers" from joins; kept as a stat in both modes).
    pub total_joins: u64,
    /// Total LEAVEs processed.
    pub total_leaves: u64,
    /// Members forcibly ejected (stall / silence), as opposed to LEAVEs.
    pub total_ejections: u64,
}

impl Membership {
    /// Empty table.
    pub fn new() -> Membership {
        Membership::default()
    }

    /// Number of current members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no receivers are known.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Add a member (the sender's `add_member` routine). `next_expected`
    /// is seeded with the sequence number echoed in the JOIN — the first
    /// data packet the receiver saw. Re-joining refreshes `last_heard`
    /// without regressing `next_expected`.
    pub fn add(&mut self, peer: PeerId, next_expected: Seq, now: Micros) {
        self.total_joins += 1;
        self.members
            .entry(peer)
            .and_modify(|m| m.last_heard = now)
            .or_insert(Member {
                next_expected,
                last_heard: now,
                last_probed: None,
                probe_failures: 0,
                joined_at: now,
            });
    }

    /// Remove a member (the sender's `rm_member` routine). Returns `true`
    /// if the peer was present.
    pub fn remove(&mut self, peer: PeerId) -> bool {
        let removed = self.members.remove(&peer).is_some();
        if removed {
            self.total_leaves += 1;
        }
        removed
    }

    /// Update a member's next-expected sequence number from feedback (the
    /// sender's `update_mem` routine). Sequence state never regresses:
    /// reordered feedback cannot pull a receiver's confirmed prefix back.
    /// Unknown peers are ignored (feedback can race a LEAVE).
    pub fn update(&mut self, peer: PeerId, next_expected: Seq, now: Micros) {
        if let Some(m) = self.members.get_mut(&peer) {
            m.last_heard = now;
            if hrmc_wire::seq_lt(m.next_expected, next_expected) {
                m.next_expected = next_expected;
            }
            m.last_probed = None; // any feedback satisfies a pending probe
            m.probe_failures = 0;
        }
    }

    /// Forcibly remove a member (stall ejection) — the failure-domain
    /// counterpart of [`remove`](Membership::remove); counted separately
    /// from voluntary LEAVEs. Returns `true` if the peer was present.
    /// Ejected members vanish from the table, so `all_have`, `lacking`
    /// and `min_next_expected` stop consulting them immediately and the
    /// release gate unblocks.
    pub fn eject(&mut self, peer: PeerId) -> bool {
        let removed = self.members.remove(&peer).is_some();
        if removed {
            self.total_ejections += 1;
        }
        removed
    }

    /// Members from whom nothing has been heard for at least `deadline`
    /// microseconds, sorted for deterministic ejection order. `deadline`
    /// of zero matches no one (staleness pruning disabled).
    pub fn stale(&self, now: Micros, deadline: Micros) -> Vec<PeerId> {
        if deadline == 0 {
            return Vec::new();
        }
        let mut v: Vec<PeerId> = self
            .members
            .iter()
            .filter(|(_, m)| now.saturating_sub(m.last_heard) >= deadline)
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    /// Members whose consecutive unanswered-probe count has reached
    /// `limit`, sorted for deterministic ejection order. `limit` of zero
    /// matches no one (probe-failure ejection disabled).
    pub fn probe_failed(&self, limit: u32) -> Vec<PeerId> {
        if limit == 0 {
            return Vec::new();
        }
        let mut v: Vec<PeerId> = self
            .members
            .iter()
            .filter(|(_, m)| m.probe_failures >= limit)
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    /// Look up one member.
    pub fn get(&self, peer: PeerId) -> Option<&Member> {
        self.members.get(&peer)
    }

    /// Iterate over members.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, &Member)> {
        self.members.iter().map(|(p, m)| (*p, m))
    }

    /// `true` when the sender has information that **all** receivers have
    /// received every packet up to and including `seq` — the release-gate
    /// predicate of paper §3 (Probe Messages): "before releasing buffer
    /// space, the sender checks the state of all the receivers with
    /// respect to the sequence number past which it intends to advance
    /// the window."
    ///
    /// With no members the release is trivially safe (there is no one to
    /// owe the data to; matches IP-multicast anonymous semantics before
    /// any JOIN arrives).
    pub fn all_have(&self, seq: Seq) -> bool {
        self.members
            .values()
            .all(|m| seq_le(seq.wrapping_add(1), m.next_expected))
    }

    /// The receivers lacking confirmation of `seq`, i.e. the PROBE targets.
    pub fn lacking(&self, seq: Seq) -> Vec<PeerId> {
        let mut v: Vec<PeerId> = self
            .members
            .iter()
            .filter(|(_, m)| !seq_le(seq.wrapping_add(1), m.next_expected))
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable(); // deterministic probe order
        v
    }

    /// The group-wide minimum next-expected sequence number, or `None`
    /// with no members. Everything before this is confirmed everywhere.
    pub fn min_next_expected(&self) -> Option<Seq> {
        self.members
            .values()
            .map(|m| m.next_expected)
            .fold(None, |acc, s| match acc {
                None => Some(s),
                Some(cur) if hrmc_wire::seq_lt(s, cur) => Some(s),
                Some(cur) => Some(cur),
            })
    }

    /// Record that `peer` was probed at `now`. Probing a peer whose
    /// previous probe is still unanswered counts one probe failure.
    pub fn mark_probed(&mut self, peer: PeerId, now: Micros) {
        if let Some(m) = self.members.get_mut(&peer) {
            if m.last_probed.is_some() {
                m.probe_failures += 1;
            }
            m.last_probed = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: PeerId = PeerId(1);
    const P2: PeerId = PeerId(2);
    const P3: PeerId = PeerId(3);

    #[test]
    fn add_update_remove() {
        let mut m = Membership::new();
        assert!(m.is_empty());
        m.add(P1, 0, 100);
        m.add(P2, 0, 100);
        assert_eq!(m.len(), 2);
        m.update(P1, 7, 200);
        assert_eq!(m.get(P1).unwrap().next_expected, 7);
        assert!(m.remove(P2));
        assert!(!m.remove(P2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.total_joins, 2);
        assert_eq!(m.total_leaves, 1);
    }

    #[test]
    fn rejoin_does_not_regress_state() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.update(P1, 50, 10);
        m.add(P1, 0, 20); // duplicate JOIN (retry)
        assert_eq!(m.get(P1).unwrap().next_expected, 50);
        assert_eq!(m.get(P1).unwrap().last_heard, 20);
    }

    #[test]
    fn feedback_never_regresses_next_expected() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.update(P1, 100, 1);
        m.update(P1, 40, 2); // stale, reordered feedback
        assert_eq!(m.get(P1).unwrap().next_expected, 100);
        assert_eq!(m.get(P1).unwrap().last_heard, 2);
    }

    #[test]
    fn update_for_unknown_peer_is_ignored() {
        let mut m = Membership::new();
        m.update(P1, 10, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn all_have_and_lacking() {
        let mut m = Membership::new();
        assert!(m.all_have(1000)); // vacuous with no members
        m.add(P1, 0, 0);
        m.add(P2, 0, 0);
        m.add(P3, 0, 0);
        m.update(P1, 11, 1); // has 0..=10
        m.update(P2, 10, 1); // has 0..=9
        m.update(P3, 11, 1);
        assert!(m.all_have(9));
        assert!(!m.all_have(10));
        assert_eq!(m.lacking(10), vec![P2]);
        assert_eq!(m.lacking(9), Vec::<PeerId>::new());
        m.update(P2, 11, 2);
        assert!(m.all_have(10));
    }

    #[test]
    fn lacking_is_sorted_and_complete() {
        let mut m = Membership::new();
        for i in (0..10).rev() {
            m.add(PeerId(i), 0, 0);
        }
        let lacking = m.lacking(5);
        assert_eq!(lacking.len(), 10);
        assert!(lacking.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn probe_bookkeeping_cleared_by_feedback() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.mark_probed(P1, 5);
        assert_eq!(m.get(P1).unwrap().last_probed, Some(5));
        m.update(P1, 3, 6);
        assert_eq!(m.get(P1).unwrap().last_probed, None);
    }

    #[test]
    fn min_next_expected_uses_serial_order() {
        let mut m = Membership::new();
        assert_eq!(m.min_next_expected(), None);
        let base = u32::MAX - 5;
        m.add(P1, base, 0);
        m.add(P2, base, 0);
        m.update(P1, base.wrapping_add(10), 1); // wrapped past 0
        m.update(P2, base.wrapping_add(2), 1);
        assert_eq!(m.min_next_expected(), Some(base.wrapping_add(2)));
    }

    #[test]
    fn reprobe_counts_failures_and_feedback_resets_them() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.mark_probed(P1, 5); // first probe: no failure yet
        assert_eq!(m.get(P1).unwrap().probe_failures, 0);
        m.mark_probed(P1, 10); // re-probe of an unanswered probe
        m.mark_probed(P1, 15);
        assert_eq!(m.get(P1).unwrap().probe_failures, 2);
        assert_eq!(m.probe_failed(2), vec![P1]);
        assert_eq!(m.probe_failed(3), Vec::<PeerId>::new());
        assert_eq!(m.probe_failed(0), Vec::<PeerId>::new()); // disabled
        m.update(P1, 1, 20); // any feedback answers the probe
        assert_eq!(m.get(P1).unwrap().probe_failures, 0);
        assert_eq!(m.get(P1).unwrap().last_probed, None);
    }

    #[test]
    fn stale_finds_silent_members_sorted() {
        let mut m = Membership::new();
        m.add(P2, 0, 0);
        m.add(P1, 0, 0);
        m.add(P3, 0, 0);
        m.update(P3, 1, 900);
        assert_eq!(m.stale(1000, 500), vec![P1, P2]);
        assert_eq!(m.stale(1000, 1001), Vec::<PeerId>::new());
        assert_eq!(m.stale(1000, 0), Vec::<PeerId>::new()); // disabled
    }

    #[test]
    fn ejection_removes_member_from_release_gate() {
        let mut m = Membership::new();
        m.add(P1, 0, 0);
        m.add(P2, 0, 0);
        m.update(P1, 11, 1); // P1 confirmed 0..=10; P2 silent
        assert!(!m.all_have(10));
        assert_eq!(m.lacking(10), vec![P2]);
        assert_eq!(m.min_next_expected(), Some(0));
        assert!(m.eject(P2));
        assert!(!m.eject(P2));
        assert!(m.all_have(10));
        assert_eq!(m.lacking(10), Vec::<PeerId>::new());
        assert_eq!(m.min_next_expected(), Some(11));
        assert_eq!(m.total_ejections, 1);
        assert_eq!(m.total_leaves, 0); // ejection is not a LEAVE
                                       // A re-JOIN after ejection starts a fresh record.
        m.add(P2, 5, 100);
        assert_eq!(m.get(P2).unwrap().next_expected, 5);
        assert_eq!(m.get(P2).unwrap().probe_failures, 0);
    }

    #[test]
    fn all_have_handles_wraparound() {
        let mut m = Membership::new();
        let base = u32::MAX - 1;
        m.add(P1, base, 0);
        m.update(P1, base.wrapping_add(3), 1); // confirmed through wrap
        assert!(m.all_have(base.wrapping_add(2)));
        assert!(!m.all_have(base.wrapping_add(3)));
    }
}
