//! The H-RMC receiver engine (paper §4.3, Figure 9).
//!
//! The kernel receiver comprises three packet queues and four functional
//! components; here they map to one state machine:
//!
//! | Paper component | Engine location |
//! |-----------------|-----------------|
//! | Initial Packet Processor (`hrmc_ip_rcv`) | driver demux + [`ReceiverEngine::handle_packet`] |
//! | Backlog Queue (`backlog_queue`) | [`ReceiverEngine::lock`] / [`ReceiverEngine::unlock`] |
//! | Main Packet Processor (`hrmc_rcv_data`) | DATA path of [`ReceiverEngine::handle_packet`] |
//! | Out-of-Order Queue (`out_of_order_queue`) | [`crate::rxwindow::ReceiveWindow`] |
//! | Receive Queue (`receive_queue`) | [`crate::rxwindow::ReceiveWindow`] |
//! | NAK Manager (`nak_timer`) | [`crate::nak::NakManager`], scanned in [`ReceiverEngine::on_tick`] |
//! | Update Generator (`update_timer`) | [`crate::update::UpdateGenerator`], polled in [`ReceiverEngine::on_tick`] |
//! | Application Interface (`hrmc_recvmsg`) | [`ReceiverEngine::read`] |

use bytes::Bytes;
use hrmc_wire::{Packet, PacketType, Seq};
use std::collections::BTreeMap;

use crate::config::{ProtocolConfig, UpdateMode};
use crate::events::ReceiverEvent;
use crate::fec::FecDecoder;
use crate::nak::NakManager;
use crate::obs::emit;
use crate::obs::{Event, NakTrigger, ProtocolObserver};
use crate::rxwindow::{unwrap_seq, Offer, ReceiveWindow, Region};
use crate::stats::ReceiverStats;
use crate::time::{scale, Micros, JIFFY_US};
use crate::update::UpdateGenerator;
use crate::{Dest, Outgoing};

/// JOIN handshake progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinState {
    /// No data seen yet; nothing to join.
    Idle,
    /// JOIN sent (echoing `echoed`) at the embedded time; awaiting
    /// JOIN_RESPONSE.
    Sent { at: Micros, echoed: Seq },
    /// JOIN_RESPONSE received.
    Confirmed,
}

/// The receiver half of the protocol. See the module docs for the mapping
/// to the paper's architecture.
pub struct ReceiverEngine {
    config: ProtocolConfig,
    local_port: u16,
    group_port: u16,
    window: ReceiveWindow,
    naks: NakManager,
    updates: UpdateGenerator,
    /// Optional FEC payload cache + reconstructor (extension).
    fec: Option<FecDecoder>,
    /// Local-recovery repair cache: recently delivered payloads this
    /// receiver can re-multicast for peers (extension; `None` unless
    /// `local_recovery` is enabled).
    repair_cache: Option<BTreeMap<u64, Bytes>>,
    /// Scheduled peer repairs: unwrapped seq → fire time. Cancelled when
    /// the data is seen on the wire first (another peer, or the sender,
    /// answered).
    pending_repairs: BTreeMap<u64, Micros>,
    /// Throttle for recovery UPDATEs (local recovery: tell the sender
    /// promptly that a peer repair filled our gap, so its held-back
    /// retransmission cancels).
    last_recovery_update: Option<Micros>,
    join: JoinState,
    /// JOINs sent since the last confirmation (bounded by
    /// `join_retry_limit` when nonzero).
    join_attempts: u32,
    /// Current JOIN retry backoff; starts at `join_retry`, doubles per
    /// retry up to `join_retry_max`.
    join_delay: Micros,
    /// When we last heard anything sender-originated (death detection).
    last_sender_heard: Option<Micros>,
    /// Terminal failure latch: sender presumed dead or JOIN budget
    /// exhausted. All timers disarm; packets are ignored.
    failed: bool,
    leaving: bool,
    /// Receiver-side RTT estimate, seeded from config and refined by the
    /// JOIN handshake; drives NAK suppression and rate rule 2.
    rtt: Micros,
    /// Most recent rate advertisement heard from the sender (bytes/s).
    advertised_rate: u64,
    /// Throttles warning CONTROL packets.
    last_control: Option<Micros>,
    /// Throttles urgent CONTROL packets.
    last_urgent: Option<Micros>,
    /// Socket-locked flag; packets arriving while locked go to the
    /// backlog queue (paper Figure 9).
    locked: bool,
    backlog: Vec<Packet>,
    had_readable: bool,
    stream_complete_emitted: bool,
    out: std::collections::VecDeque<Outgoing>,
    events: std::collections::VecDeque<ReceiverEvent>,
    /// Public counters; the experiment harnesses read these.
    pub stats: ReceiverStats,
    /// Optional observability hook (None by default: zero-cost).
    observer: Option<Box<dyn ProtocolObserver>>,
    /// Window region last reported to the observer, diffed to detect
    /// safe → warning → critical crossings in either direction.
    last_region: Region,
}

impl ReceiverEngine {
    /// Create a receiver bound to `local_port` listening on the group
    /// port.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(
        config: ProtocolConfig,
        local_port: u16,
        group_port: u16,
        now: Micros,
    ) -> ReceiverEngine {
        config.validate().expect("invalid ProtocolConfig");
        let window = ReceiveWindow::new(
            config.rcvbuf,
            config.segment_size,
            config.warn_threshold,
            config.critical_threshold,
        );
        let updates = UpdateGenerator::new(
            config.update_mode,
            config.initial_update_period_jiffies,
            config.min_update_period_jiffies,
            config.max_update_period_jiffies,
            now,
        );
        let fec = config.fec.map(|f| FecDecoder::new(8 * f.k.max(4)));
        let repair_cache = config.local_recovery.then(BTreeMap::new);
        ReceiverEngine {
            window,
            naks: NakManager::new(),
            updates,
            fec,
            repair_cache,
            pending_repairs: BTreeMap::new(),
            last_recovery_update: None,
            join: JoinState::Idle,
            join_attempts: 0,
            join_delay: config.join_retry,
            last_sender_heard: None,
            failed: false,
            leaving: false,
            rtt: config.initial_rtt,
            advertised_rate: 0,
            last_control: None,
            last_urgent: None,
            locked: false,
            backlog: Vec::new(),
            had_readable: false,
            stream_complete_emitted: false,
            out: std::collections::VecDeque::new(),
            events: std::collections::VecDeque::new(),
            stats: ReceiverStats::default(),
            observer: None,
            last_region: Region::Safe,
            config,
            local_port,
            group_port,
        }
    }

    /// Install a [`ProtocolObserver`], replacing any previous one. The
    /// engine reports every protocol state transition to it.
    pub fn set_observer(&mut self, observer: Box<dyn ProtocolObserver>) {
        self.observer = Some(observer);
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Pre-attach the receive window at a known initial sequence number.
    /// Call before any data arrives, for receivers that start before the
    /// sender (every file-transfer experiment in the paper): a lost
    /// first packet is then a NAKable gap, not a silently missed prefix.
    /// Without this the receiver attaches wherever it tunes in
    /// (late-join semantics).
    pub fn expect_stream_start(&mut self, seq: Seq) {
        self.window.attach_at(seq);
    }

    /// Next expected sequence number, once attached to the stream.
    pub fn rcv_nxt(&self) -> Option<Seq> {
        self.window.rcv_nxt()
    }

    /// Bytes available to [`ReceiverEngine::read`].
    pub fn readable_bytes(&self) -> usize {
        self.window.readable_bytes()
    }

    /// `true` once the FIN arrived and every preceding byte assembled.
    pub fn stream_complete(&self) -> bool {
        self.window.stream_complete()
    }

    /// `true` when complete *and* fully read by the application.
    pub fn fully_consumed(&self) -> bool {
        self.window.fully_consumed()
    }

    /// The recommended driver tick interval (one jiffy).
    pub fn tick_interval(&self) -> Micros {
        JIFFY_US
    }

    /// Receiver-side RTT estimate.
    pub fn rtt(&self) -> Micros {
        self.rtt
    }

    /// Outstanding NAK entries (sequence numbers still missing) —
    /// the recovery backlog a telemetry sampler tracks over time.
    pub fn pending_naks(&self) -> usize {
        self.naks.len()
    }

    /// Receive-window occupancy as a fraction of capacity (0.0–1.0).
    pub fn window_occupancy(&self) -> f64 {
        self.window.occupancy()
    }

    /// Current update period, in jiffies (instrumentation for the
    /// dynamic-update-timer experiments).
    pub fn update_period_jiffies(&self) -> u64 {
        self.updates.period_jiffies()
    }

    // ------------------------------------------------------------------
    // Socket lock / backlog queue
    // ------------------------------------------------------------------

    /// Lock the socket: subsequent packets queue on the backlog, exactly
    /// as the kernel does while `hrmc_recvmsg` holds the sock. Drivers
    /// use this to model application read latency (the disk-to-disk
    /// tests).
    pub fn lock(&mut self) {
        self.locked = true;
    }

    /// Unlock the socket and process everything that backlogged.
    pub fn unlock(&mut self, now: Micros) {
        self.locked = false;
        let backlog = std::mem::take(&mut self.backlog);
        for pkt in backlog {
            self.process_packet(&pkt, now);
        }
    }

    // ------------------------------------------------------------------
    // Packet processing
    // ------------------------------------------------------------------

    /// Process one packet from the sender.
    pub fn handle_packet(&mut self, pkt: &Packet, now: Micros) {
        if self.locked {
            self.stats.backlogged_packets += 1;
            self.backlog.push(pkt.clone());
            return;
        }
        self.process_packet(pkt, now);
    }

    fn process_packet(&mut self, pkt: &Packet, now: Micros) {
        if self.failed {
            return; // terminal: the application must tear down
        }
        // Every sender packet advertises the current transmission rate.
        if pkt.header.ptype.is_sender_originated() {
            self.advertised_rate = u64::from(pkt.header.rate_adv);
            self.last_sender_heard = Some(now);
        }
        match pkt.header.ptype {
            PacketType::Data => self.on_data(pkt, now),
            PacketType::Parity => self.on_parity(pkt, now),
            PacketType::Probe => self.on_probe(pkt, now),
            PacketType::Keepalive => self.on_keepalive(pkt, now),
            PacketType::NakErr => self.on_nak_err(pkt, now),
            PacketType::JoinResponse => self.on_join_response(pkt, now),
            PacketType::LeaveResponse => {
                self.events.push_back(ReceiverEvent::Left);
            }
            // Local recovery: peers' multicast NAKs are repair requests.
            PacketType::Nak if self.repair_cache.is_some() => self.on_peer_nak(pkt, now),
            // Receiver-originated types looped back are ignored.
            _ => {}
        }
    }

    fn on_data(&mut self, pkt: &Packet, now: Micros) {
        let seq = pkt.header.seq;
        let was_nak_pending =
            self.window.attached() && self.naks.contains(unwrap_seq(seq, self.window.next_u64()));
        // Delivery frontier before the offer, for the Delivered event.
        let next_before = self.window.attached().then(|| self.window.next_u64());
        let outcome = self
            .window
            .offer(seq, pkt.payload.clone(), pkt.header.flags.fin);
        if self.window.attached() {
            let useq = unwrap_seq(seq, self.window.next_u64());
            // Data on the wire (from the sender or a peer repair)
            // suppresses our own scheduled repair for it.
            self.pending_repairs.remove(&useq);
            if let Some(cache) = self.repair_cache.as_mut() {
                if !pkt.payload.is_empty() {
                    cache.insert(useq, pkt.payload.clone());
                    while cache.len() > 4096 {
                        cache.pop_first();
                    }
                }
            }
        }
        if matches!(self.join, JoinState::Idle) && self.window.attached() {
            // Paper §2: a receiver "send[s] a JOIN message to the sender
            // in response to the first data packet that it receives".
            self.send_join(seq, now);
        }
        match outcome {
            Offer::InOrder => {
                self.stats.data_packets_received += 1;
                let next = self.window.next_u64();
                if self.observer.is_some() {
                    let first = next_before.unwrap_or(next.saturating_sub(1));
                    emit!(
                        self,
                        now,
                        Event::Delivered {
                            first,
                            count: next.saturating_sub(first) as u32
                        }
                    );
                }
                let filled = self.naks.satisfy_below(next);
                if !filled.is_empty() {
                    self.emit_recovered(&filled, now);
                }
                if let Some(dec) = self.fec.as_mut() {
                    if !pkt.payload.is_empty() {
                        let useq = unwrap_seq(seq, self.window.next_u64());
                        dec.on_data(useq, pkt.payload.clone());
                    }
                }
                self.note_readable();
            }
            Offer::OutOfOrder => {
                self.stats.data_packets_received += 1;
                let useq = unwrap_seq(seq, self.window.next_u64());
                if let Some(noted) = self.naks.satisfy(useq) {
                    self.emit_recovered(&[(useq, noted)], now);
                }
                if let Some(dec) = self.fec.as_mut() {
                    if !pkt.payload.is_empty() {
                        dec.on_data(useq, pkt.payload.clone());
                    }
                }
                // A gap was revealed (or extended). Without FEC the
                // fresh part is NAKed immediately; with FEC the NAK is
                // held one suppression interval (the nak_timer sends it)
                // so the block's parity gets a chance to repair locally
                // first — otherwise every recovery still costs a
                // retransmission that was already requested.
                let missing = self.window.missing_below(useq);
                if self.fec.is_some() {
                    self.naks.register(&missing, now);
                } else {
                    let fresh = self.naks.note_missing(&missing, now);
                    self.note_suppressed(&missing, &fresh, now);
                    self.send_naks(&fresh, now, NakTrigger::Gap);
                }
            }
            Offer::Duplicate => self.stats.duplicates_dropped += 1,
            Offer::Overflow => self.stats.overflow_drops += 1,
            Offer::BeyondWindow => self.stats.beyond_window_drops += 1,
        }
        self.check_stream_complete();
        self.flow_control(now);
        // Local recovery: a filled gap we had NAKed means the sender may
        // be holding a retransmission for us — refresh its state promptly
        // (throttled to one recovery UPDATE per half RTT).
        if self.config.local_recovery
            && was_nak_pending
            && matches!(outcome, Offer::InOrder | Offer::OutOfOrder)
        {
            let min_gap = (self.rtt / 2).max(1_000);
            if self
                .last_recovery_update
                .is_none_or(|t| now.saturating_sub(t) >= min_gap)
            {
                self.last_recovery_update = Some(now);
                self.send_update(0, now);
            }
        }
    }

    /// PARITY (FEC extension): attempt local reconstruction of a single
    /// lost packet in the covered block; a success is injected through
    /// the normal DATA path (clearing its pending NAK on the way).
    fn on_parity(&mut self, pkt: &Packet, now: Micros) {
        self.stats.fec_parities_received += 1;
        if !self.window.attached() {
            return;
        }
        let next = self.window.next_u64();
        let block_start = unwrap_seq(pkt.header.seq, next);
        let k = u64::from(pkt.header.length);
        // Both fields are attacker-controlled: a forged block position or
        // width must not fabricate a giant missing span (or overflow).
        if k > u64::from(crate::MAX_CONTROL_SPAN)
            || block_start > next.saturating_add(u64::from(crate::MAX_CONTROL_SPAN))
        {
            self.stats.malformed_packets += 1;
            return;
        }
        let missing = self.window.missing_below(block_start + k);
        let have = |s: u64| !missing.iter().any(|&(f, c)| s >= f && s < f + u64::from(c));
        let recovered = self
            .fec
            .as_mut()
            .and_then(|dec| dec.on_parity(block_start, pkt, have));
        if let Some((lost, payload)) = recovered {
            self.stats.fec_recoveries += 1;
            let mut synth = Packet::data(
                pkt.header.src_port,
                pkt.header.dst_port,
                lost as Seq,
                payload,
            );
            synth.header.rate_adv = pkt.header.rate_adv;
            self.on_data(&synth, now);
        }
    }

    fn on_probe(&mut self, pkt: &Packet, now: Micros) {
        self.stats.probes_received += 1;
        self.updates.on_probe();
        if !self.window.attached() {
            return; // never heard any data; nothing to confirm or request
        }
        let next = self.window.next_u64();
        let useq = unwrap_seq(pkt.header.seq, next);
        // A forged sequence far ahead of the stream — or "behind" an
        // early stream position, which unwraps to a huge u64 — would
        // fabricate an enormous missing range. Drop it.
        if useq > next.saturating_add(u64::from(crate::MAX_CONTROL_SPAN)) {
            self.stats.malformed_packets += 1;
            return;
        }
        if self.window.has_all_through(useq) {
            // "If so, then it immediately sends an UPDATE packet to the
            // sender" — echoing the probe nonce for the RTT sample.
            self.send_update(pkt.header.length, now);
        } else {
            // "Otherwise, the receiver generates a NAK message for the
            // needed data" — immediately, bypassing suppression.
            let missing = self.window.missing_below(useq.saturating_add(1));
            self.naks.register(&missing, now);
            let ranges = self.naks.force_below(useq.saturating_add(1), now);
            self.send_naks(&ranges, now, NakTrigger::Probe);
        }
    }

    fn on_keepalive(&mut self, pkt: &Packet, now: Micros) {
        self.stats.keepalives_received += 1;
        if !self.window.attached() {
            return;
        }
        // The keepalive names the last packet transmitted; anything below
        // it that we lack was lost at the tail of a burst (paper §2).
        let next = self.window.next_u64();
        let last = unwrap_seq(pkt.header.seq, next);
        // Same plausibility bound as PROBE: a forged far-future (or
        // wrapped-behind) sequence must not fabricate a giant gap.
        if last > next.saturating_add(u64::from(crate::MAX_CONTROL_SPAN)) {
            self.stats.malformed_packets += 1;
            return;
        }
        let missing = self.window.missing_below(last.saturating_add(1));
        let fresh = self.naks.note_missing(&missing, now);
        self.note_suppressed(&missing, &fresh, now);
        self.send_naks(&fresh, now, NakTrigger::Keepalive);
    }

    fn on_nak_err(&mut self, pkt: &Packet, now: Micros) {
        self.stats.nak_errs_received += 1;
        if !self.window.attached() {
            return;
        }
        // The sender cannot supply these packets; the application is told
        // and the stream continues past the hole (each lost packet becomes
        // a zero-length segment so reassembly can advance). In RMC mode
        // this is the documented reliability hole; in Hybrid mode it can
        // only happen for data released before this receiver's JOIN
        // arrived (the join race — see the sender's NAK handling).
        let first = pkt.header.seq;
        // Attacker-controlled span: clamp before looping (an honest
        // NAK_ERR answers one of our own NAK ranges, which the pending
        // cap already bounds).
        let count = pkt.header.length.max(1);
        if count > crate::MAX_CONTROL_SPAN {
            self.stats.malformed_packets += 1;
        }
        let count = count.min(crate::MAX_CONTROL_SPAN);
        self.events
            .push_back(ReceiverEvent::DataLost { seq: first, count });
        for i in 0..count {
            let seq = first.wrapping_add(i);
            let useq = unwrap_seq(seq, self.window.next_u64());
            self.naks.satisfy(useq);
            let _ = self.window.offer(seq, bytes::Bytes::new(), false);
        }
        self.naks.satisfy_below(self.window.next_u64());
        self.check_stream_complete();
        let _ = now;
    }

    /// Local recovery: a peer multicast a NAK. If we hold the requested
    /// data, schedule a repair after a port-keyed slot delay; hearing the
    /// data from anyone first cancels it (SRM-style suppression).
    fn on_peer_nak(&mut self, pkt: &Packet, now: Micros) {
        self.stats.peer_naks_heard += 1;
        if !self.window.attached() {
            return;
        }
        let Some(cache) = self.repair_cache.as_ref() else {
            return;
        };
        let first = unwrap_seq(pkt.header.seq, self.window.next_u64());
        // Attacker-controlled span: clamp before looping.
        let raw = pkt.header.length.max(1);
        if raw > crate::MAX_CONTROL_SPAN {
            self.stats.malformed_packets += 1;
        }
        let count = u64::from(raw.min(crate::MAX_CONTROL_SPAN));
        // Slot the response by port with half-RTT spacing: a repair from
        // an earlier slot propagates to later-slot holders before their
        // timers fire, so typically one peer answers (SRM-style
        // suppression without per-pair distance estimates).
        let slot = u64::from(self.local_port % 16);
        let fire_at = now + (self.rtt / 2).max(1_000) * (1 + slot);
        for useq in first..first.saturating_add(count) {
            if cache.contains_key(&useq) {
                self.pending_repairs.entry(useq).or_insert(fire_at);
            }
        }
    }

    /// Fire scheduled peer repairs that came due.
    fn fire_repairs(&mut self, now: Micros) {
        let Some(cache) = self.repair_cache.as_ref() else {
            return;
        };
        let due: Vec<u64> = self
            .pending_repairs
            .iter()
            .filter(|(_, at)| **at <= now)
            .map(|(s, _)| *s)
            .collect();
        if due.is_empty() {
            return;
        }
        let mut repairs = Vec::new();
        for useq in due {
            self.pending_repairs.remove(&useq);
            if let Some(payload) = cache.get(&useq) {
                let mut pkt = Packet::data(
                    self.local_port,
                    self.group_port,
                    useq as Seq,
                    payload.clone(),
                );
                // Preserve the sender's advertisement so peers' flow
                // control keeps a sane rate estimate.
                pkt.header.rate_adv = self.advertised_rate.min(u64::from(u32::MAX)) as u32;
                pkt.header.tries = 1;
                repairs.push(pkt);
            }
        }
        for pkt in repairs {
            self.stats.repairs_sent += 1;
            self.out.push_back(Outgoing {
                dest: Dest::Multicast,
                packet: pkt,
            });
        }
    }

    fn on_join_response(&mut self, _pkt: &Packet, now: Micros) {
        if let JoinState::Sent { at, .. } = self.join {
            // The handshake round trip is the receiver's RTT sample.
            self.rtt = now.saturating_sub(at).max(self.config.min_rtt);
            self.join = JoinState::Confirmed;
            self.join_attempts = 0;
            self.join_delay = self.config.join_retry;
            self.events.push_back(ReceiverEvent::Joined);
            emit!(self, now, Event::Joined { rtt_us: self.rtt });
        }
    }

    /// Latch the terminal failure state: timers disarm, packets are
    /// ignored, and the application is told once.
    fn fail_session(&mut self, now: Micros) {
        if self.failed {
            return;
        }
        self.failed = true;
        self.stats.session_failures += 1;
        self.events.push_back(ReceiverEvent::SessionFailed);
        emit!(self, now, Event::SessionFailed);
    }

    /// `true` once the session failed terminally (sender presumed dead or
    /// JOIN retry budget exhausted).
    pub fn has_failed(&self) -> bool {
        self.failed
    }

    /// Record an incoming datagram discarded for checksum failure. The
    /// driver decodes (and checksum-verifies) before the engine ever
    /// sees a packet, so it reports the failure here for stats/events.
    pub fn note_checksum_failure(&mut self, now: Micros) {
        self.stats.checksum_failures += 1;
        emit!(self, now, Event::ChecksumFailed);
    }

    // ------------------------------------------------------------------
    // Observer helpers
    // ------------------------------------------------------------------

    /// Report each coalesced run of satisfied NAK entries as one recovery,
    /// with latency measured from the earliest first-noted time in the run.
    fn emit_recovered(&mut self, filled: &[(u64, Micros)], now: Micros) {
        if self.observer.is_none() {
            return;
        }
        let mut iter = filled.iter().copied();
        let Some((mut first, mut noted)) = iter.next() else {
            return;
        };
        let mut count = 1u32;
        for (seq, n) in iter {
            if seq == first + u64::from(count) {
                count += 1;
                noted = noted.min(n);
            } else {
                let elapsed_us = now.saturating_sub(noted);
                emit!(
                    self,
                    now,
                    Event::Recovered {
                        first,
                        count,
                        elapsed_us
                    }
                );
                first = seq;
                noted = n;
                count = 1;
            }
        }
        let elapsed_us = now.saturating_sub(noted);
        emit!(
            self,
            now,
            Event::Recovered {
                first,
                count,
                elapsed_us
            }
        );
    }

    /// Report how many already-pending gaps local NAK suppression held
    /// back (the difference between the gaps noted and the fresh ones).
    fn note_suppressed(&mut self, missing: &[(u64, u32)], fresh: &[(u64, u32)], now: Micros) {
        if self.observer.is_none() {
            return;
        }
        let total: u64 = missing.iter().map(|&(_, c)| u64::from(c)).sum();
        let fresh_n: u64 = fresh.iter().map(|&(_, c)| u64::from(c)).sum();
        if total > fresh_n {
            emit!(
                self,
                now,
                Event::NakSuppressed {
                    pending: (total - fresh_n) as u32
                }
            );
        }
    }

    /// Report window-region crossings (both fill-side and drain-side).
    fn note_region(&mut self, now: Micros) {
        if self.observer.is_none() {
            return;
        }
        let region = self.window.region();
        if region != self.last_region {
            emit!(
                self,
                now,
                Event::RegionChanged {
                    from: self.last_region,
                    to: region
                }
            );
            self.last_region = region;
        }
    }

    // ------------------------------------------------------------------
    // Flow control: the three rate-request rules (paper §2)
    // ------------------------------------------------------------------

    fn flow_control(&mut self, now: Micros) {
        self.note_region(now);
        match self.window.region() {
            // Rule 1: "if the receive window is filled only into the safe
            // region, then no flow control action is taken".
            Region::Safe => {}
            // Rule 2: warning region — request a lower rate if the sender
            // would overrun the free window within WARNBUF RTTs at the
            // advertised rate.
            Region::Warning => {
                let lookahead_bytes = self.advertised_rate as f64
                    * (self.config.warnbuf_rtts as f64 * self.rtt as f64 / 1_000_000.0);
                if lookahead_bytes > self.window.free_bytes() as f64 {
                    let min_gap = scale(self.rtt, self.config.control_min_interval_rtts);
                    if self
                        .last_control
                        .is_none_or(|t| now.saturating_sub(t) >= min_gap)
                    {
                        self.last_control = Some(now);
                        self.send_control(false, now);
                    }
                }
            }
            // Rule 3: critical region — urgent request, which stops
            // forward transmission for two RTTs regardless of rate.
            Region::Critical => {
                let min_gap = scale(self.rtt, self.config.urgent_stop_rtts as f64);
                if self
                    .last_urgent
                    .is_none_or(|t| now.saturating_sub(t) >= min_gap)
                {
                    self.last_urgent = Some(now);
                    self.last_control = Some(now);
                    self.send_control(true, now);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers (nak_timer, update_timer, join retry)
    // ------------------------------------------------------------------

    /// Run one receiver tick at `now`. Drivers call this every jiffy.
    pub fn on_tick(&mut self, now: Micros) {
        if self.failed {
            return; // terminal: every timer is disarmed
        }

        // Sender-death detection: silence beyond keepalive_max × factor
        // means even a fully backed-off keepalive line went quiet.
        if let Some(deadline) = self.death_deadline() {
            if now >= deadline {
                self.fail_session(now);
                return;
            }
        }

        // NAK manager: re-send suppressed NAKs whose interval lapsed.
        let suppress =
            scale(self.rtt, self.config.nak_suppress_rtts).max(self.config.nak_suppress_floor);
        let due = self.naks.due(now, suppress);
        self.send_naks(&due, now, NakTrigger::Timer);

        // Update generator.
        if self.window.attached() && self.updates.poll(now) {
            self.send_update(0, now);
        }

        // JOIN retry while unconfirmed: exponential backoff (with
        // optional deterministic per-member jitter), bounded by the
        // retry budget when one is configured.
        if let JoinState::Sent { at, echoed } = self.join {
            if now.saturating_sub(at) >= self.jittered_join_delay() {
                if self.config.join_retry_limit != 0
                    && self.join_attempts >= self.config.join_retry_limit
                {
                    self.fail_session(now);
                    return;
                }
                self.join_delay = (self.join_delay * 2).min(self.config.join_retry_max);
                self.send_join(echoed, now);
            }
        }

        // Local recovery: answer peers whose slot delay has lapsed.
        self.fire_repairs(now);
    }

    /// Absolute time at which sender silence becomes terminal, or `None`
    /// when death detection is off, the handshake never completed, the
    /// stream already completed, or nothing was ever heard.
    fn death_deadline(&self) -> Option<Micros> {
        if self.config.sender_death_factor == 0
            || self.join != JoinState::Confirmed
            || self.window.stream_complete()
        {
            return None;
        }
        let heard = self.last_sender_heard?;
        Some(heard + self.config.keepalive_max * u64::from(self.config.sender_death_factor))
    }

    /// Absolute time of the earliest armed timer [`on_tick`] would act
    /// on, or `None` when the receiver is fully idle (no missing data, no
    /// periodic updates, no JOIN retry pending, no scheduled peer
    /// repairs). A deadline-driven driver may sleep until this time and
    /// re-query after every `handle_packet` call, which can arm or
    /// disarm any of these timers.
    ///
    /// [`on_tick`]: ReceiverEngine::on_tick
    pub fn next_wakeup(&self, now: Micros) -> Option<Micros> {
        if self.failed {
            return None; // terminal: nothing will ever fire again
        }
        let mut next: Option<Micros> = None;
        let mut arm = |t: Micros| next = Some(next.map_or(t, |cur| cur.min(t)));

        let suppress =
            scale(self.rtt, self.config.nak_suppress_rtts).max(self.config.nak_suppress_floor);
        if let Some(t) = self.naks.next_due(suppress) {
            arm(t);
        }
        if self.window.attached() && self.config.update_mode != UpdateMode::Disabled {
            arm(self.updates.next_fire());
        }
        if let JoinState::Sent { at, .. } = self.join {
            arm(at.saturating_add(self.jittered_join_delay()));
        }
        if let Some(t) = self.death_deadline() {
            arm(t);
        }
        if let Some(&t) = self.pending_repairs.values().min() {
            arm(t);
        }
        next.map(|t| t.max(now))
    }

    // ------------------------------------------------------------------
    // Application interface (hrmc_recvmsg)
    // ------------------------------------------------------------------

    /// Copy up to `buf.len()` in-order bytes to the application.
    pub fn read(&mut self, buf: &mut [u8], now: Micros) -> usize {
        let n = self.window.read(buf);
        self.stats.bytes_delivered += n as u64;
        if self.window.readable_bytes() == 0 {
            self.had_readable = false;
        }
        self.note_region(now);
        n
    }

    /// Discard up to `n` readable bytes (a measuring sink that does not
    /// need the data). Returns the count discarded.
    pub fn consume(&mut self, n: usize, now: Micros) -> usize {
        let taken = self.window.consume(n);
        self.stats.bytes_delivered += taken as u64;
        if self.window.readable_bytes() == 0 {
            self.had_readable = false;
        }
        self.note_region(now);
        taken
    }

    /// Close the connection: "a receiver informs the supporting network
    /// layer that it wishes to leave the multicast group and sends a
    /// LEAVE message to the sender" (paper §2).
    pub fn close(&mut self, _now: Micros) {
        if self.leaving {
            return;
        }
        self.leaving = true;
        let seq = self.window.rcv_nxt().unwrap_or(0);
        let pkt = Packet::control(PacketType::Leave, self.local_port, self.group_port, seq);
        self.push_out(pkt);
    }

    // ------------------------------------------------------------------
    // Packet construction and output
    // ------------------------------------------------------------------

    fn send_join(&mut self, echoed: Seq, now: Micros) {
        self.join = JoinState::Sent { at: now, echoed };
        self.join_attempts += 1;
        let pkt = Packet::control(PacketType::Join, self.local_port, self.group_port, echoed);
        self.push_out(pkt);
    }

    /// The effective JOIN retry delay: the exponential-backoff base,
    /// optionally spread by `config.join_jitter`. The spread is a pure
    /// FNV-1a hash of (local port, attempt number) — deterministic, no
    /// RNG draws — so a cohort of receivers restarting in lock-step
    /// (mobile churn, mass re-home after a partition heal) desynchronise
    /// their retries instead of thundering at the sender together, while
    /// any single member's schedule stays reproducible.
    fn jittered_join_delay(&self) -> Micros {
        if self.config.join_jitter <= 0.0 {
            return self.join_delay;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .local_port
            .to_be_bytes()
            .iter()
            .chain(self.join_attempts.to_be_bytes().iter())
        {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Top 53 bits -> uniform fraction in [0, 1); map to [-1, 1).
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        let spread = self.config.join_jitter * (2.0 * frac - 1.0);
        ((self.join_delay as f64 * (1.0 + spread)) as Micros).max(1)
    }

    fn send_update(&mut self, nonce: u32, now: Micros) {
        let Some(rcv_nxt) = self.window.rcv_nxt() else {
            return;
        };
        let mut pkt = Packet::control(
            PacketType::Update,
            self.local_port,
            self.group_port,
            rcv_nxt,
        );
        pkt.header.length = nonce;
        self.stats.updates_sent += 1;
        emit!(self, now, Event::UpdateSent { nonce });
        self.push_out(pkt);
    }

    fn send_naks(&mut self, ranges: &[(u64, u32)], now: Micros, trigger: NakTrigger) {
        let Some(rcv_nxt) = self.window.rcv_nxt() else {
            return;
        };
        for &(first, count) in ranges {
            let mut pkt = Packet::control(
                PacketType::Nak,
                self.local_port,
                self.group_port,
                first as Seq,
            );
            pkt.header.length = count;
            // NAKs piggyback rcv_nxt in the rate-advertisement field so
            // the sender's membership state stays exact (Header docs).
            pkt.header.rate_adv = rcv_nxt;
            self.stats.naks_sent += 1;
            emit!(
                self,
                now,
                Event::NakSent {
                    first,
                    count,
                    trigger
                }
            );
            if self.config.local_recovery {
                // Multicast so peers can repair (the sender hears it too).
                self.out.push_back(Outgoing {
                    dest: Dest::Multicast,
                    packet: pkt,
                });
            } else {
                self.push_out(pkt);
            }
        }
    }

    fn send_control(&mut self, urgent: bool, _now: Micros) {
        let Some(rcv_nxt) = self.window.rcv_nxt() else {
            return;
        };
        let mut pkt = Packet::control(
            PacketType::Control,
            self.local_port,
            self.group_port,
            rcv_nxt,
        );
        pkt.header.flags.urg = urgent;
        // Suggest the rate at which the free window would last WARNBUF
        // round trips.
        let window_secs =
            (self.config.warnbuf_rtts as f64 * self.rtt as f64 / 1_000_000.0).max(1e-6);
        pkt.header.rate_adv = ((self.window.free_bytes() as f64 / window_secs) as u64)
            .min(u64::from(u32::MAX)) as u32;
        self.stats.rate_requests_sent += 1;
        if urgent {
            self.stats.urgent_rate_requests_sent += 1;
        }
        self.push_out(pkt);
    }

    fn note_readable(&mut self) {
        if !self.had_readable && self.window.readable_bytes() > 0 {
            self.had_readable = true;
            self.events.push_back(ReceiverEvent::DataReady);
        }
    }

    fn check_stream_complete(&mut self) {
        if self.window.stream_complete() && !self.stream_complete_emitted {
            self.stream_complete_emitted = true;
            self.events.push_back(ReceiverEvent::StreamComplete);
        }
    }

    fn push_out(&mut self, packet: Packet) {
        self.out.push_back(Outgoing {
            dest: Dest::Sender,
            packet,
        });
    }

    /// Drain one outgoing packet, if any (always destined to the sender).
    pub fn poll_output(&mut self) -> Option<Outgoing> {
        self.out.pop_front()
    }

    /// Drain one application event, if any.
    pub fn poll_event(&mut self) -> Option<ReceiverEvent> {
        self.events.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn engine() -> ReceiverEngine {
        ReceiverEngine::new(ProtocolConfig::hrmc().with_buffer(64 * 1024), 8000, 7001, 0)
    }

    fn data(seq: Seq, len: usize) -> Packet {
        let mut p = Packet::data(7000, 7001, seq, Bytes::from(vec![seq as u8; len]));
        p.header.rate_adv = 1_000_000;
        p
    }

    fn drain(r: &mut ReceiverEngine) -> Vec<Outgoing> {
        std::iter::from_fn(|| r.poll_output()).collect()
    }

    fn packets_of(out: &[Outgoing], t: PacketType) -> Vec<&Outgoing> {
        out.iter().filter(|o| o.packet.header.ptype == t).collect()
    }

    #[test]
    fn next_wakeup_none_when_fully_idle() {
        let r = engine();
        assert_eq!(r.next_wakeup(0), None);
    }

    #[test]
    fn next_wakeup_is_min_of_armed_timers() {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.update_mode = UpdateMode::Disabled;
        let mut r = ReceiverEngine::new(cfg, 8000, 7001, 0);
        // First data arms the JOIN retry timer.
        r.handle_packet(&data(0, 100), 1_000);
        drain(&mut r);
        assert_eq!(r.next_wakeup(1_000), Some(1_000 + 200_000));
        // JOIN_RESPONSE confirms the handshake and disarms it (updates
        // are disabled, so the receiver goes fully idle). RTT is now
        // 5 ms.
        let resp = Packet::control(PacketType::JoinResponse, 7000, 7001, 0);
        r.handle_packet(&resp, 6_000);
        assert_eq!(r.next_wakeup(6_000), None);
        // A gap arms the NAK suppression timer: last_sent + suppression
        // interval (5 ms RTT × 1.5 = 7.5 ms beats the 2 ms floor).
        r.handle_packet(&data(2, 100), 10_000);
        drain(&mut r);
        assert_eq!(r.next_wakeup(10_000), Some(17_500));
        // The reported deadline is never in the past.
        assert_eq!(r.next_wakeup(30_000), Some(30_000));
        // The retransmission fills the gap and disarms the timer.
        r.handle_packet(&data(1, 100), 12_000);
        assert_eq!(r.next_wakeup(12_000), None);
    }

    #[test]
    fn first_data_triggers_join() {
        let mut r = engine();
        r.handle_packet(&data(10, 100), 1_000);
        let out = drain(&mut r);
        let joins = packets_of(&out, PacketType::Join);
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].packet.header.seq, 10);
        assert_eq!(r.rcv_nxt(), Some(11));
    }

    #[test]
    fn join_response_completes_handshake_and_samples_rtt() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 1_000);
        drain(&mut r);
        let resp = Packet::control(PacketType::JoinResponse, 7000, 7001, 0);
        r.handle_packet(&resp, 6_000);
        assert_eq!(r.rtt(), 5_000);
        assert_eq!(r.poll_event(), Some(ReceiverEvent::DataReady));
        assert_eq!(r.poll_event(), Some(ReceiverEvent::Joined));
    }

    #[test]
    fn join_retried_until_confirmed() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        r.on_tick(100_000); // before join_retry (200 ms)
        assert!(drain(&mut r).is_empty());
        r.on_tick(200_000);
        let out = drain(&mut r);
        assert_eq!(packets_of(&out, PacketType::Join).len(), 1);
        // Confirmed: no more retries.
        let resp = Packet::control(PacketType::JoinResponse, 7000, 7001, 0);
        r.handle_packet(&resp, 210_000);
        r.on_tick(600_000);
        assert!(packets_of(&drain(&mut r), PacketType::Join).is_empty());
    }

    #[test]
    fn join_jitter_spreads_retries_deterministically() {
        let cfg = ProtocolConfig::hrmc()
            .with_buffer(64 * 1024)
            .join_jitter(0.25);
        // A cohort of receivers that all heard first data at t=0 would
        // retry JOIN in lock-step at exactly 200 ms; jitter must spread
        // them while keeping each member's own schedule reproducible.
        let mut delays = Vec::new();
        for port in [8000u16, 8001, 8002, 8003, 8004, 8005, 8006, 8007] {
            let mut r = ReceiverEngine::new(cfg.clone(), port, 7001, 0);
            r.handle_packet(&data(0, 100), 0);
            drain(&mut r);
            let d = r.jittered_join_delay();
            // Within ±25% of the 200 ms base, never zero.
            assert!((150_000..=250_000).contains(&d), "delay {d} out of band");
            // Deterministic: a twin engine lands on the same delay.
            let mut twin = ReceiverEngine::new(cfg.clone(), port, 7001, 0);
            twin.handle_packet(&data(0, 100), 0);
            drain(&mut twin);
            assert_eq!(twin.jittered_join_delay(), d);
            delays.push(d);
        }
        let distinct: std::collections::BTreeSet<_> = delays.iter().collect();
        assert!(
            distinct.len() >= 6,
            "jitter failed to spread the cohort: {delays:?}"
        );
        // The jittered deadline drives both the retry check and the
        // wakeup timer, so the two stay consistent.
        let mut r = ReceiverEngine::new(cfg, 9000, 7001, 0);
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        let d = r.jittered_join_delay();
        assert_eq!(r.next_wakeup(0), Some(d));
        r.on_tick(d - 1);
        assert!(packets_of(&drain(&mut r), PacketType::Join).is_empty());
        r.on_tick(d);
        assert_eq!(packets_of(&drain(&mut r), PacketType::Join).len(), 1);
        // Default config (jitter 0.0) keeps the exact pinned schedule.
        let mut plain = engine();
        plain.handle_packet(&data(0, 100), 0);
        drain(&mut plain);
        assert_eq!(plain.jittered_join_delay(), 200_000);
    }

    #[test]
    fn hostile_control_packets_are_audited_and_dropped() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        // KEEPALIVE advertising a last-sequence far beyond any plausible
        // window: dropped and audited, and no giant gap is fabricated.
        let far = Packet::control(
            PacketType::Keepalive,
            7000,
            7001,
            crate::MAX_CONTROL_SPAN + 100,
        );
        r.handle_packet(&far, 1_000);
        assert_eq!(r.stats.malformed_packets, 1);
        assert!(packets_of(&drain(&mut r), PacketType::Nak).is_empty());
        // A "behind" sequence that sign-extends and wraps to a huge
        // unwrapped value (the `x + 1` overflow hazard).
        let wrapped = Packet::control(PacketType::Keepalive, 7000, 7001, u32::MAX);
        r.handle_packet(&wrapped, 2_000);
        assert_eq!(r.stats.malformed_packets, 2);
        // Same forged sequence on a PROBE: audited, and no UPDATE or
        // NAK storm is provoked.
        let mut probe = Packet::control(PacketType::Probe, 7000, 7001, u32::MAX);
        probe.header.length = 77; // nonce
        r.handle_packet(&probe, 3_000);
        assert_eq!(r.stats.malformed_packets, 3);
        assert!(packets_of(&drain(&mut r), PacketType::Update).is_empty());
        // NAK_ERR spanning 2^32 sequences: span clamped (the test would
        // hang for minutes if the loop trusted the field). It names a
        // range past the live stream so the clamped prefix it does mark
        // lost cannot eat the honest data below.
        let mut ne = Packet::control(PacketType::NakErr, 7000, 7001, 10_000);
        ne.header.length = u32::MAX;
        r.handle_packet(&ne, 4_000);
        assert_eq!(r.stats.malformed_packets, 4);
        // After all that abuse the receiver still works: honest data
        // flows and an honest KEEPALIVE is not flagged.
        r.handle_packet(&data(1, 100), 5_000);
        let ok = Packet::control(PacketType::Keepalive, 7000, 7001, 1);
        r.handle_packet(&ok, 6_000);
        assert_eq!(r.stats.malformed_packets, 4);
        assert_eq!(r.stats.data_packets_received, 2);
        assert!(!r.has_failed());
    }

    #[test]
    fn gap_naks_immediately_with_rcv_nxt_piggyback() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        r.handle_packet(&data(3, 100), 1_000); // gap: 1, 2
        let out = drain(&mut r);
        let naks = packets_of(&out, PacketType::Nak);
        assert_eq!(naks.len(), 1);
        assert_eq!(naks[0].packet.header.seq, 1);
        assert_eq!(naks[0].packet.header.length, 2);
        assert_eq!(naks[0].packet.header.rate_adv, 1); // rcv_nxt
        assert_eq!(r.stats.naks_sent, 1);
    }

    #[test]
    fn nak_suppression_then_timer_resend() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        r.handle_packet(&data(2, 100), 1_000); // gap: 1
        drain(&mut r);
        // More out-of-order data does not re-NAK the known gap.
        r.handle_packet(&data(3, 100), 2_000);
        assert!(packets_of(&drain(&mut r), PacketType::Nak).is_empty());
        // The nak_timer re-sends after the suppression interval
        // (rtt 10 ms default × 1.5 = 15 ms).
        r.on_tick(10_000);
        assert!(packets_of(&drain(&mut r), PacketType::Nak).is_empty());
        r.on_tick(20_000);
        let naks: Vec<_> = drain(&mut r);
        assert_eq!(packets_of(&naks, PacketType::Nak).len(), 1);
    }

    #[test]
    fn retransmission_fills_gap_and_clears_nak() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        r.handle_packet(&data(2, 100), 1_000);
        drain(&mut r);
        r.handle_packet(&data(1, 100), 5_000);
        assert_eq!(r.rcv_nxt(), Some(3));
        // No pending NAK left: the timer stays silent forever.
        r.on_tick(1_000_000);
        assert!(packets_of(&drain(&mut r), PacketType::Nak).is_empty());
        let mut buf = [0u8; 1024];
        assert_eq!(r.read(&mut buf, 5_000), 300);
    }

    #[test]
    fn probe_when_complete_sends_update_with_nonce() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        r.handle_packet(&data(1, 100), 1_000);
        drain(&mut r);
        let mut probe = Packet::control(PacketType::Probe, 7000, 7001, 1);
        probe.header.length = 77; // nonce
        r.handle_packet(&probe, 2_000);
        let out = drain(&mut r);
        let ups = packets_of(&out, PacketType::Update);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].packet.header.seq, 2); // rcv_nxt
        assert_eq!(ups[0].packet.header.length, 77); // echoed nonce
        assert_eq!(r.stats.probes_received, 1);
    }

    #[test]
    fn probe_when_incomplete_naks_immediately() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        // The sender asks about seq 2; we lack 1 and 2 entirely (no gap
        // was ever visible from data).
        let probe = Packet::control(PacketType::Probe, 7000, 7001, 2);
        r.handle_packet(&probe, 2_000);
        let out = drain(&mut r);
        let naks = packets_of(&out, PacketType::Nak);
        assert_eq!(naks.len(), 1);
        assert_eq!(naks[0].packet.header.seq, 1);
        assert_eq!(naks[0].packet.header.length, 2);
        assert!(packets_of(&out, PacketType::Update).is_empty());
    }

    #[test]
    fn keepalive_reveals_tail_loss() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        // Sender says the last transmitted packet was 4; 1..=4 missing.
        let ka = Packet::control(PacketType::Keepalive, 7000, 7001, 4);
        r.handle_packet(&ka, 50_000);
        let out = drain(&mut r);
        let naks = packets_of(&out, PacketType::Nak);
        assert_eq!(naks.len(), 1);
        assert_eq!(naks[0].packet.header.seq, 1);
        assert_eq!(naks[0].packet.header.length, 4);
        assert_eq!(r.stats.keepalives_received, 1);
    }

    #[test]
    fn update_timer_fires_and_adapts() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        assert_eq!(r.update_period_jiffies(), 50);
        r.on_tick(500_000);
        let out = drain(&mut r);
        let ups = packets_of(&out, PacketType::Update);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].packet.header.seq, 1);
        assert_eq!(ups[0].packet.header.length, 0); // unsolicited: no nonce
                                                    // Probe-free period: period grew by a jiffy.
        assert_eq!(r.update_period_jiffies(), 51);
        // A probed period shrinks back.
        let probe = Packet::control(PacketType::Probe, 7000, 7001, 0);
        r.handle_packet(&probe, 600_000);
        drain(&mut r);
        r.on_tick(500_000 + 510_000);
        drain(&mut r);
        assert_eq!(r.update_period_jiffies(), 50);
    }

    #[test]
    fn no_updates_before_attach() {
        let mut r = engine();
        r.on_tick(10_000_000);
        assert!(drain(&mut r).is_empty());
        assert_eq!(r.stats.updates_sent, 0);
    }

    #[test]
    fn warning_region_sends_rate_request() {
        // Tiny buffer so occupancy rises fast; huge advertised rate so
        // rule 2 trips.
        let cfg = ProtocolConfig::hrmc()
            .with_buffer(4_000)
            .with_segment_size(1_000);
        let mut r = ReceiverEngine::new(cfg, 8000, 7001, 0);
        r.handle_packet(&data(0, 1_000), 0); // 25%
        r.handle_packet(&data(1, 1_000), 1_000); // 50% → warning
        let out = drain(&mut r);
        let ctls = packets_of(&out, PacketType::Control);
        assert_eq!(ctls.len(), 1);
        assert!(!ctls[0].packet.header.flags.urg);
        assert_eq!(ctls[0].packet.header.seq, 2); // rcv_nxt
        assert!(ctls[0].packet.header.rate_adv > 0); // suggested rate
        assert_eq!(r.stats.rate_requests_sent, 1);
    }

    #[test]
    fn critical_region_sends_urgent() {
        let cfg = ProtocolConfig::hrmc()
            .with_buffer(4_000)
            .with_segment_size(1_000);
        let mut r = ReceiverEngine::new(cfg, 8000, 7001, 0);
        for i in 0..4 {
            r.handle_packet(&data(i, 1_000), i as u64 * 100);
        }
        let out = drain(&mut r);
        let urgent: Vec<_> = packets_of(&out, PacketType::Control)
            .into_iter()
            .filter(|o| o.packet.header.flags.urg)
            .collect();
        assert_eq!(urgent.len(), 1);
        assert_eq!(r.stats.urgent_rate_requests_sent, 1);
    }

    #[test]
    fn safe_region_sends_nothing() {
        let mut r = engine(); // 64 KiB buffer; 200 bytes is deep in safe
        r.handle_packet(&data(0, 100), 0);
        r.handle_packet(&data(1, 100), 100);
        let out = drain(&mut r);
        assert!(packets_of(&out, PacketType::Control).is_empty());
    }

    #[test]
    fn rate_requests_throttled_per_rtt() {
        let cfg = ProtocolConfig::hrmc()
            .with_buffer(8_000)
            .with_segment_size(1_000);
        let mut r = ReceiverEngine::new(cfg, 8000, 7001, 0);
        // Fill to warning and keep hammering within one RTT (10 ms).
        for i in 0..6 {
            r.handle_packet(&data(i, 1_000), 1_000 + i as u64);
        }
        let out = drain(&mut r);
        let warn: Vec<_> = packets_of(&out, PacketType::Control)
            .into_iter()
            .filter(|o| !o.packet.header.flags.urg)
            .collect();
        assert_eq!(warn.len(), 1, "warning requests not throttled");
    }

    #[test]
    fn locked_socket_backlogs_then_drains() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        r.lock();
        r.handle_packet(&data(1, 100), 1_000);
        r.handle_packet(&data(2, 100), 1_100);
        assert_eq!(r.rcv_nxt(), Some(1)); // nothing processed yet
        assert_eq!(r.stats.backlogged_packets, 2);
        r.unlock(2_000);
        assert_eq!(r.rcv_nxt(), Some(3));
        let mut buf = [0u8; 1024];
        assert_eq!(r.read(&mut buf, 2_000), 300);
    }

    #[test]
    fn fin_completes_stream() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        let mut fin = data(1, 50);
        fin.header.flags.fin = true;
        r.handle_packet(&fin, 1_000);
        assert!(r.stream_complete());
        assert!(std::iter::from_fn(|| r.poll_event()).any(|e| e == ReceiverEvent::StreamComplete));
        let mut buf = [0u8; 1024];
        assert_eq!(r.read(&mut buf, 2_000), 150);
        assert!(r.fully_consumed());
    }

    #[test]
    fn nak_err_skips_hole_and_informs_app() {
        let cfg = ProtocolConfig::rmc().with_buffer(64 * 1024);
        let mut r = ReceiverEngine::new(cfg, 8000, 7001, 0);
        r.handle_packet(&data(0, 100), 0);
        r.handle_packet(&data(3, 100), 1_000); // gap 1, 2
        drain(&mut r);
        let mut err = Packet::control(PacketType::NakErr, 7000, 7001, 1);
        err.header.length = 2;
        r.handle_packet(&err, 2_000);
        // The hole closed: rcv_nxt advanced past the lost packets.
        assert_eq!(r.rcv_nxt(), Some(4));
        assert!(std::iter::from_fn(|| r.poll_event())
            .any(|e| e == ReceiverEvent::DataLost { seq: 1, count: 2 }));
        // No NAKs remain pending.
        r.on_tick(1_000_000);
        assert!(packets_of(&drain(&mut r), PacketType::Nak).is_empty());
        assert_eq!(r.stats.nak_errs_received, 1);
    }

    #[test]
    fn close_sends_leave_and_response_completes() {
        let mut r = engine();
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        r.close(1_000);
        let out = drain(&mut r);
        assert_eq!(packets_of(&out, PacketType::Leave).len(), 1);
        r.close(1_500); // idempotent
        assert!(drain(&mut r).is_empty());
        let resp = Packet::control(PacketType::LeaveResponse, 7000, 7001, 0);
        r.handle_packet(&resp, 2_000);
        assert!(std::iter::from_fn(|| r.poll_event()).any(|e| e == ReceiverEvent::Left));
    }

    #[test]
    fn join_backoff_doubles_to_cap() {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.update_mode = UpdateMode::Disabled;
        cfg.join_retry_max = 800_000; // 200 ms → 400 → 800 (cap)
        let mut r = ReceiverEngine::new(cfg, 8000, 7001, 0);
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        assert_eq!(r.next_wakeup(0), Some(200_000));
        r.on_tick(200_000); // retry 1: delay doubles to 400 ms
        assert_eq!(packets_of(&drain(&mut r), PacketType::Join).len(), 1);
        assert_eq!(r.next_wakeup(200_000), Some(600_000));
        r.on_tick(600_000); // retry 2: delay caps at 800 ms
        drain(&mut r);
        assert_eq!(r.next_wakeup(600_000), Some(1_400_000));
        r.on_tick(1_400_000); // retry 3: delay stays at the cap
        drain(&mut r);
        assert_eq!(r.next_wakeup(1_400_000), Some(2_200_000));
    }

    #[test]
    fn join_budget_exhaustion_fails_session() {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.update_mode = UpdateMode::Disabled;
        cfg.join_retry_limit = 3;
        let mut r = ReceiverEngine::new(cfg, 8000, 7001, 0);
        r.handle_packet(&data(0, 100), 0); // attempt 1
        drain(&mut r);
        r.on_tick(200_000); // attempt 2
        r.on_tick(400_000); // attempt 3
        assert_eq!(packets_of(&drain(&mut r), PacketType::Join).len(), 2);
        assert!(!r.has_failed());
        r.on_tick(600_000); // budget exhausted
        assert!(r.has_failed());
        assert_eq!(r.stats.session_failures, 1);
        assert!(std::iter::from_fn(|| r.poll_event()).any(|e| e == ReceiverEvent::SessionFailed));
        // Terminal: every timer disarmed, no further output, and the
        // failure is reported exactly once.
        assert_eq!(r.next_wakeup(600_000), None);
        r.on_tick(800_000);
        assert!(drain(&mut r).is_empty());
        assert_eq!(r.stats.session_failures, 1);
    }

    #[test]
    fn sender_silence_fails_session() {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.update_mode = UpdateMode::Disabled;
        cfg.sender_death_factor = 2; // 2 × 2 s = 4 s of silence
        let mut r = ReceiverEngine::new(cfg, 8000, 7001, 0);
        r.handle_packet(&data(0, 100), 0);
        drain(&mut r);
        let resp = Packet::control(PacketType::JoinResponse, 7000, 7001, 0);
        r.handle_packet(&resp, 5_000);
        // The death deadline arms next_wakeup (otherwise idle).
        assert_eq!(r.next_wakeup(6_000), Some(5_000 + 4_000_000));
        r.on_tick(3_000_000);
        assert!(!r.has_failed());
        r.on_tick(4_005_000);
        assert!(r.has_failed());
        assert!(std::iter::from_fn(|| r.poll_event()).any(|e| e == ReceiverEvent::SessionFailed));
        assert_eq!(r.next_wakeup(4_005_000), None);
        // Packets after the terminal failure are ignored.
        r.handle_packet(&data(1, 100), 4_100_000);
        assert_eq!(r.rcv_nxt(), Some(1));
    }

    #[test]
    fn completed_stream_never_declares_sender_death() {
        let mut cfg = ProtocolConfig::hrmc().with_buffer(64 * 1024);
        cfg.update_mode = UpdateMode::Disabled;
        cfg.sender_death_factor = 2;
        let mut r = ReceiverEngine::new(cfg, 8000, 7001, 0);
        let mut fin = data(0, 50);
        fin.header.flags.fin = true;
        r.handle_packet(&fin, 0);
        drain(&mut r);
        let resp = Packet::control(PacketType::JoinResponse, 7000, 7001, 0);
        r.handle_packet(&resp, 5_000);
        assert!(r.stream_complete());
        r.on_tick(60_000_000); // way past any silence deadline
        assert!(!r.has_failed());
    }

    #[test]
    fn receiver_checksum_failures_are_counted() {
        let mut r = engine();
        r.note_checksum_failure(10);
        assert_eq!(r.stats.checksum_failures, 1);
    }

    #[test]
    fn duplicates_and_overflow_counted() {
        let cfg = ProtocolConfig::hrmc()
            .with_buffer(2_000)
            .with_segment_size(1_000);
        let mut r = ReceiverEngine::new(cfg, 8000, 7001, 0);
        r.handle_packet(&data(0, 1_000), 0);
        r.handle_packet(&data(0, 1_000), 100);
        assert_eq!(r.stats.duplicates_dropped, 1);
        r.handle_packet(&data(1, 1_000), 200);
        r.handle_packet(&data(2, 1_000), 300); // buffer full → drop
        assert_eq!(r.stats.overflow_drops, 1);
    }
}
