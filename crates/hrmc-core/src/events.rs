//! Events the engines raise toward their host applications — the
//! sans-io analog of the kernel driver waking a blocked process or
//! signalling an error to user space.

use hrmc_wire::Seq;

use crate::PeerId;

/// Events raised by the sender engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenderEvent {
    /// A receiver joined the group.
    MemberJoined(PeerId),
    /// A receiver left the group.
    MemberLeft(PeerId),
    /// A receiver was forcibly ejected: it stopped answering PROBEs (K
    /// consecutive failures) or fell silent past the configured deadline.
    /// Its confirmations no longer gate buffer release, so the transfer
    /// proceeds for the survivors; data the ejected receiver lacked is
    /// no longer guaranteed to it.
    MemberEjected(PeerId),
    /// Send-buffer space became available after a blocked
    /// [`submit`](crate::sender::SenderEngine::submit); the application
    /// may retry.
    SendSpaceAvailable,
    /// Every byte of the closed stream has been released: all receivers
    /// confirmed (Hybrid) or residency expired (RMC). The transfer is over.
    TransferComplete,
    /// RMC mode only: a NAK arrived for data already released. The paper:
    /// "both the sending and the receiving applications are informed of
    /// the retransmission error and can take appropriate actions".
    RetransmissionError {
        /// The receiver that asked.
        peer: PeerId,
        /// First released sequence number it asked for.
        seq: Seq,
    },
}

/// Events raised by the receiver engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiverEvent {
    /// The JOIN handshake completed (JOIN_RESPONSE received).
    Joined,
    /// In-order data became available to read.
    DataReady,
    /// The stream completed: FIN received and every preceding byte
    /// assembled. (The application may still have unread buffered data.)
    StreamComplete,
    /// RMC mode only: the sender answered a NAK with NAK_ERR — bytes are
    /// irrecoverably missing and the application must recover out of band.
    DataLost {
        /// First lost sequence number.
        seq: Seq,
        /// Number of lost packets.
        count: u32,
    },
    /// The LEAVE handshake completed.
    Left,
    /// Terminal failure: the sender is presumed dead (keepalive silence
    /// beyond the configured deadline) or the JOIN retry budget ran out.
    /// The engine disarms its timers; the application must tear the
    /// session down and recover out of band.
    SessionFailed,
}
