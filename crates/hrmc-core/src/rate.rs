//! The rate-based half of H-RMC flow control (paper §2, Flow Control).
//!
//! The sender maintains a current transmission rate, advertised in every
//! outgoing packet. The rate evolves through two stages modelled on TCP
//! congestion control (the paper cites Jacobson):
//!
//! * **slow start** — the rate doubles once per RTT until it crosses the
//!   slow-start threshold;
//! * **congestion avoidance** — the rate grows linearly per RTT.
//!
//! Three feedback signals shrink it:
//!
//! * a **NAK** or a **warning rate request** halves the rate and switches
//!   to linear increase ("On receipt of a NAK or a warning rate request,
//!   the sender cuts its transmission rate by half and begins a linear
//!   increase in transmission rate");
//! * an **urgent rate request** stops forward transmission for two RTTs,
//!   after which the rate restarts from the minimum in slow start ("At the
//!   beginning of data transmission for a new connection, and any time
//!   following an urgent rate request, the sender sets the transmission
//!   rate to a minimum value and uses slow start and congestion avoidance
//!   phases").
//!
//! The [`RateController`] also implements the transmitter's per-jiffy byte
//! budget: each tick the controller converts elapsed time × rate into a
//! byte allowance with bounded carry-over, so a stalled tick cannot bank
//! an unbounded burst.

use crate::time::{scale, Micros};

/// Growth phase of the transmission rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatePhase {
    /// Exponential growth: the rate doubles each RTT.
    SlowStart,
    /// Linear growth per RTT.
    CongestionAvoidance,
    /// Forward transmission stopped until the embedded deadline (urgent
    /// rate request); leaves for slow start at the deadline.
    Stopped {
        /// Absolute time at which transmission may resume.
        until: Micros,
    },
}

/// Two-stage rate controller with a per-tick byte budget.
#[derive(Debug, Clone)]
pub struct RateController {
    rate: u64,
    ssthresh: u64,
    min_rate: u64,
    max_rate: u64,
    linear_step: u64,
    phase: RatePhase,
    /// Last time the rate was grown (growth applied once per RTT).
    last_growth: Micros,
    /// Last time the rate was halved (congestion events deduplicated).
    last_halving: Option<Micros>,
    halving_min_interval_rtts: f64,
    urgent_stop_rtts: u32,
    /// Fractional-byte budget accumulator (microsecond-rate products).
    credit_us_bytes: u128,
    /// Overdraft to repay before new credit accrues: the transmitter may
    /// finish a packet that straddles the end of its allowance, and that
    /// excess must be charged to the next tick or the long-run rate
    /// creeps above the cap (enough, at ~7% for full-size segments, to
    /// slowly fill a transmit queue the cap was chosen to protect).
    deficit_us_bytes: u128,
    /// Last time the budget accumulator ran.
    last_budget: Micros,
    /// Number of rate halvings taken (stat).
    pub halvings: u64,
    /// Number of urgent stops taken (stat).
    pub urgent_stops: u64,
}

impl RateController {
    /// Create a controller starting at `min_rate` in slow start at `now`.
    pub fn new(
        min_rate: u64,
        max_rate: u64,
        initial_ssthresh_fraction: f64,
        linear_step: u64,
        halving_min_interval_rtts: f64,
        urgent_stop_rtts: u32,
        now: Micros,
    ) -> RateController {
        let ssthresh =
            ((max_rate as f64 * initial_ssthresh_fraction) as u64).clamp(min_rate, max_rate);
        RateController {
            rate: min_rate,
            ssthresh,
            min_rate,
            max_rate,
            linear_step,
            phase: RatePhase::SlowStart,
            last_growth: now,
            last_halving: None,
            halving_min_interval_rtts,
            urgent_stop_rtts,
            credit_us_bytes: 0,
            deficit_us_bytes: 0,
            last_budget: now,
            halvings: 0,
            urgent_stops: 0,
        }
    }

    /// Current transmission rate in bytes/second. This is the value
    /// advertised in the header's rate-advertisement field; it is reported
    /// as the pre-stop rate while stopped (receivers judge rule 2 against
    /// it) but [`RateController::budget`] yields zero during a stop.
    #[inline]
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Current phase.
    #[inline]
    pub fn phase(&self) -> RatePhase {
        self.phase
    }

    /// `true` while an urgent stop is in force at `now`.
    pub fn is_stopped(&self, now: Micros) -> bool {
        matches!(self.phase, RatePhase::Stopped { until } if now < until)
    }

    /// Grow the rate if at least one RTT has elapsed since the last
    /// growth step. Called from the transmitter tick.
    pub fn on_tick(&mut self, now: Micros, rtt: Micros) {
        if let RatePhase::Stopped { until } = self.phase {
            if now >= until {
                // Restart from the minimum in slow start (paper §2 rule 3).
                self.rate = self.min_rate;
                self.phase = RatePhase::SlowStart;
                self.last_growth = now;
            }
            return;
        }
        let rtt = rtt.max(1);
        while now.saturating_sub(self.last_growth) >= rtt {
            self.last_growth += rtt;
            match self.phase {
                RatePhase::SlowStart => {
                    self.rate = (self.rate * 2).min(self.max_rate);
                    if self.rate >= self.ssthresh {
                        self.phase = RatePhase::CongestionAvoidance;
                    }
                }
                RatePhase::CongestionAvoidance => {
                    self.rate = (self.rate + self.linear_step).min(self.max_rate);
                }
                RatePhase::Stopped { .. } => unreachable!("handled above"),
            }
        }
    }

    /// React to a NAK or warning rate request: halve the rate (at most
    /// once per `halving_min_interval_rtts`) and begin linear increase.
    /// `suggested` is the rate the receiver proposed in the CONTROL
    /// packet's rate-advertisement field, if any.
    pub fn on_congestion(&mut self, now: Micros, rtt: Micros, suggested: Option<u64>) {
        if self.is_stopped(now) {
            return; // already fully stopped; nothing softer applies
        }
        let min_gap = scale(rtt, self.halving_min_interval_rtts);
        if let Some(last) = self.last_halving {
            if now.saturating_sub(last) < min_gap {
                return; // same congestion event
            }
        }
        self.last_halving = Some(now);
        self.halvings += 1;
        let mut new_rate = (self.rate / 2).max(self.min_rate);
        if let Some(s) = suggested {
            // "the receivers use it in feedback messages to suggest a
            // lower sending rate" — honor a suggestion below our halved
            // rate, but never drop under the minimum.
            new_rate = new_rate.min(s.max(self.min_rate));
        }
        self.rate = new_rate;
        self.ssthresh = self.rate.max(self.min_rate);
        self.phase = RatePhase::CongestionAvoidance;
        self.last_growth = now;
    }

    /// React to an urgent rate request: stop forward transmission for
    /// `urgent_stop_rtts` RTTs; on resume, restart from the minimum rate
    /// in slow start.
    pub fn on_urgent(&mut self, now: Micros, rtt: Micros) {
        let until = now + (rtt.max(1)) * self.urgent_stop_rtts as u64;
        match self.phase {
            // Extend an in-force stop rather than resetting counters.
            RatePhase::Stopped { until: cur } if cur >= until => {}
            _ => {
                self.phase = RatePhase::Stopped { until };
                self.urgent_stops += 1;
            }
        }
        self.credit_us_bytes = 0;
    }

    /// Compute the byte budget for a transmitter tick at `now`: elapsed
    /// time × rate, with carry-over capped at one tick's worth so stalls
    /// do not bank unbounded bursts. Returns 0 while stopped.
    pub fn budget(&mut self, now: Micros, tick: Micros) -> usize {
        if self.is_stopped(now) {
            self.last_budget = now;
            self.credit_us_bytes = 0;
            self.deficit_us_bytes = 0;
            return 0;
        }
        let elapsed = now.saturating_sub(self.last_budget);
        self.last_budget = now;
        // Accumulate rate × elapsed in byte·µs to keep integer math
        // exact, repaying any overdraft first.
        let mut accrued = self.rate as u128 * elapsed as u128;
        let repay = accrued.min(self.deficit_us_bytes);
        self.deficit_us_bytes -= repay;
        accrued -= repay;
        let cap = 2 * (self.rate as u128) * (tick.max(1) as u128);
        self.credit_us_bytes = (self.credit_us_bytes + accrued).min(cap);
        let bytes = self.credit_us_bytes / 1_000_000;
        self.credit_us_bytes -= bytes * 1_000_000;
        bytes as usize
    }

    /// Charge bytes sent *beyond* the granted budget (a packet that
    /// straddled the allowance boundary): repaid out of future accrual.
    pub fn overdraw(&mut self, bytes: usize) {
        self.deficit_us_bytes += bytes as u128 * 1_000_000;
    }

    /// Charge `bytes` back against the budget accumulator; used when the
    /// transmitter could not use its whole allowance (window empty) so the
    /// unused allowance does not evaporate mid-burst. Capped identically
    /// to [`RateController::budget`].
    pub fn refund(&mut self, bytes: usize, tick: Micros) {
        let cap = 2 * (self.rate as u128) * (tick.max(1) as u128);
        self.credit_us_bytes = (self.credit_us_bytes + bytes as u128 * 1_000_000).min(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(now: Micros) -> RateController {
        RateController::new(64_000, 10_000_000, 1.0, 64_000, 1.0, 2, now)
    }

    #[test]
    fn starts_at_min_rate_in_slow_start() {
        let c = ctl(0);
        assert_eq!(c.rate(), 64_000);
        assert_eq!(c.phase(), RatePhase::SlowStart);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = ctl(0);
        let rtt = 10_000;
        c.on_tick(rtt, rtt);
        assert_eq!(c.rate(), 128_000);
        c.on_tick(2 * rtt, rtt);
        assert_eq!(c.rate(), 256_000);
        // Several RTTs at once apply several doublings.
        c.on_tick(5 * rtt, rtt);
        assert_eq!(c.rate(), 2_048_000);
    }

    #[test]
    fn rate_caps_at_max() {
        let mut c = ctl(0);
        c.on_tick(1_000_000_000, 10_000);
        assert_eq!(c.rate(), 10_000_000);
    }

    #[test]
    fn congestion_halves_and_goes_linear() {
        let mut c = ctl(0);
        c.on_tick(100_000, 10_000); // grow for 10 RTTs
        let before = c.rate();
        c.on_congestion(100_000, 10_000, None);
        assert_eq!(c.rate(), before / 2);
        assert_eq!(c.phase(), RatePhase::CongestionAvoidance);
        // Next RTT grows linearly, not exponentially.
        c.on_tick(110_000, 10_000);
        assert_eq!(c.rate(), before / 2 + 64_000);
    }

    #[test]
    fn congestion_events_deduplicated_within_rtt() {
        let mut c = ctl(0);
        c.on_tick(100_000, 10_000);
        let before = c.rate();
        c.on_congestion(100_000, 10_000, None);
        c.on_congestion(100_001, 10_000, None); // burst of NAKs: one event
        c.on_congestion(105_000, 10_000, None);
        assert_eq!(c.rate(), before / 2);
        assert_eq!(c.halvings, 1);
        // After an RTT, a new event counts.
        c.on_congestion(111_000, 10_000, None);
        assert_eq!(c.halvings, 2);
    }

    #[test]
    fn receiver_suggestion_is_honored_when_lower() {
        let mut c = ctl(0);
        c.on_tick(200_000, 10_000);
        c.on_congestion(200_000, 10_000, Some(70_000));
        assert_eq!(c.rate(), 70_000);
        // A suggestion below min_rate clamps to min_rate.
        c.on_congestion(300_000, 10_000, Some(1));
        assert_eq!(c.rate(), 64_000);
    }

    #[test]
    fn urgent_stops_for_two_rtts_then_restarts_minimum() {
        let mut c = ctl(0);
        c.on_tick(100_000, 10_000);
        assert!(c.rate() > 64_000);
        c.on_urgent(100_000, 10_000);
        assert!(c.is_stopped(100_000));
        assert!(c.is_stopped(119_999));
        assert_eq!(c.budget(110_000, 10_000), 0);
        // Stop expires after 2 RTTs; next tick restarts slow start at min.
        c.on_tick(120_000, 10_000);
        assert!(!c.is_stopped(120_000));
        assert_eq!(c.rate(), 64_000);
        assert_eq!(c.phase(), RatePhase::SlowStart);
        assert_eq!(c.urgent_stops, 1);
    }

    #[test]
    fn budget_tracks_rate_and_elapsed_time() {
        let mut c = ctl(0);
        // 64000 B/s for 10 ms = 640 bytes.
        assert_eq!(c.budget(10_000, 10_000), 640);
        // Nothing accrues with no elapsed time.
        assert_eq!(c.budget(10_000, 10_000), 0);
        // Carry-over is capped at ~2 ticks' worth.
        let b = c.budget(10_000_000, 10_000);
        assert!(b <= 2 * 640, "banked burst too large: {b}");
    }

    #[test]
    fn refund_returns_unused_budget() {
        let mut c = ctl(0);
        let b = c.budget(10_000, 10_000);
        c.refund(b, 10_000);
        assert_eq!(c.budget(10_000, 10_000), b);
    }

    #[test]
    fn budget_fractional_bytes_accumulate() {
        // 64000 B/s for 1 µs = 0.064 bytes; over 1000 µs ticks it must sum
        // to ~64 bytes, not zero.
        let mut c = ctl(0);
        let mut total = 0;
        for t in 1..=1000u64 {
            total += c.budget(t, 10_000);
        }
        assert_eq!(total, 64);
    }
}
