//! The sender's keepalive controller (paper §2 and Figure 8, `ka_timer`).
//!
//! "A potential problem in NAK-based protocols is that the loss of the
//! last packet in a burst of data may go undetected until the next burst
//! begins. As in other protocols, RMC addresses this problem by
//! transmitting keepalive packets. These packets contain the sequence
//! number of the last packet transmitted. To avoid congestion of
//! keepalive packets during periods of inactivity, the keepalive packets
//! are exponentially backed off up to a maximum delay (currently 2
//! seconds)."
//!
//! The controller also runs "after an urgent rate request and during
//! other periods when the window cannot be advanced" (paper §4.2), which
//! falls out naturally: any lull in data/retransmission traffic arms it.

use crate::time::Micros;

/// Exponential-backoff keepalive timer.
#[derive(Debug, Clone)]
pub struct KeepaliveController {
    /// Current delay before the next keepalive.
    delay: Micros,
    initial_delay: Micros,
    max_delay: Micros,
    /// When the last data, retransmission, or keepalive left the sender.
    last_activity: Micros,
    /// Total keepalives fired (stat).
    pub keepalives_fired: u64,
}

impl KeepaliveController {
    /// Create a controller; the clock starts at `now`.
    pub fn new(initial_delay: Micros, max_delay: Micros, now: Micros) -> KeepaliveController {
        KeepaliveController {
            delay: initial_delay,
            initial_delay,
            max_delay,
            last_activity: now,
            keepalives_fired: 0,
        }
    }

    /// Record data or retransmission traffic: resets the backoff.
    pub fn on_activity(&mut self, now: Micros) {
        self.last_activity = now;
        self.delay = self.initial_delay;
    }

    /// Poll the timer. Returns `true` when a KEEPALIVE should be sent;
    /// firing doubles the delay up to the cap.
    pub fn poll(&mut self, now: Micros) -> bool {
        if now.saturating_sub(self.last_activity) < self.delay {
            return false;
        }
        self.last_activity = now;
        self.delay = (self.delay * 2).min(self.max_delay);
        self.keepalives_fired += 1;
        true
    }

    /// Current backoff delay.
    pub fn delay(&self) -> Micros {
        self.delay
    }

    /// Time of the next possible firing.
    pub fn next_fire(&self) -> Micros {
        self.last_activity + self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_line_fires_keepalive() {
        let mut k = KeepaliveController::new(200_000, 2_000_000, 0);
        assert!(!k.poll(199_999));
        assert!(k.poll(200_000));
        assert_eq!(k.keepalives_fired, 1);
    }

    #[test]
    fn backoff_doubles_to_cap() {
        let mut k = KeepaliveController::new(200_000, 2_000_000, 0);
        let mut delays = Vec::new();
        for _ in 0..6 {
            let now = k.next_fire();
            assert!(k.poll(now));
            delays.push(k.delay());
        }
        assert_eq!(
            delays,
            vec![400_000, 800_000, 1_600_000, 2_000_000, 2_000_000, 2_000_000]
        );
    }

    #[test]
    fn activity_resets_backoff() {
        let mut k = KeepaliveController::new(200_000, 2_000_000, 0);
        for _ in 0..5 {
            let t = k.next_fire();
            k.poll(t);
        }
        assert_eq!(k.delay(), 2_000_000);
        k.on_activity(10_000_000);
        assert_eq!(k.delay(), 200_000);
        assert!(!k.poll(10_100_000));
        assert!(k.poll(10_200_000));
    }

    #[test]
    fn data_traffic_suppresses_keepalives() {
        let mut k = KeepaliveController::new(200_000, 2_000_000, 0);
        // Activity every 100 ms keeps the timer from ever firing.
        for i in 1..100u64 {
            k.on_activity(i * 100_000);
            assert!(!k.poll(i * 100_000 + 50_000));
        }
        assert_eq!(k.keepalives_fired, 0);
    }
}
