//! Online protocol health monitoring: a sans-io, bounded-memory
//! streaming monitor that consumes the [`ProtocolObserver`] event stream
//! (plus periodic [`TelemetrySample`]s) and evaluates protocol
//! invariants *while the protocol runs* — NAK storms, window stalls,
//! livelock, RTT divergence, recovery-backlog growth, imminent and
//! false member ejections. Each rule emits a structured [`Alert`] with
//! hysteresis (separate raise/clear thresholds, a sustain requirement
//! before raising, and a minimum hold before clearing) so alerts never
//! flap.
//!
//! The monitor is a pure observer: it never mutates protocol state, so
//! an armed monitor cannot perturb trajectories, and a disabled one
//! ([`HealthConfig::disabled`]) costs one branch per event — the same
//! zero-cost contract as the rest of the observability layer.
//!
//! Memory is bounded by construction: windowed rates live in a fixed
//! ring of time buckets, ejection tracking in a capped set, and the
//! alert history in a capped deque. Nothing grows with run length.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::obs::{Event, ProtocolObserver};
use crate::telemetry::TelemetrySample;
use crate::time::Micros;

/// Number of time buckets the sliding window is divided into.
const WINDOW_BUCKETS: usize = 10;
/// Alert-history ring bound.
const HISTORY_CAP: usize = 256;
/// Bound on the tracked set of ejected members (false-ejection rule).
const EJECTED_CAP: usize = 64;
/// Minimum windowed NAK count before the NAK-storm ratio is meaningful.
const NAK_STORM_MIN_NAKS: u64 = 10;
/// Minimum windowed event count before the livelock ratio is meaningful.
const LIVELOCK_MIN_EVENTS: u64 = 300;

/// The protocol invariant a rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertRule {
    /// Windowed NAK packets per delivered segment exceeded the bound —
    /// the group is spending its feedback budget on loss reports.
    NakStorm,
    /// No release/delivery/recovery progress for longer than the bound
    /// while recovery work is pending — the pipeline is stalled.
    WindowStall,
    /// Windowed observer events per delivered segment exceeded the bound
    /// — the protocol is spinning without making forward progress (the
    /// same invariant the hostile matrix asserts post-hoc).
    Livelock,
    /// The smoothed RTT diverged from its run baseline (rolling minimum)
    /// by more than the bound, sustained — standing queues are building.
    RttDivergence,
    /// The event-derived recovery backlog (NAKed-but-unrecovered
    /// segments) exceeded the bound, sustained.
    BacklogGrowth,
    /// Consecutive unanswered PROBEs approached `probe_failure_limit` —
    /// a member is about to be ejected.
    EjectionImminent,
    /// A member showed activity *after* being ejected — the ejection was
    /// false (the online form of the post-hoc `hrmc analyze` audit).
    FalseEjection,
}

impl AlertRule {
    /// Every rule, in a stable order.
    pub const ALL: [AlertRule; 7] = [
        AlertRule::NakStorm,
        AlertRule::WindowStall,
        AlertRule::Livelock,
        AlertRule::RttDivergence,
        AlertRule::BacklogGrowth,
        AlertRule::EjectionImminent,
        AlertRule::FalseEjection,
    ];

    /// Stable lower-case name (JSONL `rule` field value).
    pub fn name(self) -> &'static str {
        match self {
            AlertRule::NakStorm => "nak_storm",
            AlertRule::WindowStall => "window_stall",
            AlertRule::Livelock => "livelock",
            AlertRule::RttDivergence => "rtt_divergence",
            AlertRule::BacklogGrowth => "backlog_growth",
            AlertRule::EjectionImminent => "ejection_imminent",
            AlertRule::FalseEjection => "false_ejection",
        }
    }

    /// Inverse of [`AlertRule::name`].
    pub fn from_name(name: &str) -> Option<AlertRule> {
        AlertRule::ALL.into_iter().find(|r| r.name() == name)
    }
}

/// How urgent a raised alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Degradation worth watching.
    Warning,
    /// The protocol is failing its contract (stall, livelock, false
    /// ejection).
    Critical,
}

impl Severity {
    /// Stable lower-case name (JSONL `severity` field value).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// Inverse of [`Severity::name`].
    pub fn from_name(name: &str) -> Option<Severity> {
        match name {
            "warning" => Some(Severity::Warning),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// One alert transition: a rule crossing into (`raised == true`) or out
/// of (`raised == false`) its alarmed state, with numeric evidence. All
/// evidence is fixed-point — `value_m`/`limit_m` are the observed value
/// and the threshold in milli-units of the rule's natural unit (see the
/// DESIGN.md rule table) — so the alert stays `Copy` and renders without
/// allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alert {
    /// Engine clock at the transition (µs).
    pub t_us: Micros,
    /// Which invariant.
    pub rule: AlertRule,
    /// Configured severity of the rule.
    pub severity: Severity,
    /// `true` = raised, `false` = cleared.
    pub raised: bool,
    /// Observed value, milli-units (e.g. 1500 = 1.5 NAKs/delivered).
    /// For [`AlertRule::FalseEjection`] this is the peer id.
    pub value_m: u64,
    /// The raise threshold the value is judged against, milli-units.
    pub limit_m: u64,
}

impl Alert {
    /// The schema event this alert renders as.
    pub fn to_event(self) -> Event {
        Event::HealthAlert {
            rule: self.rule,
            severity: self.severity,
            raised: self.raised,
            value_m: self.value_m,
            limit_m: self.limit_m,
        }
    }
}

/// Per-rule tuning: thresholds and hysteresis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleConfig {
    /// Evaluate this rule at all.
    pub enabled: bool,
    /// Severity attached to its alerts.
    pub severity: Severity,
    /// Raise once the value reaches this (milli-units) …
    pub raise_m: u64,
    /// … and has stayed there for this long (µs).
    pub sustain_us: u64,
    /// Clear once the value falls to/below this (milli-units) …
    pub clear_m: u64,
    /// … but never sooner than this after raising (µs) — the anti-flap
    /// hold.
    pub min_hold_us: u64,
}

impl RuleConfig {
    /// A disabled rule (thresholds irrelevant).
    pub fn off() -> RuleConfig {
        RuleConfig {
            enabled: false,
            severity: Severity::Warning,
            raise_m: u64::MAX,
            sustain_us: 0,
            clear_m: 0,
            min_hold_us: 0,
        }
    }
}

/// Monitor configuration: the sliding-window geometry plus one
/// [`RuleConfig`] per rule. [`HealthConfig::default`] arms every rule
/// with conservative thresholds (tuned so a healthy or merely jittery
/// run stays silent); [`HealthConfig::disabled`] turns every rule off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthConfig {
    /// Sliding-window span for rate rules (µs).
    pub window_us: u64,
    /// Rule-evaluation grid: rules are (re)judged at most this often
    /// (µs), piggybacked on event arrival — no timer of its own.
    pub eval_interval_us: u64,
    /// The protocol's `probe_failure_limit`, for the imminent-ejection
    /// rule (0 disables that rule regardless of its config).
    pub probe_failure_limit: u32,
    /// NAK-storm rule (value: windowed NAKs per delivered segment).
    pub nak_storm: RuleConfig,
    /// Window-stall rule (value: µs since last progress, in ms).
    pub window_stall: RuleConfig,
    /// Livelock rule (value: windowed events per delivered segment).
    pub livelock: RuleConfig,
    /// RTT-divergence rule (value: srtt / rolling-min ratio, evaluated
    /// only while recovery work is outstanding).
    pub rtt_divergence: RuleConfig,
    /// Backlog-growth rule (value: outstanding NAKed segments).
    pub backlog_growth: RuleConfig,
    /// Imminent-ejection rule (value: consecutive unanswered PROBEs;
    /// raise threshold derived from `probe_failure_limit`).
    pub ejection_imminent: RuleConfig,
    /// False-ejection rule (event-driven, raises once, never clears).
    pub false_ejection: RuleConfig,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            window_us: 1_000_000,
            eval_interval_us: 100_000,
            probe_failure_limit: 0,
            nak_storm: RuleConfig {
                enabled: true,
                severity: Severity::Warning,
                raise_m: 1_000, // ≥ 1 NAK per delivered segment
                sustain_us: 200_000,
                clear_m: 250,
                min_hold_us: 500_000,
            },
            window_stall: RuleConfig {
                enabled: true,
                severity: Severity::Critical,
                raise_m: 2_000, // 2 s without progress, work pending
                sustain_us: 0,  // the value *is* a duration
                clear_m: 500,
                min_hold_us: 500_000,
            },
            livelock: RuleConfig {
                enabled: true,
                severity: Severity::Critical,
                raise_m: 50_000, // ≥ 50 events per delivered segment
                sustain_us: 300_000,
                clear_m: 10_000,
                min_hold_us: 500_000,
            },
            rtt_divergence: RuleConfig {
                enabled: true,
                severity: Severity::Warning,
                raise_m: 8_000, // srtt ≥ 8 × its rolling minimum …
                // … for 2 s: a burst of delay spikes inflates srtt for
                // about its own duration (latency is not death); only a
                // standing queue keeps it pinned this long.
                sustain_us: 2_000_000,
                clear_m: 3_000,
                min_hold_us: 1_000_000,
            },
            backlog_growth: RuleConfig {
                enabled: true,
                severity: Severity::Warning,
                raise_m: 150_000, // ≥ 150 NAKed-but-unrecovered segments
                sustain_us: 300_000,
                clear_m: 30_000,
                min_hold_us: 500_000,
            },
            ejection_imminent: RuleConfig {
                enabled: true,
                severity: Severity::Warning,
                raise_m: 0, // derived from probe_failure_limit
                sustain_us: 0,
                clear_m: 0,
                min_hold_us: 0,
            },
            false_ejection: RuleConfig {
                enabled: true,
                severity: Severity::Critical,
                raise_m: 0, // event-driven
                sustain_us: 0,
                clear_m: 0,
                min_hold_us: 0,
            },
        }
    }
}

impl HealthConfig {
    /// Every rule off: the provably zero-cost configuration (the
    /// monitor's event hook reduces to one branch).
    pub fn disabled() -> HealthConfig {
        HealthConfig {
            window_us: 1_000_000,
            eval_interval_us: 100_000,
            probe_failure_limit: 0,
            nak_storm: RuleConfig::off(),
            window_stall: RuleConfig::off(),
            livelock: RuleConfig::off(),
            rtt_divergence: RuleConfig::off(),
            backlog_growth: RuleConfig::off(),
            ejection_imminent: RuleConfig::off(),
            false_ejection: RuleConfig::off(),
        }
    }

    /// The config for one rule.
    pub fn rule(&self, rule: AlertRule) -> &RuleConfig {
        match rule {
            AlertRule::NakStorm => &self.nak_storm,
            AlertRule::WindowStall => &self.window_stall,
            AlertRule::Livelock => &self.livelock,
            AlertRule::RttDivergence => &self.rtt_divergence,
            AlertRule::BacklogGrowth => &self.backlog_growth,
            AlertRule::EjectionImminent => &self.ejection_imminent,
            AlertRule::FalseEjection => &self.false_ejection,
        }
    }

    /// `true` when at least one rule is enabled.
    pub fn armed(&self) -> bool {
        AlertRule::ALL.into_iter().any(|r| self.rule(r).enabled)
    }
}

/// One sliding-window time bucket.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    naks: u64,
    delivered: u64,
    events: u64,
}

/// Per-rule hysteresis state.
#[derive(Debug, Clone, Copy, Default)]
struct RuleState {
    raised: bool,
    /// Condition continuously ≥ raise threshold since (for sustain).
    over_since: Option<u64>,
    raised_at: u64,
    last_value_m: u64,
}

/// The streaming monitor. Feed it events via [`ProtocolObserver`] (or
/// [`HealthMonitor::on_event_tagged`] when the stream carries member
/// attribution, as the simulator's does) and optionally
/// [`TelemetrySample`]s; drain alert transitions with
/// [`HealthMonitor::take_alerts`].
pub struct HealthMonitor {
    cfg: HealthConfig,
    armed: bool,
    bucket_us: u64,
    /// Index (now / bucket_us) of the bucket currently written.
    cur_bucket: u64,
    buckets: [Bucket; WINDOW_BUCKETS],
    last_now: u64,
    next_eval: u64,
    /// Last time a release/delivery/recovery made forward progress.
    last_progress: u64,
    /// Event-derived recovery backlog: gap-triggered NAK spans opened
    /// minus recovered spans (saturating — FEC can recover un-NAKed
    /// gaps).
    backlog: u64,
    srtt_us: u64,
    min_rtt_us: u64,
    /// Consecutive PROBEs without an intervening answer (probe RTT
    /// sample, UPDATE, or release progress).
    probe_streak: u32,
    /// Peers ejected so far (bounded; false-ejection evidence).
    ejected: Vec<u32>,
    /// Peer whose post-ejection activity proved an ejection false.
    false_ejection_peer: Option<u32>,
    states: [RuleState; AlertRule::ALL.len()],
    pending: Vec<Alert>,
    history: VecDeque<Alert>,
    raised_total: u64,
}

impl HealthMonitor {
    /// A monitor with the given configuration.
    pub fn new(cfg: HealthConfig) -> HealthMonitor {
        let armed = cfg.armed();
        let bucket_us = (cfg.window_us / WINDOW_BUCKETS as u64).max(1);
        HealthMonitor {
            cfg,
            armed,
            bucket_us,
            cur_bucket: 0,
            buckets: [Bucket::default(); WINDOW_BUCKETS],
            last_now: 0,
            next_eval: 0,
            last_progress: 0,
            backlog: 0,
            srtt_us: 0,
            min_rtt_us: 0,
            probe_streak: 0,
            ejected: Vec::new(),
            false_ejection_peer: None,
            states: [RuleState::default(); AlertRule::ALL.len()],
            pending: Vec::new(),
            history: VecDeque::new(),
            raised_total: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// `true` when at least one rule is enabled.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Number of rules currently in the raised state.
    pub fn active(&self) -> u64 {
        self.states.iter().filter(|s| s.raised).count() as u64
    }

    /// Cumulative raise transitions.
    pub fn raised_total(&self) -> u64 {
        self.raised_total
    }

    /// Drain alert transitions emitted since the last call.
    pub fn take_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.pending)
    }

    /// The most recent transitions (bounded ring), oldest first.
    pub fn history(&self) -> impl Iterator<Item = &Alert> {
        self.history.iter()
    }

    /// Rules currently raised, with their latest evidence.
    pub fn active_alerts(&self) -> Vec<Alert> {
        AlertRule::ALL
            .into_iter()
            .zip(self.states.iter())
            .filter(|(_, s)| s.raised)
            .map(|(rule, s)| Alert {
                t_us: s.raised_at,
                rule,
                severity: self.cfg.rule(rule).severity,
                raised: true,
                value_m: s.last_value_m,
                limit_m: self.raise_threshold(rule),
            })
            .collect()
    }

    /// Feed one event, optionally attributed to a group member (the
    /// simulator tags receiver host `h` as member `h - 1`). Untagged
    /// streams still evaluate every rule except false-ejection, which
    /// needs to know *who* spoke.
    pub fn on_event_tagged(&mut self, now: Micros, ev: &Event, member: Option<u32>) {
        if !self.armed {
            return;
        }
        self.last_now = self.last_now.max(now);
        self.advance_window(self.last_now);
        let b = &mut self.buckets[(self.cur_bucket % WINDOW_BUCKETS as u64) as usize];
        b.events += 1;
        match *ev {
            Event::NakSent { count, trigger, .. } => {
                b.naks += 1;
                if trigger == crate::obs::NakTrigger::Gap {
                    self.backlog = self.backlog.saturating_add(u64::from(count));
                }
            }
            Event::Delivered { count, .. } => {
                b.delivered += u64::from(count);
                self.last_progress = self.last_now;
            }
            Event::Recovered { count, .. } => {
                self.backlog = self.backlog.saturating_sub(u64::from(count));
                self.last_progress = self.last_now;
            }
            Event::ReleaseAttempt { released: true, .. } => {
                // A released buffer is sender-side proof of end-to-end
                // progress: every receiver holds the segment. It must
                // count toward the per-delivered denominators, because a
                // pure sender stream (live `hrmc send`) never carries
                // `Delivered` events and would otherwise read as a
                // livelock the moment it pushes >LIVELOCK_MIN_EVENTS
                // events per window.
                b.delivered += 1;
                self.last_progress = self.last_now;
                self.probe_streak = 0;
            }
            Event::RttSample { srtt_us, probe, .. } => {
                self.srtt_us = srtt_us;
                if srtt_us > 0 && (self.min_rtt_us == 0 || srtt_us < self.min_rtt_us) {
                    self.min_rtt_us = srtt_us;
                }
                if probe {
                    self.probe_streak = 0;
                }
            }
            Event::ProbeSent { .. } => {
                self.probe_streak = self.probe_streak.saturating_add(1);
            }
            Event::UpdateSent { .. } => {
                self.probe_streak = 0;
            }
            Event::MemberEjected { peer } => {
                self.probe_streak = 0;
                if self.ejected.len() < EJECTED_CAP && !self.ejected.contains(&peer.0) {
                    self.ejected.push(peer.0);
                }
            }
            Event::HealthAlert { .. } => {
                // Never feed alerts back into rule evaluation.
                b.events -= 1;
            }
            _ => {}
        }
        // Post-ejection activity from a tracked member proves the
        // ejection false.
        if self.false_ejection_peer.is_none() {
            if let Some(m) = member.or_else(|| ev.member().map(|p| p.0)) {
                if !matches!(*ev, Event::MemberEjected { .. }) && self.ejected.contains(&m) {
                    self.false_ejection_peer = Some(m);
                }
            }
        }
        if self.last_now >= self.next_eval {
            self.eval(self.last_now);
            self.next_eval = self.last_now + self.cfg.eval_interval_us;
        }
    }

    /// Supplement the event stream with a periodic telemetry sample —
    /// live sessions publish the smoothed RTT as a gauge even between
    /// observed RTT events. Sample timestamps that run behind the event
    /// clock are ignored (clock domains may differ).
    pub fn observe_sample(&mut self, s: &TelemetrySample) {
        if !self.armed {
            return;
        }
        if let Some(&srtt) = s.gauges.get("srtt_us") {
            if srtt > 0 {
                self.srtt_us = srtt;
                if self.min_rtt_us == 0 || srtt < self.min_rtt_us {
                    self.min_rtt_us = srtt;
                }
            }
        }
        if s.t_us > self.last_now {
            self.last_now = s.t_us;
            self.advance_window(s.t_us);
            if s.t_us >= self.next_eval {
                self.eval(s.t_us);
                self.next_eval = s.t_us + self.cfg.eval_interval_us;
            }
        }
    }

    /// Rotate the bucket ring forward to cover `now`, zeroing buckets
    /// that fell out of the window.
    fn advance_window(&mut self, now: u64) {
        let target = now / self.bucket_us;
        if target <= self.cur_bucket {
            return;
        }
        let steps = (target - self.cur_bucket).min(WINDOW_BUCKETS as u64);
        for i in 1..=steps {
            let idx = ((self.cur_bucket + i) % WINDOW_BUCKETS as u64) as usize;
            self.buckets[idx] = Bucket::default();
        }
        self.cur_bucket = target;
    }

    fn window_totals(&self) -> (u64, u64, u64) {
        let mut naks = 0;
        let mut delivered = 0;
        let mut events = 0;
        for b in &self.buckets {
            naks += b.naks;
            delivered += b.delivered;
            events += b.events;
        }
        (naks, delivered, events)
    }

    /// The raise threshold for a rule (milli-units), resolving the
    /// derived imminent-ejection threshold.
    fn raise_threshold(&self, rule: AlertRule) -> u64 {
        match rule {
            AlertRule::EjectionImminent => {
                u64::from(self.cfg.probe_failure_limit.saturating_sub(1)) * 1_000
            }
            _ => self.cfg.rule(rule).raise_m,
        }
    }

    /// The current value of a rule's watched quantity (milli-units).
    fn value_m(&self, rule: AlertRule, now: u64) -> u64 {
        let (naks, delivered, events) = self.window_totals();
        match rule {
            AlertRule::NakStorm => {
                if naks < NAK_STORM_MIN_NAKS {
                    0
                } else {
                    naks * 1_000 / delivered.max(1)
                }
            }
            AlertRule::WindowStall => {
                if self.backlog == 0 {
                    0
                } else {
                    now.saturating_sub(self.last_progress) / 1_000
                }
            }
            AlertRule::Livelock => {
                if events < LIVELOCK_MIN_EVENTS {
                    0
                } else {
                    events * 1_000 / delivered.max(1)
                }
            }
            AlertRule::RttDivergence => {
                // Gated on pending recovery work, like window-stall: an
                // inflated RTT with nothing to recover is latency, not
                // degradation (a delay-spiked but lossless link must
                // stay silent). The rolling minimum never ages, so the
                // ratio alone would pin high after any transient storm.
                if self.backlog == 0 || self.min_rtt_us == 0 || self.srtt_us == 0 {
                    0
                } else {
                    self.srtt_us * 1_000 / self.min_rtt_us
                }
            }
            AlertRule::BacklogGrowth => self.backlog * 1_000,
            AlertRule::EjectionImminent => u64::from(self.probe_streak) * 1_000,
            AlertRule::FalseEjection => match self.false_ejection_peer {
                Some(peer) => u64::from(peer).max(1),
                None => 0,
            },
        }
    }

    /// Judge every enabled rule against its hysteresis state.
    fn eval(&mut self, now: u64) {
        for (i, rule) in AlertRule::ALL.into_iter().enumerate() {
            let rc = *self.cfg.rule(rule);
            if !rc.enabled {
                continue;
            }
            // Imminent ejection needs a configured limit of ≥ 2 to have
            // a meaningful "approaching" threshold.
            if rule == AlertRule::EjectionImminent && self.cfg.probe_failure_limit < 2 {
                continue;
            }
            let value = self.value_m(rule, now);
            let limit = self.raise_threshold(rule);
            let st = &mut self.states[i];
            st.last_value_m = value;
            if !st.raised {
                let over = match rule {
                    // Event-driven rules raise on any nonzero value.
                    AlertRule::FalseEjection => value > 0,
                    _ => limit > 0 && value >= limit,
                };
                if over {
                    let since = *st.over_since.get_or_insert(now);
                    if now.saturating_sub(since) >= rc.sustain_us {
                        st.raised = true;
                        st.raised_at = now;
                        st.over_since = None;
                        self.raised_total += 1;
                        let alert = Alert {
                            t_us: now,
                            rule,
                            severity: rc.severity,
                            raised: true,
                            value_m: value,
                            limit_m: limit,
                        };
                        self.pending.push(alert);
                        if self.history.len() == HISTORY_CAP {
                            self.history.pop_front();
                        }
                        self.history.push_back(alert);
                    }
                } else {
                    st.over_since = None;
                }
            } else if rule != AlertRule::FalseEjection // sticky: never clears
                && value <= rc.clear_m
                && now.saturating_sub(st.raised_at) >= rc.min_hold_us
            {
                st.raised = false;
                st.over_since = None;
                let alert = Alert {
                    t_us: now,
                    rule,
                    severity: rc.severity,
                    raised: false,
                    value_m: value,
                    limit_m: limit,
                };
                self.pending.push(alert);
                if self.history.len() == HISTORY_CAP {
                    self.history.pop_front();
                }
                self.history.push_back(alert);
            }
        }
    }
}

impl ProtocolObserver for HealthMonitor {
    fn on_event(&mut self, now: Micros, ev: &Event) {
        self.on_event_tagged(now, ev, None);
    }
}

/// Clone-able shared handle around a [`HealthMonitor`] — install clones
/// as observers into several engines and keep one to drain, the same
/// pattern as [`crate::MetricsObserver`] / [`crate::SharedRecorder`].
#[derive(Clone)]
pub struct SharedMonitor {
    inner: Arc<Mutex<HealthMonitor>>,
}

impl SharedMonitor {
    /// A shared monitor with the given configuration.
    pub fn new(cfg: HealthConfig) -> SharedMonitor {
        SharedMonitor {
            inner: Arc::new(Mutex::new(HealthMonitor::new(cfg))),
        }
    }

    /// Run `f` against the underlying monitor.
    pub fn with_monitor<T>(&self, f: impl FnOnce(&mut HealthMonitor) -> T) -> T {
        f(&mut self.inner.lock().expect("health monitor poisoned"))
    }

    /// Feed a telemetry sample (see [`HealthMonitor::observe_sample`]).
    pub fn observe_sample(&self, s: &TelemetrySample) {
        self.with_monitor(|m| m.observe_sample(s));
    }

    /// Drain alert transitions emitted since the last call.
    pub fn take_alerts(&self) -> Vec<Alert> {
        self.with_monitor(|m| m.take_alerts())
    }

    /// Number of rules currently raised.
    pub fn active(&self) -> u64 {
        self.with_monitor(|m| m.active())
    }

    /// Cumulative raise transitions.
    pub fn raised_total(&self) -> u64 {
        self.with_monitor(|m| m.raised_total())
    }

    /// Recent transitions plus currently-raised rules, rendered as one
    /// JSON array (the `/alerts` exposition body — `[]` when healthy).
    pub fn render_json(&self) -> String {
        self.with_monitor(|m| {
            let mut out = String::from("[");
            for (i, a) in m.history().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&alert_json(a));
            }
            out.push(']');
            out
        })
    }
}

impl ProtocolObserver for SharedMonitor {
    fn on_event(&mut self, now: Micros, ev: &Event) {
        self.with_monitor(|m| m.on_event_tagged(now, ev, None));
    }
}

/// Render one alert as a flat JSON object (shared by `/alerts`, `/json`
/// and `SimReport.alerts` consumers).
pub fn alert_json(a: &Alert) -> String {
    format!(
        "{{\"t_us\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"raised\":{},\
         \"value_m\":{},\"limit_m\":{}}}",
        a.t_us,
        a.rule.name(),
        a.severity.name(),
        a.raised,
        a.value_m,
        a.limit_m
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::NakTrigger;
    use crate::PeerId;

    fn nak(count: u32) -> Event {
        Event::NakSent {
            first: 0,
            count,
            trigger: NakTrigger::Gap,
        }
    }

    fn delivered(count: u32) -> Event {
        Event::Delivered { first: 0, count }
    }

    #[test]
    fn rule_and_severity_names_round_trip() {
        for r in AlertRule::ALL {
            assert_eq!(AlertRule::from_name(r.name()), Some(r));
        }
        for s in [Severity::Warning, Severity::Critical] {
            assert_eq!(Severity::from_name(s.name()), Some(s));
        }
        assert_eq!(AlertRule::from_name("nope"), None);
    }

    #[test]
    fn disabled_monitor_emits_nothing() {
        let mut m = HealthMonitor::new(HealthConfig::disabled());
        assert!(!m.armed());
        for t in 0..10_000u64 {
            m.on_event_tagged(t * 1_000, &nak(5), None);
        }
        assert!(m.take_alerts().is_empty());
        assert_eq!(m.active(), 0);
        assert_eq!(m.raised_total(), 0);
    }

    #[test]
    fn nak_storm_raises_after_sustain_and_clears_after_hold() {
        let mut cfg = HealthConfig::default();
        cfg.nak_storm.sustain_us = 200_000;
        cfg.nak_storm.min_hold_us = 500_000;
        let mut m = HealthMonitor::new(cfg);
        // A storm: NAKs every ms, nothing delivered.
        let mut t = 0u64;
        while t < 150_000 {
            m.on_event_tagged(t, &nak(1), None);
            t += 1_000;
        }
        assert!(
            m.take_alerts().is_empty(),
            "must not raise before the sustain window"
        );
        while t < 400_000 {
            m.on_event_tagged(t, &nak(1), None);
            t += 1_000;
        }
        let raised = m.take_alerts();
        assert!(
            raised
                .iter()
                .any(|a| a.rule == AlertRule::NakStorm && a.raised),
            "sustained storm must raise: {raised:?}"
        );
        assert!(m.active() >= 1);
        // Recovery: deliveries resume, NAKs stop; backlog drains.
        let healed_at = t;
        while t < healed_at + 2_000_000 {
            m.on_event_tagged(
                t,
                &Event::Recovered {
                    first: 0,
                    count: 5,
                    elapsed_us: 1,
                },
                None,
            );
            m.on_event_tagged(t, &delivered(5), None);
            t += 10_000;
        }
        let cleared = m.take_alerts();
        assert!(
            cleared
                .iter()
                .any(|a| a.rule == AlertRule::NakStorm && !a.raised),
            "healed stream must clear: {cleared:?}"
        );
        // Clear must respect the minimum hold.
        let raise_t = raised
            .iter()
            .find(|a| a.rule == AlertRule::NakStorm)
            .unwrap()
            .t_us;
        let clear_t = cleared
            .iter()
            .find(|a| a.rule == AlertRule::NakStorm)
            .unwrap()
            .t_us;
        assert!(clear_t - raise_t >= 500_000, "hold violated");
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut cfg = HealthConfig::disabled();
        cfg.backlog_growth = RuleConfig {
            enabled: true,
            severity: Severity::Warning,
            raise_m: 10_000, // 10 segments
            sustain_us: 0,
            clear_m: 2_000,
            min_hold_us: 1_000_000,
        };
        let mut m = HealthMonitor::new(cfg);
        // Oscillate the backlog across the raise threshold every 200 ms;
        // with a 1 s hold the alert must not flap.
        let mut t = 0u64;
        let mut transitions: Vec<Alert> = Vec::new();
        for cycle in 0..20u64 {
            let grow = cycle % 2 == 0;
            for _ in 0..10 {
                if grow {
                    m.on_event_tagged(t, &nak(2), None);
                } else {
                    m.on_event_tagged(
                        t,
                        &Event::Recovered {
                            first: 0,
                            count: 2,
                            elapsed_us: 1,
                        },
                        None,
                    );
                }
                t += 20_000;
            }
            transitions.extend(m.take_alerts());
        }
        // The 5 Hz oscillation crosses the threshold ~20 times; the 1 s
        // hold must cap transitions near one raise/clear pair per second.
        assert!(
            transitions.len() <= 8,
            "alert flapped: {} transitions in 4 s",
            transitions.len()
        );
        let mut raised_at = None;
        for a in &transitions {
            if a.raised {
                raised_at = Some(a.t_us);
            } else {
                let up = raised_at.expect("clear without raise");
                assert!(a.t_us - up >= 1_000_000, "hold violated: {a:?}");
            }
        }
    }

    #[test]
    fn false_ejection_detected_from_tagged_activity_and_sticky() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.on_event_tagged(1_000, &Event::MemberEjected { peer: PeerId(3) }, None);
        assert!(m.take_alerts().is_empty(), "ejection alone is not false");
        // Activity from the ejected member after the fact.
        m.on_event_tagged(200_000, &Event::UpdateSent { nonce: 1 }, Some(3));
        let alerts = m.take_alerts();
        assert!(
            alerts
                .iter()
                .any(|a| a.rule == AlertRule::FalseEjection && a.raised && a.value_m == 3),
            "{alerts:?}"
        );
        // Sticky: quiet time never clears it.
        for t in 0..50u64 {
            m.on_event_tagged(300_000 + t * 100_000, &delivered(1), None);
        }
        assert!(m
            .take_alerts()
            .iter()
            .all(|a| a.rule != AlertRule::FalseEjection || a.raised));
        assert!(m
            .active_alerts()
            .iter()
            .any(|a| a.rule == AlertRule::FalseEjection));
    }

    #[test]
    fn ejection_imminent_warns_before_limit_and_clears_on_answer() {
        let cfg = HealthConfig {
            probe_failure_limit: 3,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg);
        let probe = Event::ProbeSent {
            seq: 7,
            multicast: false,
        };
        m.on_event_tagged(0, &probe, None);
        assert!(m.take_alerts().is_empty(), "one probe is fine");
        m.on_event_tagged(200_000, &probe, None);
        let alerts = m.take_alerts();
        assert!(
            alerts
                .iter()
                .any(|a| a.rule == AlertRule::EjectionImminent && a.raised),
            "streak of limit-1 must warn: {alerts:?}"
        );
        // An answered probe resets the streak and clears.
        m.on_event_tagged(
            400_000,
            &Event::RttSample {
                sample_us: 1_000,
                srtt_us: 1_000,
                probe: true,
            },
            None,
        );
        m.on_event_tagged(600_000, &delivered(1), None);
        assert!(m
            .take_alerts()
            .iter()
            .any(|a| a.rule == AlertRule::EjectionImminent && !a.raised));
    }

    #[test]
    fn rtt_divergence_needs_sustained_inflation() {
        let mut cfg = HealthConfig::default();
        cfg.rtt_divergence.raise_m = 4_000;
        cfg.rtt_divergence.sustain_us = 600_000;
        // Keep the stall rule out of the picture: this test leaves a
        // backlog open (the divergence gate) without ever progressing.
        cfg.window_stall = RuleConfig::off();
        let mut m = HealthMonitor::new(cfg);
        let sample = |srtt_us| Event::RttSample {
            sample_us: srtt_us,
            srtt_us,
            probe: false,
        };
        m.on_event_tagged(0, &nak(1), None);
        m.on_event_tagged(0, &sample(10_000), None);
        // A short spike (200 ms over threshold) must not raise.
        m.on_event_tagged(1_000_000, &sample(80_000), None);
        m.on_event_tagged(1_200_000, &sample(10_000), None);
        m.on_event_tagged(2_000_000, &sample(10_000), None);
        assert!(m.take_alerts().is_empty(), "transient spike raised");
        // Sustained inflation must.
        for i in 0..12u64 {
            m.on_event_tagged(3_000_000 + i * 100_000, &sample(90_000), None);
        }
        assert!(m
            .take_alerts()
            .iter()
            .any(|a| a.rule == AlertRule::RttDivergence && a.raised));
    }

    #[test]
    fn telemetry_sample_feeds_srtt_between_events() {
        let mut cfg = HealthConfig::default();
        cfg.rtt_divergence.sustain_us = 0;
        let mut m = HealthMonitor::new(cfg);
        m.on_event_tagged(0, &nak(1), None);
        m.on_event_tagged(
            0,
            &Event::RttSample {
                sample_us: 5_000,
                srtt_us: 5_000,
                probe: false,
            },
            None,
        );
        let mut s = TelemetrySample {
            seq: 0,
            t_us: 1_000_000,
            interval_us: 0,
            counters: Default::default(),
            totals: Default::default(),
            gauges: Default::default(),
            hists: Default::default(),
        };
        s.gauges.insert("srtt_us".to_string(), 60_000);
        m.observe_sample(&s);
        assert!(m
            .take_alerts()
            .iter()
            .any(|a| a.rule == AlertRule::RttDivergence && a.raised));
    }

    #[test]
    fn shared_monitor_drains_from_clones() {
        let shared = SharedMonitor::new(HealthConfig::default());
        let mut obs: Box<dyn ProtocolObserver> = Box::new(shared.clone());
        for t in 0..600u64 {
            obs.on_event(t * 1_000, &nak(1));
        }
        assert!(shared.raised_total() >= 1);
        let drained = shared.take_alerts();
        assert!(!drained.is_empty());
        assert!(shared.take_alerts().is_empty(), "drain is destructive");
        let json = shared.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"rule\":\"nak_storm\""), "{json}");
    }

    #[test]
    fn alert_json_shape() {
        let a = Alert {
            t_us: 42,
            rule: AlertRule::Livelock,
            severity: Severity::Critical,
            raised: true,
            value_m: 99_000,
            limit_m: 50_000,
        };
        assert_eq!(
            alert_json(&a),
            "{\"t_us\":42,\"rule\":\"livelock\",\"severity\":\"critical\",\
             \"raised\":true,\"value_m\":99000,\"limit_m\":50000}"
        );
    }

    #[test]
    fn window_rotation_forgets_old_counts() {
        let cfg = HealthConfig {
            window_us: 1_000_000,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg);
        for t in 0..20u64 {
            m.on_event_tagged(t * 1_000, &nak(1), None);
        }
        let (naks, _, _) = m.window_totals();
        assert_eq!(naks, 20);
        // Jump far past the window: everything must age out.
        m.on_event_tagged(10_000_000, &delivered(1), None);
        let (naks, _, _) = m.window_totals();
        assert_eq!(naks, 0, "stale buckets must be zeroed");
    }

    /// A pure sender stream (live `hrmc send`) carries `DataSent` and
    /// `ReleaseAttempt` but never `Delivered` — buffer releases must
    /// count as progress so a healthy high-rate sender is not a
    /// livelock, while a sender pushing packets with zero releases
    /// still is.
    #[test]
    fn sender_only_stream_livelocks_on_releases_not_event_rate() {
        let sent = |seq: u64| Event::DataSent {
            seq: seq as u32,
            bytes: 1_400,
            retransmission: false,
        };
        let release = |seq: u64| Event::ReleaseAttempt {
            seq: seq as u32,
            complete: true,
            released: true,
        };
        // Healthy: 2 000 sends/s with a release every ms.
        let mut m = HealthMonitor::new(HealthConfig::default());
        for t in 0..6_000u64 {
            m.on_event_tagged(t * 500, &sent(t), None);
            if t % 2 == 0 {
                m.on_event_tagged(t * 500 + 1, &release(t / 2), None);
            }
        }
        let quiet: Vec<_> = m.history().collect();
        assert!(
            quiet.is_empty(),
            "healthy sender-only stream must stay silent: {quiet:?}"
        );
        // Stuck: same event rate, not one buffer ever released.
        let mut m = HealthMonitor::new(HealthConfig::default());
        for t in 0..6_000u64 {
            m.on_event_tagged(t * 500, &sent(t), None);
        }
        assert!(
            m.history()
                .any(|a| a.rule == AlertRule::Livelock && a.raised),
            "a release-starved sender is a livelock"
        );
    }
}
