//! Time representation shared by the engines and their drivers.
//!
//! The kernel driver's timers run at jiffy granularity (10 ms on the
//! paper's Linux 2.1.103 kernel); the simulator needs microsecond
//! resolution for serialization and host-processing delays. We therefore
//! express all protocol time as `u64` microseconds and provide jiffy
//! conversions for the timer logic.

/// Absolute or relative time in microseconds.
pub type Micros = u64;

/// One Linux jiffy on the paper's kernel: 10 ms (paper §4.2: "The
/// Transmitter (transmit_timer) runs every jiffy (10 msec)").
pub const JIFFY_US: Micros = 10_000;

/// One millisecond in microseconds.
pub const MS: Micros = 1_000;

/// One second in microseconds.
pub const SEC: Micros = 1_000_000;

/// Convert a jiffy count to microseconds.
#[inline]
pub const fn jiffies(n: u64) -> Micros {
    n * JIFFY_US
}

/// Convert microseconds to a whole number of jiffies (rounding down).
#[inline]
pub const fn to_jiffies(us: Micros) -> u64 {
    us / JIFFY_US
}

/// Multiply a duration by a floating scale factor, saturating at u64::MAX.
/// Used for RTT-multiple timeouts (MINBUF × RTT, WARNBUF × RTT, ...).
#[inline]
pub fn scale(us: Micros, factor: f64) -> Micros {
    let v = us as f64 * factor;
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jiffy_constants() {
        assert_eq!(JIFFY_US, 10_000);
        assert_eq!(jiffies(50), 500_000); // initial update period: 0.5 s
        assert_eq!(jiffies(200), 2 * SEC); // keepalive cap: 2 s
    }

    #[test]
    fn to_jiffies_rounds_down() {
        assert_eq!(to_jiffies(9_999), 0);
        assert_eq!(to_jiffies(10_000), 1);
        assert_eq!(to_jiffies(25_000), 2);
    }

    #[test]
    fn scale_behaves() {
        assert_eq!(scale(1_000, 10.0), 10_000);
        assert_eq!(scale(1_000, 0.5), 500);
        assert_eq!(scale(u64::MAX, 2.0), u64::MAX);
        assert_eq!(scale(0, 1_000_000.0), 0);
    }
}
