//! Round-trip-time estimation, Karn-style (paper §2, Group Membership:
//! "The sender also calculates the round trip time to the most distant
//! receiver, using Karn's algorithm, and continues updating this value
//! based on incoming NAKs and rate-reduce requests").
//!
//! Two points distinguish this estimator from TCP's:
//!
//! * **Karn's rule** — samples derived from retransmitted packets are
//!   ambiguous and are discarded. Callers pass the `tries` counter of the
//!   packet the sample was measured against; only `tries == 0` samples are
//!   absorbed.
//! * **Most-distant-receiver bias** — the sender wants the *worst* RTT in
//!   the group, not the mean: MINBUF residency and probe timeouts must
//!   cover the slowest receiver. Samples above the estimate are absorbed
//!   fast (gain 1/2); samples below decay it slowly (gain 1/16), so the
//!   estimate tracks the group maximum while still adapting downward when
//!   distant receivers leave.

use crate::time::Micros;

/// Fast gain applied when a sample exceeds the estimate (track the worst
/// receiver quickly).
const GAIN_UP: f64 = 0.5;
/// Slow gain applied when a sample is below the estimate (decay cautiously).
const GAIN_DOWN: f64 = 1.0 / 16.0;

/// Karn-style RTT estimator biased toward the most distant receiver.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: f64,
    min_rtt: Micros,
    samples_taken: u64,
    samples_discarded: u64,
}

impl RttEstimator {
    /// Create an estimator seeded with `initial` (used until the first
    /// valid sample) and floored at `min_rtt`.
    pub fn new(initial: Micros, min_rtt: Micros) -> RttEstimator {
        RttEstimator {
            srtt: initial.max(min_rtt) as f64,
            min_rtt,
            samples_taken: 0,
            samples_discarded: 0,
        }
    }

    /// Current smoothed estimate in microseconds.
    #[inline]
    pub fn rtt(&self) -> Micros {
        (self.srtt as u64).max(self.min_rtt)
    }

    /// Absorb a measured sample. `tries` is the retransmission counter of
    /// the packet the sample was measured against; per Karn's algorithm,
    /// samples from retransmitted packets (`tries > 0`) are discarded.
    pub fn sample(&mut self, rtt: Micros, tries: u8) {
        if tries > 0 {
            self.samples_discarded += 1;
            return;
        }
        let s = rtt.max(self.min_rtt) as f64;
        let gain = if s > self.srtt { GAIN_UP } else { GAIN_DOWN };
        if self.samples_taken == 0 {
            // First valid sample replaces the configured seed outright.
            self.srtt = s;
        } else {
            self.srtt += gain * (s - self.srtt);
        }
        self.samples_taken += 1;
    }

    /// Number of samples absorbed.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Number of samples discarded under Karn's rule.
    pub fn samples_discarded(&self) -> u64 {
        self.samples_discarded
    }

    /// `true` until the first valid sample arrives.
    pub fn is_seed(&self) -> bool {
        self.samples_taken == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_until_first_sample() {
        let mut e = RttEstimator::new(10_000, 100);
        assert!(e.is_seed());
        assert_eq!(e.rtt(), 10_000);
        e.sample(4_000, 0);
        assert!(!e.is_seed());
        assert_eq!(e.rtt(), 4_000); // first sample replaces the seed
    }

    #[test]
    fn karn_discards_retransmitted_samples() {
        let mut e = RttEstimator::new(10_000, 100);
        e.sample(4_000, 0);
        e.sample(400_000, 3); // retransmitted: ignored
        assert_eq!(e.rtt(), 4_000);
        assert_eq!(e.samples_discarded(), 1);
        assert_eq!(e.samples_taken(), 1);
    }

    #[test]
    fn rises_fast_toward_distant_receiver() {
        let mut e = RttEstimator::new(1_000, 100);
        e.sample(2_000, 0);
        // A receiver 50 ms away appears; within a few samples the estimate
        // must be most of the way there.
        for _ in 0..4 {
            e.sample(100_000, 0);
        }
        assert!(e.rtt() > 90_000, "rtt = {}", e.rtt());
    }

    #[test]
    fn decays_slowly_when_samples_drop() {
        let mut e = RttEstimator::new(1_000, 100);
        e.sample(100_000, 0);
        // One small sample must barely dent the worst-case estimate.
        e.sample(2_000, 0);
        assert!(e.rtt() > 90_000, "rtt = {}", e.rtt());
        // Many small samples eventually pull it down.
        for _ in 0..100 {
            e.sample(2_000, 0);
        }
        assert!(e.rtt() < 5_000, "rtt = {}", e.rtt());
    }

    #[test]
    fn floor_is_respected() {
        let mut e = RttEstimator::new(50, 100);
        assert_eq!(e.rtt(), 100);
        e.sample(1, 0);
        assert_eq!(e.rtt(), 100);
    }

    #[test]
    fn alternating_near_and_far_receivers_track_far() {
        // Samples alternate between a 2 ms LAN receiver and a 100 ms WAN
        // receiver; the estimate must sit near the WAN RTT.
        let mut e = RttEstimator::new(10_000, 100);
        for _ in 0..50 {
            e.sample(2_000, 0);
            e.sample(100_000, 0);
        }
        assert!(e.rtt() > 60_000, "rtt = {}", e.rtt());
    }
}
