//! The sender's send window (paper §4.2): "The send window is implemented
//! as a queue of packets (sk_bufs)."
//!
//! The window holds every packetized-but-unreleased segment, byte-counted
//! against `sndbuf`. Three positions partition the sequence space:
//!
//! ```text
//!   snd_wnd              snd_nxt_send          snd_nxt
//!      |--- sent, buffered ---|--- queued ---------|   (future data)
//! ```
//!
//! * `snd_wnd` — first unreleased sequence number (window base);
//! * `snd_nxt_send` — next segment awaiting its first transmission
//!   (segments in `[snd_wnd, snd_nxt_send)` have been sent at least once;
//!   the paper calls the unsent portion the backlog queue);
//! * `snd_nxt` — the next sequence number the application interface will
//!   assign.
//!
//! Release ("advancing the window") trims from the front, subject to the
//! MINBUF residency rule and — in Hybrid mode — the membership gate, both
//! enforced by the [`SenderEngine`](crate::sender::SenderEngine).

use std::collections::VecDeque;

use bytes::Bytes;
use hrmc_wire::{seq_le, seq_lt, Seq};

use crate::time::Micros;

/// One buffered segment (the kernel's `sk_buff` in the write queue).
#[derive(Debug, Clone)]
pub struct SendSlot {
    /// Sequence number of this segment.
    pub seq: Seq,
    /// Payload bytes.
    pub payload: Bytes,
    /// Time of first transmission, `None` while still in the backlog.
    pub first_sent: Option<Micros>,
    /// Time of the most recent (re)transmission. The MINBUF residency
    /// clock runs from this ("sliding of the window ... is based on when a
    /// packet was most recently sent").
    pub last_sent: Option<Micros>,
    /// Transmission attempts so far (the header's `tries` field).
    pub tries: u8,
    /// This segment carries the stream's FIN flag.
    pub fin: bool,
}

/// Byte-accounted send window.
#[derive(Debug)]
pub struct SendWindow {
    slots: VecDeque<SendSlot>,
    /// First sequence number in the window (`snd_wnd` in `hrmc_opt`).
    base: Seq,
    /// Next sequence number to assign (`snd_nxt`).
    next_seq: Seq,
    /// Index into `slots` of the next segment awaiting first transmission.
    next_send_idx: usize,
    /// Bytes currently buffered.
    buffered: usize,
    /// Capacity in bytes (`sndbuf`).
    capacity: usize,
}

impl SendWindow {
    /// Create an empty window with byte `capacity`, starting at `initial_seq`.
    pub fn new(capacity: usize, initial_seq: Seq) -> SendWindow {
        SendWindow {
            slots: VecDeque::new(),
            base: initial_seq,
            next_seq: initial_seq,
            next_send_idx: 0,
            buffered: 0,
            capacity,
        }
    }

    /// First sequence number still buffered (`snd_wnd`).
    #[inline]
    pub fn base(&self) -> Seq {
        self.base
    }

    /// Next sequence number the application interface will assign
    /// (`snd_nxt`).
    #[inline]
    pub fn next_seq(&self) -> Seq {
        self.next_seq
    }

    /// Bytes currently buffered.
    #[inline]
    pub fn buffered_bytes(&self) -> usize {
        self.buffered
    }

    /// Bytes of remaining capacity.
    #[inline]
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.buffered
    }

    /// Number of buffered segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no segments are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `true` when at least one segment awaits its first transmission.
    #[inline]
    pub fn has_unsent(&self) -> bool {
        self.next_send_idx < self.slots.len()
    }

    /// Enqueue one segment if it fits; returns `false` (without queueing)
    /// when the window lacks space — the application interface blocks.
    pub fn push(&mut self, payload: Bytes, fin: bool) -> bool {
        if self.buffered + payload.len() > self.capacity && !self.slots.is_empty() {
            return false;
        }
        // An oversized single segment on an empty window is admitted so a
        // segment larger than sndbuf cannot deadlock the stream.
        self.buffered += payload.len();
        self.slots.push_back(SendSlot {
            seq: self.next_seq,
            payload,
            first_sent: None,
            last_sent: None,
            tries: 0,
            fin,
        });
        self.next_seq = self.next_seq.wrapping_add(1);
        true
    }

    /// The next segment awaiting first transmission, if any.
    pub fn peek_unsent(&self) -> Option<&SendSlot> {
        self.slots.get(self.next_send_idx)
    }

    /// Mark the next unsent segment as transmitted at `now` and return a
    /// clone of its slot for packetization.
    pub fn take_unsent(&mut self, now: Micros) -> Option<SendSlot> {
        let slot = self.slots.get_mut(self.next_send_idx)?;
        slot.first_sent = Some(now);
        slot.last_sent = Some(now);
        let out = slot.clone();
        // tries stays 0 for the first transmission; bump afterwards so the
        // *next* transmission is try 1.
        slot.tries = slot.tries.saturating_add(1);
        self.next_send_idx += 1;
        Some(out)
    }

    /// Fetch a buffered segment by sequence number (for retransmission).
    /// Returns `None` when `seq` is outside the window (already released
    /// or never sent).
    pub fn get(&self, seq: Seq) -> Option<&SendSlot> {
        let idx = self.index_of(seq)?;
        self.slots.get(idx)
    }

    /// Mark `seq` retransmitted at `now`; returns the slot (with the wire
    /// `tries` value — the count *before* this retransmission) or `None`
    /// if released.
    pub fn mark_retransmitted(&mut self, seq: Seq, now: Micros) -> Option<SendSlot> {
        let idx = self.index_of(seq)?;
        // Only segments that were transmitted at least once can be
        // retransmitted; a NAK can name a backlogged segment when a probe
        // advertises snd_nxt ahead of transmission, in which case it will
        // go out through the normal path.
        if idx >= self.next_send_idx {
            return None;
        }
        let slot = self.slots.get_mut(idx)?;
        let out = slot.clone();
        slot.last_sent = Some(now);
        slot.tries = slot.tries.saturating_add(1);
        Some(out)
    }

    /// `true` if `seq` has already been released from the buffer.
    pub fn is_released(&self, seq: Seq) -> bool {
        seq_lt(seq, self.base)
    }

    /// `true` if `seq` is currently buffered.
    pub fn contains(&self, seq: Seq) -> bool {
        self.index_of(seq).is_some()
    }

    /// The front slot, if any — the release candidate.
    pub fn front(&self) -> Option<&SendSlot> {
        self.slots.front()
    }

    /// Release (drop) the front segment, advancing `snd_wnd`. Returns the
    /// freed byte count.
    pub fn release_front(&mut self) -> Option<usize> {
        let slot = self.slots.pop_front()?;
        self.base = self.base.wrapping_add(1);
        self.buffered -= slot.payload.len();
        self.next_send_idx = self.next_send_idx.saturating_sub(1);
        Some(slot.payload.len())
    }

    /// Iterate over buffered slots front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = &SendSlot> {
        self.slots.iter()
    }

    fn index_of(&self, seq: Seq) -> Option<usize> {
        if self.slots.is_empty() || seq_lt(seq, self.base) || !seq_lt(seq, self.next_seq) {
            return None;
        }
        let idx = seq.wrapping_sub(self.base) as usize;
        debug_assert!(seq_le(self.base, seq));
        (idx < self.slots.len()).then_some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0xabu8; n])
    }

    #[test]
    fn push_assigns_consecutive_seqs() {
        let mut w = SendWindow::new(10_000, 100);
        assert!(w.push(payload(100), false));
        assert!(w.push(payload(100), false));
        assert_eq!(w.base(), 100);
        assert_eq!(w.next_seq(), 102);
        assert_eq!(w.buffered_bytes(), 200);
    }

    #[test]
    fn push_respects_capacity() {
        let mut w = SendWindow::new(250, 0);
        assert!(w.push(payload(100), false));
        assert!(w.push(payload(100), false));
        assert!(!w.push(payload(100), false)); // would exceed 250
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn oversized_segment_admitted_when_empty() {
        let mut w = SendWindow::new(50, 0);
        assert!(w.push(payload(100), false));
        assert!(!w.push(payload(1), false));
    }

    #[test]
    fn take_unsent_walks_backlog_once() {
        let mut w = SendWindow::new(10_000, 0);
        w.push(payload(10), false);
        w.push(payload(10), false);
        assert!(w.has_unsent());
        let a = w.take_unsent(1000).unwrap();
        assert_eq!(a.seq, 0);
        assert_eq!(a.tries, 0);
        let b = w.take_unsent(2000).unwrap();
        assert_eq!(b.seq, 1);
        assert!(w.take_unsent(3000).is_none());
        assert!(!w.has_unsent());
        // Both remain buffered for retransmission.
        assert_eq!(w.len(), 2);
        assert_eq!(w.get(0).unwrap().last_sent, Some(1000));
    }

    #[test]
    fn retransmission_updates_clock_and_tries() {
        let mut w = SendWindow::new(10_000, 0);
        w.push(payload(10), false);
        w.take_unsent(1000);
        let r = w.mark_retransmitted(0, 5000).unwrap();
        assert_eq!(r.tries, 1); // wire value: this is the 2nd transmission
        assert_eq!(w.get(0).unwrap().last_sent, Some(5000));
        assert_eq!(w.get(0).unwrap().tries, 2);
        // MINBUF residency clock restarted by the retransmission.
        assert_eq!(w.get(0).unwrap().first_sent, Some(1000));
    }

    #[test]
    fn cannot_retransmit_unsent_or_released() {
        let mut w = SendWindow::new(10_000, 0);
        w.push(payload(10), false);
        assert!(w.mark_retransmitted(0, 100).is_none()); // never sent
        w.take_unsent(100);
        w.release_front();
        assert!(w.mark_retransmitted(0, 200).is_none()); // released
        assert!(w.is_released(0));
    }

    #[test]
    fn release_front_frees_bytes_and_advances_base() {
        let mut w = SendWindow::new(250, 0);
        w.push(payload(100), false);
        w.push(payload(100), false);
        w.take_unsent(1);
        w.take_unsent(2);
        assert_eq!(w.release_front(), Some(100));
        assert_eq!(w.base(), 1);
        assert_eq!(w.free_bytes(), 150);
        assert!(w.push(payload(100), false)); // space reclaimed
        assert_eq!(w.release_front(), Some(100));
        assert_eq!(w.release_front(), Some(100));
        assert_eq!(w.release_front(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn release_preserves_unsent_index() {
        let mut w = SendWindow::new(10_000, 0);
        w.push(payload(10), false);
        w.push(payload(10), false);
        w.push(payload(10), false);
        w.take_unsent(1); // seq 0 sent
        w.release_front(); // seq 0 released
        let next = w.take_unsent(2).unwrap();
        assert_eq!(next.seq, 1); // not skipped, not repeated
    }

    #[test]
    fn index_lookup_handles_wraparound() {
        let base = u32::MAX - 1;
        let mut w = SendWindow::new(10_000, base);
        w.push(payload(10), false); // seq MAX-1
        w.push(payload(10), false); // seq MAX
        w.push(payload(10), false); // seq 0 (wrapped)
        assert!(w.contains(base));
        assert!(w.contains(0));
        assert!(!w.contains(1));
        assert_eq!(w.get(0).unwrap().seq, 0);
        w.take_unsent(1);
        w.release_front();
        assert_eq!(w.base(), u32::MAX);
        assert!(w.is_released(base));
        assert!(!w.is_released(0));
    }

    #[test]
    fn fin_flag_survives() {
        let mut w = SendWindow::new(10_000, 0);
        w.push(payload(10), false);
        w.push(payload(5), true);
        w.take_unsent(1);
        let f = w.take_unsent(2).unwrap();
        assert!(f.fin);
        assert!(!w.get(0).unwrap().fin);
    }
}
