//! Counters the experiment harnesses read. Every figure in the paper's
//! evaluation is a time series or total over one of these: throughput
//! (bytes delivered / elapsed), NAK counts (Figures 11(b)(d), 13),
//! rate-request counts (Figures 11(a)(c), 15(b), 16(b)), and the
//! buffer-release information-completeness ratio (Figure 3).

use serde::Serialize;

/// Sender-side counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SenderStats {
    /// DATA packets first-transmitted.
    pub data_packets_sent: u64,
    /// DATA payload bytes first-transmitted.
    pub data_bytes_sent: u64,
    /// DATA packets retransmitted.
    pub retransmissions: u64,
    /// NAK packets received ("the total number of NAKs ... that arrive at
    /// the sender", Figure 11).
    pub naks_received: u64,
    /// CONTROL (rate-request) packets received, warning + urgent.
    pub rate_requests_received: u64,
    /// CONTROL packets with URG set.
    pub urgent_rate_requests_received: u64,
    /// UPDATE packets received.
    pub updates_received: u64,
    /// PROBE packets sent.
    pub probes_sent: u64,
    /// KEEPALIVE packets sent.
    pub keepalives_sent: u64,
    /// NAK_ERR packets sent (RMC mode only; an unsatisfiable NAK).
    pub nak_errs_sent: u64,
    /// Segments released from the send buffer.
    pub segments_released: u64,
    /// Buffer-release attempts: the first time each segment becomes
    /// release-eligible under the MINBUF residency rule (Figure 3's
    /// denominator).
    pub release_attempts: u64,
    /// Release attempts at which the sender already had information from
    /// all receivers confirming the segment (Figure 3's numerator).
    pub release_attempts_with_complete_info: u64,
    /// Releases executed without complete information (RMC mode only —
    /// the reliability hole H-RMC closes).
    pub unsafe_releases: u64,
    /// JOINs processed.
    pub joins: u64,
    /// LEAVEs processed.
    pub leaves: u64,
    /// PARITY packets emitted (FEC extension).
    pub fec_parities_sent: u64,
    /// Delayed retransmissions cancelled because the group confirmed the
    /// data while the sender held back (local-recovery extension).
    pub retransmissions_cancelled: u64,
    /// Members forcibly ejected after unanswered probes or silence.
    /// (Skipped in serialization: pre-existing JSON series and fixture
    /// hashes stay stable.)
    #[serde(skip)]
    pub members_ejected: u64,
    /// Incoming datagrams discarded for checksum failure.
    #[serde(skip)]
    pub checksum_failures: u64,
    /// Current membership size (gauge, refreshed each tick).
    #[serde(skip)]
    pub membership_size: u64,
    /// Live sequence shards in the membership index (gauge; tracks the
    /// group's window span, not its population).
    #[serde(skip)]
    pub membership_shards: u64,
    /// Release-gate (`all_have`) evaluations — each is a heap-peek.
    #[serde(skip)]
    pub gate_checks: u64,
    /// Members touched by `lacking`/`stale`/`probe_failed` descents: the
    /// release gate's total scan cost. Sub-linear growth in the receiver
    /// count is the point of the sharded index.
    #[serde(skip)]
    pub gate_members_scanned: u64,
    /// Stale membership-heap entries discarded by lazy deletion.
    #[serde(skip)]
    pub membership_heap_pops: u64,
    /// PROBEs emitted during the most recent tick (gauge).
    #[serde(skip)]
    pub probes_last_tick: u64,
    /// PROBE targets deferred to a later tick by the per-tick fan-out cap
    /// (`probe_batch_limit`).
    #[serde(skip)]
    pub probes_deferred_by_batch: u64,
    /// Incoming packets whose fields failed an adversarial-input sanity
    /// bound (e.g. a NAK span wider than [`crate::MAX_CONTROL_SPAN`]) and
    /// were clamped or dropped instead of trusted.
    #[serde(skip)]
    pub malformed_packets: u64,
}

impl SenderStats {
    /// Figure 3's metric: the fraction of buffer-release attempts at which
    /// the sender had complete receiver information, in `[0, 1]`.
    pub fn complete_info_ratio(&self) -> f64 {
        if self.release_attempts == 0 {
            return 1.0;
        }
        self.release_attempts_with_complete_info as f64 / self.release_attempts as f64
    }

    /// Total receiver feedback packets processed.
    pub fn feedback_received(&self) -> u64 {
        self.naks_received + self.rate_requests_received + self.updates_received
    }
}

/// Receiver-side counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ReceiverStats {
    /// DATA packets accepted (in order or out of order).
    pub data_packets_received: u64,
    /// Duplicate DATA packets dropped.
    pub duplicates_dropped: u64,
    /// DATA packets dropped for lack of buffer space.
    pub overflow_drops: u64,
    /// DATA packets dropped as beyond the receive window (region R4).
    pub beyond_window_drops: u64,
    /// NAK packets sent.
    pub naks_sent: u64,
    /// CONTROL packets sent (warning + urgent).
    pub rate_requests_sent: u64,
    /// CONTROL packets sent with URG.
    pub urgent_rate_requests_sent: u64,
    /// UPDATE packets sent (periodic + probe responses).
    pub updates_sent: u64,
    /// PROBE packets received.
    pub probes_received: u64,
    /// KEEPALIVE packets received.
    pub keepalives_received: u64,
    /// NAK_ERR packets received (data irrecoverably lost; RMC mode).
    pub nak_errs_received: u64,
    /// Bytes handed to the application.
    pub bytes_delivered: u64,
    /// Packets queued to the backlog while the socket was locked.
    pub backlogged_packets: u64,
    /// PARITY packets received (FEC extension).
    pub fec_parities_received: u64,
    /// Packets reconstructed from parity instead of retransmission.
    pub fec_recoveries: u64,
    /// Repair DATA packets this receiver multicast to peers
    /// (local-recovery extension).
    pub repairs_sent: u64,
    /// Peer NAKs heard (local-recovery extension).
    pub peer_naks_heard: u64,
    /// Terminal session failures declared (sender death / JOIN budget).
    /// (Skipped in serialization: pre-existing JSON series and fixture
    /// hashes stay stable.)
    #[serde(skip)]
    pub session_failures: u64,
    /// Incoming datagrams discarded for checksum failure.
    #[serde(skip)]
    pub checksum_failures: u64,
    /// Incoming packets whose fields failed an adversarial-input sanity
    /// bound (e.g. a control sequence outside the plausible window, or a
    /// span wider than [`crate::MAX_CONTROL_SPAN`]) and were clamped or
    /// dropped instead of trusted.
    #[serde(skip)]
    pub malformed_packets: u64,
}

impl ReceiverStats {
    /// Total feedback packets sent toward the sender.
    pub fn feedback_sent(&self) -> u64 {
        self.naks_sent + self.rate_requests_sent + self.updates_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_info_ratio_edge_cases() {
        let mut s = SenderStats::default();
        assert_eq!(s.complete_info_ratio(), 1.0); // vacuous
        s.release_attempts = 4;
        s.release_attempts_with_complete_info = 3;
        assert_eq!(s.complete_info_ratio(), 0.75);
    }

    #[test]
    fn feedback_totals() {
        let s = SenderStats {
            naks_received: 2,
            rate_requests_received: 3,
            updates_received: 5,
            ..SenderStats::default()
        };
        assert_eq!(s.feedback_received(), 10);

        let r = ReceiverStats {
            naks_sent: 1,
            rate_requests_sent: 2,
            updates_sent: 3,
            ..ReceiverStats::default()
        };
        assert_eq!(r.feedback_sent(), 6);
    }
}
