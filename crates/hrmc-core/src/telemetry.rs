//! Continuous telemetry: periodic, delta-capable snapshots of a
//! [`MetricsRegistry`] over time.
//!
//! The metrics registry accumulates *cumulative* counters — perfect for
//! an end-of-run report, blind while the system runs. "SRM at 30"'s
//! retrospective argues reliable-multicast deployments lived or died by
//! whether operators could watch suppression/recovery dynamics *as they
//! evolved*; this module adds exactly that: a [`Sampler`] turns the
//! registry into a time series of [`TelemetrySample`]s (per-interval
//! counter deltas, latest gauges, histogram quantiles), keeps a bounded
//! in-memory ring of the newest samples, and optionally streams each
//! sample as one JSON line to a sink — the same JSONL discipline as the
//! event traces, parseable by `hrmc-trace`.
//!
//! Everything is integer-valued so a sample round-trips losslessly
//! through its JSONL rendering; *rates* are derived on demand
//! ([`TelemetrySample::rate_per_sec`]) from the delta and the interval
//! rather than stored as floats.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;

/// Condensed view of one histogram at sampling time: the cumulative
/// sample count, how many samples landed in this interval, and the
/// quantiles of the cumulative distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSample {
    /// Cumulative samples recorded since the registry was created.
    pub count: u64,
    /// Samples recorded during this sampling interval.
    pub delta: u64,
    /// Median estimate of the cumulative distribution.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Largest sample observed so far.
    pub max: u64,
}

/// One timestamped registry delta: what changed since the previous
/// sample, plus the current gauge values and histogram quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySample {
    /// Monotonic sample index (0 for the sampler's first sample).
    pub seq: u64,
    /// Clock at sampling time (µs, whatever timeline the caller uses).
    pub t_us: u64,
    /// Time since the previous sample (µs); 0 for the first sample.
    pub interval_us: u64,
    /// Per-counter increments over the interval (cumulative value for
    /// the first sample).
    pub counters: BTreeMap<String, u64>,
    /// Cumulative counter values at sampling time.
    pub totals: BTreeMap<String, u64>,
    /// Latest gauge values.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries.
    pub hists: BTreeMap<String, HistSample>,
}

impl TelemetrySample {
    /// A counter's increment over the interval (0 when absent).
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A counter's cumulative value at sampling time (0 when absent).
    pub fn total(&self, name: &str) -> u64 {
        self.totals.get(name).copied().unwrap_or(0)
    }

    /// A gauge's latest value, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Derived rate: counter increments per second over the interval.
    /// 0.0 for the first sample (no interval to divide by).
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        if self.interval_us == 0 {
            return 0.0;
        }
        self.counter_delta(name) as f64 * 1e6 / self.interval_us as f64
    }

    /// Render the sample as one JSON line (no trailing newline). The
    /// `"telemetry"` discriminator keeps these lines distinguishable
    /// from protocol events in a mixed JSONL stream; names are
    /// identifiers and values unsigned integers, so the rendering is
    /// lossless and needs no escaping.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"telemetry\":1,\"seq\":{},\"t_us\":{},\"interval_us\":{}",
            self.seq, self.t_us, self.interval_us
        );
        for (section, map) in [
            ("counters", &self.counters),
            ("totals", &self.totals),
            ("gauges", &self.gauges),
        ] {
            let _ = write!(out, ",\"{section}\":{{");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{v}");
            }
            out.push('}');
        }
        out.push_str(",\"hists\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{k}\":{{\"count\":{},\"delta\":{},\"p50\":{},\"p90\":{},\
                 \"p99\":{},\"max\":{}}}",
                h.count, h.delta, h.p50, h.p90, h.p99, h.max
            );
        }
        out.push_str("}}");
        out
    }
}

/// Records a bounded time series of [`TelemetrySample`]s from successive
/// registry snapshots.
///
/// The ring keeps the newest `capacity` samples (oldest overwritten
/// first — the flight-recorder discipline); an optional sink receives
/// every sample as one JSONL line regardless of the ring, so a long run
/// can stream its full history to disk while memory stays bounded.
pub struct Sampler {
    capacity: usize,
    ring: VecDeque<TelemetrySample>,
    /// Previous cumulative counter values (delta base).
    prev_counters: BTreeMap<String, u64>,
    /// Previous cumulative histogram counts (delta base).
    prev_hist_counts: BTreeMap<String, u64>,
    prev_t: Option<u64>,
    next_seq: u64,
    overwritten: u64,
    sink: Option<Box<dyn std::io::Write + Send>>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("capacity", &self.capacity)
            .field("len", &self.ring.len())
            .field("next_seq", &self.next_seq)
            .field("overwritten", &self.overwritten)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl Sampler {
    /// A sampler keeping the newest `capacity` samples (minimum 1).
    pub fn new(capacity: usize) -> Sampler {
        let capacity = capacity.max(1);
        Sampler {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            prev_counters: BTreeMap::new(),
            prev_hist_counts: BTreeMap::new(),
            prev_t: None,
            next_seq: 0,
            overwritten: 0,
            sink: None,
        }
    }

    /// Stream every future sample to `w` as JSONL, one line per sample.
    pub fn set_sink(&mut self, w: Box<dyn std::io::Write + Send>) {
        self.sink = Some(w);
    }

    /// Builder form of [`Sampler::set_sink`].
    pub fn with_sink(mut self, w: Box<dyn std::io::Write + Send>) -> Sampler {
        self.set_sink(w);
        self
    }

    /// Take one sample: compute the delta against the previous snapshot,
    /// append to the ring (overwriting the oldest once full), and write
    /// the JSONL line to the sink, if any. Returns the recorded sample.
    pub fn sample(&mut self, now_us: u64, reg: &MetricsRegistry) -> &TelemetrySample {
        let interval_us = match self.prev_t {
            // A clock that stalls or rewinds yields a 0 interval, never
            // an underflowed one.
            Some(prev) => now_us.saturating_sub(prev),
            None => 0,
        };
        let mut counters = BTreeMap::new();
        let mut totals = BTreeMap::new();
        for (name, v) in reg.counters() {
            let prev = self.prev_counters.get(name).copied().unwrap_or(0);
            // Counters are monotonic by contract; saturate in case a
            // registry was swapped out from under the sampler.
            counters.insert(name.to_string(), v.saturating_sub(prev));
            totals.insert(name.to_string(), v);
            self.prev_counters.insert(name.to_string(), v);
        }
        let gauges: BTreeMap<String, u64> = reg
            .gauges()
            .map(|(name, v)| (name.to_string(), v))
            .collect();
        let mut hists = BTreeMap::new();
        for (name, h) in reg.histograms() {
            let prev = self.prev_hist_counts.get(name).copied().unwrap_or(0);
            hists.insert(
                name.to_string(),
                HistSample {
                    count: h.count(),
                    delta: h.count().saturating_sub(prev),
                    p50: h.p50(),
                    p90: h.p90(),
                    p99: h.p99(),
                    max: h.max().unwrap_or(0),
                },
            );
            self.prev_hist_counts.insert(name.to_string(), h.count());
        }
        let sample = TelemetrySample {
            seq: self.next_seq,
            t_us: now_us,
            interval_us,
            counters,
            totals,
            gauges,
            hists,
        };
        self.next_seq += 1;
        self.prev_t = Some(now_us);
        if let Some(w) = &mut self.sink {
            let mut line = sample.to_json_line();
            line.push('\n');
            let _ = w.write_all(line.as_bytes());
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.overwritten += 1;
        }
        self.ring.push_back(sample);
        self.ring.back().expect("just pushed")
    }

    /// The newest sample, if any were taken.
    pub fn latest(&self) -> Option<&TelemetrySample> {
        self.ring.back()
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TelemetrySample> + '_ {
        self.ring.iter()
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no sample has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity (newest-N retention bound).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples pushed out of the ring to make room for newer ones.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Total samples ever taken (retained + overwritten).
    pub fn taken(&self) -> u64 {
        self.next_seq
    }

    /// Flush the JSONL sink, if any.
    pub fn flush(&mut self) {
        if let Some(w) = &mut self.sink {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(counts: &[(&'static str, u64)]) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        for &(k, v) in counts {
            r.add(k, v);
        }
        r
    }

    #[test]
    fn first_sample_reports_cumulative_values_with_zero_interval() {
        let mut s = Sampler::new(8);
        let mut r = reg_with(&[("pkts", 5)]);
        r.set_gauge("rate", 77);
        r.observe("lat", 100);
        let sample = s.sample(1_000, &r).clone();
        assert_eq!(sample.seq, 0);
        assert_eq!(sample.interval_us, 0);
        assert_eq!(sample.counter_delta("pkts"), 5);
        assert_eq!(sample.total("pkts"), 5);
        assert_eq!(sample.gauge("rate"), Some(77));
        assert_eq!(sample.hists["lat"].count, 1);
        assert_eq!(sample.hists["lat"].delta, 1);
        assert_eq!(sample.rate_per_sec("pkts"), 0.0, "no interval yet");
    }

    #[test]
    fn deltas_and_rates_follow_the_interval() {
        let mut s = Sampler::new(8);
        let mut r = reg_with(&[("pkts", 10)]);
        s.sample(0, &r);
        r.add("pkts", 30);
        let sample = s.sample(2_000_000, &r).clone(); // 2 s later
        assert_eq!(sample.interval_us, 2_000_000);
        assert_eq!(sample.counter_delta("pkts"), 30);
        assert_eq!(sample.total("pkts"), 40);
        assert!((sample.rate_per_sec("pkts") - 15.0).abs() < 1e-9);
        assert_eq!(sample.counter_delta("absent"), 0);
        assert_eq!(sample.rate_per_sec("absent"), 0.0);
    }

    #[test]
    fn deltas_sum_to_the_final_snapshot() {
        let mut s = Sampler::new(64);
        let mut r = MetricsRegistry::new();
        for i in 1..=10u64 {
            r.add("a", i);
            r.add("b", 2 * i);
            s.sample(i * 1_000, &r);
        }
        let sum_a: u64 = s.samples().map(|x| x.counter_delta("a")).sum();
        let sum_b: u64 = s.samples().map(|x| x.counter_delta("b")).sum();
        assert_eq!(sum_a, r.counter("a"));
        assert_eq!(sum_b, r.counter("b"));
        assert_eq!(s.latest().unwrap().total("a"), r.counter("a"));
    }

    #[test]
    fn counters_and_time_are_monotonic_across_samples() {
        let mut s = Sampler::new(32);
        let mut r = MetricsRegistry::new();
        for i in 0..20u64 {
            r.add("n", 1 + i % 3);
            s.sample(i * 500, &r);
        }
        let samples: Vec<_> = s.samples().collect();
        for w in samples.windows(2) {
            assert!(w[1].t_us > w[0].t_us);
            assert!(w[1].seq == w[0].seq + 1);
            assert!(w[1].total("n") >= w[0].total("n"), "totals regressed");
        }
    }

    #[test]
    fn ring_overwrite_preserves_newest_n() {
        let mut s = Sampler::new(3);
        let mut r = MetricsRegistry::new();
        for i in 0..10u64 {
            r.inc("n");
            s.sample(i, &r);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.overwritten(), 7);
        assert_eq!(s.taken(), 10);
        let seqs: Vec<u64> = s.samples().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9], "ring must keep the newest 3");
        assert_eq!(s.latest().unwrap().total("n"), 10);
    }

    #[test]
    fn clock_rewind_yields_zero_interval_not_underflow() {
        let mut s = Sampler::new(4);
        let r = reg_with(&[("n", 1)]);
        s.sample(5_000, &r);
        let sample = s.sample(4_000, &r).clone();
        assert_eq!(sample.interval_us, 0);
        assert_eq!(sample.rate_per_sec("n"), 0.0);
    }

    #[test]
    fn jsonl_sink_receives_one_line_per_sample() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf(Arc::new(Mutex::new(Vec::new())));
        let mut s = Sampler::new(2).with_sink(Box::new(buf.clone()));
        let mut r = MetricsRegistry::new();
        for i in 0..5u64 {
            r.inc("n");
            r.set_gauge("g", i);
            s.sample(i * 10, &r);
        }
        s.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // The sink sees every sample, even the ones the ring dropped.
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(line.starts_with("{\"telemetry\":1,"), "bad line: {line}");
            assert!(line.ends_with('}'), "bad line: {line}");
            assert!(line.contains("\"counters\":{"), "bad line: {line}");
        }
        assert!(lines[4].contains("\"g\":4"));
    }

    #[test]
    fn json_line_is_stable_and_ordered() {
        let mut s = Sampler::new(1);
        let mut r = MetricsRegistry::new();
        r.add("b", 2);
        r.add("a", 1);
        r.set_gauge("g", 3);
        r.observe("h", 4);
        let line = s.sample(9, &r).to_json_line();
        assert_eq!(
            line,
            "{\"telemetry\":1,\"seq\":0,\"t_us\":9,\"interval_us\":0,\
             \"counters\":{\"a\":1,\"b\":2},\"totals\":{\"a\":1,\"b\":2},\
             \"gauges\":{\"g\":3},\"hists\":{\"h\":{\"count\":1,\"delta\":1,\
             \"p50\":4,\"p90\":4,\"p99\":4,\"max\":4}}}"
        );
    }
}
