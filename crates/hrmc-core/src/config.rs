//! Protocol configuration.
//!
//! Constants the paper states explicitly default to the paper's values
//! (MINBUF = 10 RTTs, WARNBUF = 4 RTTs, urgent stop = 2 RTTs, keepalive
//! cap 2 s, initial update period 50 jiffies, ±1 jiffy adaptation).
//! Parameters the paper leaves unstated (slow-start initial window, region
//! thresholds, NAK suppression interval, ...) get TCP-like defaults and
//! are exposed here so the ablation benches can vary them.

use crate::fec::FecConfig;
use crate::time::{Micros, JIFFY_US, MS, SEC};

/// Which reliability architecture the engines run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliabilityMode {
    /// The original RMC protocol (paper §2): pure NAK-based reliability.
    /// The sender releases buffers after MINBUF round-trip times without
    /// consulting receiver state; a NAK for released data is answered with
    /// NAK_ERR and reliability is *not* guaranteed. Receivers send no
    /// UPDATEs and the sender sends no PROBEs.
    RmcNakOnly,
    /// H-RMC (paper §3): NAK-based feedback plus per-receiver state,
    /// periodic UPDATEs, and PROBEs before buffer release. Reliability is
    /// guaranteed: "The send window is advanced only when the sender
    /// confirms that all receivers have received the data."
    Hybrid,
}

/// How the receiver's update timer behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// H-RMC's adaptive timer (paper §4.3): period starts at
    /// [`ProtocolConfig::initial_update_period_jiffies`], shrinks by one
    /// jiffy after a period in which a PROBE arrived, and grows by one
    /// jiffy after a probe-free period.
    Dynamic,
    /// A fixed period (the paper's "original design ... fixed
    /// (0.5 seconds)"), kept for the ablation bench.
    Fixed(u64),
    /// No updates at all (RMC baseline).
    Disabled,
}

/// When the sender probes receivers it lacks information from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbePolicy {
    /// Probe at the moment buffer release is attempted and blocked
    /// (H-RMC as published).
    AtRelease,
    /// Probe `lead_rtts` round-trip times *before* a block is predicted to
    /// become release-eligible, so the answer is usually in hand by
    /// release time. This is the paper's future-work item (1): "probing
    /// receivers prior to buffer release time to avoid a stop-and-wait
    /// scenario for small buffers".
    Early {
        /// How many RTTs of lead time to give the probe.
        lead_rtts: u32,
    },
}

/// How PROBE packets are transported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeTransport {
    /// Unicast one PROBE per lacking receiver (H-RMC as published).
    Unicast,
    /// Multicast a single PROBE when the number of lacking receivers
    /// exceeds the threshold; receivers that already confirmed simply
    /// answer with an UPDATE they would have sent anyway. This is the
    /// paper's future-work item (2): "multicasting probes when the number
    /// of receivers to be probed is greater than some threshold".
    MulticastAbove(usize),
}

/// Complete protocol configuration shared by sender and receiver engines.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Reliability architecture; see [`ReliabilityMode`].
    pub mode: ReliabilityMode,

    // ------------------------------------------------------------------
    // Segmentation and buffering
    // ------------------------------------------------------------------
    /// Payload bytes per DATA packet. 1400 keeps header + payload within
    /// Ethernet MTU after IP/UDP encapsulation.
    pub segment_size: usize,
    /// Send buffer (kernel socket buffer) size in bytes — the paper's
    /// primary experimental knob, swept 64 KiB – 1024 KiB and beyond.
    pub sndbuf: usize,
    /// Receive buffer size in bytes.
    pub rcvbuf: usize,

    // ------------------------------------------------------------------
    // Window / buffer-release policy
    // ------------------------------------------------------------------
    /// Minimum residency of a packet in the send buffer, in RTTs to the
    /// most distant receiver. Paper §2: "The minimum time that any data
    /// packet must be buffered is MINBUF round trip times (set to 10)".
    pub minbuf_rtts: u32,
    /// Residency floor applied while the membership table is empty
    /// (Hybrid mode). IP-multicast membership is anonymous until the
    /// first JOIN arrives, and on high-delay paths a JOIN can take
    /// hundreds of milliseconds — longer than MINBUF × the initial RTT
    /// seed — so without this hold the sender can release data it will
    /// owe to receivers it has not yet heard of (the join race). Two
    /// seconds covers several JOIN retries on a 100 ms path.
    pub anonymous_release_hold: Micros,

    // ------------------------------------------------------------------
    // Rate control (two-stage: slow start / congestion avoidance)
    // ------------------------------------------------------------------
    /// Minimum transmission rate in bytes/second; the rate used at
    /// connection start and after an urgent rate request.
    pub min_rate: u64,
    /// Hard cap on the transmission rate in bytes/second (the sender does
    /// not know the link speed; drivers may lower this to model one).
    pub max_rate: u64,
    /// Slow-start threshold as a fraction of `max_rate` at connection
    /// start; above it growth turns linear (congestion avoidance).
    pub initial_ssthresh_fraction: f64,
    /// Linear-increase step in bytes/second applied once per RTT during
    /// congestion avoidance.
    pub linear_increase_per_rtt: u64,
    /// Stop duration after an urgent rate request, in RTTs. Paper §2
    /// rule 3: "stop forward transmission for two round-trip times".
    pub urgent_stop_rtts: u32,
    /// Minimum spacing between rate halvings, in RTTs: several NAKs from
    /// one loss burst count as one congestion event (TCP-style).
    pub halving_min_interval_rtts: f64,

    // ------------------------------------------------------------------
    // Receiver flow control (paper Figure 2 regions)
    // ------------------------------------------------------------------
    /// Receive-window occupancy at which the warning region begins.
    pub warn_threshold: f64,
    /// Receive-window occupancy at which the critical region begins.
    pub critical_threshold: f64,
    /// Rate rule 2 look-ahead in RTTs. Paper §2: "the amount of data that
    /// may be sent at the advertised rate for the next WARNBUF (currently
    /// set to 4) round-trip times".
    pub warnbuf_rtts: u32,
    /// Minimum spacing between CONTROL packets from one receiver, in RTTs.
    pub control_min_interval_rtts: f64,

    // ------------------------------------------------------------------
    // NAKs
    // ------------------------------------------------------------------
    /// Local NAK suppression interval in RTTs: a NAK for a given gap is
    /// not repeated until the sender has had this long to respond.
    pub nak_suppress_rtts: f64,
    /// Floor for the NAK suppression interval (guards tiny RTT estimates).
    pub nak_suppress_floor: Micros,
    /// Period of the receiver's NAK manager timer in jiffies.
    pub nak_timer_jiffies: u64,

    // ------------------------------------------------------------------
    // Keepalives
    // ------------------------------------------------------------------
    /// Initial keepalive delay in microseconds; doubles while idle.
    pub keepalive_initial: Micros,
    /// Exponential-backoff cap. Paper §2: "up to a maximum delay
    /// (currently 2 seconds)".
    pub keepalive_max: Micros,

    // ------------------------------------------------------------------
    // Updates (H-RMC)
    // ------------------------------------------------------------------
    /// Update timer behaviour; see [`UpdateMode`].
    pub update_mode: UpdateMode,
    /// Initial update period in jiffies. Paper §4.3: "initially set at 50
    /// jiffies".
    pub initial_update_period_jiffies: u64,
    /// Lower clamp for the adaptive update period, in jiffies.
    pub min_update_period_jiffies: u64,
    /// Upper clamp for the adaptive update period, in jiffies.
    pub max_update_period_jiffies: u64,

    // ------------------------------------------------------------------
    // Probes (H-RMC)
    // ------------------------------------------------------------------
    /// When to probe; see [`ProbePolicy`].
    pub probe_policy: ProbePolicy,
    /// How to transport probes; see [`ProbeTransport`].
    pub probe_transport: ProbeTransport,
    /// Re-probe interval for an unanswered probe, in RTTs.
    pub probe_retry_rtts: f64,
    /// Cap on unicast PROBEs emitted per tick. `0` (the default) probes
    /// every eligible laggard each tick — the published protocol. Above
    /// the cap, the sender round-robins through the laggard set across
    /// successive ticks, bounding per-jiffy fan-out at large scale; the
    /// [`ProbeTransport::MulticastAbove`] decision is judged on the full
    /// laggard count *before* capping.
    pub probe_batch_limit: u32,

    // ------------------------------------------------------------------
    // RTT estimation
    // ------------------------------------------------------------------
    /// RTT estimate before any sample has been taken.
    pub initial_rtt: Micros,
    /// Floor for the RTT estimate.
    pub min_rtt: Micros,

    // ------------------------------------------------------------------
    // Connection management
    // ------------------------------------------------------------------
    /// JOIN retry interval while unconfirmed (the initial backoff step).
    pub join_retry: Micros,
    /// Cap for the JOIN retry exponential backoff. Defaults to
    /// `join_retry`, which degenerates to the original fixed-interval
    /// retry; raise it to spread retries out on lossy paths.
    pub join_retry_max: Micros,
    /// Maximum JOIN attempts before the receiver gives up and reports
    /// [`SessionFailed`](crate::events::ReceiverEvent::SessionFailed).
    /// `0` retries forever (the original behaviour).
    pub join_retry_limit: u32,
    /// Deterministic jitter fraction applied to each JOIN retry backoff
    /// step, in `[0, 1]`: the effective delay is the backoff step scaled
    /// by `1 ± join_jitter`, with the offset hashed from the receiver's
    /// local port and attempt number. A group of receivers that lost the
    /// same JOIN_RESPONSE burst (a partition heal, a sender restart)
    /// would otherwise retry in lock-step and collide again; the hash
    /// spreads them without drawing from any RNG, so runs stay
    /// reproducible. `0.0` (the default) keeps the original unjittered
    /// backoff.
    pub join_jitter: f64,

    // ------------------------------------------------------------------
    // Failure domains (ejection / death detection)
    // ------------------------------------------------------------------
    /// Eject a member after this many consecutive unanswered PROBEs —
    /// the re-probe of a still-unanswered probe counts one failure. A
    /// crashed receiver otherwise blocks buffer release forever (Hybrid
    /// mode's reliability guarantee turned liveness hole). `0` disables
    /// ejection by probe failure.
    pub probe_failure_limit: u32,
    /// Eject a member once nothing has been heard from it for this long.
    /// Catches receivers that die while fully caught up (no probes are
    /// outstanding for them). `0` disables silence-based ejection.
    pub member_silence_us: Micros,
    /// Receiver-side sender-death detection: declare the session failed
    /// after `keepalive_max × this factor` of sender silence. An alive
    /// but idle sender keeps the line warm at `keepalive_max` intervals,
    /// so any factor ≥ 2 tolerates lost keepalives. `0` disables death
    /// detection.
    pub sender_death_factor: u32,

    // ------------------------------------------------------------------
    // Forward error correction (extension; paper future-work item 4)
    // ------------------------------------------------------------------
    /// Optional XOR-parity FEC: one parity packet per `k` data packets,
    /// letting receivers repair single losses without a NAK round trip.
    /// `None` (the default) matches the published protocol.
    pub fec: Option<FecConfig>,

    // ------------------------------------------------------------------
    // Local recovery (extension; paper future-work item 3)
    // ------------------------------------------------------------------
    /// Optional SRM-style local recovery: NAKs are multicast, peers that
    /// hold the requested data answer with multicast repairs after a
    /// port-keyed slot delay, and the sender holds its own retransmission
    /// back one repair window (cancelling it if the group confirms the
    /// data meanwhile). `false` (the default) keeps the paper's
    /// centralized recovery: "Recovery of lost packets is centralized:
    /// the sender is solely responsible for retransmitting data."
    pub local_recovery: bool,
    /// Sender hold-back before serving a NAK when local recovery is on,
    /// in RTTs — the window in which a peer repair can win: first-slot
    /// repair (~0.5 RTT) + healing (~0.5 RTT) + the requester's recovery
    /// UPDATE (~0.5 RTT) plus margin.
    pub local_repair_wait_rtts: f64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            mode: ReliabilityMode::Hybrid,
            segment_size: 1400,
            sndbuf: 256 * 1024,
            rcvbuf: 256 * 1024,
            minbuf_rtts: 10,
            anonymous_release_hold: 2 * SEC,
            min_rate: 64 * 1024,
            max_rate: 1 << 40,
            initial_ssthresh_fraction: 1.0,
            linear_increase_per_rtt: 64 * 1024,
            urgent_stop_rtts: 2,
            halving_min_interval_rtts: 1.0,
            warn_threshold: 0.50,
            critical_threshold: 0.90,
            warnbuf_rtts: 4,
            control_min_interval_rtts: 1.0,
            nak_suppress_rtts: 1.5,
            nak_suppress_floor: 2 * MS,
            nak_timer_jiffies: 1,
            keepalive_initial: 20 * JIFFY_US,
            keepalive_max: 2 * SEC,
            update_mode: UpdateMode::Dynamic,
            initial_update_period_jiffies: 50,
            min_update_period_jiffies: 2,
            max_update_period_jiffies: 500,
            probe_policy: ProbePolicy::AtRelease,
            probe_transport: ProbeTransport::Unicast,
            probe_retry_rtts: 2.0,
            probe_batch_limit: 0,
            initial_rtt: 10 * MS,
            min_rtt: 100,
            join_retry: 200 * MS,
            join_retry_max: 200 * MS,
            join_retry_limit: 0,
            join_jitter: 0.0,
            probe_failure_limit: 0,
            member_silence_us: 0,
            sender_death_factor: 0,
            fec: None,
            local_recovery: false,
            local_repair_wait_rtts: 4.0,
        }
    }
}

impl ProtocolConfig {
    /// H-RMC with the paper's defaults.
    pub fn hrmc() -> Self {
        ProtocolConfig::default()
    }

    /// The original RMC baseline: pure NAK reliability, no updates, no
    /// probes, unconditional buffer release after MINBUF RTTs.
    pub fn rmc() -> Self {
        ProtocolConfig {
            mode: ReliabilityMode::RmcNakOnly,
            update_mode: UpdateMode::Disabled,
            ..ProtocolConfig::default()
        }
    }

    /// Enable XOR-parity FEC with block size `k` (overhead 1/k).
    pub fn with_fec(mut self, k: usize) -> Self {
        self.fec = Some(FecConfig { k });
        self
    }

    /// Enable SRM-style local recovery (multicast NAKs + peer repairs).
    pub fn with_local_recovery(mut self) -> Self {
        self.local_recovery = true;
        self
    }

    /// Builder-style buffer size setter (sets both sndbuf and rcvbuf, as
    /// the paper's experiments vary "the per-socket kernel buffer size").
    pub fn with_buffer(mut self, bytes: usize) -> Self {
        self.sndbuf = bytes;
        self.rcvbuf = bytes;
        self
    }

    /// Builder-style JOIN-retry jitter setter (fraction in `[0, 1]`).
    pub fn join_jitter(mut self, jitter: f64) -> Self {
        self.join_jitter = jitter;
        self
    }

    /// Builder-style segment size setter.
    pub fn with_segment_size(mut self, bytes: usize) -> Self {
        self.segment_size = bytes;
        self
    }

    /// Number of whole segments the send buffer can hold.
    pub fn sndbuf_segments(&self) -> usize {
        (self.sndbuf / self.segment_size).max(1)
    }

    /// Validate invariants; engines call this on construction.
    pub fn validate(&self) -> Result<(), String> {
        if self.segment_size == 0 {
            return Err("segment_size must be positive".into());
        }
        if self.sndbuf < self.segment_size || self.rcvbuf < self.segment_size {
            return Err("buffers must hold at least one segment".into());
        }
        if !(0.0..=1.0).contains(&self.warn_threshold)
            || !(0.0..=1.0).contains(&self.critical_threshold)
            || self.warn_threshold > self.critical_threshold
        {
            return Err("region thresholds must satisfy 0 <= warn <= critical <= 1".into());
        }
        if self.min_rate == 0 || self.min_rate > self.max_rate {
            return Err("rates must satisfy 0 < min_rate <= max_rate".into());
        }
        if self.min_update_period_jiffies == 0
            || self.min_update_period_jiffies > self.max_update_period_jiffies
        {
            return Err("update period clamps must satisfy 0 < min <= max".into());
        }
        if self.mode == ReliabilityMode::RmcNakOnly && self.update_mode != UpdateMode::Disabled {
            return Err("RMC mode requires UpdateMode::Disabled".into());
        }
        if self.join_retry_max < self.join_retry {
            return Err("join_retry_max must be >= join_retry".into());
        }
        if !(0.0..=1.0).contains(&self.join_jitter) {
            return Err("join_jitter must be within [0, 1]".into());
        }
        if let Some(fec) = &self.fec {
            fec.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = ProtocolConfig::default();
        assert_eq!(c.minbuf_rtts, 10); // MINBUF
        assert_eq!(c.warnbuf_rtts, 4); // WARNBUF
        assert_eq!(c.urgent_stop_rtts, 2);
        assert_eq!(c.keepalive_max, 2_000_000); // 2 s cap
        assert_eq!(c.initial_update_period_jiffies, 50); // 0.5 s
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rmc_preset_disables_hybrid_machinery() {
        let c = ProtocolConfig::rmc();
        assert_eq!(c.mode, ReliabilityMode::RmcNakOnly);
        assert_eq!(c.update_mode, UpdateMode::Disabled);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn with_buffer_sets_both_sides() {
        let c = ProtocolConfig::default().with_buffer(64 * 1024);
        assert_eq!(c.sndbuf, 64 * 1024);
        assert_eq!(c.rcvbuf, 64 * 1024);
    }

    #[test]
    fn sndbuf_segments_counts_whole_segments() {
        let c = ProtocolConfig::default()
            .with_buffer(64 * 1024)
            .with_segment_size(1400);
        assert_eq!(c.sndbuf_segments(), 64 * 1024 / 1400);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // each case mutates one field
    fn validate_rejects_bad_configs() {
        let mut c = ProtocolConfig::default();
        c.segment_size = 0;
        assert!(c.validate().is_err());

        let mut c = ProtocolConfig::default();
        c.sndbuf = 10;
        assert!(c.validate().is_err());

        let mut c = ProtocolConfig::default();
        c.warn_threshold = 0.95;
        c.critical_threshold = 0.5;
        assert!(c.validate().is_err());

        let mut c = ProtocolConfig::default();
        c.min_rate = 0;
        assert!(c.validate().is_err());

        let mut c = ProtocolConfig::default();
        c.mode = ReliabilityMode::RmcNakOnly; // but updates left on
        assert!(c.validate().is_err());

        let mut c = ProtocolConfig::default();
        c.min_update_period_jiffies = 1000;
        assert!(c.validate().is_err());

        let mut c = ProtocolConfig::default();
        c.join_retry_max = c.join_retry - 1;
        assert!(c.validate().is_err());

        let mut c = ProtocolConfig::default();
        c.join_jitter = 1.5;
        assert!(c.validate().is_err());
        c.join_jitter = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn failure_domain_handling_is_off_by_default() {
        let c = ProtocolConfig::default();
        assert_eq!(c.probe_failure_limit, 0);
        assert_eq!(c.member_silence_us, 0);
        assert_eq!(c.sender_death_factor, 0);
        assert_eq!(c.join_retry_limit, 0);
        assert_eq!(c.join_retry_max, c.join_retry);
        assert!(c.validate().is_ok());
    }
}
