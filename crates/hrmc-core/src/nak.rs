//! The receiver's NAK manager (paper Figure 9, `nak_timer`).
//!
//! As the receiver reassembles the stream it detects gaps; each missing
//! sequence number becomes a pending NAK. New gaps are NAKed immediately;
//! after that, **local NAK suppression** (paper §2) holds each entry back
//! until the sender has had ample opportunity to respond — a suppression
//! interval measured in RTTs. The `nak_timer` periodically scans the
//! pending list and re-sends overdue NAKs.
//!
//! Entries are keyed by *unwrapped* (64-bit) sequence numbers, matching
//! [`crate::rxwindow`]. Adjacent due entries coalesce into `(first,
//! count)` ranges so a burst loss costs one NAK packet, mirroring the
//! single NAK-with-length wire encoding.

use std::collections::BTreeMap;

use crate::time::Micros;

/// State of one missing sequence number.
#[derive(Debug, Clone, Copy)]
struct NakEntry {
    /// When the gap was first noted (recovery-latency base).
    first_noted: Micros,
    /// When a NAK naming this sequence was last sent.
    last_sent: Micros,
    /// How many NAKs have named it (wire `tries`).
    tries: u8,
}

/// Hard cap on tracked missing sequence numbers. A hostile KEEPALIVE or
/// PROBE can advertise a sequence far ahead of the stream; expanding
/// that span one entry per sequence would let a single datagram pin
/// gigabytes of pending state. Gaps past the cap are simply not tracked
/// yet — they re-register as the window advances and earlier entries
/// are satisfied.
pub const MAX_PENDING: usize = 1 << 16;

/// Pending-NAK list with suppression.
#[derive(Debug, Default)]
pub struct NakManager {
    pending: BTreeMap<u64, NakEntry>,
    /// Total NAK packets requested by this manager (stat).
    pub naks_generated: u64,
    /// Sequence numbers left untracked because the pending list was at
    /// [`MAX_PENDING`] (adversarial-input audit trail).
    pub clamped: u64,
}

impl NakManager {
    /// Empty manager.
    pub fn new() -> NakManager {
        NakManager::default()
    }

    /// Number of sequence numbers currently missing.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is missing.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// `true` if `seq` is pending.
    pub fn contains(&self, seq: u64) -> bool {
        self.pending.contains_key(&seq)
    }

    /// Register newly discovered gaps and return the ranges to NAK *right
    /// now* (a new gap is NAKed immediately; known gaps stay suppressed).
    pub fn note_missing(&mut self, ranges: &[(u64, u32)], now: Micros) -> Vec<(u64, u32)> {
        let mut fresh = Vec::new();
        for &(first, count) in ranges {
            let end = first.saturating_add(u64::from(count));
            for seq in first..end {
                if self.pending.len() >= MAX_PENDING {
                    // Everything from here on is untracked; don't walk
                    // the rest of a possibly enormous span.
                    self.clamped = self.clamped.saturating_add(end - seq);
                    break;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = self.pending.entry(seq) {
                    e.insert(NakEntry {
                        first_noted: now,
                        last_sent: now,
                        tries: 0,
                    });
                    fresh.push(seq);
                }
            }
        }
        let out = coalesce(&fresh);
        self.naks_generated += out.len() as u64;
        out
    }

    /// Register gaps without emitting NAKs (the PROBE response path
    /// registers then immediately [`force_below`](NakManager::force_below)s,
    /// so the registration itself must stay silent).
    pub fn register(&mut self, ranges: &[(u64, u32)], now: Micros) {
        for &(first, count) in ranges {
            let end = first.saturating_add(u64::from(count));
            for seq in first..end {
                if self.pending.len() >= MAX_PENDING {
                    self.clamped = self.clamped.saturating_add(end - seq);
                    break;
                }
                self.pending.entry(seq).or_insert(NakEntry {
                    first_noted: now,
                    last_sent: now,
                    tries: 0,
                });
            }
        }
    }

    /// Remove a sequence number (its data arrived). Returns the time the
    /// gap was first noted, for recovery-latency measurement.
    pub fn satisfy(&mut self, seq: u64) -> Option<Micros> {
        self.pending.remove(&seq).map(|e| e.first_noted)
    }

    /// Remove every entry below `rcv_nxt` (delivered in order). Returns
    /// the removed `(seq, first_noted)` pairs in order; empty — and
    /// allocation-free — in the common nothing-was-pending case.
    pub fn satisfy_below(&mut self, rcv_nxt: u64) -> Vec<(u64, Micros)> {
        // split_off keeps >= rcv_nxt; everything before is satisfied.
        let kept = self.pending.split_off(&rcv_nxt);
        let removed = std::mem::replace(&mut self.pending, kept);
        removed
            .into_iter()
            .map(|(s, e)| (s, e.first_noted))
            .collect()
    }

    /// Scan for entries whose suppression interval has lapsed; mark them
    /// re-sent at `now` and return the coalesced ranges to NAK. `tries`
    /// increments per entry so Karn's rule can ignore their RTT samples.
    pub fn due(&mut self, now: Micros, suppress: Micros) -> Vec<(u64, u32)> {
        let mut due = Vec::new();
        for (&seq, entry) in self.pending.iter_mut() {
            if now.saturating_sub(entry.last_sent) >= suppress {
                entry.last_sent = now;
                entry.tries = entry.tries.saturating_add(1);
                due.push(seq);
            }
        }
        let out = coalesce(&due);
        self.naks_generated += out.len() as u64;
        out
    }

    /// Earliest time any pending entry's suppression interval lapses —
    /// the NAK manager's contribution to a deadline-driven driver's
    /// `next_wakeup`. `None` when nothing is missing.
    pub fn next_due(&self, suppress: Micros) -> Option<Micros> {
        self.pending
            .values()
            .map(|e| e.last_sent.saturating_add(suppress))
            .min()
    }

    /// Force-NAK every pending entry at or below `limit` immediately,
    /// bypassing suppression — the PROBE response path ("Otherwise, the
    /// receiver generates a NAK message for the needed data").
    pub fn force_below(&mut self, limit: u64, now: Micros) -> Vec<(u64, u32)> {
        let mut forced = Vec::new();
        for (&seq, entry) in self.pending.range_mut(..limit) {
            entry.last_sent = now;
            entry.tries = entry.tries.saturating_add(1);
            forced.push(seq);
        }
        let out = coalesce(&forced);
        self.naks_generated += out.len() as u64;
        out
    }

    /// Highest retransmission count across pending entries (stat; useful
    /// for failure-injection tests).
    pub fn max_tries(&self) -> u8 {
        self.pending.values().map(|e| e.tries).max().unwrap_or(0)
    }
}

/// Collapse a sorted list of sequence numbers into maximal `(first,
/// count)` ranges.
fn coalesce(seqs: &[u64]) -> Vec<(u64, u32)> {
    let mut out: Vec<(u64, u32)> = Vec::new();
    for &s in seqs {
        match out.last_mut() {
            Some((first, count))
                if first.checked_add(u64::from(*count)) == Some(s) && *count < u32::MAX =>
            {
                *count += 1
            }
            _ => out.push((s, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_gaps_nak_immediately_once() {
        let mut m = NakManager::new();
        let fresh = m.note_missing(&[(5, 3)], 100);
        assert_eq!(fresh, vec![(5, 3)]);
        // Re-noting the same gap is silent (suppression).
        let again = m.note_missing(&[(5, 3)], 200);
        assert!(again.is_empty());
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn partial_overlap_naks_only_new_part() {
        let mut m = NakManager::new();
        m.note_missing(&[(5, 3)], 100); // 5,6,7
        let fresh = m.note_missing(&[(7, 3)], 150); // 7 known; 8,9 new
        assert_eq!(fresh, vec![(8, 2)]);
    }

    #[test]
    fn suppression_holds_then_releases() {
        let mut m = NakManager::new();
        m.note_missing(&[(10, 2)], 1_000);
        assert!(m.due(1_500, 1_000).is_empty()); // only 500 µs elapsed
        let due = m.due(2_000, 1_000);
        assert_eq!(due, vec![(10, 2)]);
        // Clock restarts after the re-send.
        assert!(m.due(2_500, 1_000).is_empty());
        assert_eq!(m.max_tries(), 1);
    }

    #[test]
    fn satisfy_removes_entries() {
        let mut m = NakManager::new();
        m.note_missing(&[(0, 5)], 0);
        m.satisfy(2);
        assert!(!m.contains(2));
        assert_eq!(m.len(), 4);
        m.satisfy_below(4);
        assert_eq!(m.len(), 1); // only 4 remains
        assert!(m.contains(4));
    }

    #[test]
    fn satisfy_reports_first_noted_times() {
        let mut m = NakManager::new();
        m.note_missing(&[(5, 2)], 1_000);
        m.due(10_000, 1_000); // re-send; first_noted must not move
        assert_eq!(m.satisfy(5), Some(1_000));
        assert_eq!(m.satisfy(5), None);
        let removed = m.satisfy_below(10);
        assert_eq!(removed, vec![(6, 1_000)]);
        assert!(m.satisfy_below(10).is_empty());
    }

    #[test]
    fn due_coalesces_adjacent_only() {
        let mut m = NakManager::new();
        m.note_missing(&[(0, 2), (5, 2)], 0);
        let due = m.due(10_000, 1_000);
        assert_eq!(due, vec![(0, 2), (5, 2)]);
    }

    #[test]
    fn force_below_bypasses_suppression() {
        let mut m = NakManager::new();
        m.note_missing(&[(0, 4)], 1_000);
        // Immediately forced despite having just been NAKed.
        let forced = m.force_below(2, 1_500);
        assert_eq!(forced, vec![(0, 2)]);
        // Entries at or above the limit keep their original clocks.
        assert_eq!(m.due(2_000, 1_000), vec![(2, 2)]);
        // The forced entries' suppression clocks restarted at 1500.
        assert_eq!(m.due(2_500, 1_000), vec![(0, 2)]);
    }

    #[test]
    fn coalesce_ranges() {
        assert_eq!(coalesce(&[]), vec![]);
        assert_eq!(coalesce(&[1]), vec![(1, 1)]);
        assert_eq!(
            coalesce(&[1, 2, 3, 7, 8, 10]),
            vec![(1, 3), (7, 2), (10, 1)]
        );
    }

    #[test]
    fn hostile_span_is_clamped_not_expanded() {
        let mut m = NakManager::new();
        // One "gap" spanning 2^32 sequences — what a forged KEEPALIVE
        // advertising a far-future sequence would induce. Must not
        // allocate billions of entries.
        let fresh = m.note_missing(&[(0, u32::MAX)], 0);
        assert_eq!(m.len(), MAX_PENDING);
        assert!(m.clamped > 0, "clamp never engaged");
        assert!(!fresh.is_empty(), "the tracked prefix must still NAK");
        // register() obeys the same cap.
        let mut r = NakManager::new();
        r.register(&[(0, u32::MAX)], 0);
        assert_eq!(r.len(), MAX_PENDING);
        assert!(r.clamped > 0);
        // Ranges near the top of the sequence space saturate instead of
        // wrapping (and expand only to the boundary).
        let mut w = NakManager::new();
        let f = w.note_missing(&[(u64::MAX - 10, u32::MAX)], 0);
        assert_eq!(w.len(), 10);
        assert_eq!(f, vec![(u64::MAX - 10, 10)]);
    }

    #[test]
    fn nak_counter_counts_packets_not_seqs() {
        let mut m = NakManager::new();
        m.note_missing(&[(0, 100)], 0); // one coalesced range = one packet
        assert_eq!(m.naks_generated, 1);
        m.due(1_000_000, 1_000);
        assert_eq!(m.naks_generated, 2);
    }
}
