//! Lightweight metrics primitives for the observability layer: counters,
//! gauges, and log2-bucketed histograms with cheap snapshots.
//!
//! The paper's evaluation reports end-of-run totals; reproducing its
//! *dynamics* (rate evolution, recovery latency, probe round trips) needs
//! distributions. A [`Histogram`] buckets values by their bit width
//! (bucket `i` holds values in `[2^(i-1), 2^i)`, bucket 0 holds zero), so
//! recording is a handful of integer ops and the whole structure is a
//! fixed ~0.5 KB — cheap enough to keep per engine and to clone for
//! snapshots.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of histogram buckets: one per possible bit width of a `u64`,
/// plus the zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: its bit width (0 for 0, 1 for 1,
    /// 2 for 2–3, 3 for 4–7, ...).
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= 64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket sample counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Estimate the `p`-quantile (`0.0 < p <= 1.0`): walk the cumulative
    /// bucket counts and report the matched bucket's upper bound, clamped
    /// to the observed max. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Condensed view for reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            mean: self.mean(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
        }
    }
}

/// Condensed histogram statistics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// A named collection of counters, gauges, and histograms.
///
/// Names are `&'static str` so recording never allocates; the registry is
/// plain data — wrap it in a mutex (see
/// [`MetricsObserver`](crate::obs::MetricsObserver)) to share it.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment a counter by `n`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Set a gauge to its latest value.
    pub fn set_gauge(&mut self, name: &'static str, v: u64) {
        self.gauges.insert(name, v);
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Merge a whole pre-aggregated histogram into `name` — how a
    /// component that keeps its own [`Histogram`] (e.g. the net driver's
    /// reactor batch-size distributions) publishes into a registry
    /// without replaying every sample.
    pub fn merge_histogram(&mut self, name: &'static str, h: &Histogram) {
        self.histograms.entry(name).or_default().merge(h);
    }

    /// Replace `name` with a pre-aggregated histogram. The idempotent
    /// sibling of [`MetricsRegistry::merge_histogram`], for publishers
    /// that re-export the same live histogram periodically (a telemetry
    /// sampler): repeated publishes must not double-count.
    pub fn set_histogram(&mut self, name: &'static str, h: &Histogram) {
        self.histograms.insert(name, h.clone());
    }

    /// Read a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Read a histogram, if any samples were recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Cheap snapshot of the whole registry (a clone; histograms are
    /// fixed-size arrays).
    pub fn snapshot(&self) -> MetricsRegistry {
        self.clone()
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Render the registry as a single JSON object (hand-rolled: names
    /// are identifiers and values numeric, so no escaping is needed).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = h.summary();
            let _ = write!(
                out,
                "\"{k}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                s.count, s.min, s.max, s.mean, s.p50, s.p90, s.p99
            );
        }
        out.push_str("}}");
        out
    }

    /// Render the registry in the Prometheus text exposition format
    /// (version 0.0.4). Every metric gets an `hrmc_` prefix; counters
    /// additionally get the conventional `_total` suffix; histograms are
    /// exposed as summaries (quantile-labelled gauges plus `_sum` and
    /// `_count` series). Names in the registry are already valid metric
    /// identifiers, so no sanitisation pass is needed.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (k, v) in self.counters.iter() {
            let _ = writeln!(out, "# TYPE hrmc_{k}_total counter");
            let _ = writeln!(out, "hrmc_{k}_total {v}");
        }
        for (k, v) in self.gauges.iter() {
            let _ = writeln!(out, "# TYPE hrmc_{k} gauge");
            let _ = writeln!(out, "hrmc_{k} {v}");
        }
        for (k, h) in self.histograms.iter() {
            let _ = writeln!(out, "# TYPE hrmc_{k} summary");
            for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
                let _ = writeln!(out, "hrmc_{k}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "hrmc_{k}_sum {}", h.sum());
            let _ = writeln!(out, "hrmc_{k}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_width() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_cover_the_index() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 123_456_789, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper_bound(i));
            if i > 0 {
                assert!(v > Histogram::bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = Histogram::new();
        h.record(300);
        // Clamped to the observed max, so every percentile is the value.
        assert_eq!(h.p50(), 300);
        assert_eq!(h.p90(), 300);
        assert_eq!(h.p99(), 300);
        assert_eq!(h.min(), Some(300));
        assert_eq!(h.max(), Some(300));
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let mut h = Histogram::new();
        // 90 small samples and 10 large ones.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        // p50 lands in the small bucket [8, 15].
        assert!(h.p50() >= 10 && h.p50() < 16, "p50 = {}", h.p50());
        // p99 lands in the large bucket and clamps to max.
        assert_eq!(h.p99(), 100_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 10 + 10 * 100_000);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), Some(0));
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
        assert_eq!(a.sum(), 512);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.inc("naks");
        r.add("naks", 2);
        r.set_gauge("rate", 100);
        r.set_gauge("rate", 200);
        r.observe("rtt", 1000);
        r.observe("rtt", 3000);
        assert_eq!(r.counter("naks"), 3);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("rate"), Some(200));
        assert_eq!(r.histogram("rtt").unwrap().count(), 2);
        let snap = r.snapshot();
        r.inc("naks");
        assert_eq!(snap.counter("naks"), 3);
        assert_eq!(r.counter("naks"), 4);
    }

    #[test]
    fn merge_histogram_folds_preaggregated_samples() {
        let mut h = Histogram::new();
        h.record(2);
        h.record(8);
        let mut r = MetricsRegistry::new();
        r.observe("batch", 1);
        r.merge_histogram("batch", &h);
        let merged = r.histogram("batch").unwrap();
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 11);
        // Merging under a fresh name creates the histogram outright.
        r.merge_histogram("fresh", &h);
        assert_eq!(r.histogram("fresh").unwrap().count(), 2);
    }

    #[test]
    fn percentile_guards_degenerate_inputs() {
        // Empty histogram: every quantile is 0, whatever p is.
        let empty = Histogram::new();
        for p in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.percentile(p), 0);
        }
        // Non-empty histogram: out-of-range and NaN p clamp into the
        // observed range instead of panicking or indexing past the end.
        let mut h = Histogram::new();
        h.record(15); // exact upper bound of bucket [8, 15]
        h.record(1023); // exact upper bound of bucket [512, 1023]
        assert_eq!(h.percentile(0.0), 15, "p<=0 clamps to the minimum rank");
        assert_eq!(h.percentile(-3.0), 15);
        assert_eq!(h.percentile(f64::NAN), 15);
        assert_eq!(h.percentile(1.0), 1023);
        assert_eq!(h.percentile(5.0), 1023, "p>1 clamps to the maximum rank");
        assert_eq!(h.percentile(f64::INFINITY), 1023);
    }

    #[test]
    fn registry_renders_prometheus_exposition() {
        let mut r = MetricsRegistry::new();
        r.add("naks", 3);
        r.set_gauge("rate_bps", 1000);
        r.observe("rtt_us", 500);
        r.observe("rtt_us", 700);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE hrmc_naks_total counter\n"));
        assert!(text.contains("hrmc_naks_total 3\n"));
        assert!(text.contains("# TYPE hrmc_rate_bps gauge\n"));
        assert!(text.contains("hrmc_rate_bps 1000\n"));
        assert!(text.contains("# TYPE hrmc_rtt_us summary\n"));
        assert!(text.contains("hrmc_rtt_us{quantile=\"0.5\"}"));
        assert!(text.contains("hrmc_rtt_us{quantile=\"0.99\"} 700\n"));
        assert!(text.contains("hrmc_rtt_us_sum 1200\n"));
        assert!(text.contains("hrmc_rtt_us_count 2\n"));
        // Every non-comment line is "name value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            assert!(parts.next().unwrap().starts_with("hrmc_"), "{line}");
            assert!(parts.next().unwrap().parse::<u64>().is_ok(), "{line}");
            assert_eq!(parts.next(), None, "{line}");
        }
        assert!(MetricsRegistry::new().render_prometheus().is_empty());
    }

    #[test]
    fn registry_renders_json() {
        let mut r = MetricsRegistry::new();
        r.inc("a");
        r.set_gauge("g", 7);
        r.observe("h", 42);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"g\":7"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"p50\":42"));
    }
}
