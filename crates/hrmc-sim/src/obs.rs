//! Sim-side observability: per-host forwarding observers feeding one
//! shared collector.
//!
//! The collector correlates the sender's `DataSent` events with each
//! receiver's `Delivered` events under the simulation clock to build a
//! delivery-latency histogram (the time from first multicast transmission
//! to in-order delivery), pools every receiver's `Recovered` latencies
//! (NAK-to-repair), and can mirror the full event stream to a JSONL sink
//! with a `"host"` field identifying the engine that emitted each event.
//!
//! Simulated streams start at sequence 0 (see `Simulation::new`'s
//! `expect_stream_start(0)`), so wrapped wire sequence numbers and the
//! receivers' unwrapped 64-bit numbers coincide for the transfer sizes
//! the experiments use; the send-time table is keyed on that shared
//! value.

use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

use hrmc_core::obs::{event_json, event_json_with, header_json};
use hrmc_core::{
    Event, HealthConfig, HealthMonitor, Histogram, Micros, ProtocolObserver, SharedRecorder,
};

/// Collector shared by every host's [`HostObserver`].
pub struct SharedObs {
    /// First-transmission time per sequence number (retransmissions do
    /// not overwrite, so latency is measured from the original send).
    send_times: HashMap<u64, u64>,
    /// First-send → in-order-delivery latency (µs), all receivers pooled.
    pub delivery: Histogram,
    /// Gap-noted → gap-filled recovery latency (µs), all receivers pooled.
    pub recovery: Histogram,
    /// Optional JSONL event sink.
    log: Option<Box<dyn Write + Send>>,
    /// Optional bounded flight recorder fed alongside the sink.
    recorder: Option<SharedRecorder>,
    /// Optional online health monitor fed the tagged event stream.
    /// Alert transitions it emits are mirrored to the sink and recorder
    /// as host-less `health_alert` lines and retained in its history for
    /// [`crate::report::SimReport::alerts`].
    monitor: Option<HealthMonitor>,
}

impl SharedObs {
    /// Empty collector.
    pub fn new() -> SharedObs {
        SharedObs {
            send_times: HashMap::new(),
            delivery: Histogram::new(),
            recovery: Histogram::new(),
            log: None,
            recorder: None,
            monitor: None,
        }
    }

    /// Attach a JSONL event sink; the schema header is written
    /// immediately and every subsequent event from any host becomes one
    /// line.
    pub fn set_log(&mut self, mut log: Box<dyn Write + Send>) {
        let mut header = header_json("sim", None);
        header.push('\n');
        let _ = log.write_all(header.as_bytes());
        self.log = Some(log);
    }

    /// Attach a bounded flight recorder; every subsequent event from any
    /// host is recorded (tagged with the host id) until the ring
    /// overwrites it.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = Some(recorder);
    }

    /// Arm an online [`HealthMonitor`] over the pooled event stream.
    pub fn set_monitor(&mut self, cfg: HealthConfig) {
        self.monitor = Some(HealthMonitor::new(cfg));
    }

    /// The armed monitor, if any (its history carries every alert
    /// transition of the run).
    pub fn monitor(&self) -> Option<&HealthMonitor> {
        self.monitor.as_ref()
    }

    /// Flush the JSONL sink, if any.
    pub fn flush(&mut self) {
        if let Some(w) = self.log.as_mut() {
            let _ = w.flush();
        }
    }
}

impl Default for SharedObs {
    fn default() -> SharedObs {
        SharedObs::new()
    }
}

/// A [`ProtocolObserver`] installed into one host's engine, forwarding
/// into the run's [`SharedObs`].
pub struct HostObserver {
    host: usize,
    shared: Arc<Mutex<SharedObs>>,
}

impl HostObserver {
    /// Observer for `host` (0 = sender) feeding `shared`.
    pub fn new(host: usize, shared: Arc<Mutex<SharedObs>>) -> HostObserver {
        HostObserver { host, shared }
    }
}

impl ProtocolObserver for HostObserver {
    fn on_event(&mut self, now: Micros, ev: &Event) {
        let mut s = self.shared.lock().unwrap();
        match *ev {
            Event::DataSent {
                seq,
                retransmission: false,
                ..
            } if self.host == 0 => {
                s.send_times.entry(u64::from(seq)).or_insert(now);
            }
            Event::Delivered { first, count } => {
                for seq in first..first + u64::from(count) {
                    let sent = s.send_times.get(&seq).copied();
                    if let Some(sent) = sent {
                        s.delivery.record(now.saturating_sub(sent));
                    }
                }
            }
            Event::Recovered { elapsed_us, .. } => {
                s.recovery.record(elapsed_us);
            }
            _ => {}
        }
        let s: &mut SharedObs = &mut s;
        if let Some(rec) = s.recorder.as_ref() {
            rec.record_tagged(now, ev, Some(self.host as u32));
        }
        if let Some(w) = s.log.as_mut() {
            let extra = format!("\"host\":{},", self.host);
            let line = event_json_with(now, ev, &extra);
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
        }
        if let Some(mon) = s.monitor.as_mut() {
            // Receiver host h is member h−1 under the sim convention;
            // sender events carry peer ids in their payloads where they
            // matter (member ejection).
            let member = (self.host > 0).then(|| self.host as u32 - 1);
            mon.on_event_tagged(now, ev, member);
            for a in mon.take_alerts() {
                let alert_ev = a.to_event();
                if let Some(rec) = s.recorder.as_ref() {
                    rec.record_tagged(a.t_us, &alert_ev, None);
                }
                if let Some(w) = s.log.as_mut() {
                    let line = event_json(a.t_us, &alert_ev);
                    let _ = w.write_all(line.as_bytes());
                    let _ = w.write_all(b"\n");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_latency_correlates_send_and_delivery() {
        let shared = Arc::new(Mutex::new(SharedObs::new()));
        let mut sender = HostObserver::new(0, shared.clone());
        let mut receiver = HostObserver::new(1, shared.clone());
        sender.on_event(
            100,
            &Event::DataSent {
                seq: 0,
                bytes: 1000,
                retransmission: false,
            },
        );
        sender.on_event(
            200,
            &Event::DataSent {
                seq: 1,
                bytes: 1000,
                retransmission: false,
            },
        );
        // A retransmission must not reset the original send time.
        sender.on_event(
            900,
            &Event::DataSent {
                seq: 0,
                bytes: 1000,
                retransmission: true,
            },
        );
        receiver.on_event(1_100, &Event::Delivered { first: 0, count: 2 });
        let s = shared.lock().unwrap();
        assert_eq!(s.delivery.count(), 2);
        assert_eq!(s.delivery.max(), Some(1_000)); // 1100 − 100
        assert_eq!(s.delivery.min(), Some(900)); // 1100 − 200
    }

    #[test]
    fn recovery_latency_pools_elapsed_times() {
        let shared = Arc::new(Mutex::new(SharedObs::new()));
        let mut r = HostObserver::new(2, shared.clone());
        r.on_event(
            5_000,
            &Event::Recovered {
                first: 7,
                count: 3,
                elapsed_us: 4_000,
            },
        );
        let s = shared.lock().unwrap();
        assert_eq!(s.recovery.count(), 1);
        assert_eq!(s.recovery.max(), Some(4_000));
    }

    #[test]
    fn log_lines_carry_the_host_field() {
        struct Tee(Arc<Mutex<Vec<u8>>>);
        impl Write for Tee {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let shared = Arc::new(Mutex::new(SharedObs::new()));
        shared.lock().unwrap().set_log(Box::new(Tee(buf.clone())));
        let mut r = HostObserver::new(3, shared.clone());
        r.on_event(42, &Event::Delivered { first: 0, count: 1 });
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "{\"schema\":2,\"role\":\"sim\"}");
        assert_eq!(
            lines[1],
            "{\"t_us\":42,\"host\":3,\"event\":\"delivered\",\"first\":0,\"count\":1}"
        );
    }

    #[test]
    fn recorder_captures_host_tagged_events() {
        let shared = Arc::new(Mutex::new(SharedObs::new()));
        let rec = SharedRecorder::new(8);
        shared.lock().unwrap().set_recorder(rec.clone());
        let mut r = HostObserver::new(2, shared.clone());
        r.on_event(9, &Event::Delivered { first: 5, count: 1 });
        let dump = rec.dump();
        assert!(dump.contains("\"host\":2,\"event\":\"delivered\",\"first\":5"));
    }
}
