//! Application processes for the simulated hosts: the data source at the
//! sender and the data sink at each receiver.
//!
//! The paper's §5.1 experiments run two application shapes:
//!
//! * **memory-to-memory** — "the sender sent data from memory and each of
//!   the receivers received data in a memory buffer": the application is
//!   always ready ([`IoProfile::Memory`]);
//! * **disk-to-disk** — "the sender sent a file that it read from the
//!   local disk, and each of the receivers stored the received data to a
//!   file on local disk": the application is "slowed by I/O operations"
//!   ([`IoProfile::Disk`]), modelled as a sustained transfer rate plus a
//!   periodic seek-like stall. The stalls are what make the 40 MB disk
//!   feedback traces "noticeable and seemingly unpredictable"
//!   (Figure 11(c)) — OS jitter in the paper, deterministic here.
//!
//! Stream bytes follow a deterministic pattern so every sink can verify
//! integrity with a rolling checksum instead of storing the whole stream.

use bytes::Bytes;

/// Deterministic stream pattern: byte `i` of the stream.
#[inline]
pub fn pattern_byte(i: u64) -> u8 {
    ((i.wrapping_mul(31)) % 251) as u8
}

/// FNV-1a over the pattern-checked stream, used to verify integrity.
#[inline]
fn fnv1a(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3)
}

/// Compute the checksum of the first `len` pattern bytes.
pub fn pattern_checksum(len: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325;
    for i in 0..len {
        h = fnv1a(h, pattern_byte(i));
    }
    h
}

/// I/O behaviour of an application endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IoProfile {
    /// Always ready (memory-to-memory tests).
    Memory,
    /// Rate-limited with periodic stalls (disk-to-disk tests).
    Disk {
        /// Sustained transfer rate in bytes/second (late-90s IDE:
        /// ~8 MB/s reads, ~6 MB/s writes).
        rate_bps: u64,
        /// A short (seek-like) stall occurs each time this many bytes
        /// have moved.
        pause_every_bytes: u64,
        /// Short-stall duration in microseconds.
        pause_us: u64,
        /// A long stall (page-cache flush / "different activities in the
        /// operating system", paper §5.1) occurs each time this many
        /// bytes have moved; 0 disables.
        long_every_bytes: u64,
        /// Long-stall duration in microseconds.
        long_pause_us: u64,
    },
}

impl IoProfile {
    /// The paper-calibrated disk-read profile for the sender.
    pub fn disk_read() -> IoProfile {
        IoProfile::Disk {
            rate_bps: 8_000_000,
            pause_every_bytes: 1_000_000,
            pause_us: 30_000,
            long_every_bytes: 0,
            long_pause_us: 0,
        }
    }

    /// The paper-calibrated disk-write profile for receivers: a sustained
    /// 6 MB/s with seek-like 40 ms stalls, plus a ~150 ms stall every
    /// 4 MB — the OS jitter the paper blames for the disk tests'
    /// "noticeable and seemingly unpredictable" rate requests. During a
    /// long stall the receive window backs up by ~wire-rate × 300 ms,
    /// crossing the warning region for the smaller kernel buffers.
    pub fn disk_write() -> IoProfile {
        IoProfile::Disk {
            rate_bps: 6_000_000,
            pause_every_bytes: 800_000,
            pause_us: 40_000,
            long_every_bytes: 4_000_000,
            long_pause_us: 150_000,
        }
    }
}

/// Shared budget machinery: how many bytes may move at `now`.
#[derive(Debug, Clone)]
struct IoBudget {
    profile: IoProfile,
    /// Fractional-byte accumulator in byte·µs.
    credit_us_bytes: u128,
    last: u64,
    moved_since_pause: u64,
    moved_since_long: u64,
    paused_until: u64,
}

impl IoBudget {
    fn new(profile: IoProfile, now: u64) -> IoBudget {
        IoBudget {
            profile,
            credit_us_bytes: 0,
            last: now,
            moved_since_pause: 0,
            moved_since_long: 0,
            paused_until: 0,
        }
    }

    /// Bytes allowed to move at `now` (before calling [`IoBudget::spend`]).
    fn available(&mut self, now: u64, want: u64) -> u64 {
        match self.profile {
            IoProfile::Memory => want,
            IoProfile::Disk { rate_bps, .. } => {
                if now < self.paused_until {
                    self.last = now;
                    return 0;
                }
                let elapsed = now.saturating_sub(self.last);
                self.last = now;
                // Cap banked credit at one second of transfer.
                let cap = rate_bps as u128 * 1_000_000;
                self.credit_us_bytes =
                    (self.credit_us_bytes + rate_bps as u128 * elapsed as u128).min(cap);
                let bytes = (self.credit_us_bytes / 1_000_000) as u64;
                bytes.min(want)
            }
        }
    }

    /// Record that `bytes` actually moved; may trigger a stall.
    fn spend(&mut self, bytes: u64, now: u64) {
        let IoProfile::Disk {
            pause_every_bytes,
            pause_us,
            long_every_bytes,
            long_pause_us,
            ..
        } = self.profile
        else {
            return;
        };
        self.credit_us_bytes = self
            .credit_us_bytes
            .saturating_sub(bytes as u128 * 1_000_000);
        self.moved_since_pause += bytes;
        self.moved_since_long += bytes;
        if pause_every_bytes > 0 && self.moved_since_pause >= pause_every_bytes {
            self.moved_since_pause = 0;
            self.paused_until = self.paused_until.max(now + pause_us);
            self.credit_us_bytes = 0;
        }
        if long_every_bytes > 0 && self.moved_since_long >= long_every_bytes {
            self.moved_since_long = 0;
            self.paused_until = self.paused_until.max(now + long_pause_us);
            self.credit_us_bytes = 0;
        }
    }
}

/// The sending application: a file of `total` pattern bytes read through
/// an [`IoProfile`].
#[derive(Debug, Clone)]
pub struct SourceApp {
    total: u64,
    produced: u64,
    budget: IoBudget,
}

impl SourceApp {
    /// A source of `total` bytes with the given I/O profile.
    pub fn new(total: u64, profile: IoProfile, now: u64) -> SourceApp {
        SourceApp {
            total,
            produced: 0,
            budget: IoBudget::new(profile, now),
        }
    }

    /// Bytes not yet handed to the protocol.
    pub fn remaining(&self) -> u64 {
        self.total - self.produced
    }

    /// `true` when the whole file has been handed to the protocol.
    pub fn exhausted(&self) -> bool {
        self.produced >= self.total
    }

    /// Produce up to `max` bytes at `now` (limited by the I/O profile).
    pub fn produce(&mut self, max: usize, now: u64) -> Bytes {
        let want = (self.remaining()).min(max as u64);
        let allowed = self.budget.available(now, want);
        if allowed == 0 {
            return Bytes::new();
        }
        let mut buf = Vec::with_capacity(allowed as usize);
        for i in self.produced..self.produced + allowed {
            buf.push(pattern_byte(i));
        }
        self.budget.spend(allowed, now);
        self.produced += allowed;
        Bytes::from(buf)
    }
}

/// The receiving application: writes the stream through an [`IoProfile`]
/// while verifying it against the pattern.
#[derive(Debug, Clone)]
pub struct SinkApp {
    received: u64,
    checksum: u64,
    corrupt: bool,
    budget: IoBudget,
}

impl SinkApp {
    /// A sink with the given I/O profile.
    pub fn new(profile: IoProfile, now: u64) -> SinkApp {
        SinkApp {
            received: 0,
            checksum: 0xcbf2_9ce4_8422_2325,
            corrupt: false,
            budget: IoBudget::new(profile, now),
        }
    }

    /// How many bytes the application can absorb at `now`.
    pub fn capacity(&mut self, now: u64, want: usize) -> usize {
        self.budget.available(now, want as u64) as usize
    }

    /// Absorb `data` (the application's `recv` return), verifying it
    /// against the expected pattern position.
    pub fn absorb(&mut self, data: &[u8], now: u64) {
        for &b in data {
            if b != pattern_byte(self.received) {
                self.corrupt = true;
            }
            self.checksum = fnv1a(self.checksum, b);
            self.received += 1;
        }
        self.budget.spend(data.len() as u64, now);
    }

    /// Total bytes absorbed.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// `true` if every byte matched the pattern so far.
    pub fn intact(&self) -> bool {
        !self.corrupt
    }

    /// Rolling checksum (equals [`pattern_checksum`]`(received)` iff intact).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_source_produces_everything_at_once() {
        let mut s = SourceApp::new(10_000, IoProfile::Memory, 0);
        let a = s.produce(4_000, 0);
        assert_eq!(a.len(), 4_000);
        let b = s.produce(100_000, 0);
        assert_eq!(b.len(), 6_000);
        assert!(s.exhausted());
        assert!(s.produce(100, 0).is_empty());
    }

    #[test]
    fn pattern_is_deterministic_and_verified() {
        let mut src = SourceApp::new(5_000, IoProfile::Memory, 0);
        let mut sink = SinkApp::new(IoProfile::Memory, 0);
        while !src.exhausted() {
            let chunk = src.produce(700, 0);
            sink.absorb(&chunk, 0);
        }
        assert_eq!(sink.received(), 5_000);
        assert!(sink.intact());
        assert_eq!(sink.checksum(), pattern_checksum(5_000));
    }

    #[test]
    fn corruption_detected() {
        let mut sink = SinkApp::new(IoProfile::Memory, 0);
        let mut data: Vec<u8> = (0..100).map(pattern_byte).collect();
        data[50] ^= 0xff;
        sink.absorb(&data, 0);
        assert!(!sink.intact());
        assert_ne!(sink.checksum(), pattern_checksum(100));
    }

    #[test]
    fn disk_source_rate_limited() {
        // 8 MB/s: in 10 ms, at most 80 KB.
        let mut s = SourceApp::new(10_000_000, IoProfile::disk_read(), 0);
        let chunk = s.produce(1_000_000, 10_000);
        assert_eq!(chunk.len(), 80_000);
        // No time elapsed, no more budget.
        assert!(s.produce(1_000_000, 10_000).is_empty());
    }

    #[test]
    fn disk_stalls_after_pause_threshold() {
        let profile = IoProfile::Disk {
            rate_bps: 8_000_000,
            pause_every_bytes: 100_000,
            pause_us: 50_000,
            long_every_bytes: 0,
            long_pause_us: 0,
        };
        let mut s = SourceApp::new(10_000_000, profile, 0);
        // 100 ms of budget = 800 KB allowed, but the 100 KB pause
        // threshold fires after the first chunk.
        let a = s.produce(100_000, 100_000);
        assert_eq!(a.len(), 100_000);
        // Paused for 50 ms: nothing at t = 120 ms.
        assert!(s.produce(100_000, 120_000).is_empty());
        // After the stall, budget accrues again.
        let b = s.produce(100_000, 200_000);
        assert!(!b.is_empty());
    }

    #[test]
    fn disk_sink_capacity_follows_rate() {
        let mut sink = SinkApp::new(IoProfile::disk_write(), 0);
        // 6 MB/s for 10 ms = 60 KB.
        assert_eq!(sink.capacity(10_000, 1 << 20), 60_000);
        sink.absorb(&[pattern_byte(0)], 10_000);
        // Memory sink is unbounded.
        let mut m = SinkApp::new(IoProfile::Memory, 0);
        assert_eq!(m.capacity(0, 12345), 12345);
    }
}
