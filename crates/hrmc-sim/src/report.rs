//! Simulation output: everything the paper's figures are plotted from.

use hrmc_core::{HistogramSummary, ReceiverStats, SenderStats};
use serde::Serialize;

/// Per-receiver results.
#[derive(Debug, Clone, Serialize)]
pub struct ReceiverReport {
    /// Protocol counters, serialized in full.
    pub stats: ReceiverStats,
    /// Bytes the application absorbed.
    pub bytes: u64,
    /// Simulation time at which the application finished absorbing the
    /// stream (µs), if it did.
    pub completed_at: Option<u64>,
    /// `true` when every byte matched the expected pattern.
    pub intact: bool,
    /// `true` when the receiver declared a terminal session failure
    /// (sender presumed dead or JOIN budget exhausted). Skipped in
    /// serialization so pre-existing JSON fixtures stay stable.
    #[serde(skip)]
    pub failed: bool,
}

/// Latency percentiles collected by the observer pipeline (present when
/// [`SimParams::observe`](crate::sim::SimParams::observe) was set).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyReport {
    /// Sender first-transmission → in-order delivery at a receiver (µs),
    /// all receivers pooled.
    pub delivery: HistogramSummary,
    /// Gap first noted → gap filled, i.e. NAK-to-repair recovery (µs),
    /// all receivers pooled.
    pub recovery: HistogramSummary,
}

/// One point on the sim-time telemetry grid (present when
/// [`SimParams::sample_interval_us`](crate::sim::SimParams::sample_interval_us)
/// was set): the continuous-telemetry counterpart of the wall-clock
/// sampler in `hrmc-core`, letting the same "how did the run evolve"
/// questions be asked of a simulation — throughput ramp, NAK bursts,
/// window occupancy, recovery backlog — without streaming a full event
/// log.
#[derive(Debug, Clone, Serialize)]
pub struct SimSamplePoint {
    /// Simulation time of the sample (µs).
    pub t_us: u64,
    /// Bytes absorbed by all receiver applications so far (cumulative).
    pub bytes_received: u64,
    /// Application throughput over the interval ending here (Mbit/s).
    pub throughput_mbps: f64,
    /// NAKs sent by all receivers so far (cumulative).
    pub naks_sent: u64,
    /// NAK rate over the interval ending here (NAKs/s).
    pub nak_rate_per_sec: f64,
    /// Sender retransmissions so far (cumulative).
    pub retransmissions: u64,
    /// Bytes sitting in the sender's send buffer (gauge).
    pub sender_buffered_bytes: u64,
    /// The sender's current transmission rate (bytes/s, gauge).
    pub rate_bps: u64,
    /// The sender's current RTT estimate (µs, gauge).
    pub rtt_us: u64,
    /// Outstanding NAK ranges across all receivers — the recovery
    /// backlog still in flight (gauge).
    pub recovery_backlog: u64,
    /// Mean receive-window occupancy across receivers, 0.0–1.0 (gauge).
    pub window_occupancy: f64,
    /// Receivers that have finished absorbing the stream (gauge).
    pub completed_receivers: u64,
    /// Sender rate-halving episodes so far (cumulative) — the
    /// degradation signal a hostile-network run is judged by.
    pub rate_halvings: u64,
}

/// One alert transition the online [`hrmc_core::HealthMonitor`] emitted
/// during the run (present when
/// [`SimParams::health`](crate::sim::SimParams::health) armed it).
/// Rule and severity are carried as their wire names (`nak_storm`,
/// `warning`, …) so the report serializes without pulling enum types
/// through serde.
#[derive(Debug, Clone, Serialize)]
pub struct AlertRecord {
    /// Simulation time of the transition (µs).
    pub t_us: u64,
    /// Rule name (see [`hrmc_core::AlertRule::name`]).
    pub rule: &'static str,
    /// Severity name (see [`hrmc_core::Severity::name`]).
    pub severity: &'static str,
    /// `true` for a raise, `false` for a clear.
    pub raised: bool,
    /// Observed value in milli-units at the transition.
    pub value_m: u64,
    /// The threshold it crossed, milli-units.
    pub limit_m: u64,
}

/// Complete result of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct SimReport {
    /// `true` when the transfer completed everywhere before the horizon.
    pub completed: bool,
    /// Wall-clock of the simulation: the time the *last* receiver
    /// finished absorbing the stream (µs).
    pub elapsed_us: u64,
    /// Application-level throughput in Mbit/s: transfer size over
    /// `elapsed_us`, matching the paper's file-transfer metric.
    pub throughput_mbps: f64,
    /// Transfer size in bytes.
    pub transfer_bytes: u64,
    /// Sender counters, serialized in full.
    pub sender: SenderStats,
    /// Figure 3 metric: fraction of buffer-release attempts with complete
    /// receiver information.
    pub complete_info_ratio: f64,
    /// Packets dropped by router loss models (correlated loss).
    pub router_loss_drops: u64,
    /// Packets dropped by router queue overflow.
    pub router_overflow_drops: u64,
    /// Packets dropped at the sender NIC transmit queue (Figure 13).
    pub sender_nic_drops: u64,
    /// Packets dropped by receiver-NIC loss (uncorrelated loss).
    pub nic_rx_drops: u64,
    /// Packets dropped at host RX backlogs (overdriven-CPU load shedding).
    pub host_backlog_drops: u64,
    /// Packets severed by scheduled partitions (fault injection).
    pub partition_drops: u64,
    /// Packets discarded after injected bit corruption tripped the
    /// checksum (fault injection).
    pub corruption_drops: u64,
    /// Extra packet copies delivered by the duplication fault.
    pub duplicates_injected: u64,
    /// Packets delayed by the reordering fault.
    pub reorders_injected: u64,
    /// Packets discarded because the destination host was crashed or its
    /// process frozen (churn fault injection).
    pub churn_drops: u64,
    /// Link-schedule events applied (time-varying link dynamics).
    pub link_events_applied: u64,
    /// Down-path packets lost at an off-path router after a receiver
    /// migrated away mid-flight (mobile churn).
    pub migration_drops: u64,
    /// Feedback packets dropped by the asymmetric up-path impairment.
    pub up_loss_drops: u64,
    /// Sender rate-halving episodes (congestion responses to NAKs and
    /// warning rate requests).
    pub rate_halvings: u64,
    /// Sender urgent stops (URG rate requests freezing transmission).
    pub urgent_stops: u64,
    /// Members ejected without ground-truth justification: the host
    /// never crashed and no scheduled partition severed it. Jitter-only
    /// and bufferbloat episodes must keep this at zero (the
    /// graceful-degradation invariant).
    pub false_ejections: u64,
    /// The sender's final RTT estimate (µs) — the MINBUF clock base.
    pub final_rtt_us: u64,
    /// The sender's final transmission rate (bytes/s).
    pub final_rate_bps: u64,
    /// Delivery- and recovery-latency percentiles, when observed.
    pub latency: Option<LatencyReport>,
    /// Total events popped from the simulator's [`EventQueue`]
    /// (crate-internal unit of work; the scheduler-efficiency metric).
    pub events_popped: u64,
    /// High-water mark of the pending-event heap.
    pub peak_queue_len: usize,
    /// Engine `on_tick` invocations per host (host 0 is the sender) —
    /// how much jiffy-timer work each host actually did.
    pub host_ticks: Vec<u64>,
    /// Per-receiver reports.
    pub receivers: Vec<ReceiverReport>,
    /// Sim-time telemetry grid, when
    /// [`SimParams::sample_interval_us`](crate::sim::SimParams::sample_interval_us)
    /// was set. Always ends with a final sample at the run's last
    /// instant, so an armed run yields a non-empty series even when it
    /// finishes inside the first interval.
    pub timeseries: Option<Vec<SimSamplePoint>>,
    /// Online health-monitor transitions, in time order (empty unless
    /// [`SimParams::health`](crate::sim::SimParams::health) armed the
    /// monitor).
    pub alerts: Vec<AlertRecord>,
    /// Bucketed activity timeline, when tracing was enabled.
    #[serde(skip)]
    pub trace: Option<crate::trace::Trace>,
}

impl SimReport {
    /// Total NAKs sent by all receivers.
    pub fn total_naks(&self) -> u64 {
        self.receivers.iter().map(|r| r.stats.naks_sent).sum()
    }

    /// Total rate requests sent by all receivers.
    pub fn total_rate_requests(&self) -> u64 {
        self.receivers
            .iter()
            .map(|r| r.stats.rate_requests_sent)
            .sum()
    }

    /// `true` when every receiver's stream verified intact.
    pub fn all_intact(&self) -> bool {
        self.receivers.iter().all(|r| r.intact)
    }

    /// Number of receivers that declared a terminal session failure.
    pub fn failed_receivers(&self) -> usize {
        self.receivers.iter().filter(|r| r.failed).count()
    }

    /// Raise transitions of `rule` (by wire name) the online monitor
    /// emitted during the run.
    pub fn alerts_raised(&self, rule: &str) -> u64 {
        self.alerts
            .iter()
            .filter(|a| a.raised && a.rule == rule)
            .count() as u64
    }

    /// Clear transitions of `rule` (by wire name).
    pub fn alerts_cleared(&self, rule: &str) -> u64 {
        self.alerts
            .iter()
            .filter(|a| !a.raised && a.rule == rule)
            .count() as u64
    }
}
