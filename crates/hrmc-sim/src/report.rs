//! Simulation output: everything the paper's figures are plotted from.

use hrmc_core::{ReceiverStats, SenderStats};
use serde::Serialize;

/// Per-receiver results.
#[derive(Debug, Clone, Serialize)]
pub struct ReceiverReport {
    /// Protocol counters.
    #[serde(skip)]
    pub stats: ReceiverStats,
    /// Bytes the application absorbed.
    pub bytes: u64,
    /// Simulation time at which the application finished absorbing the
    /// stream (µs), if it did.
    pub completed_at: Option<u64>,
    /// `true` when every byte matched the expected pattern.
    pub intact: bool,
    /// NAKs sent (duplicated out of `stats` for serialization).
    pub naks_sent: u64,
    /// Rate requests sent.
    pub rate_requests_sent: u64,
    /// Updates sent.
    pub updates_sent: u64,
    /// Peer repairs multicast (local-recovery extension).
    pub repairs_sent: u64,
}

/// Complete result of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct SimReport {
    /// `true` when the transfer completed everywhere before the horizon.
    pub completed: bool,
    /// Wall-clock of the simulation: the time the *last* receiver
    /// finished absorbing the stream (µs).
    pub elapsed_us: u64,
    /// Application-level throughput in Mbit/s: transfer size over
    /// `elapsed_us`, matching the paper's file-transfer metric.
    pub throughput_mbps: f64,
    /// Transfer size in bytes.
    pub transfer_bytes: u64,
    /// Sender counters.
    #[serde(skip)]
    pub sender: SenderStats,
    /// Key sender counters (duplicated for serialization).
    pub naks_received: u64,
    /// Rate requests that reached the sender.
    pub rate_requests_received: u64,
    /// Updates that reached the sender.
    pub updates_received: u64,
    /// Probes the sender issued.
    pub probes_sent: u64,
    /// Retransmitted DATA packets.
    pub retransmissions: u64,
    /// Figure 3 metric: fraction of buffer-release attempts with complete
    /// receiver information.
    pub complete_info_ratio: f64,
    /// Packets dropped by router loss models (correlated loss).
    pub router_loss_drops: u64,
    /// Packets dropped by router queue overflow.
    pub router_overflow_drops: u64,
    /// Packets dropped at the sender NIC transmit queue (Figure 13).
    pub sender_nic_drops: u64,
    /// Packets dropped by receiver-NIC loss (uncorrelated loss).
    pub nic_rx_drops: u64,
    /// Packets dropped at host RX backlogs (overdriven-CPU load shedding).
    pub host_backlog_drops: u64,
    /// The sender's final RTT estimate (µs) — the MINBUF clock base.
    pub final_rtt_us: u64,
    /// The sender's final transmission rate (bytes/s).
    pub final_rate_bps: u64,
    /// Per-receiver reports.
    pub receivers: Vec<ReceiverReport>,
    /// Bucketed activity timeline, when tracing was enabled.
    #[serde(skip)]
    pub trace: Option<crate::trace::Trace>,
}

impl SimReport {
    /// Total NAKs sent by all receivers.
    pub fn total_naks(&self) -> u64 {
        self.receivers.iter().map(|r| r.naks_sent).sum()
    }

    /// Total rate requests sent by all receivers.
    pub fn total_rate_requests(&self) -> u64 {
        self.receivers.iter().map(|r| r.rate_requests_sent).sum()
    }

    /// `true` when every receiver's stream verified intact.
    pub fn all_intact(&self) -> bool {
        self.receivers.iter().all(|r| r.intact)
    }
}
