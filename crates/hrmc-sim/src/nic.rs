//! Network interface processes (paper §5.2): "Each host process is
//! coupled with a network interface process, which handles incoming
//! packets for the host and simulates the network delay associated with
//! each packet."
//!
//! Two asymmetric roles:
//!
//! * **Transmit side** — a bounded queue drained at the access-link speed.
//!   Its overflow is the mechanism behind the paper's Figure 13 finding:
//!   "it is likely that the network card is not being able to accept data
//!   at these rates and is dropping packets" when large kernel buffers
//!   let the sender burst harder than the wire drains.
//! * **Receive side** — applies the *uncorrelated* share of the loss rate
//!   (10% of total loss in the paper's split) and hands the packet to the
//!   host process.

use std::collections::VecDeque;

use crate::loss::{LossModel, LossProcess};
use crate::router::Transit;

/// Configuration of one host's network interface.
#[derive(Debug, Clone)]
pub struct NicParams {
    /// Access-link speed in bits/second (drains the transmit queue);
    /// 0 means infinitely fast.
    pub bandwidth_bps: u64,
    /// Transmit queue capacity in packets (Linux `txqueuelen` analog).
    pub tx_queue_packets: usize,
    /// Receive-side loss model (uncorrelated loss; a Gilbert–Elliott
    /// model here is the wireless tail link).
    pub rx_loss: LossModel,
}

impl Default for NicParams {
    fn default() -> Self {
        NicParams {
            bandwidth_bps: 0,
            tx_queue_packets: 100,
            rx_loss: LossModel::NONE,
        }
    }
}

/// Outcome of offering a packet to the transmit queue.
#[derive(Debug, PartialEq, Eq)]
pub enum TxOutcome {
    /// Queued behind an in-progress transmission.
    Queued,
    /// Queue was idle: schedule a dequeue after the embedded time.
    StartService {
        /// Serialization time of the head packet.
        service_us: u64,
    },
    /// Transmit queue full: the card dropped the packet.
    Dropped,
}

/// Runtime state of one network interface.
#[derive(Debug)]
pub struct Nic {
    /// Static parameters.
    pub params: NicParams,
    tx: VecDeque<Transit>,
    busy: bool,
    /// Packets dropped at the transmit queue (the Figure 13 stat).
    pub tx_drops: u64,
    /// Timestamps and packet types of the first transmit drops
    /// (diagnostics; capped).
    pub tx_drop_times: Vec<(u64, hrmc_wire::PacketType, usize)>,
    /// Receive-side loss process (holds Gilbert–Elliott channel state).
    rx: LossProcess,
    /// Datagrams discarded because fault-injected corruption tripped the
    /// checksum (the audit trail for every corrupt arrival).
    pub rx_checksum_drops: u64,
    /// Packets transmitted (stat).
    pub transmitted: u64,
    /// Packets delivered up to the host (stat).
    pub delivered: u64,
}

impl Nic {
    /// Create a NIC from its parameters.
    pub fn new(params: NicParams) -> Nic {
        let rx = LossProcess::new(params.rx_loss);
        Nic {
            params,
            tx: VecDeque::new(),
            busy: false,
            tx_drops: 0,
            tx_drop_times: Vec::new(),
            rx,
            rx_checksum_drops: 0,
            transmitted: 0,
            delivered: 0,
        }
    }

    /// Packets dropped by receive-side loss (stat).
    pub fn rx_drops(&self) -> u64 {
        self.rx.drops
    }

    /// Replace the receive-side loss model mid-run (time-varying link
    /// dynamics). The internal [`LossProcess`] caches the model at
    /// construction, so mutating `params.rx_loss` alone would be a
    /// silent no-op; this keeps both in sync and preserves the channel
    /// state and drop/offer counters across the change.
    pub fn set_rx_loss(&mut self, model: LossModel) {
        self.params.rx_loss = model;
        self.rx.set_model(model);
    }

    /// Offer a packet for transmission at time `now`.
    pub fn tx_enqueue(&mut self, transit: Transit, now: u64) -> TxOutcome {
        if self.tx.len() >= self.params.tx_queue_packets {
            self.tx_drops += 1;
            if self.tx_drop_times.len() < 256 {
                self.tx_drop_times
                    .push((now, transit.pkt.header.ptype, self.tx.len()));
            }
            return TxOutcome::Dropped;
        }
        let service = crate::serialize_us(transit.pkt.wire_len(), self.params.bandwidth_bps);
        self.tx.push_back(transit);
        if self.busy {
            TxOutcome::Queued
        } else {
            self.busy = true;
            TxOutcome::StartService {
                service_us: service,
            }
        }
    }

    /// Complete transmission of the head packet; returns it plus the
    /// service time of the next, if any.
    pub fn tx_dequeue(&mut self) -> (Transit, Option<u64>) {
        let t = self.tx.pop_front().expect("tx_dequeue on empty NIC queue");
        self.transmitted += 1;
        let next = self
            .tx
            .front()
            .map(|n| crate::serialize_us(n.pkt.wire_len(), self.params.bandwidth_bps));
        if next.is_none() {
            self.busy = false;
        }
        (t, next)
    }

    /// Receive-side filter: `true` if the packet survives the
    /// (possibly stateful) loss model and should be handed to the host.
    /// The two rolls are independent uniforms from the simulator's RNG.
    pub fn rx_accept(&mut self, roll_transition: f64, roll_loss: f64) -> bool {
        if self.rx.drop(roll_transition, roll_loss) {
            false
        } else {
            self.delivered += 1;
            true
        }
    }

    /// Transmit queue depth.
    pub fn tx_depth(&self) -> usize {
        self.tx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use hrmc_wire::Packet;

    fn transit() -> Transit {
        Transit {
            pkt: Packet::data(1, 2, 0, Bytes::from(vec![0u8; 1400])),
            route: crate::router::Route::Down {
                dests: vec![0],
                hop: 0,
            },
        }
    }

    #[test]
    fn tx_serializes_at_link_speed() {
        let mut n = Nic::new(NicParams {
            bandwidth_bps: 10_000_000,
            ..NicParams::default()
        });
        match n.tx_enqueue(transit(), 0) {
            TxOutcome::StartService { service_us } => {
                // wire_len = 1400 payload + 20-byte header.
                assert_eq!(service_us, crate::serialize_us(1420, 10_000_000));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(n.tx_enqueue(transit(), 0), TxOutcome::Queued);
        let (_, next) = n.tx_dequeue();
        assert!(next.is_some());
        let (_, next) = n.tx_dequeue();
        assert!(next.is_none());
        assert_eq!(n.transmitted, 2);
    }

    #[test]
    fn tx_queue_overflow_drops_like_figure_13() {
        let mut n = Nic::new(NicParams {
            bandwidth_bps: 10_000_000,
            tx_queue_packets: 3,
            ..NicParams::default()
        });
        for _ in 0..3 {
            assert_ne!(n.tx_enqueue(transit(), 0), TxOutcome::Dropped);
        }
        assert_eq!(n.tx_enqueue(transit(), 0), TxOutcome::Dropped);
        assert_eq!(n.tx_drops, 1);
        // Draining one admits one more.
        n.tx_dequeue();
        assert_ne!(n.tx_enqueue(transit(), 0), TxOutcome::Dropped);
    }

    #[test]
    fn rx_loss_roll() {
        let mut n = Nic::new(NicParams {
            rx_loss: LossModel::Bernoulli(0.1),
            ..NicParams::default()
        });
        assert!(!n.rx_accept(0.9, 0.05));
        assert!(n.rx_accept(0.9, 0.5));
        assert_eq!(n.rx_drops(), 1);
        assert_eq!(n.delivered, 1);
    }
}
