//! The simulation event loop (paper §5.2).
//!
//! "The simulation of packet flow work\[s\] as follows. At a given host,
//! outgoing packets are constructed with a full H-RMC header and a
//! partial IP header, and then passed to the local router. Within a
//! router, the packets are taken from the local queue, assigned a delay
//! according to the network speed, and passed on to the next router or to
//! the appropriate network interface, as dictated by the IP destination.
//! Multicast packets are duplicated within a router as necessary. At the
//! network interface, packets are received one at a time, held for the
//! assigned delay, and then passed to the host. At the host, incoming
//! packets are passed to the H-RMC protocol, where normal processing
//! continues."
//!
//! Host 0 is the sender; receiver `i` (0-based) is host `i + 1` and is
//! identified to the sender engine as `PeerId(i)`. All routing state uses
//! receiver indices; conversion to host ids happens only at delivery.

use hrmc_core::{Dest, PeerId, ProtocolConfig, ReceiverEngine, SenderEngine, JIFFY_US};
use hrmc_wire::Packet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};

use crate::apps::{IoProfile, SinkApp, SourceApp};
use crate::dynamics::{LinkAction, LinkSchedule};
use crate::faults::{ChurnAction, FaultPlan};
use crate::host::{Engine, Host};
use crate::nic::{Nic, TxOutcome};
use crate::obs::{HostObserver, SharedObs};
use crate::queue::EventQueue;
use crate::report::{AlertRecord, LatencyReport, ReceiverReport, SimReport, SimSamplePoint};
use crate::router::{EnqueueOutcome, Route, Router, Transit};
use crate::topology::Topology;

/// Parameters of one simulation run.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Protocol configuration shared by the sender and every receiver.
    pub protocol: ProtocolConfig,
    /// Network topology.
    pub topology: Topology,
    /// Transfer size in bytes (the paper's 10 MB / 40 MB files).
    pub transfer_bytes: u64,
    /// Sender application I/O profile (memory or disk read).
    pub source: IoProfile,
    /// Receiver application I/O profile (memory or disk write).
    pub sink: IoProfile,
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Give up after this much simulated time (µs).
    pub horizon_us: u64,
    /// Scale factor on the paper's per-packet host processing delays
    /// (1.0 = the measured 300 MHz constants).
    pub cpu_scale: f64,
    /// Drop an arriving packet when the destination host's RX processing
    /// backlog exceeds this many microseconds (`netdev_max_backlog`
    /// analog): an overdriven host sheds load instead of queueing
    /// unboundedly.
    pub host_backlog_us: u64,
    /// When set, record a bucketed activity timeline with this bucket
    /// width (µs); retrieve it from [`SimReport::trace`].
    pub trace_bucket_us: Option<u64>,
    /// When set, sample a telemetry point every this many simulated
    /// microseconds; retrieve the series from [`SimReport::timeseries`].
    /// Sampling is read-only — it never schedules events or draws from
    /// the RNG, so an armed run is bit-for-bit identical to an unarmed
    /// one.
    pub sample_interval_us: Option<u64>,
    /// Install [`crate::obs`] observers into every engine, collecting
    /// delivery- and recovery-latency histograms reported through
    /// [`SimReport::latency`] (and merged into the trace, when both are
    /// on).
    pub observe: bool,
    /// Arm the online [`hrmc_core::HealthMonitor`] over the pooled event
    /// stream with this rule set (implies observation). Alert
    /// transitions land in [`SimReport::alerts`] and, when an event log
    /// or flight recorder is attached, as host-less `health_alert`
    /// lines. `None` (the default) leaves the run bit-for-bit identical
    /// to an unmonitored one.
    pub health: Option<hrmc_core::HealthConfig>,
    /// Injected faults: link misbehavior, partitions, host churn. The
    /// default (empty) plan leaves the run bit-for-bit identical to a
    /// fault-free simulation under the same seed.
    pub faults: FaultPlan,
    /// Time-varying link dynamics: capacity collapse/recovery,
    /// bufferbloat, jitter spikes, asymmetric up-paths, receiver
    /// migration. The default (empty) schedule leaves the run
    /// bit-for-bit identical to a static-network simulation under the
    /// same seed.
    pub links: LinkSchedule,
}

impl SimParams {
    /// Defaults for a memory-to-memory transfer on the given topology.
    pub fn new(protocol: ProtocolConfig, topology: Topology, transfer_bytes: u64) -> SimParams {
        SimParams {
            protocol,
            topology,
            transfer_bytes,
            source: IoProfile::Memory,
            sink: IoProfile::Memory,
            seed: 1,
            horizon_us: 3_600 * 1_000_000, // one simulated hour
            cpu_scale: 1.0,
            host_backlog_us: 50_000,
            trace_bucket_us: None,
            sample_interval_us: None,
            observe: false,
            health: None,
            faults: FaultPlan::default(),
            links: LinkSchedule::default(),
        }
    }
}

enum Ev {
    /// Deadline sweep: tick every host whose armed deadline has arrived
    /// (see [`Simulation::on_sweep`]). One sweep event replaces the old
    /// per-host per-jiffy `Tick`, and when the event queue is otherwise
    /// empty the next sweep jumps straight to the earliest armed host
    /// deadline instead of stepping every jiffy.
    Sweep,
    /// A packet finished host RX processing and reaches the engine.
    HostRx {
        host: usize,
        from: Option<usize>,
        pkt: Packet,
    },
    /// A packet finished host TX processing and reaches the host's NIC.
    NicEnq { host: usize, transit: Transit },
    /// A host NIC finished serializing its head packet.
    NicTxDeq { host: usize },
    /// A packet arrives at a router's input.
    RouterArrive { router: usize, transit: Transit },
    /// A router finished serializing its head packet.
    RouterDeq { router: usize },
    /// A packet finished the router's propagation delay; fan out.
    Forward { router: usize, transit: Transit },
    /// A scheduled churn action (crash / restart / pause / resume) fires;
    /// the index points into [`FaultPlan::churn`].
    Churn { idx: usize },
    /// A scheduled link change fires; the index points into
    /// [`LinkSchedule::events`].
    LinkChange { idx: usize },
}

/// One simulation run. Build with [`Simulation::new`], execute with
/// [`Simulation::run`].
pub struct Simulation {
    params: SimParams,
    queue: EventQueue<Ev>,
    hosts: Vec<Host>,
    nics: Vec<Nic>,
    routers: Vec<Router>,
    rng: SmallRng,
    trace: Option<crate::trace::Trace>,
    obs: Option<Arc<Mutex<SharedObs>>>,
    /// Per-host next-tick deadline (absolute, jiffy-grid-aligned), from
    /// the engines' `next_wakeup`; `None` while a host is fully idle.
    /// Re-derived after every tick and every packet arrival. This vector
    /// is the source of truth; `due_heap` is only an index into it.
    due: Vec<Option<u64>>,
    /// Lazy-deletion min-heap over `(deadline, host)` mirroring `due`:
    /// every arm pushes an entry, disarms and re-arms leave stale entries
    /// behind, and stale entries are discarded when they surface at the
    /// top. Lets a sweep find the hosts that are actually due — and the
    /// earliest armed deadline — without scanning every host, which is
    /// what keeps a 100k-receiver sweep from costing 100k comparisons
    /// per jiffy.
    due_heap: BinaryHeap<Reverse<(u64, usize)>>,
    done: bool,
    /// Packets severed by scheduled partitions.
    partition_drops: u64,
    /// Packets discarded after injected corruption tripped the checksum.
    corruption_drops: u64,
    /// Extra copies delivered by the duplication fault.
    duplicates_injected: u64,
    /// Packets delayed by the reordering fault.
    reorders_injected: u64,
    /// Packets discarded at crashed or frozen hosts.
    churn_drops: u64,
    /// Link-schedule events applied so far.
    link_events_applied: u64,
    /// Down-path packets dropped at an off-path router after a receiver
    /// migrated away (in-flight packets lost to a handover).
    migration_drops: u64,
    /// Feedback packets dropped by the asymmetric up-path impairment.
    up_loss_drops: u64,
    /// Current extra one-way delay on feedback packets (µs; schedule-set).
    up_extra_delay_us: u64,
    /// Current feedback drop probability (schedule-set; 0.0 means the
    /// up-path draws nothing from the RNG, preserving fixture replays).
    up_extra_loss: f64,
    /// Receiver indices the sender ejected (ground truth for the
    /// false-ejection audit; drained from the sender's event queue).
    ejected_receivers: Vec<usize>,
    /// Accumulated sim-time telemetry samples (empty unless
    /// [`SimParams::sample_interval_us`] is set).
    timeseries: Vec<SimSamplePoint>,
    /// Next grid instant at which to sample; `None` when sampling is off.
    next_sample_at: Option<u64>,
    /// Previous sample's `(t_us, bytes_received, naks_sent)`, for
    /// interval rates.
    prev_sample: (u64, u64, u64),
}

/// First jiffy-grid point strictly after `now`.
fn next_grid(now: u64) -> u64 {
    (now / JIFFY_US + 1) * JIFFY_US
}

/// Align an engine wakeup deadline to the jiffy grid: the first grid
/// point at or after both `wakeup` and `now` — the earliest instant the
/// old always-ticking scheduler would have acted on that timer, which is
/// what keeps the two schedulers trajectory-identical.
fn align_to_grid(wakeup: u64, now: u64) -> u64 {
    wakeup.max(now).div_ceil(JIFFY_US) * JIFFY_US
}

impl Simulation {
    /// Construct the simulation world from its parameters.
    pub fn new(params: SimParams) -> Simulation {
        let n = params.topology.receivers();
        let mut hosts = Vec::with_capacity(n + 1);
        let sender = SenderEngine::new(params.protocol.clone(), 7000, 7001, 0, 0);
        hosts.push(Host::sender(
            sender,
            SourceApp::new(params.transfer_bytes, params.source, 0),
        ));
        for i in 0..n {
            let mut engine = ReceiverEngine::new(params.protocol.clone(), 8000 + i as u16, 7001, 0);
            // Experiment semantics: receivers start before the sender and
            // expect the stream from its first segment.
            engine.expect_stream_start(0);
            hosts.push(Host::receiver(engine, SinkApp::new(params.sink, 0)));
        }
        for h in &mut hosts {
            h.cpu_scale = params.cpu_scale;
        }
        let mut nics = Vec::with_capacity(n + 1);
        nics.push(Nic::new(params.topology.sender_nic.clone()));
        for p in &params.topology.receiver_nics {
            nics.push(Nic::new(p.clone()));
        }
        let routers = params
            .topology
            .routers
            .iter()
            .map(|p| Router::new(p.clone()))
            .collect();
        let mut queue = EventQueue::new();
        // Every host starts armed for the first jiffy; a single Sweep
        // event services them all.
        queue.schedule(JIFFY_US, Ev::Sweep);
        // Churn fires at its scheduled instants (none in a fault-free
        // run, so the event stream is untouched by an empty plan).
        for idx in 0..params.faults.churn.len() {
            queue.schedule(params.faults.churn[idx].at_us, Ev::Churn { idx });
        }
        // Link dynamics likewise: an empty schedule adds zero events.
        for idx in 0..params.links.events.len() {
            queue.schedule(params.links.events[idx].at_us, Ev::LinkChange { idx });
        }
        let due = vec![Some(JIFFY_US); n + 1];
        let due_heap = (0..=n).map(|h| Reverse((JIFFY_US, h))).collect();
        let rng = SmallRng::seed_from_u64(params.seed);
        let trace = params.trace_bucket_us.map(crate::trace::Trace::new);
        let next_sample_at = params.sample_interval_us.map(|i| i.max(1));
        let mut sim = Simulation {
            params,
            queue,
            hosts,
            nics,
            routers,
            rng,
            trace,
            obs: None,
            due,
            due_heap,
            done: false,
            partition_drops: 0,
            corruption_drops: 0,
            duplicates_injected: 0,
            reorders_injected: 0,
            churn_drops: 0,
            link_events_applied: 0,
            migration_drops: 0,
            up_loss_drops: 0,
            up_extra_delay_us: 0,
            up_extra_loss: 0.0,
            ejected_receivers: Vec::new(),
            timeseries: Vec::new(),
            next_sample_at,
            prev_sample: (0, 0, 0),
        };
        if sim.params.observe || sim.params.health.as_ref().is_some_and(|h| h.armed()) {
            sim.install_observers();
        }
        sim
    }

    /// Install a [`HostObserver`] into every engine, all feeding one
    /// shared collector (with the online health monitor armed when
    /// [`SimParams::health`] asks for it). Idempotent.
    fn install_observers(&mut self) {
        let health = self.params.health.clone().filter(|h| h.armed());
        let shared = self
            .obs
            .get_or_insert_with(|| {
                let mut obs = SharedObs::new();
                if let Some(cfg) = health {
                    obs.set_monitor(cfg);
                }
                Arc::new(Mutex::new(obs))
            })
            .clone();
        for (host, h) in self.hosts.iter_mut().enumerate() {
            let obs = Box::new(HostObserver::new(host, shared.clone()));
            match &mut h.engine {
                Engine::Sender(e) => e.set_observer(obs),
                Engine::Receiver(e) => e.set_observer(obs),
            }
        }
    }

    /// Stream every protocol event from every host to `w` as JSON lines
    /// (simulation timestamps, a `"host"` field per line). Implies
    /// observation even when [`SimParams::observe`] was not set.
    pub fn set_event_log(&mut self, w: Box<dyn std::io::Write + Send>) {
        if self.obs.is_none() {
            self.install_observers();
        }
        self.obs
            .as_ref()
            .expect("just installed")
            .lock()
            .unwrap()
            .set_log(w);
    }

    /// Attach a bounded [`hrmc_core::FlightRecorder`] capturing the last
    /// `capacity` protocol events from every host (tagged with the host
    /// id), and return a shared handle that stays valid after the run —
    /// dump it with [`hrmc_core::SharedRecorder::dump`] for a JSONL
    /// window `hrmc analyze` reads like a full trace. Implies observation
    /// even when [`SimParams::observe`] was not set.
    pub fn set_flight_recorder(&mut self, capacity: usize) -> hrmc_core::SharedRecorder {
        if self.obs.is_none() {
            self.install_observers();
        }
        let rec = hrmc_core::SharedRecorder::new(capacity);
        self.obs
            .as_ref()
            .expect("just installed")
            .lock()
            .unwrap()
            .set_recorder(rec.clone());
        rec
    }

    /// Run like [`Simulation::run`] but also return the sender-NIC drop
    /// timestamps (diagnostics).
    pub fn run_with_drop_trace(mut self) -> (SimReport, Vec<(u64, hrmc_wire::PacketType, usize)>) {
        while let Some((now, ev)) = self.queue.pop() {
            if now > self.params.horizon_us {
                break;
            }
            self.maybe_sample(now);
            self.dispatch(now, ev);
            if self.done {
                break;
            }
        }
        let times = self.nics[0].tx_drop_times.clone();
        (self.report(), times)
    }

    /// Run to completion (or the horizon) and report.
    pub fn run(mut self) -> SimReport {
        while let Some((now, ev)) = self.queue.pop() {
            if now > self.params.horizon_us {
                break;
            }
            self.maybe_sample(now);
            self.dispatch(now, ev);
            if self.done {
                break;
            }
        }
        self.report()
    }

    fn dispatch(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::Sweep => self.on_sweep(now),
            Ev::HostRx { host, from, pkt } => self.on_host_rx(host, from, &pkt, now),
            Ev::NicEnq { host, transit } => self.on_nic_enq(host, transit, now),
            Ev::NicTxDeq { host } => self.on_nic_tx_deq(host, now),
            Ev::RouterArrive { router, transit } => self.on_router_arrive(router, transit, now),
            Ev::RouterDeq { router } => self.on_router_deq(router, now),
            Ev::Forward { router, transit } => self.on_forward(router, transit, now),
            Ev::Churn { idx } => self.on_churn(idx, now),
            Ev::LinkChange { idx } => self.on_link_change(idx),
        }
    }

    // ------------------------------------------------------------------
    // Hosts
    // ------------------------------------------------------------------

    /// Arm (or re-arm) a host's tick deadline: write the source of truth
    /// and index the new value in the heap. A re-arm leaves the old heap
    /// entry behind as garbage; it is discarded when it surfaces.
    fn set_due(&mut self, host: usize, deadline: Option<u64>) {
        self.due[host] = deadline;
        if let Some(d) = deadline {
            self.due_heap.push(Reverse((d, host)));
        }
    }

    /// Pull a host's deadline earlier (never later): used by the wakeup
    /// paths that need a host serviced by `at` without losing an already
    /// sooner deadline.
    fn arm_no_later(&mut self, host: usize, at: u64) {
        let d = self.due[host].map_or(at, |cur| cur.min(at));
        self.set_due(host, Some(d));
    }

    /// Earliest armed host deadline, via the heap: lazy-discard entries
    /// that no longer match `due` until the top is live. Every armed host
    /// keeps at least one matching entry (each arm pushes one), so a
    /// validating top entry is the true minimum.
    fn earliest_due(&mut self) -> Option<u64> {
        while let Some(&Reverse((t, host))) = self.due_heap.peek() {
            if self.due[host] == Some(t) {
                return Some(t);
            }
            self.due_heap.pop();
        }
        None
    }

    /// Service every host whose deadline has arrived (in host order, as
    /// the old per-host `Tick` events fired), then schedule the next
    /// sweep: one jiffy ahead while packet events are still in flight
    /// (they can arm hosts between grid points), or — the
    /// activity-proportional jump — straight to the earliest armed host
    /// deadline once the event queue is otherwise empty.
    ///
    /// Due hosts come from the deadline heap, not a scan of every host:
    /// pop everything at or before `now` (stale entries included — the
    /// `due` check below rejects them, exactly as the old full scan
    /// did), then service the survivors in host order so the trajectory
    /// is byte-identical to the scanning scheduler's.
    fn on_sweep(&mut self, now: u64) {
        let mut ready: Vec<usize> = Vec::new();
        while let Some(&Reverse((t, host))) = self.due_heap.peek() {
            if t > now {
                break;
            }
            self.due_heap.pop();
            ready.push(host);
        }
        ready.sort_unstable();
        ready.dedup();
        for host in ready {
            if self.due[host].is_some_and(|d| d <= now) {
                self.due[host] = None;
                self.tick_host(host, now);
                if self.done {
                    return;
                }
            }
        }
        let next = if self.queue.is_empty() {
            match self.earliest_due() {
                Some(d) => d.max(next_grid(now)),
                None => return, // fully idle: the run is over
            }
        } else {
            now + JIFFY_US
        };
        self.queue.schedule(next, Ev::Sweep);
    }

    /// Execute one scheduled churn action.
    fn on_churn(&mut self, idx: usize, now: u64) {
        match self.params.faults.churn[idx].action {
            ChurnAction::Crash { host } => {
                if host < self.hosts.len() && !self.hosts[host].crashed {
                    self.hosts[host].crashed = true;
                    self.due[host] = None;
                    // Wake the sender so the completion check (and any
                    // ejection logic) sees the change on the next sweep.
                    if host != 0 {
                        self.arm_no_later(0, next_grid(now));
                    }
                }
            }
            ChurnAction::Restart { host } => self.restart_receiver(host, now),
            ChurnAction::PauseSender => self.hosts[0].paused = true,
            ChurnAction::ResumeSender => {
                if self.hosts[0].paused {
                    self.hosts[0].paused = false;
                    self.arm_no_later(0, next_grid(now));
                }
            }
        }
    }

    /// Apply one scheduled link change. Parameter mutations take effect
    /// from the next enqueue/dequeue (service times are computed per
    /// packet); a packet already being serialized finishes at the old
    /// speed, exactly as a real link change catches a frame in flight.
    /// Malformed events (out-of-range router/receiver, empty migration
    /// path) are ignored rather than panicking — the schedule is data,
    /// often trace-driven, and must never crash the run.
    fn on_link_change(&mut self, idx: usize) {
        match &self.params.links.events[idx].action {
            LinkAction::SetRouterBandwidth {
                router,
                bandwidth_bps,
            } => {
                if let Some(r) = self.routers.get_mut(*router) {
                    r.params.bandwidth_bps = *bandwidth_bps;
                } else {
                    return;
                }
            }
            LinkAction::SetRouterLoss { router, loss } => {
                if let Some(r) = self.routers.get_mut(*router) {
                    r.params.loss = loss.clamp(0.0, 1.0);
                } else {
                    return;
                }
            }
            LinkAction::SetRouterDelay { router, delay_us } => {
                if let Some(r) = self.routers.get_mut(*router) {
                    r.params.delay_us = *delay_us;
                } else {
                    return;
                }
            }
            LinkAction::SetRouterQueue { router, packets } => {
                if let Some(r) = self.routers.get_mut(*router) {
                    r.params.queue_packets = (*packets).max(1);
                } else {
                    return;
                }
            }
            LinkAction::SetNicRxLoss { receiver, model } => {
                let (host, model) = (receiver + 1, *model);
                let Some(nic) = self.nics.get_mut(host) else {
                    return;
                };
                nic.set_rx_loss(model);
            }
            LinkAction::SetUpPath {
                extra_delay_us,
                loss,
            } => {
                self.up_extra_delay_us = *extra_delay_us;
                self.up_extra_loss = loss.clamp(0.0, 1.0);
            }
            LinkAction::Migrate { receiver, path } => {
                let ok = *receiver < self.params.topology.paths.len()
                    && !path.is_empty()
                    && path.iter().all(|&r| r < self.routers.len());
                if !ok {
                    return;
                }
                let path = path.clone();
                self.params.topology.paths[*receiver] = path;
            }
        }
        self.link_events_applied += 1;
    }

    /// Revive a crashed receiver host with a fresh engine. It re-attaches
    /// wherever it tunes in and performs a brand-new JOIN handshake (the
    /// late-join path); the completion check treats it as best-effort.
    fn restart_receiver(&mut self, host: usize, now: u64) {
        if host == 0 || host >= self.hosts.len() || !self.hosts[host].crashed {
            return;
        }
        let i = host - 1;
        let engine = ReceiverEngine::new(self.params.protocol.clone(), 8000 + i as u16, 7001, now);
        let h = &mut self.hosts[host];
        h.engine = Engine::Receiver(Box::new(engine));
        h.sink = Some(SinkApp::new(self.params.sink, now));
        h.crashed = false;
        h.restarted = true;
        if let Some(shared) = &self.obs {
            let obs = Box::new(HostObserver::new(host, shared.clone()));
            if let Engine::Receiver(e) = &mut self.hosts[host].engine {
                e.set_observer(obs);
            }
        }
        self.set_due(host, Some(next_grid(now)));
    }

    /// `true` when a scheduled partition currently severs `receiver`.
    fn partitioned(&self, receiver: usize, now: u64) -> bool {
        self.params
            .faults
            .partitions
            .iter()
            .any(|p| p.blocks(receiver, now))
    }

    /// One host tick — exactly the old per-jiffy `Tick` body — followed
    /// by re-deriving the host's next deadline from its engine.
    fn tick_host(&mut self, host: usize, now: u64) {
        if self.hosts[host].crashed {
            return; // dead silicon: the deadline stays disarmed
        }
        if self.hosts[host].paused {
            // Frozen process: do nothing, but stay armed so the resume
            // action finds a live timer.
            self.set_due(host, Some(next_grid(now)));
            return;
        }
        {
            let h = &mut self.hosts[host];
            h.ticks += 1;
            if matches!(h.engine, Engine::Sender(_)) {
                h.pump_source(now);
                if let Engine::Sender(e) = &mut h.engine {
                    e.on_tick(now);
                }
            } else if let Engine::Receiver(e) = &mut h.engine {
                e.on_tick(now);
            }
        }
        if host != 0 {
            self.pump_sink_arming(host, now);
        }
        self.drain_engine(host, now);
        if host == 0 && self.check_done(now) {
            self.done = true;
            return;
        }
        self.set_due(host, self.next_due(host, now));
    }

    /// Pump a receiver's sink; when that completes the stream, arm the
    /// sender host so the completion check runs on the next sweep (the
    /// sender may already be idle with no deadline of its own).
    fn pump_sink_arming(&mut self, host: usize, now: u64) {
        let was_complete = self.hosts[host].completed_at.is_some();
        self.hosts[host].pump_sink(now);
        if !was_complete && self.hosts[host].completed_at.is_some() {
            self.arm_no_later(0, next_grid(now));
        }
    }

    /// The host's next tick deadline, from its engine's `next_wakeup` —
    /// the simulator analog of a kernel timer wheel. Forced to the next
    /// grid point while host-level pumping still has work the engine
    /// cannot see: an unclosed source, or a throttled sink with readable
    /// bytes left.
    fn next_due(&self, host: usize, now: u64) -> Option<u64> {
        let h = &self.hosts[host];
        match &h.engine {
            Engine::Sender(e) => {
                if !h.closed {
                    return Some(next_grid(now));
                }
                match e.next_wakeup(now) {
                    None => None,
                    // `now + JIFFY_US` is the engine's "tick me every
                    // jiffy" answer (transfer in progress). The old
                    // scheduler honored it at the very next grid point —
                    // even when the arming packet landed mid-jiffy — so
                    // map the relative wish to the grid, not past it.
                    Some(w) if w == now + JIFFY_US => Some(next_grid(now)),
                    Some(w) => Some(align_to_grid(w, now)),
                }
            }
            Engine::Receiver(e) => {
                if e.readable_bytes() > 0 {
                    return Some(next_grid(now));
                }
                e.next_wakeup(now).map(|w| align_to_grid(w, now))
            }
        }
    }

    fn on_host_rx(&mut self, host: usize, from: Option<usize>, pkt: &Packet, now: u64) {
        if self.hosts[host].crashed || self.hosts[host].paused {
            self.churn_drops += 1;
            return;
        }
        match &mut self.hosts[host].engine {
            Engine::Sender(engine) => {
                let from = from.expect("sender RX without source receiver");
                engine.handle_packet(pkt, PeerId(from as u32), now);
                if let Some(trace) = self.trace.as_mut() {
                    if pkt.header.ptype.carries_receiver_state() {
                        trace.on_feedback(now);
                    }
                }
            }
            Engine::Receiver(engine) => {
                engine.handle_packet(pkt, now);
            }
        }
        if host != 0 {
            self.pump_sink_arming(host, now);
        }
        self.drain_engine(host, now);
        // A packet can arm or disarm any engine timer: re-derive the
        // host's deadline.
        self.set_due(host, self.next_due(host, now));
    }

    /// Move every packet the host's engine queued onto the wire: charge
    /// the host CPU, then hand to the NIC transmit queue.
    fn drain_engine(&mut self, host: usize, now: u64) {
        if host == 0 {
            // Drain the sender's application events (nothing else in the
            // sim consumes them): record ejections for the report's
            // false-ejection audit.
            if let Engine::Sender(e) = &mut self.hosts[0].engine {
                while let Some(ev) = e.poll_event() {
                    if let hrmc_core::SenderEvent::MemberEjected(p) = ev {
                        self.ejected_receivers.push(p.0 as usize);
                    }
                }
            }
        }
        loop {
            let out = match &mut self.hosts[host].engine {
                Engine::Sender(e) => e.poll_output(),
                Engine::Receiver(e) => e.poll_output(),
            };
            let Some(out) = out else { break };
            let n = self.params.topology.receivers();
            let routes: Vec<Route> = match out.dest {
                Dest::Multicast if host == 0 => {
                    vec![Route::Down {
                        dests: (0..n).collect(),
                        hop: 0,
                    }]
                }
                // Receiver-originated multicast (local-recovery NAKs and
                // repairs): one copy climbs to the sender, one is
                // injected at the root and fans to the other receivers
                // (approximation documented in DESIGN.md — the climb to
                // the root is not charged for the fan-out copy).
                Dest::Multicast => {
                    let peers: Vec<usize> = (0..n).filter(|&d| d != host - 1).collect();
                    let mut v = vec![Route::Up {
                        from: host - 1,
                        hop: 0,
                    }];
                    if !peers.is_empty() {
                        v.push(Route::Down {
                            dests: peers,
                            hop: 0,
                        });
                    }
                    v
                }
                Dest::Unicast(p) => vec![Route::Down {
                    dests: vec![p.0 as usize],
                    hop: 0,
                }],
                Dest::Sender => vec![Route::Up {
                    from: host - 1,
                    hop: 0,
                }],
            };
            let len = out.packet.payload.len();
            if host == 0 {
                if let Some(trace) = self.trace.as_mut() {
                    trace.on_send(now, out.packet.header.ptype, len);
                    trace.on_rate(now, u64::from(out.packet.header.rate_adv));
                }
            }
            let ready = self.hosts[host].charge_cpu(len, now);
            for route in routes {
                self.queue.schedule(
                    ready,
                    Ev::NicEnq {
                        host,
                        transit: Transit {
                            pkt: out.packet.clone(),
                            route,
                        },
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // NICs
    // ------------------------------------------------------------------

    fn on_nic_enq(&mut self, host: usize, transit: Transit, now: u64) {
        match self.nics[host].tx_enqueue(transit, now) {
            TxOutcome::StartService { service_us } => {
                self.queue.schedule(now + service_us, Ev::NicTxDeq { host });
            }
            TxOutcome::Queued => {}
            TxOutcome::Dropped => {
                if let Some(trace) = self.trace.as_mut() {
                    trace.on_drop(now);
                }
            }
        }
    }

    fn on_nic_tx_deq(&mut self, host: usize, now: u64) {
        let (transit, next) = self.nics[host].tx_dequeue();
        if let Some(svc) = next {
            self.queue.schedule(now + svc, Ev::NicTxDeq { host });
        }
        // The packet is on the wire: route it to its first router.
        let first_router = match &transit.route {
            Route::Down { dests, .. } => {
                // Sender-rooted paths share their first router.
                self.params.topology.paths[dests[0]][0]
            }
            Route::Up { from, .. } => self.params.topology.paths[*from]
                .last()
                .copied()
                .expect("receiver with empty router path"),
        };
        self.queue.schedule(
            now,
            Ev::RouterArrive {
                router: first_router,
                transit,
            },
        );
    }

    // ------------------------------------------------------------------
    // Routers
    // ------------------------------------------------------------------

    fn on_router_arrive(&mut self, router: usize, transit: Transit, now: u64) {
        let roll = self.rng.gen::<f64>();
        match self.routers[router].enqueue(transit, roll) {
            EnqueueOutcome::StartService { service_us } => {
                self.queue
                    .schedule(now + service_us, Ev::RouterDeq { router });
            }
            EnqueueOutcome::Queued => {}
            EnqueueOutcome::Dropped => {
                if let Some(trace) = self.trace.as_mut() {
                    trace.on_drop(now);
                }
            }
        }
    }

    fn on_router_deq(&mut self, router: usize, now: u64) {
        let (transit, next) = self.routers[router].dequeue();
        if let Some(svc) = next {
            self.queue.schedule(now + svc, Ev::RouterDeq { router });
        }
        let delay = self.routers[router].params.delay_us;
        self.queue
            .schedule(now + delay, Ev::Forward { router, transit });
    }

    /// Fan a served packet out of a router: on toward next-hop routers
    /// (multicast duplication happens here, for free, per the paper) or
    /// down to receiver NICs; feedback climbs the reversed path.
    fn on_forward(&mut self, router: usize, transit: Transit, now: u64) {
        match transit.route {
            Route::Down { dests, hop } => {
                let mut by_next: std::collections::BTreeMap<usize, Vec<usize>> =
                    std::collections::BTreeMap::new();
                for d in dests {
                    let path = &self.params.topology.paths[d];
                    // A migration can re-home the receiver while this
                    // packet is mid-path: the old route no longer leads
                    // anywhere, so the packet is lost at the handover
                    // (never delivered down a stale tree).
                    if path.get(hop) != Some(&router) {
                        self.migration_drops += 1;
                        continue;
                    }
                    if hop + 1 < path.len() {
                        by_next.entry(path[hop + 1]).or_default().push(d);
                    } else {
                        // Last router: deliver via the receiver's NIC.
                        self.deliver_to_receiver(d, &transit.pkt, now);
                    }
                }
                for (next_router, group) in by_next {
                    self.queue.schedule(
                        now,
                        Ev::RouterArrive {
                            router: next_router,
                            transit: Transit {
                                pkt: transit.pkt.clone(),
                                route: Route::Down {
                                    dests: group,
                                    hop: hop + 1,
                                },
                            },
                        },
                    );
                }
            }
            Route::Up { from, hop } => {
                let path = &self.params.topology.paths[from];
                // Reversed path: index hop counts from the tail.
                let pos_from_tail = hop + 1;
                if pos_from_tail < path.len() {
                    let next_router = path[path.len() - 1 - pos_from_tail];
                    self.queue.schedule(
                        now,
                        Ev::RouterArrive {
                            router: next_router,
                            transit: Transit {
                                pkt: transit.pkt,
                                route: Route::Up { from, hop: hop + 1 },
                            },
                        },
                    );
                } else {
                    // Reached the sender's side: deliver to host 0.
                    if self.hosts[0].crashed || self.hosts[0].paused {
                        self.churn_drops += 1;
                        return;
                    }
                    if self.partitioned(from, now) {
                        self.partition_drops += 1;
                        return; // feedback cannot cross the partition
                    }
                    if self.hosts[0].cpu_backlog(now) > self.params.host_backlog_us {
                        self.hosts[0].backlog_drops += 1;
                        return; // feedback implosion sheds load too
                    }
                    // Asymmetric up-path impairment (schedule-set).
                    // Gated on a non-zero probability so a static run
                    // draws nothing extra from the RNG.
                    if self.up_extra_loss > 0.0 && self.rng.gen::<f64>() < self.up_extra_loss {
                        self.up_loss_drops += 1;
                        return;
                    }
                    let len = transit.pkt.payload.len();
                    let ready = self.hosts[0].charge_cpu(len, now);
                    self.queue.schedule(
                        ready + self.up_extra_delay_us,
                        Ev::HostRx {
                            host: 0,
                            from: Some(from),
                            pkt: transit.pkt,
                        },
                    );
                }
            }
        }
    }

    fn deliver_to_receiver(&mut self, receiver: usize, pkt: &Packet, now: u64) {
        let host = receiver + 1;
        if self.hosts[host].crashed {
            self.churn_drops += 1;
            return; // nobody is listening
        }
        if self.partitioned(receiver, now) {
            self.partition_drops += 1;
            return; // severed by a scheduled partition
        }
        let rolls = (self.rng.gen::<f64>(), self.rng.gen::<f64>());
        if !self.nics[host].rx_accept(rolls.0, rolls.1) {
            if let Some(trace) = self.trace.as_mut() {
                trace.on_drop(now);
            }
            return; // uncorrelated NIC loss
        }
        if self.hosts[host].cpu_backlog(now) > self.params.host_backlog_us {
            self.hosts[host].backlog_drops += 1;
            return; // RX backlog overflow: shed load
        }
        // Link-fault injection. Each fault draws from the RNG only when
        // its probability is non-zero, in a fixed order (corrupt,
        // duplicate, reorder), so an empty plan consumes the exact roll
        // sequence of a fault-free run.
        let f = self.params.faults.link;
        if f.corrupt > 0.0 {
            let roll = self.rng.gen::<f64>();
            if roll < f.corrupt && self.corrupt_and_discard(host, pkt, roll, now) {
                return;
            }
        }
        let copies = if f.duplicate > 0.0 && self.rng.gen::<f64>() < f.duplicate {
            self.duplicates_injected += 1;
            2
        } else {
            1
        };
        let mut extra = 0u64;
        if f.reorder > 0.0 {
            let roll = self.rng.gen::<f64>();
            if roll < f.reorder {
                self.reorders_injected += 1;
                // Reuse the accepted roll as the (uniform) delay fraction.
                extra = ((roll / f.reorder) * f.reorder_max_us as f64) as u64;
            }
        }
        let len = pkt.payload.len();
        for _ in 0..copies {
            let ready = self.hosts[host].charge_cpu(len, now);
            self.queue.schedule(
                ready + extra,
                Ev::HostRx {
                    host,
                    from: None,
                    pkt: pkt.clone(),
                },
            );
        }
    }

    /// Flip one roll-derived bit of the encoded packet and let the wire
    /// checksum judge it. The internet checksum catches every single-bit
    /// flip, so the datagram is discarded and audited: the NIC counts it
    /// and the engine's checksum-failure counter/event fires, exactly as
    /// the UDP drivers do on a failed `Packet::decode`. Returns `true`
    /// when the packet was discarded.
    fn corrupt_and_discard(&mut self, host: usize, pkt: &Packet, roll: f64, now: u64) -> bool {
        let corrupt = self.params.faults.link.corrupt;
        let mut buf = pkt.encode();
        let nbits = buf.len() * 8;
        // Reuse the accepted roll, rescaled, to pick the bit.
        let bit = (((roll / corrupt) * nbits as f64) as usize).min(nbits - 1);
        buf[bit / 8] ^= 1 << (bit % 8);
        if Packet::decode(&buf).is_ok() {
            return false; // unreachable for a 1-bit flip; deliver intact
        }
        self.corruption_drops += 1;
        self.nics[host].rx_checksum_drops += 1;
        match &mut self.hosts[host].engine {
            Engine::Sender(e) => e.note_checksum_failure(now),
            Engine::Receiver(e) => e.note_checksum_failure(now),
        }
        true
    }

    // ------------------------------------------------------------------
    // Completion and reporting
    // ------------------------------------------------------------------

    fn check_done(&self, _now: u64) -> bool {
        let Engine::Sender(sender) = &self.hosts[0].engine else {
            unreachable!()
        };
        if !(self.hosts[0].closed && sender.is_finished()) {
            return false;
        }
        // Crashed receivers, best-effort restarted late joiners, and
        // receivers that declared a terminal session failure no longer
        // gate completion — the transfer is over for the survivors.
        self.hosts[1..].iter().all(|h| {
            if h.crashed || h.restarted || h.completed_at.is_some() {
                return true;
            }
            matches!(&h.engine, Engine::Receiver(r) if r.has_failed())
        })
    }

    /// Take a telemetry sample when sim time has reached the next grid
    /// point. A quiet simulation can jump many intervals in one event
    /// (the activity-proportional sweep), so the next deadline snaps to
    /// the first grid point strictly after `now` — one sample per jump,
    /// never a backfilled run of duplicates.
    fn maybe_sample(&mut self, now: u64) {
        match self.next_sample_at {
            Some(at) if now >= at => {}
            _ => return,
        }
        self.take_sample(now);
        let interval = self
            .params
            .sample_interval_us
            .expect("sampling armed")
            .max(1);
        self.next_sample_at = Some((now / interval + 1) * interval);
    }

    /// Record one [`SimSamplePoint`] from current world state. Read-only
    /// with respect to the simulation: no events scheduled, no RNG
    /// draws, no engine mutation — the event trajectory (and thus the
    /// pinned determinism fixtures) is untouched by sampling.
    fn take_sample(&mut self, now: u64) {
        let Engine::Sender(sender) = &self.hosts[0].engine else {
            unreachable!()
        };
        let mut bytes = 0u64;
        let mut naks = 0u64;
        let mut backlog = 0u64;
        let mut occupancy = 0.0f64;
        let mut completed = 0u64;
        for h in &self.hosts[1..] {
            let Engine::Receiver(r) = &h.engine else {
                unreachable!()
            };
            if let Some(sink) = &h.sink {
                bytes += sink.received();
            }
            naks += r.stats.naks_sent;
            backlog += r.pending_naks() as u64;
            occupancy += r.window_occupancy();
            if h.completed_at.is_some() {
                completed += 1;
            }
        }
        let n = self.hosts.len() - 1;
        let (prev_t, prev_bytes, prev_naks) = self.prev_sample;
        let dt = now.saturating_sub(prev_t);
        let (throughput_mbps, nak_rate_per_sec) = if dt > 0 {
            (
                bytes.saturating_sub(prev_bytes) as f64 * 8.0 / dt as f64,
                naks.saturating_sub(prev_naks) as f64 * 1e6 / dt as f64,
            )
        } else {
            (0.0, 0.0)
        };
        self.prev_sample = (now, bytes, naks);
        self.timeseries.push(SimSamplePoint {
            t_us: now,
            bytes_received: bytes,
            throughput_mbps,
            naks_sent: naks,
            nak_rate_per_sec,
            retransmissions: sender.stats.retransmissions,
            sender_buffered_bytes: sender.buffered_bytes() as u64,
            rate_bps: sender.rate(),
            rtt_us: sender.rtt(),
            recovery_backlog: backlog,
            window_occupancy: if n > 0 { occupancy / n as f64 } else { 0.0 },
            completed_receivers: completed,
            rate_halvings: sender.rate_halvings(),
        });
    }

    fn report(mut self) -> SimReport {
        // Close the telemetry grid with a final sample at the run's last
        // instant: short runs (finished inside the first interval) still
        // yield a non-empty series, and the series always reflects the
        // final state.
        if self.next_sample_at.is_some() {
            let now = self.queue.now();
            if self.timeseries.last().is_none_or(|s| s.t_us < now) {
                self.take_sample(now);
            }
        }
        let timeseries = self
            .params
            .sample_interval_us
            .map(|_| std::mem::take(&mut self.timeseries));
        let Engine::Sender(sender) = &self.hosts[0].engine else {
            unreachable!()
        };
        let receivers: Vec<ReceiverReport> = self.hosts[1..]
            .iter()
            .map(|h| {
                let Engine::Receiver(r) = &h.engine else {
                    unreachable!()
                };
                let sink = h.sink.as_ref().expect("receiver host without sink");
                ReceiverReport {
                    stats: r.stats.clone(),
                    bytes: sink.received(),
                    completed_at: h.completed_at,
                    intact: sink.intact(),
                    failed: r.has_failed(),
                }
            })
            .collect();
        let completed = self.done;
        let elapsed_us = receivers
            .iter()
            .filter_map(|r| r.completed_at)
            .max()
            .unwrap_or(self.queue.now());
        let throughput_mbps = if elapsed_us > 0 {
            (self.params.transfer_bytes as f64 * 8.0) / elapsed_us as f64
        } else {
            0.0
        };
        // False-ejection audit: an ejection is justified only by ground
        // truth the simulator controls — the host actually crashed (or
        // crashed and was restarted as a late joiner) or was severed by
        // a scheduled partition. Anything else (jitter, bufferbloat,
        // migration) must not cost a member its membership.
        let mut audited = std::collections::BTreeSet::new();
        let false_ejections = self
            .ejected_receivers
            .iter()
            .filter(|&&r| {
                if !audited.insert(r) {
                    return false; // one verdict per member
                }
                let legit_host = self
                    .hosts
                    .get(r + 1)
                    .is_some_and(|h| h.crashed || h.restarted);
                let partitioned = self
                    .params
                    .faults
                    .partitions
                    .iter()
                    .any(|p| p.receivers.contains(&r));
                !legit_host && !partitioned
            })
            .count() as u64;
        let mut trace = self.trace.clone();
        let alerts: Vec<AlertRecord> = self
            .obs
            .as_ref()
            .and_then(|shared| {
                let s = shared.lock().unwrap();
                s.monitor().map(|m| {
                    m.history()
                        .map(|a| AlertRecord {
                            t_us: a.t_us,
                            rule: a.rule.name(),
                            severity: a.severity.name(),
                            raised: a.raised,
                            value_m: a.value_m,
                            limit_m: a.limit_m,
                        })
                        .collect()
                })
            })
            .unwrap_or_default();
        let latency = self.obs.as_ref().map(|shared| {
            let mut s = shared.lock().unwrap();
            s.flush();
            if let Some(t) = trace.as_mut() {
                t.merge_latency(&s.delivery);
            }
            LatencyReport {
                delivery: s.delivery.summary(),
                recovery: s.recovery.summary(),
            }
        });
        SimReport {
            completed,
            elapsed_us,
            throughput_mbps,
            transfer_bytes: self.params.transfer_bytes,
            complete_info_ratio: sender.stats.complete_info_ratio(),
            sender: sender.stats.clone(),
            router_loss_drops: self.routers.iter().map(|r| r.loss_drops).sum(),
            router_overflow_drops: self.routers.iter().map(|r| r.overflow_drops).sum(),
            sender_nic_drops: self.nics[0].tx_drops,
            nic_rx_drops: self.nics[1..].iter().map(|n| n.rx_drops()).sum(),
            host_backlog_drops: self.hosts.iter().map(|h| h.backlog_drops).sum(),
            partition_drops: self.partition_drops,
            corruption_drops: self.corruption_drops,
            duplicates_injected: self.duplicates_injected,
            reorders_injected: self.reorders_injected,
            churn_drops: self.churn_drops,
            link_events_applied: self.link_events_applied,
            migration_drops: self.migration_drops,
            up_loss_drops: self.up_loss_drops,
            rate_halvings: sender.rate_halvings(),
            urgent_stops: sender.urgent_stops(),
            false_ejections,
            final_rtt_us: sender.rtt(),
            final_rate_bps: sender.rate(),
            latency,
            events_popped: self.queue.popped(),
            peak_queue_len: self.queue.peak_len(),
            host_ticks: self.hosts.iter().map(|h| h.ticks).collect(),
            receivers,
            timeseries,
            alerts,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn lan_params(n: usize, bandwidth: u64, loss: f64, bytes: u64, buffer: usize) -> SimParams {
        let mut protocol = ProtocolConfig::hrmc().with_buffer(buffer);
        protocol.max_rate = 2 * bandwidth / 8;
        let topology = TopologyBuilder::new().lan(n, bandwidth, loss);
        let mut p = SimParams::new(protocol, topology, bytes);
        p.horizon_us = 600 * 1_000_000;
        p
    }

    #[test]
    fn lossless_lan_transfer_completes_intact() {
        let report = Simulation::new(lan_params(2, 10_000_000, 0.0, 1_000_000, 256 * 1024)).run();
        assert!(report.completed, "transfer did not complete");
        assert!(report.all_intact());
        for r in &report.receivers {
            assert_eq!(r.bytes, 1_000_000);
        }
        // Throughput must be positive and below the wire speed.
        assert!(report.throughput_mbps > 0.5, "{}", report.throughput_mbps);
        assert!(report.throughput_mbps < 10.0, "{}", report.throughput_mbps);
        assert_eq!(report.sender.unsafe_releases, 0);
    }

    #[test]
    fn lossy_lan_transfer_still_reliable() {
        let report = Simulation::new(lan_params(3, 10_000_000, 0.01, 500_000, 256 * 1024)).run();
        assert!(report.completed, "transfer stalled under loss");
        assert!(report.all_intact());
        assert!(
            report.router_loss_drops + report.nic_rx_drops > 0,
            "loss model never fired"
        );
        assert!(report.sender.retransmissions > 0);
        assert_eq!(report.sender.nak_errs_sent, 0);
    }

    #[test]
    fn observed_lossy_run_reports_latency_percentiles() {
        let mut params = lan_params(2, 10_000_000, 0.01, 500_000, 256 * 1024);
        params.observe = true;
        let report = Simulation::new(params).run();
        assert!(report.completed);
        let lat = report.latency.expect("observe=true must yield latency");
        // Every delivered segment was first sent: the pooled delivery
        // histogram covers both receivers' full streams.
        assert!(lat.delivery.count > 0);
        assert!(lat.delivery.p50 > 0);
        assert!(lat.delivery.p50 <= lat.delivery.p90);
        assert!(lat.delivery.p90 <= lat.delivery.p99);
        // 1% loss forces NAK-driven recoveries.
        assert!(lat.recovery.count > 0);
        assert!(lat.recovery.p99 >= lat.recovery.p50);
    }

    #[test]
    fn sixty_four_receiver_sim_emits_a_timeseries() {
        let mut params = lan_params(64, 10_000_000, 0.005, 300_000, 256 * 1024);
        params.sample_interval_us = Some(50_000);
        let report = Simulation::new(params).run();
        assert!(report.completed, "transfer did not complete");
        let ts = report.timeseries.as_ref().expect("sampling was armed");
        assert!(!ts.is_empty(), "timeseries must be non-empty");
        // The grid is strictly increasing and read-only gauges stay in
        // range.
        for w in ts.windows(2) {
            assert!(w[0].t_us < w[1].t_us, "non-monotonic grid");
            assert!(
                w[0].bytes_received <= w[1].bytes_received,
                "cumulative bytes regressed"
            );
            assert!(
                w[0].naks_sent <= w[1].naks_sent,
                "cumulative NAKs regressed"
            );
        }
        for s in ts {
            assert!((0.0..=1.0).contains(&s.window_occupancy), "{s:?}");
            assert!(s.throughput_mbps >= 0.0);
            assert!(s.completed_receivers <= 64);
        }
        // The series closes on the final state: everything delivered,
        // all 64 receivers done, recovery backlog drained.
        let last = ts.last().unwrap();
        assert_eq!(last.bytes_received, 64 * 300_000);
        assert_eq!(last.completed_receivers, 64);
        assert_eq!(last.recovery_backlog, 0);
        // A mid-flight sample saw the transfer in progress.
        assert!(
            ts.iter()
                .any(|s| s.bytes_received > 0 && s.completed_receivers < 64),
            "no mid-flight sample captured"
        );
    }

    #[test]
    fn sampling_does_not_change_the_run() {
        let base = Simulation::new(lan_params(3, 10_000_000, 0.01, 300_000, 128 * 1024)).run();
        let mut params = lan_params(3, 10_000_000, 0.01, 300_000, 128 * 1024);
        params.sample_interval_us = Some(10_000);
        let sampled = Simulation::new(params).run();
        assert!(base.timeseries.is_none(), "unarmed run must not sample");
        assert!(sampled.timeseries.is_some());
        assert_eq!(base.elapsed_us, sampled.elapsed_us);
        assert_eq!(base.events_popped, sampled.events_popped);
        assert_eq!(base.sender.naks_received, sampled.sender.naks_received);
        assert_eq!(base.sender.retransmissions, sampled.sender.retransmissions);
    }

    #[test]
    fn observation_does_not_change_the_run() {
        let base = Simulation::new(lan_params(2, 10_000_000, 0.02, 300_000, 128 * 1024)).run();
        let mut params = lan_params(2, 10_000_000, 0.02, 300_000, 128 * 1024);
        params.observe = true;
        let observed = Simulation::new(params).run();
        assert_eq!(base.elapsed_us, observed.elapsed_us);
        assert_eq!(base.sender.naks_received, observed.sender.naks_received);
        assert_eq!(base.sender.retransmissions, observed.sender.retransmissions);
    }

    #[test]
    fn event_log_writes_jsonl() {
        use std::sync::{Arc as A, Mutex as M};
        struct Tee(A<M<Vec<u8>>>);
        impl std::io::Write for Tee {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = A::new(M::new(Vec::new()));
        let mut sim = Simulation::new(lan_params(1, 10_000_000, 0.0, 100_000, 128 * 1024));
        sim.set_event_log(Box::new(Tee(buf.clone())));
        let report = sim.run();
        assert!(report.completed);
        let log = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(!log.is_empty());
        let mut lines = log.lines();
        assert_eq!(
            lines.next(),
            Some("{\"schema\":2,\"role\":\"sim\"}"),
            "the stream must open with the schema header"
        );
        for line in lines {
            assert!(line.starts_with("{\"t_us\":"), "bad line: {line}");
            assert!(line.ends_with('}'), "bad line: {line}");
            assert!(line.contains("\"host\":"), "bad line: {line}");
            assert!(line.contains("\"event\":\""), "bad line: {line}");
        }
        // A clean 1-receiver run still joins, sends data, and delivers.
        assert!(log.contains("\"event\":\"peer_joined\""));
        assert!(log.contains("\"event\":\"data_sent\""));
        assert!(log.contains("\"event\":\"delivered\""));
    }

    /// Arming the online health monitor must be pure observation: the
    /// protocol event stream (and thus the trajectory) is byte-identical
    /// to an unmonitored run — the monitored log only gains host-less
    /// `health_alert` lines, and a disabled rule set gains nothing.
    #[test]
    fn armed_health_monitor_does_not_perturb_the_trajectory() {
        use std::sync::{Arc as A, Mutex as M};
        struct Tee(A<M<Vec<u8>>>);
        impl std::io::Write for Tee {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let run = |health: Option<hrmc_core::HealthConfig>| {
            let buf = A::new(M::new(Vec::new()));
            let mut params = lan_params(2, 10_000_000, 0.01, 200_000, 128 * 1024);
            params.health = health;
            let mut sim = Simulation::new(params);
            sim.set_event_log(Box::new(Tee(buf.clone())));
            let report = sim.run();
            assert!(report.completed);
            let log = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
            (log, report)
        };
        let (base_log, base) = run(None);
        let (disabled_log, _) = run(Some(hrmc_core::HealthConfig::disabled()));
        assert_eq!(base_log, disabled_log, "disabled rule set must be free");

        let (armed_log, armed) = run(Some(hrmc_core::HealthConfig::default()));
        let protocol_lines: Vec<&str> = armed_log
            .lines()
            .filter(|l| !l.contains("\"event\":\"health_alert\""))
            .collect();
        assert_eq!(
            base_log.lines().collect::<Vec<_>>(),
            protocol_lines,
            "monitor must not change the protocol trajectory"
        );
        // Every alert line is host-less, and the report mirrors the log.
        let alert_lines = armed_log
            .lines()
            .filter(|l| l.contains("\"event\":\"health_alert\""))
            .inspect(|l| assert!(!l.contains("\"host\":"), "alert lines are host-less: {l}"))
            .count();
        assert_eq!(armed.alerts.len(), alert_lines);
        assert_eq!(base.elapsed_us, armed.elapsed_us);
        assert_eq!(base.sender.retransmissions, armed.sender.retransmissions);
    }

    #[test]
    fn flight_recorder_window_matches_streaming_log_tail() {
        use std::sync::{Arc as A, Mutex as M};
        struct Tee(A<M<Vec<u8>>>);
        impl std::io::Write for Tee {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = A::new(M::new(Vec::new()));
        let mut sim = Simulation::new(lan_params(1, 10_000_000, 0.0, 100_000, 128 * 1024));
        sim.set_event_log(Box::new(Tee(buf.clone())));
        let rec = sim.set_flight_recorder(32);
        assert!(sim.run().completed);
        let log = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let streamed: Vec<&str> = log.lines().skip(1).collect(); // skip header
        let dump = rec.dump();
        let recorded: Vec<&str> = dump.lines().skip(1).collect();
        // The ring holds exactly the last `capacity` streamed lines,
        // byte for byte.
        assert_eq!(recorded.len(), 32.min(streamed.len()));
        assert_eq!(&streamed[streamed.len() - recorded.len()..], &recorded[..]);
        let dropped = rec.with_recorder(|r| r.dropped_events());
        assert_eq!(dropped as usize, streamed.len() - recorded.len());
    }

    #[test]
    fn same_seed_same_run() {
        let a = Simulation::new(lan_params(2, 10_000_000, 0.02, 300_000, 128 * 1024)).run();
        let b = Simulation::new(lan_params(2, 10_000_000, 0.02, 300_000, 128 * 1024)).run();
        assert_eq!(a.elapsed_us, b.elapsed_us);
        assert_eq!(a.sender.naks_received, b.sender.naks_received);
        assert_eq!(a.sender.retransmissions, b.sender.retransmissions);
        let mut c_params = lan_params(2, 10_000_000, 0.02, 300_000, 128 * 1024);
        c_params.seed = 99;
        let c = Simulation::new(c_params).run();
        // Different seed: overwhelmingly likely a different trajectory.
        assert!(
            c.elapsed_us != a.elapsed_us || c.sender.naks_received != a.sender.naks_received,
            "different seeds produced identical runs"
        );
    }

    #[test]
    fn wan_groups_transfer_completes() {
        let specs = crate::topology::test_case(3, 4); // all in C: 100 ms, 2%
        let topology = TopologyBuilder::new().groups(&specs, 10_000_000);
        let mut protocol = ProtocolConfig::hrmc().with_buffer(512 * 1024);
        protocol.max_rate = 2 * 10_000_000 / 8;
        let mut params = SimParams::new(protocol, topology, 300_000);
        params.horizon_us = 1_200 * 1_000_000;
        let report = Simulation::new(params).run();
        assert!(report.completed, "WAN transfer stalled");
        assert!(report.all_intact());
        assert!(report.sender.naks_received > 0, "2% loss must cause NAKs");
    }

    #[test]
    fn bigger_buffers_do_not_reduce_throughput_lan() {
        // The paper's headline: throughput rises with kernel buffer size
        // until ~512K. Check the direction with two sizes.
        let small = Simulation::new(lan_params(1, 10_000_000, 0.0, 2_000_000, 64 * 1024)).run();
        let large = Simulation::new(lan_params(1, 10_000_000, 0.0, 2_000_000, 1024 * 1024)).run();
        assert!(small.completed && large.completed);
        assert!(
            large.throughput_mbps >= small.throughput_mbps * 0.95,
            "large-buffer throughput regressed: {} vs {}",
            large.throughput_mbps,
            small.throughput_mbps
        );
    }

    #[test]
    fn rmc_mode_runs_and_measures_info_ratio() {
        let mut params = lan_params(2, 10_000_000, 0.005, 500_000, 64 * 1024);
        params.protocol = ProtocolConfig::rmc().with_buffer(64 * 1024);
        params.protocol.max_rate = 2 * 10_000_000 / 8;
        let report = Simulation::new(params).run();
        assert!(report.sender.release_attempts > 0);
        assert!(report.sender.probes_sent == 0);
        assert!(report.complete_info_ratio <= 1.0);
    }

    #[test]
    fn noop_link_event_only_costs_one_pop() {
        let base = Simulation::new(lan_params(2, 10_000_000, 0.01, 300_000, 128 * 1024)).run();
        let mut params = lan_params(2, 10_000_000, 0.01, 300_000, 128 * 1024);
        // Re-set the LAN router's delay to the value it already has: the
        // event applies (one extra pop) but the trajectory is untouched —
        // proof that applying a change draws nothing from the RNG.
        params.links.push(
            150_000,
            LinkAction::SetRouterDelay {
                router: 0,
                delay_us: 50,
            },
        );
        let dynamic = Simulation::new(params).run();
        assert_eq!(dynamic.link_events_applied, 1);
        assert_eq!(base.elapsed_us, dynamic.elapsed_us);
        assert_eq!(base.sender.naks_received, dynamic.sender.naks_received);
        assert_eq!(base.sender.retransmissions, dynamic.sender.retransmissions);
        assert_eq!(base.events_popped + 1, dynamic.events_popped);
    }

    #[test]
    fn capacity_collapse_degrades_then_recovers() {
        let base = Simulation::new(lan_params(2, 10_000_000, 0.0, 2_000_000, 256 * 1024)).run();
        let mut params = lan_params(2, 10_000_000, 0.0, 2_000_000, 256 * 1024);
        // Ramp the LAN segment down to 1 Mbit/s mid-transfer, hold, then
        // heal instantly at 2 s (bandwidth 0 = no serialization delay,
        // the segment's original speed).
        params.links.push(
            200_000,
            LinkAction::SetRouterQueue {
                router: 0,
                packets: 64, // a collapsed backhaul buffers little
            },
        );
        params
            .links
            .ramp_bandwidth(0, 200_000, 200_000, 10_000_000, 1_000_000, 4);
        params.links.push(
            2_000_000,
            LinkAction::SetRouterBandwidth {
                router: 0,
                bandwidth_bps: 0,
            },
        );
        let report = Simulation::new(params).run();
        assert!(report.completed, "collapse must degrade, not kill, the run");
        assert!(report.all_intact());
        assert_eq!(report.link_events_applied, 6);
        assert!(
            report.rate_halvings >= 1,
            "no congestion response to the collapse"
        );
        assert!(
            report.router_overflow_drops > 0,
            "collapsed segment never overflowed"
        );
        assert!(
            report.elapsed_us > base.elapsed_us,
            "collapse did not slow the transfer: {} vs {}",
            report.elapsed_us,
            base.elapsed_us
        );
    }

    #[test]
    fn bufferbloat_inflates_rtt_but_completes() {
        let base = Simulation::new(lan_params(2, 10_000_000, 0.0, 400_000, 256 * 1024)).run();
        let mut params = lan_params(2, 10_000_000, 0.0, 400_000, 256 * 1024);
        // Deep queue + slow drain: packets sit instead of dropping and
        // every RTT sample inflates with standing queue depth.
        params.links.bufferbloat(0, 100_000, 4096, 2_000_000);
        let bloated = Simulation::new(params).run();
        assert!(bloated.completed && bloated.all_intact());
        assert_eq!(bloated.link_events_applied, 2);
        assert!(
            bloated.final_rtt_us > base.final_rtt_us,
            "bufferbloat did not inflate the RTT estimate: {} vs {}",
            bloated.final_rtt_us,
            base.final_rtt_us
        );
    }

    #[test]
    fn jitter_spikes_do_not_eject_members() {
        let mut params = lan_params(3, 10_000_000, 0.0, 400_000, 256 * 1024);
        // Arm the failure-domain detectors, then shake the segment:
        // 5 delay spikes to 30 ms. Pure jitter must never look like a
        // dead member.
        params.protocol.probe_failure_limit = 3;
        params.protocol.member_silence_us = 3_000_000;
        params
            .links
            .jitter_spikes(0, 100_000, 100_000, 5, 50, 30_000);
        let report = Simulation::new(params).run();
        assert!(report.completed && report.all_intact());
        assert_eq!(report.link_events_applied, 10);
        assert_eq!(
            report.sender.members_ejected, 0,
            "jitter-only episode ejected a member"
        );
        assert_eq!(report.false_ejections, 0);
    }

    #[test]
    fn uppath_impairment_drops_feedback_only() {
        let mut params = lan_params(2, 10_000_000, 0.01, 400_000, 256 * 1024);
        params.links.push(
            50_000,
            LinkAction::SetUpPath {
                extra_delay_us: 20_000,
                loss: 0.3,
            },
        );
        let report = Simulation::new(params).run();
        assert!(report.completed && report.all_intact());
        assert!(report.up_loss_drops > 0, "up-path loss never fired");
    }

    #[test]
    fn migration_rehomes_receiver_and_drops_in_flight() {
        use crate::topology::{CharacteristicGroup, GroupSpec};
        let specs = vec![
            GroupSpec {
                group: CharacteristicGroup::A,
                receivers: 1,
            },
            GroupSpec {
                group: CharacteristicGroup::A,
                receivers: 1,
            },
        ];
        let topology = TopologyBuilder::new().groups(&specs, 10_000_000);
        let mut protocol = ProtocolConfig::hrmc().with_buffer(256 * 1024);
        protocol.max_rate = 2 * 10_000_000 / 8;
        let mut params = SimParams::new(protocol, topology, 600_000);
        params.horizon_us = 600 * 1_000_000;
        // Hand receiver 0 over from its home router (1) to the other
        // group's router (2) mid-transfer.
        params.links.push(
            200_000,
            LinkAction::Migrate {
                receiver: 0,
                path: vec![0, 2],
            },
        );
        let report = Simulation::new(params).run();
        assert!(report.completed, "handover must not strand the receiver");
        assert!(report.all_intact());
        assert_eq!(report.link_events_applied, 1);
        assert!(
            report.migration_drops > 0,
            "no in-flight packet was caught by the handover"
        );
    }

    #[test]
    fn malformed_migration_is_ignored() {
        let base = Simulation::new(lan_params(2, 10_000_000, 0.01, 300_000, 128 * 1024)).run();
        let mut params = lan_params(2, 10_000_000, 0.01, 300_000, 128 * 1024);
        params.links.push(
            150_000,
            LinkAction::Migrate {
                receiver: 0,
                path: vec![99], // no such router
            },
        );
        let report = Simulation::new(params).run();
        assert_eq!(report.link_events_applied, 0, "bad event must not apply");
        assert_eq!(report.elapsed_us, base.elapsed_us);
        assert_eq!(report.migration_drops, 0);
    }

    #[test]
    fn scheduled_run_is_deterministic() {
        let mk = || {
            let mut p = lan_params(2, 10_000_000, 0.01, 300_000, 128 * 1024);
            p.links
                .collapse_recover(0, 100_000, 600_000, 10_000_000, 1_000_000, 50_000, 3);
            p.links.push(
                400_000,
                LinkAction::SetUpPath {
                    extra_delay_us: 10_000,
                    loss: 0.2,
                },
            );
            p
        };
        let a = Simulation::new(mk()).run();
        let b = Simulation::new(mk()).run();
        assert_eq!(a.elapsed_us, b.elapsed_us);
        assert_eq!(a.events_popped, b.events_popped);
        assert_eq!(a.up_loss_drops, b.up_loss_drops);
        assert_eq!(a.sender.retransmissions, b.sender.retransmissions);
        assert_eq!(a.rate_halvings, b.rate_halvings);
    }
}
