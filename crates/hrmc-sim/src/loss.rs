//! Loss models for links and interfaces.
//!
//! The paper's simulator assigns each router and network interface a
//! simple (Bernoulli) loss rate. For the wireless regime its conclusions
//! point at — "incorporation of forward error correction, particularly
//! for wireless environments" — independent drops are a poor model:
//! radio losses arrive in fades. The classic two-state Gilbert–Elliott
//! chain captures that: a *good* state with little loss and a *bad*
//! (fade) state with heavy loss, with geometric dwell times.

/// A loss model (stateless description).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Independent drops with the given probability.
    Bernoulli(f64),
    /// Two-state Gilbert–Elliott channel.
    GilbertElliott {
        /// Per-packet probability of entering the bad state from good.
        p_good_to_bad: f64,
        /// Per-packet probability of returning to good from bad.
        p_bad_to_good: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state (a fade).
        loss_bad: f64,
    },
}

impl LossModel {
    /// A lossless channel.
    pub const NONE: LossModel = LossModel::Bernoulli(0.0);

    /// A moderate 802.11-like *slow*-fading channel: ~1.9% mean loss
    /// arriving in long bursts (mean fade length 10 packets). Long fades
    /// defeat single-parity XOR FEC — more than one loss per block — so
    /// this channel exercises the NAK recovery path.
    pub fn wireless_default() -> LossModel {
        LossModel::GilbertElliott {
            p_good_to_bad: 0.002,
            p_bad_to_good: 0.10,
            loss_good: 0.0005,
            loss_bad: 0.95,
        }
    }

    /// A *fast*-fading channel: similar mean loss (~1.4%) but fades of
    /// 1–2 packets, so most blocks see at most one loss — the regime
    /// where the XOR-parity FEC extension repairs locally instead of
    /// paying a NAK round trip.
    pub fn wireless_fast_fading() -> LossModel {
        LossModel::GilbertElliott {
            p_good_to_bad: 0.010,
            p_bad_to_good: 0.60,
            loss_good: 0.0005,
            loss_bad: 0.85,
        }
    }

    /// Long-run mean loss probability.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::Bernoulli(p) => p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                let denom = p_good_to_bad + p_bad_to_good;
                if denom == 0.0 {
                    return loss_good;
                }
                let p_bad = p_good_to_bad / denom;
                loss_good * (1.0 - p_bad) + loss_bad * p_bad
            }
        }
    }
}

/// A loss model plus its channel state.
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    /// Gilbert–Elliott state: `true` while in the bad (fade) state.
    in_bad: bool,
    /// Packets dropped (stat).
    pub drops: u64,
    /// Packets offered (stat).
    pub offered: u64,
}

impl LossProcess {
    /// A process starting in the good state.
    pub fn new(model: LossModel) -> LossProcess {
        LossProcess {
            model,
            in_bad: false,
            drops: 0,
            offered: 0,
        }
    }

    /// The model.
    pub fn model(&self) -> LossModel {
        self.model
    }

    /// Swap the model mid-stream (time-varying link dynamics). Channel
    /// state carries over: a fade in progress stays a fade under the new
    /// parameters, and the drop/offer counters keep accumulating.
    pub fn set_model(&mut self, model: LossModel) {
        self.model = model;
    }

    /// Decide one packet's fate. `roll_transition` and `roll_loss` are
    /// independent uniform samples in `[0, 1)` from the simulator's
    /// seeded RNG (the process holds no RNG so determinism audits stay
    /// trivial). Returns `true` when the packet is dropped.
    pub fn drop(&mut self, roll_transition: f64, roll_loss: f64) -> bool {
        self.offered += 1;
        let p = match self.model {
            LossModel::Bernoulli(p) => p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                if self.in_bad {
                    if roll_transition < p_bad_to_good {
                        self.in_bad = false;
                    }
                } else if roll_transition < p_good_to_bad {
                    self.in_bad = true;
                }
                if self.in_bad {
                    loss_bad
                } else {
                    loss_good
                }
            }
        };
        let dropped = roll_loss < p;
        if dropped {
            self.drops += 1;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bernoulli_mean_matches() {
        let mut p = LossProcess::new(LossModel::Bernoulli(0.02));
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200_000 {
            p.drop(rng.gen(), rng.gen());
        }
        let rate = p.drops as f64 / p.offered as f64;
        assert!((rate - 0.02).abs() < 0.003, "rate = {rate}");
    }

    #[test]
    fn gilbert_elliott_mean_matches_formula() {
        let model = LossModel::wireless_default();
        let expected = model.mean_loss();
        let mut p = LossProcess::new(model);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..500_000 {
            p.drop(rng.gen(), rng.gen());
        }
        let rate = p.drops as f64 / p.offered as f64;
        assert!(
            (rate - expected).abs() < 0.005,
            "rate = {rate}, expected = {expected}"
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare the burst structure: GE at ~2% mean loss must produce
        // far more back-to-back drops than Bernoulli at the same mean.
        let count_pairs = |model: LossModel, seed: u64| {
            let mut p = LossProcess::new(model);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut prev = false;
            let mut pairs = 0u64;
            for _ in 0..300_000 {
                let d = p.drop(rng.gen(), rng.gen());
                if d && prev {
                    pairs += 1;
                }
                prev = d;
            }
            pairs
        };
        let ge_pairs = count_pairs(LossModel::wireless_default(), 5);
        let b = LossModel::Bernoulli(LossModel::wireless_default().mean_loss());
        let bern_pairs = count_pairs(b, 5);
        assert!(
            ge_pairs > 10 * bern_pairs.max(1),
            "GE pairs {ge_pairs} vs Bernoulli pairs {bern_pairs}"
        );
    }

    #[test]
    fn degenerate_transition_probabilities() {
        // p_good_to_bad = 1.0, p_bad_to_good = 0.0: the very first
        // packet transitions into the fade and the channel never
        // recovers — an absorbing outage.
        let absorbing = LossModel::GilbertElliott {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut p = LossProcess::new(absorbing);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(p.drop(rng.gen(), rng.gen()), "absorbing fade must drop");
        }
        assert_eq!(p.drops, 10_000);
        assert!((absorbing.mean_loss() - 1.0).abs() < f64::EPSILON);

        // p_good_to_bad = 0.0: the bad state is unreachable, so loss is
        // exactly the good-state Bernoulli regardless of loss_bad.
        let never_bad = LossModel::GilbertElliott {
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.5,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut p = LossProcess::new(never_bad);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(!p.drop(rng.gen(), rng.gen()), "unreachable fade dropped");
        }
        assert_eq!(never_bad.mean_loss(), 0.0);

        // Both transitions certain: the chain alternates good→bad→good
        // every packet; stationary bad-fraction is 1/2.
        let alternating = LossModel::GilbertElliott {
            p_good_to_bad: 1.0,
            p_bad_to_good: 1.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        assert!((alternating.mean_loss() - 0.5).abs() < f64::EPSILON);
        let mut p = LossProcess::new(alternating);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut drops = 0u64;
        for _ in 0..10_000 {
            if p.drop(rng.gen(), rng.gen()) {
                drops += 1;
            }
        }
        // Deterministic alternation: transition fires every packet, so
        // each packet lands in the state opposite the previous one.
        assert_eq!(drops, 5_000, "strict alternation expected");
    }

    #[test]
    fn long_burst_mean_loss_stays_accurate() {
        // Dwell times of ~1000 packets in each state: the empirical mean
        // converges slowly, so this is where a subtly wrong stationary
        // formula or state update shows up.
        let model = LossModel::GilbertElliott {
            p_good_to_bad: 0.001,
            p_bad_to_good: 0.001,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let expected = model.mean_loss();
        assert!((expected - 0.5).abs() < f64::EPSILON);
        let mut p = LossProcess::new(model);
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..2_000_000 {
            p.drop(rng.gen(), rng.gen());
        }
        let rate = p.drops as f64 / p.offered as f64;
        assert!(
            (rate - expected).abs() < 0.03,
            "rate = {rate}, expected = {expected}"
        );
        // Bursts really are long: mean run length of consecutive drops
        // must be near the bad-state dwell time (1/p_bad_to_good).
        let mut q = LossProcess::new(model);
        let mut rng = SmallRng::seed_from_u64(18);
        let (mut runs, mut in_run) = (0u64, false);
        for _ in 0..2_000_000 {
            let d = q.drop(rng.gen(), rng.gen());
            if d && !in_run {
                runs += 1;
            }
            in_run = d;
        }
        let mean_run = q.drops as f64 / runs.max(1) as f64;
        assert!((500.0..2_000.0).contains(&mean_run), "mean run {mean_run}");
    }

    #[test]
    fn boundary_loss_probabilities_are_exact() {
        // loss probabilities of exactly 0.0 and 1.0 must behave as
        // never/always even at the extreme ends of the roll range.
        let certain = LossModel::GilbertElliott {
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.0,
            loss_good: 1.0,
            loss_bad: 0.0,
        };
        let mut p = LossProcess::new(certain);
        // roll_loss just below 1.0 still drops under p = 1.0 ...
        assert!(p.drop(0.0, 0.999_999_999));
        let mut q = LossProcess::new(LossModel::Bernoulli(0.0));
        // ... and a 0.0 roll never drops under p = 0.0.
        assert!(!q.drop(0.0, 0.0));
    }

    #[test]
    fn mean_loss_formula_edges() {
        assert_eq!(LossModel::Bernoulli(0.5).mean_loss(), 0.5);
        let stuck = LossModel::GilbertElliott {
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.0,
            loss_good: 0.01,
            loss_bad: 0.9,
        };
        assert_eq!(stuck.mean_loss(), 0.01); // never leaves good
        assert_eq!(LossModel::NONE.mean_loss(), 0.0);
    }
}
