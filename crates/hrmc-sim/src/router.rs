//! Router processes (paper §5.2): "Each router is assigned a network
//! speed, a queue size, and a loss rate. ... Within a router, the packets
//! are taken from the local queue, assigned a delay according to the
//! network speed, and passed on to the next router or to the appropriate
//! network interface, as dictated by the IP destination. Multicast
//! packets are duplicated within a router as necessary."
//!
//! A router serializes each packet once at its network speed regardless
//! of how many downstream branches it fans out to (duplication happens on
//! output and is free), so the shared-Ethernet broadcast of the LAN
//! experiments and the branch-point duplication of the WAN topologies
//! both fall out of the same model. The router's loss rate applies once
//! per packet traversal — a dropped multicast packet is lost to every
//! downstream receiver, which is exactly the *correlated* loss the paper
//! assigns to routers (90% of total loss).

use std::collections::VecDeque;

use hrmc_wire::Packet;

/// Configuration of one router.
#[derive(Debug, Clone)]
pub struct RouterParams {
    /// Link speed in bits/second; 0 means pass-through (no serialization).
    pub bandwidth_bps: u64,
    /// Output queue capacity in packets; arrivals beyond it are dropped.
    pub queue_packets: usize,
    /// Per-traversal drop probability (correlated loss).
    pub loss: f64,
    /// One-way propagation delay added after serialization.
    pub delay_us: u64,
}

impl Default for RouterParams {
    fn default() -> Self {
        RouterParams {
            bandwidth_bps: 0,
            queue_packets: 512,
            loss: 0.0,
            delay_us: 0,
        }
    }
}

/// Direction and progress of a packet through the topology.
#[derive(Debug, Clone)]
pub enum Route {
    /// Sender → receivers: the destination host ids still to reach, and
    /// the index of the next hop along each destination's router path.
    Down {
        /// Receiver host ids this copy must still reach.
        dests: Vec<usize>,
        /// Index into each destination's router path (sender-rooted
        /// trees place a shared router at the same depth on every path).
        hop: usize,
    },
    /// Receiver → sender feedback, walking the receiver's path in
    /// reverse.
    Up {
        /// Originating receiver host id.
        from: usize,
        /// Index into the *reversed* router path.
        hop: usize,
    },
}

/// A queued packet with its routing state.
#[derive(Debug, Clone)]
pub struct Transit {
    /// The packet in flight.
    pub pkt: Packet,
    /// Where it is going.
    pub route: Route,
}

/// Runtime state of one router.
#[derive(Debug)]
pub struct Router {
    /// Static parameters.
    pub params: RouterParams,
    queue: VecDeque<Transit>,
    /// `true` while a serialization event is outstanding.
    busy: bool,
    /// Packets dropped by the loss model (stat).
    pub loss_drops: u64,
    /// Packets dropped by queue overflow (stat).
    pub overflow_drops: u64,
    /// Packets forwarded (stat).
    pub forwarded: u64,
}

/// What the router asks the simulator to do after an `enqueue`.
#[derive(Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Packet queued; no new event needed (server already busy).
    Queued,
    /// Packet queued and the server was idle: schedule a dequeue after
    /// the embedded serialization time.
    StartService {
        /// Serialization time for the packet now at the head.
        service_us: u64,
    },
    /// Packet dropped (loss or overflow).
    Dropped,
}

impl Router {
    /// Create a router from its parameters.
    pub fn new(params: RouterParams) -> Router {
        Router {
            params,
            queue: VecDeque::new(),
            busy: false,
            loss_drops: 0,
            overflow_drops: 0,
            forwarded: 0,
        }
    }

    /// Offer a packet. `roll` is a uniform sample in `[0, 1)` supplied by
    /// the simulator's seeded RNG (keeping the router itself free of RNG
    /// state simplifies determinism audits).
    pub fn enqueue(&mut self, transit: Transit, roll: f64) -> EnqueueOutcome {
        if roll < self.params.loss {
            self.loss_drops += 1;
            return EnqueueOutcome::Dropped;
        }
        if self.queue.len() >= self.params.queue_packets {
            self.overflow_drops += 1;
            return EnqueueOutcome::Dropped;
        }
        let service = crate::serialize_us(transit.pkt.wire_len(), self.params.bandwidth_bps);
        self.queue.push_back(transit);
        if self.busy {
            EnqueueOutcome::Queued
        } else {
            self.busy = true;
            EnqueueOutcome::StartService {
                service_us: service,
            }
        }
    }

    /// Complete service of the head packet: returns it (for forwarding
    /// after the router's propagation delay) plus, if more packets wait,
    /// the service time of the next one.
    pub fn dequeue(&mut self) -> (Transit, Option<u64>) {
        let t = self
            .queue
            .pop_front()
            .expect("dequeue fired with empty router queue");
        self.forwarded += 1;
        let next = self
            .queue
            .front()
            .map(|n| crate::serialize_us(n.pkt.wire_len(), self.params.bandwidth_bps));
        if next.is_none() {
            self.busy = false;
        }
        (t, next)
    }

    /// Current queue depth in packets.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt() -> Packet {
        Packet::data(1, 2, 0, Bytes::from(vec![0u8; 1000]))
    }

    fn transit() -> Transit {
        Transit {
            pkt: pkt(),
            route: Route::Down {
                dests: vec![0, 1],
                hop: 0,
            },
        }
    }

    #[test]
    fn idle_router_starts_service() {
        let mut r = Router::new(RouterParams {
            bandwidth_bps: 10_000_000,
            ..RouterParams::default()
        });
        match r.enqueue(transit(), 0.99) {
            EnqueueOutcome::StartService { service_us } => {
                // wire_len = 1000 payload + 20-byte header.
                assert_eq!(service_us, crate::serialize_us(1020, 10_000_000));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Busy router only queues.
        assert_eq!(r.enqueue(transit(), 0.99), EnqueueOutcome::Queued);
        assert_eq!(r.depth(), 2);
    }

    #[test]
    fn dequeue_chains_service() {
        let mut r = Router::new(RouterParams {
            bandwidth_bps: 10_000_000,
            ..RouterParams::default()
        });
        r.enqueue(transit(), 0.99);
        r.enqueue(transit(), 0.99);
        let (_, next) = r.dequeue();
        assert!(next.is_some(), "second packet must start service");
        let (_, next) = r.dequeue();
        assert!(next.is_none());
        assert_eq!(r.forwarded, 2);
        // Idle again: the next enqueue restarts service.
        assert!(matches!(
            r.enqueue(transit(), 0.99),
            EnqueueOutcome::StartService { .. }
        ));
    }

    #[test]
    fn loss_roll_drops() {
        let mut r = Router::new(RouterParams {
            loss: 0.02,
            ..RouterParams::default()
        });
        assert_eq!(r.enqueue(transit(), 0.0199), EnqueueOutcome::Dropped);
        assert_eq!(r.loss_drops, 1);
        assert!(matches!(
            r.enqueue(transit(), 0.02),
            EnqueueOutcome::StartService { .. }
        ));
    }

    #[test]
    fn bounded_queue_overflows() {
        let mut r = Router::new(RouterParams {
            queue_packets: 2,
            bandwidth_bps: 10_000_000,
            ..RouterParams::default()
        });
        r.enqueue(transit(), 0.9);
        r.enqueue(transit(), 0.9);
        assert_eq!(r.enqueue(transit(), 0.9), EnqueueOutcome::Dropped);
        assert_eq!(r.overflow_drops, 1);
    }

    #[test]
    fn pass_through_router_has_zero_service() {
        let mut r = Router::new(RouterParams::default());
        match r.enqueue(transit(), 0.9) {
            EnqueueOutcome::StartService { service_us } => assert_eq!(service_us, 0),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
