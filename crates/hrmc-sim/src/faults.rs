//! Fault injection: the adverse conditions the protocol must survive.
//!
//! The paper evaluates H-RMC under ordinary congestion loss; a kernel
//! protocol additionally faces reordered and duplicated datagrams,
//! bit corruption caught by the checksum, routing partitions that heal,
//! and host churn — receivers crashing mid-transfer (and possibly
//! rejoining) or the sender process stalling. A [`FaultPlan`] describes
//! all of these declaratively; the simulator applies them from the same
//! seeded RNG that drives the loss models, so every faulty run is
//! exactly reproducible.
//!
//! Determinism discipline: each per-packet fault draws from the
//! simulator RNG **only when its probability is non-zero**, so an empty
//! plan consumes the exact roll sequence of a fault-free build and every
//! pinned baseline fixture stays byte-identical.

/// Per-packet link faults applied where packets descend to receivers.
///
/// Probabilities are independent per delivered packet, evaluated in a
/// fixed order (corrupt, duplicate, reorder) so the RNG stream is a pure
/// function of the configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability of flipping one bit of the encoded packet. The
    /// internet checksum catches any single-bit flip, so a corrupted
    /// packet is always discarded (and audited) rather than delivered.
    pub corrupt: f64,
    /// Probability of delivering an extra copy of the packet.
    pub duplicate: f64,
    /// Probability of delaying the packet by up to
    /// [`reorder_max_us`](FaultModel::reorder_max_us), letting later
    /// packets overtake it.
    pub reorder: f64,
    /// Maximum extra delay applied to a reordered packet (µs).
    pub reorder_max_us: u64,
}

/// No link faults.
impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            corrupt: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_max_us: 0,
        }
    }
}

impl FaultModel {
    /// A fault-free link.
    pub const NONE: FaultModel = FaultModel {
        corrupt: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        reorder_max_us: 0,
    };
}

/// A scheduled network partition: the listed receivers are unreachable
/// in both directions for `[start_us, end_us)`, then the partition
/// heals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Receiver indices (0-based, as in [`crate::topology::Topology`])
    /// cut off by the partition.
    pub receivers: Vec<usize>,
    /// Partition onset (µs, inclusive).
    pub start_us: u64,
    /// Partition heal time (µs, exclusive).
    pub end_us: u64,
}

impl Partition {
    /// `true` when the partition severs `receiver` at time `now`.
    pub fn blocks(&self, receiver: usize, now: u64) -> bool {
        now >= self.start_us && now < self.end_us && self.receivers.contains(&receiver)
    }
}

/// One scheduled churn action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// Kill a host: its engine stops ticking, every packet addressed to
    /// it is dropped, and (for a receiver) completion no longer waits on
    /// it. Host 0 is the sender; receiver `i` is host `i + 1`.
    Crash {
        /// Host index to kill.
        host: usize,
    },
    /// Revive a crashed receiver host with a fresh engine that performs
    /// a brand-new JOIN handshake (a late joiner; best-effort — the
    /// completion check does not wait for it).
    Restart {
        /// Host index to revive (receivers only).
        host: usize,
    },
    /// Freeze the sender process: its engine stops being ticked and
    /// arriving feedback is dropped, as when the sending application is
    /// SIGSTOPped or the machine stalls.
    PauseSender,
    /// Unfreeze the sender process.
    ResumeSender,
}

/// A churn action and when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Simulation time of the action (µs).
    pub at_us: u64,
    /// The action.
    pub action: ChurnAction,
}

/// Everything injected into one run: link faults, partitions, churn.
/// The default plan is empty and leaves the simulation bit-for-bit
/// identical to a fault-free run under the same seed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-packet link faults on the receiver-bound direction.
    pub link: FaultModel,
    /// Scheduled partitions (applied in both directions).
    pub partitions: Vec<Partition>,
    /// Scheduled host churn, in any order; the simulator schedules each
    /// at its own time.
    pub churn: Vec<ChurnEvent>,
}

impl FaultPlan {
    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.link == FaultModel::NONE && self.partitions.is_empty() && self.churn.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.link, FaultModel::NONE);
    }

    #[test]
    fn partition_blocks_only_listed_receivers_during_window() {
        let p = Partition {
            receivers: vec![1, 3],
            start_us: 100,
            end_us: 200,
        };
        assert!(p.blocks(1, 100));
        assert!(p.blocks(3, 199));
        assert!(!p.blocks(1, 99), "before onset");
        assert!(!p.blocks(1, 200), "healed at end");
        assert!(!p.blocks(0, 150), "unlisted receiver");
    }

    #[test]
    fn plan_with_any_fault_is_not_empty() {
        let mut plan = FaultPlan {
            link: FaultModel {
                corrupt: 0.01,
                ..FaultModel::NONE
            },
            ..FaultPlan::default()
        };
        assert!(!plan.is_empty());
        plan.link = FaultModel::NONE;
        plan.churn.push(ChurnEvent {
            at_us: 5,
            action: ChurnAction::Crash { host: 1 },
        });
        assert!(!plan.is_empty());
    }
}
