//! # hrmc-sim
//!
//! Discrete-event network simulator substrate for H-RMC — the equivalent
//! of the paper's CSIM-based simulation program (paper §5.2).
//!
//! The paper's simulator "uses three types of CSIM processes: host
//! processes, network interface processes, and router processes", and
//! imports "the H-RMC protocol code directly from the Linux kernel into
//! the simulation". This crate does the same with the sans-io engines of
//! `hrmc-core`:
//!
//! * [`host`] — a host process couples a protocol engine
//!   (sender or receiver) with an application ([`apps`]) and charges the
//!   paper's host processing delays: "For sending and receiving data of
//!   length l, the H-RMC delay was (10 + .025 * l) microseconds and the
//!   lower layer delay was 150 microseconds";
//! * [`nic`] — a network interface process with a
//!   bounded transmit queue (whose overflow reproduces the Figure 13
//!   network-card drops), link-speed serialization, and an uncorrelated
//!   receive-side loss rate;
//! * [`router`] — a router process with "a network
//!   speed, a queue size, and a loss rate", propagation delay, and
//!   multicast duplication on output ("Multicast packets are duplicated
//!   within a router as necessary");
//! * [`topology`] — builders for the paper's two
//!   worlds: the Ethernet LAN testbed of §5.1 and the characteristic-group
//!   WAN/MAN topologies of Figure 14 (groups A, B, C; Tests 1–5), with
//!   the 90%/10% correlated/uncorrelated loss split;
//! * [`sim`] — the event loop tying it together, fully
//!   deterministic under a seed, producing a [`report::SimReport`].

pub mod apps;
pub mod dynamics;
pub mod faults;
pub mod host;
pub mod loss;
pub mod nic;
pub mod obs;
pub mod queue;
pub mod report;
pub mod router;
pub mod sim;
pub mod topology;
pub mod trace;

pub use apps::{IoProfile, SinkApp, SourceApp};
pub use dynamics::{LinkAction, LinkEvent, LinkSchedule};
pub use faults::{ChurnAction, ChurnEvent, FaultModel, FaultPlan, Partition};
pub use loss::{LossModel, LossProcess};
pub use obs::{HostObserver, SharedObs};
pub use report::{AlertRecord, LatencyReport, ReceiverReport, SimReport, SimSamplePoint};
pub use sim::{SimParams, Simulation};
pub use topology::{CharacteristicGroup, GroupSpec, Topology, TopologyBuilder};
pub use trace::{Trace, TraceBucket};

/// Per-packet link-layer overhead charged during serialization: the
/// kernel H-RMC driver rides directly on IP (paper Figure 4), so each
/// segment carries an IP header (20 B) plus Ethernet framing (18 B).
pub const LINK_OVERHEAD: usize = 38;

/// Serialization time of `wire_len` header-plus-payload bytes (link
/// overhead added here) on a link of `bandwidth_bps` bits per second.
#[inline]
pub fn serialize_us(wire_len: usize, bandwidth_bps: u64) -> u64 {
    if bandwidth_bps == 0 {
        return 0;
    }
    let bits = ((wire_len + LINK_OVERHEAD) as u128) * 8;
    ((bits * 1_000_000) / bandwidth_bps as u128) as u64
}

/// The paper's host protocol-processing delay for a payload of `len`
/// bytes: (10 + 0.025·l) µs, measured on a 300 MHz Pentium II.
#[inline]
pub fn protocol_delay_us(len: usize) -> u64 {
    10 + (len as u64) / 40 // 0.025 µs per byte = 1 µs per 40 bytes
}

/// The paper's lower-layer (IP + driver) processing delay: 150 µs.
pub const LOWER_LAYER_DELAY_US: u64 = 150;

/// The host-CPU transmit ceiling in bytes/second for a given segment
/// size: one 300 MHz CPU spends (10 + 0.025·l) + 150 µs per packet, so
/// the kernel transmit path cannot emit faster than this no matter what
/// the rate controller asks for. Scenario builders cap the protocol's
/// `max_rate` here — the same physics that capped the paper's testbed at
/// ~66 Mbps on the 100 Mbps network.
#[inline]
pub fn cpu_tx_rate_bps(segment: usize) -> u64 {
    let per_pkt = protocol_delay_us(segment) + LOWER_LAYER_DELAY_US;
    (segment as u64) * 1_000_000 / per_pkt.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_matches_link_math() {
        // 1462-byte frame (1400 payload + 24 header + 38 overhead) at
        // 10 Mbps = 1169.6 µs.
        let us = serialize_us(1400 + 24, 10_000_000);
        assert_eq!(us, (1462u64 * 8 * 1_000_000) / 10_000_000);
        // 100 Mbps is 10× faster.
        assert_eq!(serialize_us(1400 + 24, 100_000_000), us / 10);
        // Zero bandwidth means "infinitely fast" (pass-through).
        assert_eq!(serialize_us(1400, 0), 0);
    }

    #[test]
    fn protocol_delay_matches_paper_formula() {
        assert_eq!(protocol_delay_us(0), 10);
        assert_eq!(protocol_delay_us(1400), 10 + 35); // 0.025 × 1400 = 35
        assert_eq!(protocol_delay_us(40), 11);
        assert_eq!(LOWER_LAYER_DELAY_US, 150);
    }

    #[test]
    fn cpu_ceiling_matches_paper_processing_costs() {
        // 1400-byte segments cost 195 µs each → ~5128 pkts/s ≈ 7.18 MB/s
        // ≈ 57 Mbit/s, the same order as the paper's observed ~66 Mbps
        // ceiling on the 100 Mbps network.
        let r = cpu_tx_rate_bps(1400);
        assert_eq!(r, 1400 * 1_000_000 / 195);
        assert!(r * 8 > 50_000_000 && r * 8 < 70_000_000);
    }
}
