//! Time-varying link dynamics: the hostile-network schedule.
//!
//! The paper's simulator gives every router and interface *static*
//! parameters; real deployments face links whose capacity, delay, and
//! loss move underneath the protocol — cellular capacity collapse and
//! recovery, bufferbloat (queues growing while delay inflates),
//! jitter spikes, asymmetric up/down paths, and mobile receivers being
//! re-homed between routers mid-transfer. A [`LinkSchedule`] describes
//! these as instants at which the world changes; the simulator applies
//! each change as an ordinary event, so a schedule-driven run is exactly
//! as reproducible as a static one.
//!
//! Determinism discipline (mirroring [`crate::faults::FaultPlan`]): an
//! **empty schedule schedules no events and draws nothing from the
//! RNG**, so every pinned baseline fixture replays byte-for-byte. The
//! only per-packet RNG use added by this module — the asymmetric
//! up-path drop roll — is gated on a non-zero loss probability, which
//! only a schedule event can set.

use crate::loss::LossModel;

/// One change to the network, applied at a scheduled instant.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkAction {
    /// Set a router's drain bandwidth (bits/s; 0 = no serialization
    /// delay). Service times are computed per dequeue, so packets
    /// already queued drain at the new speed — a capacity collapse
    /// stalls the queue exactly as a fading backhaul does.
    SetRouterBandwidth {
        /// Router index into [`crate::topology::Topology::routers`].
        router: usize,
        /// New drain rate (bits/s).
        bandwidth_bps: u64,
    },
    /// Set a router's correlated loss probability.
    SetRouterLoss {
        /// Router index.
        router: usize,
        /// New per-packet drop probability.
        loss: f64,
    },
    /// Set a router's propagation delay (µs): jitter spikes and path
    /// inflation.
    SetRouterDelay {
        /// Router index.
        router: usize,
        /// New one-way delay (µs).
        delay_us: u64,
    },
    /// Set a router's queue capacity in packets. Growing it under a
    /// bandwidth cut is bufferbloat: arrivals queue instead of dropping,
    /// and queueing delay inflates with depth.
    SetRouterQueue {
        /// Router index.
        router: usize,
        /// New capacity (packets).
        packets: usize,
    },
    /// Replace a receiver NIC's receive-side loss model. Channel state
    /// (a Gilbert–Elliott fade in progress) carries over.
    SetNicRxLoss {
        /// Receiver index (0-based, as in `Topology::receiver_nics`).
        receiver: usize,
        /// The new model.
        model: LossModel,
    },
    /// Impair the feedback (up) direction only: every receiver→sender
    /// packet reaching the sender's side is delayed by `extra_delay_us`
    /// and dropped with probability `loss`. Asymmetric paths — a clean
    /// downlink with a congested or lossy uplink — starve the sender of
    /// NAKs and UPDATEs without touching data delivery.
    SetUpPath {
        /// Extra one-way delay on feedback (µs).
        extra_delay_us: u64,
        /// Feedback drop probability (0.0 disables the RNG draw).
        loss: f64,
    },
    /// Re-home a receiver onto a new router path (mobile churn: a
    /// handover between cells). Packets already in flight on the old
    /// path are dropped at the first off-path router, like a handover
    /// losing the old association.
    Migrate {
        /// Receiver index.
        receiver: usize,
        /// The new ordered router path, sender → receiver.
        path: Vec<usize>,
    },
}

/// A [`LinkAction`] and when it fires.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkEvent {
    /// Simulation time of the change (µs).
    pub at_us: u64,
    /// The change.
    pub action: LinkAction,
}

/// Everything time-varying about the network in one run. The default
/// schedule is empty and leaves the simulation bit-for-bit identical to
/// a static-network run under the same seed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkSchedule {
    /// Scheduled changes, in any order; the simulator schedules each at
    /// its own time (ties fire in push order).
    pub events: Vec<LinkEvent>,
}

impl LinkSchedule {
    /// `true` when the schedule changes nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append one change.
    pub fn push(&mut self, at_us: u64, action: LinkAction) -> &mut Self {
        self.events.push(LinkEvent { at_us, action });
        self
    }

    /// Append a stepped bandwidth ramp on `router`: `steps` evenly
    /// spaced changes across `[start_us, start_us + duration_us)`
    /// interpolating linearly from `from_bps` to `to_bps` (the last step
    /// lands exactly on `to_bps`). With `steps == 1` this is a cliff.
    pub fn ramp_bandwidth(
        &mut self,
        router: usize,
        start_us: u64,
        duration_us: u64,
        from_bps: u64,
        to_bps: u64,
        steps: u32,
    ) -> &mut Self {
        let steps = steps.max(1);
        for i in 0..steps {
            let frac = f64::from(i + 1) / f64::from(steps);
            let bps = from_bps as f64 + (to_bps as f64 - from_bps as f64) * frac;
            let at = start_us + duration_us * u64::from(i) / u64::from(steps);
            self.push(
                at,
                LinkAction::SetRouterBandwidth {
                    router,
                    bandwidth_bps: bps as u64,
                },
            );
        }
        self
    }

    /// Capacity collapse and recovery: ramp `router` down from
    /// `normal_bps` to `collapsed_bps` starting at `collapse_at_us`,
    /// hold, then ramp back up starting at `heal_at_us`. Each ramp takes
    /// `ramp_us` across `steps` steps.
    #[allow(clippy::too_many_arguments)]
    pub fn collapse_recover(
        &mut self,
        router: usize,
        collapse_at_us: u64,
        heal_at_us: u64,
        normal_bps: u64,
        collapsed_bps: u64,
        ramp_us: u64,
        steps: u32,
    ) -> &mut Self {
        self.ramp_bandwidth(
            router,
            collapse_at_us,
            ramp_us,
            normal_bps,
            collapsed_bps,
            steps,
        );
        self.ramp_bandwidth(
            router,
            heal_at_us,
            ramp_us,
            collapsed_bps,
            normal_bps,
            steps,
        )
    }

    /// Bufferbloat onset at `at_us`: grow `router`'s queue to
    /// `queue_packets` while cutting its drain rate to `bandwidth_bps`.
    /// Arrivals now queue instead of dropping and per-packet delay
    /// inflates with depth.
    pub fn bufferbloat(
        &mut self,
        router: usize,
        at_us: u64,
        queue_packets: usize,
        bandwidth_bps: u64,
    ) -> &mut Self {
        self.push(
            at_us,
            LinkAction::SetRouterQueue {
                router,
                packets: queue_packets,
            },
        );
        self.push(
            at_us,
            LinkAction::SetRouterBandwidth {
                router,
                bandwidth_bps,
            },
        )
    }

    /// `count` delay spikes on `router`, one every `period_us` starting
    /// at `start_us`: delay jumps to `spike_delay_us`, then returns to
    /// `base_delay_us` half a period later. Pure jitter — no loss, no
    /// capacity change.
    pub fn jitter_spikes(
        &mut self,
        router: usize,
        start_us: u64,
        period_us: u64,
        count: u32,
        base_delay_us: u64,
        spike_delay_us: u64,
    ) -> &mut Self {
        for i in 0..u64::from(count) {
            let at = start_us + i * period_us;
            self.push(
                at,
                LinkAction::SetRouterDelay {
                    router,
                    delay_us: spike_delay_us,
                },
            );
            self.push(
                at + period_us / 2,
                LinkAction::SetRouterDelay {
                    router,
                    delay_us: base_delay_us,
                },
            );
        }
        self
    }

    /// Parse a trace-driven schedule: one directive per line,
    ///
    /// ```text
    /// # at_us  directive  args...
    /// 1000000  bw       0 1000000        # router 0 → 1 Mbit/s
    /// 1200000  loss     0 0.05           # router 0 → 5% loss
    /// 1400000  delay    0 80000          # router 0 → 80 ms
    /// 1600000  queue    0 4096           # router 0 → 4096-packet queue
    /// 1800000  uppath   50000 0.1        # feedback +50 ms, 10% loss
    /// 2000000  migrate  2 0,3            # receiver 2 re-homed via routers 0,3
    /// ```
    ///
    /// Blank lines and `#` comments (full-line or trailing) are ignored.
    pub fn from_trace(text: &str) -> Result<LinkSchedule, String> {
        let mut schedule = LinkSchedule::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("trace line {}: {msg}: {raw:?}", lineno + 1);
            let mut f = line.split_whitespace();
            let at_us: u64 = f
                .next()
                .ok_or_else(|| err("missing time"))?
                .parse()
                .map_err(|_| err("bad time"))?;
            let directive = f.next().ok_or_else(|| err("missing directive"))?;
            let mut next = |what: &str| f.next().ok_or_else(|| err(what)).map(str::to_owned);
            let action = match directive {
                "bw" => LinkAction::SetRouterBandwidth {
                    router: next("missing router")?
                        .parse()
                        .map_err(|_| err("bad router"))?,
                    bandwidth_bps: next("missing bps")?.parse().map_err(|_| err("bad bps"))?,
                },
                "loss" => LinkAction::SetRouterLoss {
                    router: next("missing router")?
                        .parse()
                        .map_err(|_| err("bad router"))?,
                    loss: next("missing loss")?.parse().map_err(|_| err("bad loss"))?,
                },
                "delay" => LinkAction::SetRouterDelay {
                    router: next("missing router")?
                        .parse()
                        .map_err(|_| err("bad router"))?,
                    delay_us: next("missing delay")?
                        .parse()
                        .map_err(|_| err("bad delay"))?,
                },
                "queue" => LinkAction::SetRouterQueue {
                    router: next("missing router")?
                        .parse()
                        .map_err(|_| err("bad router"))?,
                    packets: next("missing packets")?
                        .parse()
                        .map_err(|_| err("bad packets"))?,
                },
                "uppath" => LinkAction::SetUpPath {
                    extra_delay_us: next("missing delay")?
                        .parse()
                        .map_err(|_| err("bad delay"))?,
                    loss: next("missing loss")?.parse().map_err(|_| err("bad loss"))?,
                },
                "migrate" => LinkAction::Migrate {
                    receiver: next("missing receiver")?
                        .parse()
                        .map_err(|_| err("bad receiver"))?,
                    path: next("missing path")?
                        .split(',')
                        .map(|s| s.parse().map_err(|_| err("bad path")))
                        .collect::<Result<Vec<usize>, String>>()?,
                },
                other => return Err(err(&format!("unknown directive {other:?}"))),
            };
            schedule.push(at_us, action);
        }
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_is_empty() {
        assert!(LinkSchedule::default().is_empty());
        let mut s = LinkSchedule::default();
        s.push(
            10,
            LinkAction::SetRouterDelay {
                router: 0,
                delay_us: 5,
            },
        );
        assert!(!s.is_empty());
    }

    #[test]
    fn ramp_interpolates_and_lands_exactly() {
        let mut s = LinkSchedule::default();
        s.ramp_bandwidth(0, 1_000, 400, 10_000_000, 1_000_000, 4);
        assert_eq!(s.events.len(), 4);
        assert_eq!(s.events[0].at_us, 1_000);
        assert_eq!(s.events[3].at_us, 1_300);
        let bps: Vec<u64> = s
            .events
            .iter()
            .map(|e| match e.action {
                LinkAction::SetRouterBandwidth { bandwidth_bps, .. } => bandwidth_bps,
                _ => panic!("unexpected action"),
            })
            .collect();
        assert_eq!(bps.last(), Some(&1_000_000), "last step lands on target");
        assert!(bps.windows(2).all(|w| w[1] < w[0]), "monotone descent");
    }

    #[test]
    fn collapse_recover_is_symmetric() {
        let mut s = LinkSchedule::default();
        s.collapse_recover(1, 100, 900, 8_000_000, 800_000, 200, 2);
        assert_eq!(s.events.len(), 4);
        assert!(s.events[..2].iter().all(|e| e.at_us < 900));
        assert!(s.events[2..].iter().all(|e| e.at_us >= 900));
    }

    #[test]
    fn jitter_spikes_alternate_delay() {
        let mut s = LinkSchedule::default();
        s.jitter_spikes(0, 0, 1_000, 3, 50, 5_000);
        assert_eq!(s.events.len(), 6);
        assert_eq!(
            s.events[1].action,
            LinkAction::SetRouterDelay {
                router: 0,
                delay_us: 50
            }
        );
        assert_eq!(s.events[1].at_us, 500);
    }

    #[test]
    fn trace_round_trip() {
        let text = "\
# a hostile afternoon
1000000 bw 0 1000000
1200000 loss 0 0.05   # fade
1400000 delay 0 80000
1600000 queue 0 4096

1800000 uppath 50000 0.1
2000000 migrate 2 0,3
";
        let s = LinkSchedule::from_trace(text).unwrap();
        assert_eq!(s.events.len(), 6);
        assert_eq!(
            s.events[5].action,
            LinkAction::Migrate {
                receiver: 2,
                path: vec![0, 3]
            }
        );
        assert_eq!(
            s.events[4].action,
            LinkAction::SetUpPath {
                extra_delay_us: 50_000,
                loss: 0.1
            }
        );
    }

    #[test]
    fn trace_errors_name_the_line() {
        let e = LinkSchedule::from_trace("5 warp 0 1").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        assert!(e.contains("unknown directive"), "{e}");
        let e = LinkSchedule::from_trace("x bw 0 1").unwrap_err();
        assert!(e.contains("bad time"), "{e}");
        let e = LinkSchedule::from_trace("5 migrate 1 0,a").unwrap_err();
        assert!(e.contains("bad path"), "{e}");
    }
}
