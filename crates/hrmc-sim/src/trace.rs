//! Time-series instrumentation: bucketed counters over simulation time,
//! for timeline analysis of a run (rate evolution, feedback bursts,
//! queue behaviour) beyond the end-of-run totals in
//! [`SimReport`](crate::report::SimReport).

use hrmc_core::Histogram;
use hrmc_wire::PacketType;

/// One time bucket of activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBucket {
    /// DATA packets put on the wire by the sender (first transmissions
    /// and retransmissions).
    pub data_sent: u64,
    /// DATA payload bytes put on the wire.
    pub data_bytes: u64,
    /// Feedback packets (NAK / CONTROL / UPDATE) that reached the sender.
    pub feedback: u64,
    /// PROBE packets sent.
    pub probes: u64,
    /// Packets dropped anywhere (loss models, queue overflows).
    pub drops: u64,
    /// The sender's advertised rate at the end of the bucket (bytes/s).
    pub rate_bps: u64,
}

/// A bucketed activity trace.
#[derive(Debug, Clone)]
pub struct Trace {
    bucket_us: u64,
    buckets: Vec<TraceBucket>,
    /// End-to-end delivery latency (µs), fed from the observer pipeline
    /// when observation is on; empty otherwise.
    latency: Histogram,
}

impl Trace {
    /// A trace with the given bucket width.
    pub fn new(bucket_us: u64) -> Trace {
        Trace {
            bucket_us: bucket_us.max(1),
            buckets: Vec::new(),
            latency: Histogram::new(),
        }
    }

    /// Bucket width in microseconds.
    pub fn bucket_us(&self) -> u64 {
        self.bucket_us
    }

    fn bucket_mut(&mut self, now: u64) -> &mut TraceBucket {
        let idx = (now / self.bucket_us) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, TraceBucket::default());
        }
        &mut self.buckets[idx]
    }

    /// Record a sender transmission.
    pub fn on_send(&mut self, now: u64, ptype: PacketType, payload_len: usize) {
        let b = self.bucket_mut(now);
        match ptype {
            PacketType::Data => {
                b.data_sent += 1;
                b.data_bytes += payload_len as u64;
            }
            PacketType::Probe => b.probes += 1,
            _ => {}
        }
    }

    /// Record feedback arriving at the sender.
    pub fn on_feedback(&mut self, now: u64) {
        self.bucket_mut(now).feedback += 1;
    }

    /// Record a drop anywhere in the network.
    pub fn on_drop(&mut self, now: u64) {
        self.bucket_mut(now).drops += 1;
    }

    /// Record the sender's advertised rate (kept as last-write-wins per
    /// bucket).
    pub fn on_rate(&mut self, now: u64, rate_bps: u64) {
        self.bucket_mut(now).rate_bps = rate_bps;
    }

    /// Merge observed delivery-latency samples into the trace.
    pub fn merge_latency(&mut self, h: &Histogram) {
        self.latency.merge(h);
    }

    /// The delivery-latency histogram (empty unless observation ran).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// The buckets recorded so far.
    pub fn buckets(&self) -> &[TraceBucket] {
        &self.buckets
    }

    /// Render a compact text timeline (one line per bucket with any
    /// activity).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("  t(s)   data  bytes      fbk  probe  drops  rate(KB/s)\n");
        for (i, b) in self.buckets.iter().enumerate() {
            if *b == TraceBucket::default() {
                continue;
            }
            out.push_str(&format!(
                "{:>6.2} {:>6} {:>10} {:>6} {:>6} {:>6} {:>11}\n",
                (i as u64 * self.bucket_us) as f64 / 1e6,
                b.data_sent,
                b.data_bytes,
                b.feedback,
                b.probes,
                b.drops,
                b.rate_bps / 1024,
            ));
        }
        if self.latency.count() > 0 {
            let s = self.latency.summary();
            out.push_str(&format!(
                "delivery latency (µs): n={} p50={} p90={} p99={} max={}\n",
                s.count, s.p50, s.p90, s.p99, s.max,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_by_time() {
        let mut t = Trace::new(1_000_000); // 1 s buckets
        t.on_send(100, PacketType::Data, 1400);
        t.on_send(900_000, PacketType::Data, 1400);
        t.on_send(1_100_000, PacketType::Data, 700);
        t.on_feedback(1_500_000);
        t.on_drop(2_000_001);
        assert_eq!(t.buckets().len(), 3);
        assert_eq!(t.buckets()[0].data_sent, 2);
        assert_eq!(t.buckets()[0].data_bytes, 2800);
        assert_eq!(t.buckets()[1].data_sent, 1);
        assert_eq!(t.buckets()[1].feedback, 1);
        assert_eq!(t.buckets()[2].drops, 1);
    }

    #[test]
    fn probes_and_rate_tracked() {
        let mut t = Trace::new(10_000);
        t.on_send(5_000, PacketType::Probe, 0);
        t.on_rate(5_000, 1_000_000);
        t.on_rate(9_999, 2_000_000); // last write wins within the bucket
        assert_eq!(t.buckets()[0].probes, 1);
        assert_eq!(t.buckets()[0].rate_bps, 2_000_000);
    }

    #[test]
    fn render_skips_empty_buckets() {
        let mut t = Trace::new(1_000);
        t.on_send(0, PacketType::Data, 10);
        t.on_send(5_500, PacketType::Data, 10);
        let s = t.render();
        // Header + two active buckets.
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn zero_bucket_width_clamps_to_one() {
        // A zero width would divide by zero in bucket_mut; it clamps to
        // 1 µs instead.
        let mut t = Trace::new(0);
        assert_eq!(t.bucket_us(), 1);
        t.on_send(3, PacketType::Data, 10);
        assert_eq!(t.buckets().len(), 4); // indices 0..=3 allocated
        assert_eq!(t.buckets()[3].data_sent, 1);
    }

    #[test]
    fn sparse_events_resize_the_bucket_vec() {
        let mut t = Trace::new(1_000);
        t.on_drop(0);
        assert_eq!(t.buckets().len(), 1);
        // An event far in the future grows the vector; the gap stays
        // default-initialized.
        t.on_drop(99_999);
        assert_eq!(t.buckets().len(), 100);
        assert!(t.buckets()[1..99]
            .iter()
            .all(|b| *b == TraceBucket::default()));
        assert_eq!(t.buckets()[99].drops, 1);
        // Out-of-order (earlier) events never shrink it.
        t.on_drop(5_500);
        assert_eq!(t.buckets().len(), 100);
        assert_eq!(t.buckets()[5].drops, 1);
    }

    #[test]
    fn latency_percentiles_render_when_present() {
        let mut t = Trace::new(1_000);
        assert!(!t.render().contains("delivery latency"));
        let mut h = Histogram::new();
        h.record(500);
        h.record(700);
        t.merge_latency(&h);
        assert_eq!(t.latency().count(), 2);
        let s = t.render();
        assert!(s.contains("delivery latency"), "{s}");
        assert!(s.contains("n=2"), "{s}");
    }

    #[test]
    fn control_packets_do_not_count_as_data() {
        let mut t = Trace::new(1_000);
        t.on_send(0, PacketType::Keepalive, 0);
        t.on_send(0, PacketType::Update, 0);
        assert_eq!(t.buckets()[0].data_sent, 0);
        assert_eq!(t.buckets()[0].probes, 0);
    }
}
