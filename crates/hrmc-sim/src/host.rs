//! Host processes (paper §5.2): "A host process controls the operation
//! of the H-RMC protocol and underlying operating system on the host, as
//! well as the sending or receiving application."
//!
//! A host couples a protocol engine with an application and a CPU cursor
//! that serializes protocol processing: each packet sent or received
//! costs the paper's measured (10 + 0.025·l) µs of H-RMC processing plus
//! 150 µs of lower-layer processing, charged against a single busy-until
//! cursor exactly as one 300 MHz CPU would.

use bytes::Bytes;
use hrmc_core::{ReceiverEngine, SenderEngine};

use crate::apps::{SinkApp, SourceApp};
use crate::{protocol_delay_us, LOWER_LAYER_DELAY_US};

/// The protocol engine running on a host.
pub enum Engine {
    /// The single sender.
    Sender(Box<SenderEngine>),
    /// One of the receivers.
    Receiver(Box<ReceiverEngine>),
}

/// One simulated host.
pub struct Host {
    /// Protocol engine.
    pub engine: Engine,
    /// Data source (sender host only).
    pub source: Option<SourceApp>,
    /// Data sink (receiver hosts only).
    pub sink: Option<SinkApp>,
    /// CPU busy-until cursor for protocol processing.
    pub cpu_free_at: u64,
    /// Scale factor on the paper's processing delays (1.0 = the measured
    /// 300 MHz Pentium II constants; <1.0 models a faster host or DMA
    /// overlap — the regime of the paper's *experimental* Figure 13).
    pub cpu_scale: f64,
    /// Packets dropped because the host's RX processing backlog exceeded
    /// its bound (the kernel's `netdev_max_backlog` analog).
    pub backlog_drops: u64,
    /// Produced-but-not-yet-accepted stream bytes (the application
    /// blocking on a full send buffer).
    pending: Vec<u8>,
    pending_offset: usize,
    /// `true` once `close()` has been issued to the sender engine.
    pub closed: bool,
    /// `true` while the host is crashed (fault injection): its engine is
    /// never ticked and arriving packets are discarded.
    pub crashed: bool,
    /// `true` while the host's protocol process is frozen (fault
    /// injection; sender only): no ticks, arriving packets discarded.
    pub paused: bool,
    /// `true` once the host has been revived after a crash (fault
    /// injection): it re-joins as a best-effort late joiner and the
    /// completion check no longer waits for it.
    pub restarted: bool,
    /// Simulation time at which this receiver finished absorbing the
    /// whole stream (receiver hosts only).
    pub completed_at: Option<u64>,
    /// Engine `on_tick` invocations (scheduler-efficiency metric).
    pub ticks: u64,
}

impl Host {
    /// A sender host.
    pub fn sender(engine: SenderEngine, source: SourceApp) -> Host {
        Host {
            engine: Engine::Sender(Box::new(engine)),
            source: Some(source),
            sink: None,
            cpu_free_at: 0,
            cpu_scale: 1.0,
            backlog_drops: 0,
            pending: Vec::new(),
            pending_offset: 0,
            closed: false,
            crashed: false,
            paused: false,
            restarted: false,
            completed_at: None,
            ticks: 0,
        }
    }

    /// A receiver host.
    pub fn receiver(engine: ReceiverEngine, sink: SinkApp) -> Host {
        Host {
            engine: Engine::Receiver(Box::new(engine)),
            source: None,
            sink: Some(sink),
            cpu_free_at: 0,
            cpu_scale: 1.0,
            backlog_drops: 0,
            pending: Vec::new(),
            pending_offset: 0,
            closed: false,
            crashed: false,
            paused: false,
            restarted: false,
            completed_at: None,
            ticks: 0,
        }
    }

    /// Charge the CPU for processing one packet of payload length `len`
    /// at `now`; returns the completion time.
    pub fn charge_cpu(&mut self, len: usize, now: u64) -> u64 {
        let start = self.cpu_free_at.max(now);
        let cost = ((protocol_delay_us(len) + LOWER_LAYER_DELAY_US) as f64 * self.cpu_scale).round()
            as u64;
        let done = start + cost;
        self.cpu_free_at = done;
        done
    }

    /// How far ahead of `now` the CPU cursor has run (the RX processing
    /// backlog, expressed as time).
    pub fn cpu_backlog(&self, now: u64) -> u64 {
        self.cpu_free_at.saturating_sub(now)
    }

    /// Pump the sending application: produce bytes from the source into
    /// the engine's send buffer, and close the stream once the source is
    /// exhausted and fully submitted.
    pub fn pump_source(&mut self, now: u64) {
        let Engine::Sender(engine) = &mut self.engine else {
            return;
        };
        let Some(source) = &mut self.source else {
            return;
        };
        // Refill the staging buffer from the (possibly rate-limited)
        // source.
        if self.pending_offset >= self.pending.len() && !source.exhausted() {
            let chunk: Bytes = source.produce(256 * 1024, now);
            if !chunk.is_empty() {
                self.pending.clear();
                self.pending.extend_from_slice(&chunk);
                self.pending_offset = 0;
            }
        }
        // Submit as much staged data as the send window accepts.
        if self.pending_offset < self.pending.len() {
            let n = engine.submit(&self.pending[self.pending_offset..], now);
            self.pending_offset += n;
        }
        if source.exhausted() && self.pending_offset >= self.pending.len() && !self.closed {
            self.closed = true;
            engine.close(now);
        }
    }

    /// Pump the receiving application: read as much as the sink's I/O
    /// profile allows and absorb it.
    pub fn pump_sink(&mut self, now: u64) {
        let Engine::Receiver(engine) = &mut self.engine else {
            return;
        };
        let Some(sink) = &mut self.sink else { return };
        loop {
            let readable = engine.readable_bytes();
            if readable == 0 {
                break;
            }
            let cap = sink.capacity(now, readable).min(64 * 1024);
            if cap == 0 {
                break;
            }
            let mut buf = vec![0u8; cap];
            let n = engine.read(&mut buf, now);
            if n == 0 {
                break;
            }
            sink.absorb(&buf[..n], now);
        }
        if self.completed_at.is_none() && engine.fully_consumed() {
            self.completed_at = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::IoProfile;
    use hrmc_core::ProtocolConfig;

    fn sender_host(total: u64) -> Host {
        let engine = SenderEngine::new(
            ProtocolConfig::hrmc().with_buffer(64 * 1024),
            7000,
            7001,
            0,
            0,
        );
        Host::sender(engine, SourceApp::new(total, IoProfile::Memory, 0))
    }

    #[test]
    fn cpu_cursor_serializes_processing() {
        let mut h = sender_host(0);
        // First packet at t=0: 10 + 35 + 150 = 195 µs for 1400 bytes.
        let t1 = h.charge_cpu(1400, 0);
        assert_eq!(t1, 195);
        // Second packet queues behind the first on the CPU.
        let t2 = h.charge_cpu(1400, 0);
        assert_eq!(t2, 390);
        // After an idle gap the cursor snaps forward.
        let t3 = h.charge_cpu(0, 10_000);
        assert_eq!(t3, 10_000 + 160);
    }

    #[test]
    fn source_pump_submits_and_closes() {
        let mut h = sender_host(10_000);
        h.pump_source(0);
        let Engine::Sender(engine) = &h.engine else {
            unreachable!()
        };
        assert_eq!(engine.buffered_bytes(), 10_000);
        assert!(h.closed, "source exhausted and submitted: must close");
    }

    #[test]
    fn source_pump_blocks_at_window_and_resumes() {
        let mut h = sender_host(200_000); // sndbuf is 64 KiB
        h.pump_source(0);
        let Engine::Sender(engine) = &mut h.engine else {
            unreachable!()
        };
        let buffered = engine.buffered_bytes();
        assert!(buffered <= 64 * 1024);
        assert!(!h.closed);
        // Simulate release of the whole window, then pump again.
        let Engine::Sender(engine) = &mut h.engine else {
            unreachable!()
        };
        // (Engine-internal release requires transmission; here we only
        // verify the staging buffer retries without data loss.)
        let before = engine.buffered_bytes();
        h.pump_source(1_000);
        let Engine::Sender(engine) = &h.engine else {
            unreachable!()
        };
        assert!(engine.buffered_bytes() >= before);
    }

    #[test]
    fn sink_pump_respects_profile_and_completes() {
        use hrmc_wire::Packet;
        let engine =
            ReceiverEngine::new(ProtocolConfig::hrmc().with_buffer(64 * 1024), 8000, 7001, 0);
        let mut h = Host::receiver(engine, SinkApp::new(IoProfile::Memory, 0));
        // Feed two in-order packets, the second carrying FIN.
        let Engine::Receiver(r) = &mut h.engine else {
            unreachable!()
        };
        let p0 = Packet::data(
            7000,
            7001,
            0,
            Bytes::from(
                (0..100u64)
                    .map(crate::apps::pattern_byte)
                    .collect::<Vec<_>>(),
            ),
        );
        let mut p1 = Packet::data(
            7000,
            7001,
            1,
            Bytes::from(
                (100..150u64)
                    .map(crate::apps::pattern_byte)
                    .collect::<Vec<_>>(),
            ),
        );
        p1.header.flags.fin = true;
        r.handle_packet(&p0, 10);
        r.handle_packet(&p1, 20);
        h.pump_sink(30);
        assert_eq!(h.sink.as_ref().unwrap().received(), 150);
        assert!(h.sink.as_ref().unwrap().intact());
        assert_eq!(h.completed_at, Some(30));
    }
}
