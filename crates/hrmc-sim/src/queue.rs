//! The simulator's event queue: a time-ordered priority queue with a
//! monotone tiebreak counter so simultaneous events fire in insertion
//! order — making every run deterministic for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: fire time plus a payload.
struct Scheduled<E> {
    time: u64,
    tiebreak: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.tiebreak == other.tiebreak
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.tiebreak.cmp(&self.tiebreak))
    }
}

/// Deterministic discrete-event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    counter: u64,
    now: u64,
    popped: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            counter: 0,
            now: 0,
            popped: 0,
            peak_len: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (the fire time of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is
    /// clamped to `now` (events cannot time-travel).
    pub fn schedule(&mut self, at: u64, event: E) {
        let time = at.max(self.now);
        self.counter += 1;
        self.heap.push(Scheduled {
            time,
            tiebreak: self.counter,
            event,
        });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Pop the next event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "event queue went backwards");
        self.now = s.time;
        self.popped += 1;
        Some((s.time, s.event))
    }

    /// Total events popped so far (the simulator's unit of work).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// High-water mark of the pending-event heap.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Fire time of the next event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, "later");
        q.pop();
        q.schedule(50, "stale"); // clamped to 100
        assert_eq!(q.pop(), Some((100, "stale")));
    }

    #[test]
    fn counters_track_pops_and_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!((q.popped(), q.peak_len()), (0, 0));
        q.schedule(10, ());
        q.schedule(20, ());
        q.schedule(30, ());
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        assert_eq!(q.popped(), 2);
        // Peak is a high-water mark; draining does not lower it.
        assert_eq!(q.peak_len(), 3);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.schedule(30, 3);
        assert_eq!(q.pop(), Some((10, 1)));
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert!(q.is_empty());
    }
}
