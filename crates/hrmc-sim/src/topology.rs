//! Topology builders for the paper's two experimental worlds.
//!
//! * **LAN testbed (§5.1)** — "All the machines were connected to the
//!   same Ethernet LAN running at either 10 or 100 Mbps": the sender's
//!   NIC serializes once onto the shared medium; a pass-through router
//!   broadcasts to every receiver NIC.
//! * **Characteristic groups (§5.2, Figure 14)** — receivers are divided
//!   into groups "defined by its network delay and loss properties":
//!   group A (2 ms, 0.005%) simulates a local environment, group B
//!   (20 ms, 0.5%) a metropolitan area, and group C (100 ms, 2%) a wide
//!   area. "90% of the loss was correlated and occurred at the router
//!   process and 10% of the loss was uncorrelated and occurred at the
//!   network interface process."

use crate::loss::LossModel;
use crate::nic::NicParams;
use crate::router::RouterParams;

/// Share of each group's loss placed at its router (correlated loss).
pub const CORRELATED_LOSS_SHARE: f64 = 0.90;

/// A characteristic group (paper Figure 14(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacteristicGroup {
    /// Human-readable name ("A", "B", "C").
    pub name: &'static str,
    /// One-way network delay.
    pub delay_us: u64,
    /// Total loss rate (fraction, e.g. 0.02 for 2%).
    pub loss: f64,
}

impl CharacteristicGroup {
    /// Group A: local environment — 2 ms, 0.005% loss.
    pub const A: CharacteristicGroup = CharacteristicGroup {
        name: "A",
        delay_us: 2_000,
        loss: 0.00005,
    };
    /// Group B: metropolitan area — 20 ms, 0.5% loss.
    pub const B: CharacteristicGroup = CharacteristicGroup {
        name: "B",
        delay_us: 20_000,
        loss: 0.005,
    };
    /// Group C: wide area — 100 ms, 2% loss.
    pub const C: CharacteristicGroup = CharacteristicGroup {
        name: "C",
        delay_us: 100_000,
        loss: 0.02,
    };
}

/// A group of receivers sharing one characteristic group.
#[derive(Debug, Clone, Copy)]
pub struct GroupSpec {
    /// Delay/loss characteristics.
    pub group: CharacteristicGroup,
    /// Number of receivers in this group.
    pub receivers: usize,
}

/// A built topology: routers, NICs, and per-receiver router paths.
#[derive(Debug, Clone)]
pub struct Topology {
    /// All routers; `paths` index into this.
    pub routers: Vec<RouterParams>,
    /// The sender host's NIC.
    pub sender_nic: NicParams,
    /// One NIC per receiver host.
    pub receiver_nics: Vec<NicParams>,
    /// `paths[i]` is the ordered list of router indices between the
    /// sender and receiver `i`. Feedback walks it in reverse.
    pub paths: Vec<Vec<usize>>,
}

impl Topology {
    /// Number of receivers.
    pub fn receivers(&self) -> usize {
        self.receiver_nics.len()
    }
}

/// Builder for the standard topologies.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    /// Sender transmit-queue capacity (Linux `txqueuelen` analog; the
    /// Figure 13 knob).
    pub sender_txqueue: usize,
    /// Receiver transmit-queue capacity (feedback packets are small, so
    /// this rarely matters).
    pub receiver_txqueue: usize,
    /// Router queue capacity in packets.
    pub router_queue: usize,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder {
            sender_txqueue: 100,
            receiver_txqueue: 100,
            router_queue: 512,
        }
    }
}

impl TopologyBuilder {
    /// Standard knobs.
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// The §5.1 testbed: `n` receivers on one shared Ethernet of
    /// `bandwidth_bps`, with optional uniform loss (split 90/10 between
    /// the shared segment and the receiver NICs, matching the simulation
    /// study's convention).
    pub fn lan(&self, n: usize, bandwidth_bps: u64, loss: f64) -> Topology {
        let router = RouterParams {
            // The sender NIC serializes onto the shared medium; the
            // "router" is the medium itself: no extra serialization.
            bandwidth_bps: 0,
            queue_packets: self.router_queue,
            loss: loss * CORRELATED_LOSS_SHARE,
            delay_us: 50, // propagation + hub latency on a LAN segment
        };
        Topology {
            routers: vec![router],
            sender_nic: NicParams {
                bandwidth_bps,
                tx_queue_packets: self.sender_txqueue,
                rx_loss: LossModel::NONE,
            },
            receiver_nics: (0..n)
                .map(|_| NicParams {
                    bandwidth_bps,
                    tx_queue_packets: self.receiver_txqueue,
                    rx_loss: LossModel::Bernoulli(loss * (1.0 - CORRELATED_LOSS_SHARE)),
                })
                .collect(),
            paths: (0..n).map(|_| vec![0]).collect(),
        }
    }

    /// A wireless cell: the shared-medium LAN shape, but each receiver's
    /// tail link runs a (typically Gilbert–Elliott) loss model — the
    /// environment the paper's FEC future-work targets.
    pub fn wireless(&self, n: usize, bandwidth_bps: u64, model: LossModel) -> Topology {
        let mut t = self.lan(n, bandwidth_bps, 0.0);
        for nic in &mut t.receiver_nics {
            nic.rx_loss = model;
        }
        t
    }

    /// The §5.2 simulation study: a backbone router fans out to one
    /// router per characteristic group; each group router carries the
    /// group's delay and the correlated 90% of its loss; each receiver
    /// NIC carries the uncorrelated 10%. `bandwidth_bps` is the network
    /// speed assigned to every router (the paper's 10 or 100 Mbps).
    pub fn groups(&self, specs: &[GroupSpec], bandwidth_bps: u64) -> Topology {
        // Router 0: the backbone — "The network backbone and the
        // individual sites are mostly loss free."
        let mut routers = vec![RouterParams {
            bandwidth_bps,
            queue_packets: self.router_queue,
            loss: 0.0,
            delay_us: 1_000,
        }];
        let mut receiver_nics = Vec::new();
        let mut paths = Vec::new();
        for spec in specs {
            let router_idx = routers.len();
            routers.push(RouterParams {
                bandwidth_bps,
                queue_packets: self.router_queue,
                loss: spec.group.loss * CORRELATED_LOSS_SHARE,
                delay_us: spec.group.delay_us,
            });
            for _ in 0..spec.receivers {
                receiver_nics.push(NicParams {
                    bandwidth_bps,
                    tx_queue_packets: self.receiver_txqueue,
                    rx_loss: LossModel::Bernoulli(spec.group.loss * (1.0 - CORRELATED_LOSS_SHARE)),
                });
                paths.push(vec![0, router_idx]);
            }
        }
        Topology {
            routers,
            sender_nic: NicParams {
                bandwidth_bps,
                tx_queue_packets: self.sender_txqueue,
                rx_loss: LossModel::NONE,
            },
            receiver_nics,
            paths,
        }
    }
}

/// The paper's five test cases (Figure 14(b)) over `n` receivers.
pub fn test_case(test: usize, n: usize) -> Vec<GroupSpec> {
    let split = |frac: f64| ((n as f64 * frac).round() as usize).min(n);
    match test {
        1 => vec![GroupSpec {
            group: CharacteristicGroup::A,
            receivers: n,
        }],
        2 => vec![GroupSpec {
            group: CharacteristicGroup::B,
            receivers: n,
        }],
        3 => vec![GroupSpec {
            group: CharacteristicGroup::C,
            receivers: n,
        }],
        4 => {
            let b = split(0.8);
            vec![
                GroupSpec {
                    group: CharacteristicGroup::B,
                    receivers: b,
                },
                GroupSpec {
                    group: CharacteristicGroup::C,
                    receivers: n - b,
                },
            ]
        }
        5 => {
            let b = split(0.2);
            vec![
                GroupSpec {
                    group: CharacteristicGroup::B,
                    receivers: b,
                },
                GroupSpec {
                    group: CharacteristicGroup::C,
                    receivers: n - b,
                },
            ]
        }
        other => panic!("test case {other} is not one of the paper's Tests 1-5"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characteristic_groups_match_figure_14() {
        assert_eq!(CharacteristicGroup::A.delay_us, 2_000);
        assert!((CharacteristicGroup::A.loss - 0.00005).abs() < 1e-12);
        assert_eq!(CharacteristicGroup::B.delay_us, 20_000);
        assert!((CharacteristicGroup::B.loss - 0.005).abs() < 1e-12);
        assert_eq!(CharacteristicGroup::C.delay_us, 100_000);
        assert!((CharacteristicGroup::C.loss - 0.02).abs() < 1e-12);
    }

    #[test]
    fn lan_topology_shape() {
        let t = TopologyBuilder::new().lan(3, 10_000_000, 0.0);
        assert_eq!(t.routers.len(), 1);
        assert_eq!(t.receivers(), 3);
        assert!(t.paths.iter().all(|p| p == &vec![0]));
        assert_eq!(t.sender_nic.bandwidth_bps, 10_000_000);
        // The shared medium is serialized at the sender NIC, not again at
        // the router.
        assert_eq!(t.routers[0].bandwidth_bps, 0);
    }

    #[test]
    fn lan_loss_split_90_10() {
        let t = TopologyBuilder::new().lan(2, 10_000_000, 0.01);
        assert!((t.routers[0].loss - 0.009).abs() < 1e-12);
        assert!((t.receiver_nics[0].rx_loss.mean_loss() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn wireless_topology_uses_model_on_tails() {
        let model = LossModel::wireless_default();
        let t = TopologyBuilder::new().wireless(3, 10_000_000, model);
        assert_eq!(t.receivers(), 3);
        assert!(t.receiver_nics.iter().all(|n| n.rx_loss == model));
        assert_eq!(t.routers[0].loss, 0.0);
    }

    #[test]
    fn group_topology_shape() {
        let specs = [
            GroupSpec {
                group: CharacteristicGroup::B,
                receivers: 8,
            },
            GroupSpec {
                group: CharacteristicGroup::C,
                receivers: 2,
            },
        ];
        let t = TopologyBuilder::new().groups(&specs, 10_000_000);
        assert_eq!(t.routers.len(), 3); // backbone + 2 groups
        assert_eq!(t.receivers(), 10);
        assert_eq!(t.paths[0], vec![0, 1]);
        assert_eq!(t.paths[8], vec![0, 2]);
        // Group C router: 100 ms delay, 1.8% correlated loss.
        assert_eq!(t.routers[2].delay_us, 100_000);
        assert!((t.routers[2].loss - 0.018).abs() < 1e-12);
        assert!((t.receiver_nics[9].rx_loss.mean_loss() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn test_cases_match_figure_14b() {
        assert_eq!(test_case(1, 10)[0].group.name, "A");
        assert_eq!(test_case(2, 10)[0].group.name, "B");
        assert_eq!(test_case(3, 10)[0].group.name, "C");
        let t4 = test_case(4, 10);
        assert_eq!((t4[0].group.name, t4[0].receivers), ("B", 8));
        assert_eq!((t4[1].group.name, t4[1].receivers), ("C", 2));
        let t5 = test_case(5, 10);
        assert_eq!((t5[0].group.name, t5[0].receivers), ("B", 2));
        assert_eq!((t5[1].group.name, t5[1].receivers), ("C", 8));
        // Counts always total n.
        for t in 1..=5 {
            for n in [1, 7, 10, 100] {
                let total: usize = test_case(t, n).iter().map(|s| s.receivers).sum();
                assert_eq!(total, n, "test {t} n {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not one of the paper's Tests")]
    fn unknown_test_case_panics() {
        test_case(6, 10);
    }
}
